//! Warm-start store correctness: a run restored from a *disk snapshot* in a
//! brand-new engine — the cross-process reuse path — must produce results
//! identical to a cold run on every benchmark of the suite, in **both**
//! persistence formats (the chunked content-addressed store and the legacy
//! monolithic files), and tampering must degrade gracefully: a tampered
//! *chunk* is quarantined individually while the restore proceeds with the
//! remaining chunks, and a tampered *monolithic file* degrades to a clean
//! cold start — never a wrong answer either way.
//!
//! This is the cross-process analogue of `tests/engine_reuse_equivalence.rs`
//! (which pins in-process warm ≡ cold): here the warmth travels through
//! `Engine::save_state` → the chunk store (manifests over digest-named
//! chunks) or legacy JSON files keyed by `Problem::fingerprint()` →
//! `EngineConfig::warm_start_dir`, exercising the structural digest keys,
//! the check-cache and term-bank serializers and chunk codecs, and the
//! snapshot validation, none of which may depend on in-process state.
//!
//! The run options are chosen deterministic (no wall-clock timeout, a small
//! iteration cap, a small search schedule) so outcomes are pure functions of
//! the problem and the caches: any restored/cold divergence is a snapshot
//! bug, not scheduling noise.

use std::path::PathBuf;

use hanoi_repro::benchmarks;
use hanoi_repro::hanoi::{Engine, EngineConfig, Outcome, RunOptions};
use hanoi_repro::synth::SearchConfig;
use hanoi_repro::verifier::VerifierBounds;

/// Deterministic options, mirroring `tests/engine_reuse_equivalence.rs`.
fn test_options() -> RunOptions {
    RunOptions::quick()
        .with_timeout(None)
        .with_max_iterations(5)
        .with_bounds(VerifierBounds {
            single_count: 250,
            single_size: 12,
            multi_count: 100,
            multi_size: 8,
            total_cap: 2_500,
            ..VerifierBounds::quick()
        })
        .with_search(SearchConfig {
            schedule: vec![(0, 4), (1, 5)],
            max_terms_per_layer: 300,
            fuel: 4_000,
            ..SearchConfig::quick()
        })
}

/// A label for outcome comparison that is total (invariants compare by
/// expression, failures by kind+message).
fn outcome_key(outcome: &Outcome) -> String {
    match outcome {
        Outcome::Invariant(inv) => format!("invariant: {inv}"),
        other => other.to_string(),
    }
}

/// A unique scratch directory (the offline build has no tempfile crate).
fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "hanoi-warm-start-eq-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn warm_engine(dir: &PathBuf) -> Engine {
    Engine::new(EngineConfig::default().with_warm_start_dir(dir)).unwrap()
}

#[test]
fn snapshot_restored_engines_match_cold_engines_on_every_benchmark() {
    // The three-way equivalence the store must uphold on all 28 benchmarks:
    // chunked restore ≡ monolithic restore ≡ cold, on outcome, CEGIS
    // iteration count and the learned V± sets.
    let chunked_dir = scratch_dir("suite-chunked");
    let mono_dir = scratch_dir("suite-mono");
    for benchmark in benchmarks::registry() {
        let problem = benchmark
            .problem()
            .unwrap_or_else(|e| panic!("{}: {e}", benchmark.id));
        let options = test_options();

        // Cold: a fresh engine with no store, exactly one run.
        let cold = Engine::with_defaults().run(&problem, &options);

        // "Process 1": solve once, checkpoint in both formats.
        let saver = warm_engine(&chunked_dir);
        let first = saver.run(&problem, &options);
        assert_eq!(
            outcome_key(&first.outcome),
            outcome_key(&cold.outcome),
            "{}: a store-attached engine diverged before any snapshot existed",
            benchmark.id
        );
        assert!(
            saver.save_state(&chunked_dir).unwrap() >= 1,
            "{}: chunked snapshot write",
            benchmark.id
        );
        assert!(
            saver.save_state_monolithic(&mono_dir).unwrap() >= 1,
            "{}: monolithic snapshot write",
            benchmark.id
        );
        assert!(
            chunked_dir
                .join("manifests")
                .join(format!("{}.json", problem.fingerprint().to_hex()))
                .is_file(),
            "{}: the chunked save must produce a manifest",
            benchmark.id
        );

        // "Process 2": brand-new engines whose only warmth is the disk, one
        // per format.  Outcome, iteration count and V± must be identical.
        for (format, dir) in [("chunked", &chunked_dir), ("monolithic", &mono_dir)] {
            let restored = warm_engine(dir).run(&problem, &options);
            assert_eq!(
                outcome_key(&restored.outcome),
                outcome_key(&cold.outcome),
                "{} [{format}]: snapshot-restored run diverged from a cold run",
                benchmark.id
            );
            assert_eq!(
                restored.stats.iterations, cold.stats.iterations,
                "{} [{format}]: restored run took a different CEGIS path",
                benchmark.id
            );
            assert_eq!(
                restored.stats.final_positives, cold.stats.final_positives,
                "{} [{format}]: restored run learned a different V+",
                benchmark.id
            );
            assert_eq!(
                restored.stats.final_negatives, cold.stats.final_negatives,
                "{} [{format}]: restored run learned a different V−",
                benchmark.id
            );

            // The warmth must be real and must have come from the disk.
            assert!(
                restored.stats.warm_start_loads > 0,
                "{} [{format}]: nothing was restored ({:?})",
                benchmark.id,
                restored.stats
            );
            assert_eq!(
                restored.stats.warm_start_quarantined, 0,
                "{} [{format}]: a clean store quarantined something ({:?})",
                benchmark.id, restored.stats
            );
            assert_eq!(
                restored.stats.verification_cache_hits as usize, restored.stats.verification_calls,
                "{} [{format}]: a restored identical re-run must answer every \
                 check from the snapshot ({:?})",
                benchmark.id, restored.stats
            );
            assert_eq!(
                restored.stats.pool_builds, 0,
                "{} [{format}]: a fully warm restored run enumerated pools",
                benchmark.id
            );
            assert!(
                restored.stats.synth_terms_enumerated <= cold.stats.synth_terms_enumerated,
                "{} [{format}]: a restored bank enumerated more terms than a cold one ({} > {})",
                benchmark.id,
                restored.stats.synth_terms_enumerated,
                cold.stats.synth_terms_enumerated
            );
        }
    }
    let _ = std::fs::remove_dir_all(&chunked_dir);
    let _ = std::fs::remove_dir_all(&mono_dir);
}

#[test]
fn numeric_family_snapshots_restore_identically_in_both_formats() {
    // The numeric/trace family goes through the same store machinery —
    // including Int values in the term-bank interner and arithmetic
    // components in the session digest — so it must uphold the same
    // three-way equivalence: chunked restore ≡ monolithic restore ≡ cold.
    let chunked_dir = scratch_dir("numeric-chunked");
    let mono_dir = scratch_dir("numeric-mono");
    for benchmark in benchmarks::numeric_registry() {
        let problem = benchmark
            .problem()
            .unwrap_or_else(|e| panic!("{}: {e}", benchmark.id));
        let options =
            test_options().with_numeric_grammar(&hanoi_repro::synth::arith::ArithBounds::default());

        let cold = Engine::with_defaults().run(&problem, &options);

        let saver = warm_engine(&chunked_dir);
        let first = saver.run(&problem, &options);
        assert_eq!(
            outcome_key(&first.outcome),
            outcome_key(&cold.outcome),
            "{}: a store-attached engine diverged before any snapshot existed",
            benchmark.id
        );
        assert!(
            first.stats.synth_arith_atoms > 0,
            "{}: the numeric grammar must enumerate arithmetic atoms ({:?})",
            benchmark.id,
            first.stats
        );
        assert!(
            saver.save_state(&chunked_dir).unwrap() >= 1,
            "{}",
            benchmark.id
        );
        assert!(
            saver.save_state_monolithic(&mono_dir).unwrap() >= 1,
            "{}",
            benchmark.id
        );

        for (format, dir) in [("chunked", &chunked_dir), ("monolithic", &mono_dir)] {
            let restored = warm_engine(dir).run(&problem, &options);
            assert_eq!(
                outcome_key(&restored.outcome),
                outcome_key(&cold.outcome),
                "{} [{format}]: snapshot-restored run diverged from a cold run",
                benchmark.id
            );
            assert_eq!(
                restored.stats.iterations, cold.stats.iterations,
                "{} [{format}]: restored run took a different CEGIS path",
                benchmark.id
            );
            assert_eq!(
                (
                    restored.stats.final_positives,
                    restored.stats.final_negatives
                ),
                (cold.stats.final_positives, cold.stats.final_negatives),
                "{} [{format}]: restored run learned different examples",
                benchmark.id
            );
            assert!(
                restored.stats.warm_start_loads > 0,
                "{} [{format}]: nothing was restored ({:?})",
                benchmark.id,
                restored.stats
            );
            assert_eq!(
                restored.stats.warm_start_quarantined, 0,
                "{} [{format}]: a clean store quarantined something",
                benchmark.id
            );
            // Guess memos replay the arithmetic-atom counter: a fully warm
            // identical re-run must report exactly the cold run's count.
            assert_eq!(
                restored.stats.synth_arith_atoms, cold.stats.synth_arith_atoms,
                "{} [{format}]: memo-served guesses must replay the \
                 arithmetic-atom counter ({:?})",
                benchmark.id, restored.stats
            );
        }
    }
    let _ = std::fs::remove_dir_all(&chunked_dir);
    let _ = std::fs::remove_dir_all(&mono_dir);
}

#[test]
fn every_chunk_tampered_in_turn_quarantines_only_itself() {
    // The tamper loop: for each chunk the manifest lists, flip its bytes
    // and restore.  Exactly that chunk must be quarantined, the restore
    // must proceed with the remaining chunks, and the outcome must stay
    // equal to cold — chunk-level corruption isolation, every position.
    let dir = scratch_dir("chunk-tamper-loop");
    let benchmark = benchmarks::find("/coq/unique-list-::-set").unwrap();
    let problem = benchmark.problem().unwrap();
    let options = test_options();
    let cold = Engine::with_defaults().run(&problem, &options);

    let saver = warm_engine(&dir);
    let _ = saver.run(&problem, &options);
    saver.save_state(&dir).unwrap();

    let store = hanoi_repro::store::ChunkStore::open(&dir).unwrap();
    let manifest = store.manifest(problem.fingerprint()).unwrap();
    assert!(
        manifest.entries.len() >= 3,
        "a solved benchmark should chunk into checks + bank(s) + shapes: {:?}",
        manifest.entries.len()
    );
    for (i, entry) in manifest.entries.iter().enumerate() {
        let chunk_path = dir
            .join("chunks")
            .join(format!("{}.json", entry.chunk.to_hex()));
        let pristine = std::fs::read(&chunk_path).unwrap();
        std::fs::write(&chunk_path, b"flipped bytes").unwrap();

        let result = warm_engine(&dir).run(&problem, &options);
        assert_eq!(
            outcome_key(&result.outcome),
            outcome_key(&cold.outcome),
            "chunk {i} ({}): tampering changed the outcome",
            entry.section
        );
        assert_eq!(
            result.stats.iterations, cold.stats.iterations,
            "chunk {i} ({}): tampering changed the CEGIS path",
            entry.section
        );
        assert_eq!(
            result.stats.warm_start_quarantined, 1,
            "chunk {i} ({}): exactly the tampered chunk must be quarantined ({:?})",
            entry.section, result.stats
        );
        assert!(
            result.stats.warm_start_loads > 0,
            "chunk {i} ({}): the surviving chunks must still restore ({:?})",
            entry.section,
            result.stats
        );
        let quarantine_path = dir
            .join("chunks")
            .join(format!("{}.json.corrupt", entry.chunk.to_hex()));
        assert!(
            quarantine_path.is_file(),
            "chunk {i} ({}): the tampered chunk must be preserved for diagnosis",
            entry.section
        );

        // Heal for the next round.
        std::fs::remove_file(&quarantine_path).unwrap();
        std::fs::write(&chunk_path, &pristine).unwrap();
    }

    // After healing, the store restores in full again.
    let restored = warm_engine(&dir).run(&problem, &options);
    assert_eq!(outcome_key(&restored.outcome), outcome_key(&cold.outcome));
    assert_eq!(restored.stats.warm_start_quarantined, 0);
    assert!(restored.stats.warm_start_loads > 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn tampered_snapshots_fall_back_to_cold_never_a_wrong_answer() {
    let dir = scratch_dir("tamper");
    let benchmark = benchmarks::find("/coq/unique-list-::-set").unwrap();
    let problem = benchmark.problem().unwrap();
    let options = test_options();
    let cold = Engine::with_defaults().run(&problem, &options);

    let saver = warm_engine(&dir);
    let _ = saver.run(&problem, &options);
    // This test pins the *legacy monolithic* format: one top-level
    // `<fingerprint>.json` per problem, quarantined wholesale on any defect.
    saver.save_state_monolithic(&dir).unwrap();
    let path = dir.join(format!("{}.json", problem.fingerprint().to_hex()));
    let pristine = std::fs::read_to_string(&path).unwrap();

    // Each tampering mode must yield a *cold* run with the *correct*
    // outcome: no error surfaces, nothing is restored, nothing is wrong.
    let truncated = pristine[..pristine.len() / 3].to_string();
    let garbage = "this is not json{{{".to_string();
    let version_bumped = pristine.replacen("\"version\": 1", "\"version\": 42", 1);
    assert_ne!(version_bumped, pristine);
    let wrong_kind = pristine.replacen("hanoi-warm-start", "some-other-kind", 1);
    // Valid JSON, valid wrapper, corrupt component: break the check cache's
    // entry list structurally.
    let broken_component = pristine.replacen("\"entries\": [", "\"entries\": [17, ", 1);
    assert_ne!(broken_component, pristine);
    let quarantine_path = dir.join(format!("{}.json.corrupt", problem.fingerprint().to_hex()));
    for (tag, tampered) in [
        ("truncated", &truncated),
        ("garbage", &garbage),
        ("version-bumped", &version_bumped),
        ("wrong-kind", &wrong_kind),
        ("broken-component", &broken_component),
    ] {
        std::fs::write(&path, tampered).unwrap();
        let result = warm_engine(&dir).run(&problem, &options);
        assert_eq!(
            outcome_key(&result.outcome),
            outcome_key(&cold.outcome),
            "{tag}: tampered snapshot changed the outcome"
        );
        assert_eq!(
            result.stats.warm_start_loads, 0,
            "{tag}: a tampered snapshot must not partially restore"
        );
        assert_eq!(
            result.stats.verification_cache_hits, 0,
            "{tag}: nothing may be served from a rejected snapshot"
        );
        assert_eq!(
            result.stats.iterations, cold.stats.iterations,
            "{tag}: the fallback run must be exactly the cold run"
        );
        // Every rejected-but-present snapshot is quarantined: moved aside
        // to `<fingerprint>.json.corrupt` (so the next process start does
        // not re-parse the same broken bytes) and reported in the stats.
        assert_eq!(
            result.stats.warm_start_quarantined, 1,
            "{tag}: a rejected snapshot must be reported as quarantined"
        );
        assert!(
            quarantine_path.is_file(),
            "{tag}: the broken snapshot must be preserved at {quarantine_path:?}"
        );
        assert!(
            !path.is_file(),
            "{tag}: the broken snapshot must be moved aside, not left in place"
        );
        assert_eq!(
            std::fs::read_to_string(&quarantine_path).unwrap(),
            **tampered,
            "{tag}: quarantine must preserve the defective bytes for diagnosis"
        );
    }

    // And the pristine snapshot still restores after all that — with
    // nothing quarantined on the clean path.
    std::fs::write(&path, &pristine).unwrap();
    let restored = warm_engine(&dir).run(&problem, &options);
    assert_eq!(outcome_key(&restored.outcome), outcome_key(&cold.outcome));
    assert!(restored.stats.warm_start_loads > 0);
    assert_eq!(restored.stats.warm_start_quarantined, 0);
    assert!(path.is_file(), "a valid snapshot stays in place");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn snapshots_accumulate_across_save_load_generations() {
    // Store round trips compose: solve problem A in process 1, problem B in
    // process 2 (which restores A's snapshot untouched), then run both in
    // process 3 — both warm.
    let dir = scratch_dir("generations");
    let options = test_options();
    let a = benchmarks::find("/other/cache").unwrap().problem().unwrap();
    let b = benchmarks::find("/other/rational")
        .unwrap()
        .problem()
        .unwrap();

    let p1 = warm_engine(&dir);
    let a_cold = p1.run(&a, &options);
    p1.save_state(&dir).unwrap();

    let p2 = warm_engine(&dir);
    let b_cold = p2.run(&b, &options);
    assert_eq!(p2.save_state(&dir).unwrap(), 1, "p2 only touched B");

    let p3 = warm_engine(&dir);
    let a_warm = p3.run(&a, &options);
    let b_warm = p3.run(&b, &options);
    assert_eq!(outcome_key(&a_warm.outcome), outcome_key(&a_cold.outcome));
    assert_eq!(outcome_key(&b_warm.outcome), outcome_key(&b_cold.outcome));
    assert!(a_warm.stats.warm_start_loads > 0, "{:?}", a_warm.stats);
    assert!(b_warm.stats.warm_start_loads > 0, "{:?}", b_warm.stats);
    let _ = std::fs::remove_dir_all(&dir);
}
