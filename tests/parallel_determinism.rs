//! Determinism of the parallel verifier and stability of the `Arc`-migrated
//! value layer.
//!
//! The verifier guarantees that parallel runs are *outcome-identical* to
//! serial runs: the reported counterexample is always the least tuple under
//! the enumeration order, regardless of which worker finds one first. These
//! tests pin that guarantee end to end — at the level of the three verifier
//! checks and of whole inference runs — on several benchmark modules, and
//! additionally pin that the `Rc` → `Arc` migration left `Value` equality
//! and hashing untouched (including across threads).

use std::collections::hash_map::DefaultHasher;
use std::collections::HashSet;
use std::hash::{Hash, Hasher};

use hanoi_repro::hanoi::{Engine, EngineConfig, Outcome, RunOptions};
use hanoi_repro::lang::parser::parse_expr;
use hanoi_repro::lang::value::Value;
use hanoi_repro::verifier::{Verifier, VerifierBounds};

const PARALLELISM_LEVELS: [usize; 3] = [2, 4, 8];

/// Benchmark modules used for the serial-vs-parallel comparison. These three
/// cover a spec with two quantifiers, a tree-based module and a
/// size-tracking module, and all complete quickly under quick bounds.
const MODULES: [&str; 3] = [
    "/other/cache",
    "/coq/unique-list-::-set",
    "/other/sized-list",
];

#[test]
fn whole_inference_runs_are_parallelism_independent() {
    for id in MODULES {
        let benchmark = hanoi_repro::benchmarks::find(id).unwrap();
        let problem = benchmark.problem().unwrap();
        let serial = Engine::with_defaults().run(&problem, &RunOptions::quick());
        for workers in PARALLELISM_LEVELS {
            let parallel = Engine::new(EngineConfig::default().with_parallelism(workers))
                .unwrap()
                .run(&problem, &RunOptions::quick());
            assert_eq!(
                parallel.outcome, serial.outcome,
                "{id}: outcome diverged at parallelism {workers}"
            );
            // The whole CEGIS trajectory must match, not just the final
            // answer: same iteration count and same final example sets.
            assert_eq!(
                parallel.stats.iterations, serial.stats.iterations,
                "{id}: iteration count diverged at parallelism {workers}"
            );
            assert_eq!(
                parallel.stats.final_positives, serial.stats.final_positives,
                "{id}: V+ size diverged at parallelism {workers}"
            );
            assert_eq!(
                parallel.stats.final_negatives, serial.stats.final_negatives,
                "{id}: V− size diverged at parallelism {workers}"
            );
        }
        // All three modules must actually complete, otherwise this test
        // compares nothing interesting.
        assert!(
            matches!(serial.outcome, Outcome::Invariant(_)),
            "{id}: expected an inferred invariant, got {:?}",
            serial.outcome
        );
    }
}

#[test]
fn verifier_checks_report_identical_counterexamples() {
    for id in MODULES {
        let benchmark = hanoi_repro::benchmarks::find(id).unwrap();
        let problem = benchmark.problem().unwrap();
        // A trivially-true candidate: not sufficient for any of these specs,
        // so sufficiency produces a counterexample whose identity we compare.
        let trivial =
            parse_expr(&format!("fun (x : {}) -> True", problem.concrete_type())).unwrap();
        let serial = Verifier::new(&problem)
            .with_bounds(VerifierBounds::quick())
            .with_parallelism(1);
        let suf_serial = serial.check_sufficiency(&trivial).unwrap();
        let full_serial = serial.check_full_inductiveness(&trivial).unwrap();
        let v_plus = serial.smallest_concrete_values(5);
        let vis_serial = serial
            .check_visible_inductiveness(&v_plus, &trivial)
            .unwrap();
        for workers in PARALLELISM_LEVELS {
            let parallel = Verifier::new(&problem)
                .with_bounds(VerifierBounds::quick())
                .with_parallelism(workers);
            assert_eq!(
                parallel.check_sufficiency(&trivial).unwrap(),
                suf_serial,
                "{id}: sufficiency diverged at parallelism {workers}"
            );
            assert_eq!(
                parallel.check_full_inductiveness(&trivial).unwrap(),
                full_serial,
                "{id}: full inductiveness diverged at parallelism {workers}"
            );
            assert_eq!(
                parallel
                    .check_visible_inductiveness(&v_plus, &trivial)
                    .unwrap(),
                vis_serial,
                "{id}: visible inductiveness diverged at parallelism {workers}"
            );
        }
    }
}

/// A small deterministic generator (splitmix64) for structured values.
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// A random first-order value: nats, nat lists, pairs and shallow
    /// constructor trees over them.
    fn value(&mut self, depth: usize) -> Value {
        match self.next() % if depth == 0 { 2 } else { 4 } {
            0 => Value::nat(self.next() % 6),
            1 => {
                let items: Vec<u64> = (0..self.next() % 4).map(|_| self.next() % 4).collect();
                Value::nat_list(&items)
            }
            2 => Value::pair(self.value(depth - 1), self.value(depth - 1)),
            _ => Value::Ctor(
                hanoi_repro::lang::Symbol::new("Node"),
                vec![self.value(depth - 1), self.value(depth - 1)].into(),
            ),
        }
    }
}

fn hash_of(value: &Value) -> u64 {
    let mut hasher = DefaultHasher::new();
    value.hash(&mut hasher);
    hasher.finish()
}

#[test]
fn value_equality_and_hashing_survive_the_arc_migration() {
    // Property: structurally identical values (built through independent
    // constructor calls, so no shared allocations beyond the interner)
    // compare equal and hash equal; distinct values compare unequal. This
    // pins the content-based semantics that predate the Arc migration.
    let mut gen = Gen(0xa5c_0001);
    for _ in 0..200 {
        let value = gen.value(3);
        let twin = {
            // Rebuild the value from its printed expression form, producing a
            // fresh allocation tree.
            let expr = value.to_expr().unwrap();
            let reparsed = parse_expr(&expr.to_string()).unwrap();
            fn expr_to_value(e: &hanoi_repro::lang::Expr) -> Value {
                match e {
                    hanoi_repro::lang::Expr::Ctor(c, args) => {
                        Value::Ctor(c.clone(), args.iter().map(expr_to_value).collect())
                    }
                    hanoi_repro::lang::Expr::Tuple(args) => {
                        Value::Tuple(args.iter().map(expr_to_value).collect())
                    }
                    other => panic!("unexpected expr {other:?}"),
                }
            }
            expr_to_value(&reparsed)
        };
        assert_eq!(
            value, twin,
            "structural equality must ignore allocation identity"
        );
        assert_eq!(
            hash_of(&value),
            hash_of(&twin),
            "equal values must hash equal"
        );

        let different = gen.value(3);
        if value != different {
            // Hash collisions are possible in principle but must not be
            // systematic; with this generator and DefaultHasher none occur.
            assert_ne!(
                hash_of(&value),
                hash_of(&different),
                "distinct values {value} and {different} collided"
            );
        }
    }
}

#[test]
fn value_hashing_is_stable_across_threads() {
    let mut gen = Gen(0xa5c_0002);
    let values: Vec<Value> = (0..50).map(|_| gen.value(3)).collect();
    let local_hashes: Vec<u64> = values.iter().map(hash_of).collect();

    // Hand the values to another thread (they are Send now) and also rebuild
    // them from scratch over there: both must hash identically.
    let moved = values.clone();
    let remote_hashes = std::thread::spawn(move || moved.iter().map(hash_of).collect::<Vec<u64>>())
        .join()
        .unwrap();
    assert_eq!(local_hashes, remote_hashes);

    let rebuilt_remotely: Vec<Value> = std::thread::spawn(|| {
        let mut gen = Gen(0xa5c_0002);
        (0..50).map(|_| gen.value(3)).collect()
    })
    .join()
    .unwrap();
    let mut set: HashSet<Value> = HashSet::new();
    set.extend(values.iter().cloned());
    for value in &rebuilt_remotely {
        assert!(
            set.contains(value),
            "cross-thread value {value} not found in local set"
        );
    }
}
