//! Soundness of the numeric/trace workload (the differential tier run by
//! the `trace-smoke` CI job, in test form):
//!
//! 1. **Sampling soundness** — every world the ground-truth trace generator
//!    emits satisfies its generating invariant, deterministically in the
//!    seed: the generator replays random interface-operation sequences, and
//!    the declared invariants are inductive, so reachability implies the
//!    invariant.  A violation inside `sample_worlds` is an error by
//!    construction; this test re-checks every world *independently* through
//!    `Problem::eval_predicate` so a sampler bug cannot vouch for itself.
//! 2. **Differential inference** — an invariant inferred with the
//!    linear-arithmetic grammar enabled must be *implied by* the ground
//!    truth on reachable states: every world of a held-out sample (a seed
//!    the inference never saw) must be accepted.  The engine proves its
//!    invariant sufficient & inductive, and the trace generator knows the
//!    reachable states — where they disagree, one of them is broken.

use hanoi_repro::benchmarks::trace::{
    ground_truth, ground_truths, sample_worlds, worlds_from_json, worlds_to_json, TraceConfig,
};
use hanoi_repro::benchmarks::{numeric_registry, Benchmark};
use hanoi_repro::hanoi::{Engine, Outcome, RunOptions};
use hanoi_repro::synth::arith::ArithBounds;

fn trace_config(seed: u64) -> TraceConfig {
    TraceConfig {
        seed,
        count: 32,
        steps: 10,
        int_range: 6,
    }
}

#[test]
fn every_sampled_world_satisfies_its_generating_invariant() {
    assert_eq!(
        ground_truths().len(),
        numeric_registry().len(),
        "every numeric benchmark needs a ground truth"
    );
    for benchmark in numeric_registry() {
        let problem = benchmark.problem().unwrap();
        let truth = ground_truth(benchmark.id).unwrap();
        let predicate = truth.predicate(&problem);
        problem
            .typecheck_invariant(&predicate)
            .unwrap_or_else(|e| panic!("{}: ground truth ill-typed: {e}", benchmark.id));
        for seed in [1u64, 7, 0xDEAD] {
            let worlds = sample_worlds(&problem, &truth, &trace_config(seed))
                .unwrap_or_else(|e| panic!("{} seed {seed}: {e}", benchmark.id));
            assert!(
                worlds.len() >= 4,
                "{} seed {seed}: only {} worlds sampled",
                benchmark.id,
                worlds.len()
            );
            for world in &worlds {
                assert!(
                    problem.eval_predicate(&predicate, world).unwrap(),
                    "{} seed {seed}: sampled world {world} violates the ground truth",
                    benchmark.id
                );
            }
            // Determinism: the same (seed, count, steps) names the same set.
            let again = sample_worlds(&problem, &truth, &trace_config(seed)).unwrap();
            assert_eq!(
                worlds, again,
                "{} seed {seed}: sampling is not a function of the seed",
                benchmark.id
            );
            // And the V+ emission round-trips losslessly.
            let json = worlds_to_json(benchmark.id, seed, &worlds);
            let parsed = hanoi_repro::lang::json::parse(&json.render()).unwrap();
            let (id, back_seed, back) = worlds_from_json(&parsed).unwrap();
            assert_eq!((id.as_str(), back_seed), (benchmark.id, seed));
            assert_eq!(back, worlds, "{}: V+ emission is lossy", benchmark.id);
        }
    }
}

#[test]
fn inferred_invariants_are_implied_by_ground_truth_on_held_out_samples() {
    let engine = Engine::with_defaults();
    let options = RunOptions::quick()
        .with_timeout(None)
        .with_numeric_grammar(&ArithBounds::default());
    let mut solved = Vec::new();
    for benchmark in numeric_registry() {
        let problem = benchmark.problem().unwrap();
        let truth = ground_truth(benchmark.id).unwrap();
        let result = engine.run(&problem, &options);
        let invariant = match &result.outcome {
            Outcome::Invariant(expr) => expr.clone(),
            other => panic!("{}: inference failed: {other:?}", benchmark.id),
        };
        assert!(
            result.stats.synth_arith_atoms > 0,
            "{}: the numeric grammar was not exercised ({:?})",
            benchmark.id,
            result.stats
        );
        problem
            .typecheck_invariant(&invariant)
            .unwrap_or_else(|e| panic!("{}: inferred invariant ill-typed: {e}", benchmark.id));

        // The held-out sample: a seed the CEGIS loop never observed.  Every
        // reachable world satisfies ground truth, and the engine's invariant
        // must hold on all reachable states (it is sufficient & inductive),
        // so it must accept each of them.
        let held_out = sample_worlds(&problem, &truth, &trace_config(0xC0FFEE)).unwrap();
        for world in &held_out {
            assert!(
                problem.eval_predicate(&invariant, world).unwrap(),
                "{}: inferred invariant {invariant} rejects reachable world {world}",
                benchmark.id
            );
        }
        solved.push(benchmark.id);
    }
    assert!(
        solved.len() >= 4,
        "the trace tier needs at least 4 end-to-end benchmarks, got {solved:?}"
    );
}

#[test]
fn unknown_benchmarks_have_no_ground_truth() {
    assert!(ground_truth("/coq/unique-list-::-set").is_none());
    assert!(ground_truth("/nonexistent").is_none());
    // Numeric benchmarks resolve through the shared `find` path used by the
    // server and the harness binaries.
    for Benchmark { id, .. } in numeric_registry() {
        assert!(
            hanoi_repro::benchmarks::find(id).is_some(),
            "{id} must be findable by id"
        );
    }
}
