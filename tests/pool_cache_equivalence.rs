//! Pool-cache correctness: cached pools are byte-identical to fresh
//! enumeration for every benchmark type, parallel slab construction is
//! deterministic, and enumeration happens at most once per verification
//! session.

use std::collections::HashSet;

use hanoi_repro::hanoi::{Engine, RunOptions};
use hanoi_repro::lang::parser::parse_expr;
use hanoi_repro::lang::Type;
use hanoi_repro::verifier::poolcache::PoolCache;
use hanoi_repro::verifier::pools::enumerate_values;
use hanoi_repro::verifier::{Verifier, VerifierBounds};

/// Every quantifier type a benchmark's verifier draws pools from: the
/// concrete representation type plus the (concretised) spec parameter types.
fn pool_types(problem: &hanoi_repro::abstraction::Problem) -> Vec<Type> {
    let mut seen = HashSet::new();
    let mut out = Vec::new();
    let mut push = |ty: Type| {
        if seen.insert(ty.clone()) {
            out.push(ty);
        }
    };
    push(problem.concrete_type().clone());
    for (_, param_ty) in &problem.spec.params {
        push(param_ty.subst_abstract(problem.concrete_type()));
    }
    out
}

#[test]
fn cached_pools_match_fresh_enumeration_for_every_benchmark_type() {
    for benchmark in hanoi_repro::benchmarks::registry() {
        let problem = benchmark
            .problem()
            .unwrap_or_else(|e| panic!("{}: {e}", benchmark.id));
        for workers in [1usize, 2, 0] {
            let cache = PoolCache::for_problem(&problem);
            for ty in pool_types(&problem) {
                for (count, size) in [(40, 7), (120, 9)] {
                    let cached = cache.pool(&ty, count, size, workers);
                    let fresh = enumerate_values(&problem, &ty, count, size);
                    assert_eq!(
                        *cached, fresh,
                        "{}: pool diverged for {ty} count={count} size={size} \
                         workers={workers}",
                        benchmark.id
                    );
                }
            }
        }
    }
}

#[test]
fn parallel_slab_construction_is_deterministic() {
    // Mirrors tests/parallel_determinism.rs at the enumeration layer: the
    // merged slab order must be byte-identical to a serial build for every
    // worker count, including paper-scale single-quantifier pools.
    let problem = hanoi_repro::benchmarks::find("/coq/unique-list-::-set")
        .unwrap()
        .problem()
        .unwrap();
    let serial = PoolCache::for_problem(&problem).pool(&Type::named("list"), 3000, 14, 1);
    for workers in [2usize, 3, 8, 0] {
        let parallel =
            PoolCache::for_problem(&problem).pool(&Type::named("list"), 3000, 14, workers);
        assert_eq!(*parallel, *serial, "workers={workers}");
        assert!(
            parallel.windows(2).all(|w| w[0].size() <= w[1].size()),
            "size order violated at workers={workers}"
        );
    }
}

#[test]
fn pool_enumeration_happens_at_most_once_per_session() {
    let problem = hanoi_repro::benchmarks::find("/coq/unique-list-::-set")
        .unwrap()
        .problem()
        .unwrap();
    let verifier = Verifier::new(&problem).with_bounds(VerifierBounds::quick());
    let no_dup = parse_expr(
        "fix inv (l : list) : bool = \
           match l with | Nil -> True | Cons (hd, tl) -> not (lookup tl hd) && inv tl end",
    )
    .unwrap();
    let trivial = parse_expr("fun (l : list) -> True").unwrap();

    let run_all_checks = |candidate| {
        assert!(verifier.check_sufficiency(candidate).is_ok());
        assert!(verifier.check_full_inductiveness(candidate).is_ok());
        let v_plus = verifier.smallest_concrete_values(5);
        assert!(verifier
            .check_visible_inductiveness(&v_plus, candidate)
            .is_ok());
    };

    run_all_checks(&no_dup);
    let after_first = verifier.pool_stats();
    assert!(after_first.builds > 0, "the first pass enumerates pools");

    // A second candidate re-runs every check: pools must be served entirely
    // from the cache — the build counters do not move at all.
    run_all_checks(&trivial);
    run_all_checks(&no_dup);
    let after_more = verifier.pool_stats();
    assert_eq!(
        after_more.builds, after_first.builds,
        "pool assembly must happen at most once per (type, count, size)"
    );
    assert_eq!(
        after_more.slab_builds, after_first.slab_builds,
        "slab enumeration must happen at most once per (type, size)"
    );
    assert!(
        after_more.hits > after_first.hits,
        "later checks are served from the cache"
    );
    assert!(
        after_more.predicate_evals > after_first.predicate_evals,
        "predicate evaluations keep being counted"
    );
}

#[test]
fn run_stats_surface_the_pool_and_eval_counters() {
    let problem = hanoi_repro::benchmarks::find("/coq/unique-list-::-set")
        .unwrap()
        .problem()
        .unwrap();
    let result = Engine::with_defaults().run(&problem, &RunOptions::quick());
    assert!(result.is_success(), "{:?}", result.outcome);
    let stats = &result.stats;
    assert!(stats.pool_builds > 0, "a run enumerates some pools");
    assert!(
        stats.pool_cache_hits > stats.pool_builds,
        "a CEGIS run makes many checks over few distinct pools: \
         hits={} builds={}",
        stats.pool_cache_hits,
        stats.pool_builds
    );
    assert!(
        stats.predicate_evals > 0,
        "candidate evaluations are counted"
    );
}
