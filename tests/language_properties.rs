//! Property-based integration tests over the language substrate: printing /
//! parsing round trips, enumeration invariants, and the soundness contract of
//! the synthesizer on randomly generated example sets.
//!
//! The build environment is offline, so instead of `proptest` the properties
//! are exercised over cases drawn from a deterministic splitmix-style
//! generator: same spirit (many random-ish structured inputs per property),
//! fully reproducible failures.

use hanoi_repro::abstraction::Problem;
use hanoi_repro::lang::enumerate::ValueEnumerator;
use hanoi_repro::lang::parser::{parse_expr, parse_program};
use hanoi_repro::lang::types::Type;
use hanoi_repro::lang::util::Deadline;
use hanoi_repro::lang::value::Value;
use hanoi_repro::synth::{ExampleSet, MythSynth, SynthError, Synthesizer};

const CASES: u64 = 64;

const LIST_SET: &str = r#"
    type nat = O | S of nat
    type list = Nil | Cons of nat * list
    interface SET = sig
      type t
      val empty : t
      val insert : t -> nat -> t
      val lookup : t -> nat -> bool
    end
    module ListSet : SET = struct
      type t = list
      let empty : t = Nil
      let rec lookup (l : t) (x : nat) : bool =
        match l with
        | Nil -> False
        | Cons (hd, tl) -> hd == x || lookup tl x
        end
      let insert (l : t) (x : nat) : t =
        if lookup l x then l else Cons (x, l)
    end
    spec (s : t) (i : nat) = lookup (insert s i) i
"#;

/// A small deterministic generator (splitmix64).
struct Gen(u64);

impl Gen {
    fn new(seed: u64) -> Gen {
        Gen(seed.wrapping_add(0x9e3779b97f4a7c15))
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// A value in `lo..hi`.
    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next() % (hi - lo)
    }

    /// A small nat list: length `0..5`, elements `0..5` — the same strategy
    /// the original proptest version used.
    fn nat_list(&mut self) -> Vec<u64> {
        let len = self.range(0, 5) as usize;
        (0..len).map(|_| self.range(0, 5)).collect()
    }
}

/// Values printed as expressions re-parse to the same expression.
#[test]
fn value_expression_round_trip() {
    let mut gen = Gen::new(0x5eed_0001);
    for _ in 0..CASES {
        let items = gen.nat_list();
        let value = Value::nat_list(&items);
        let expr = value.to_expr().unwrap();
        let printed = expr.to_string();
        let reparsed = parse_expr(&printed).unwrap();
        assert_eq!(expr, reparsed, "round trip failed for {items:?}");
    }
}

/// Structural equality of values agrees with equality of the vectors they
/// were built from.
#[test]
fn value_equality_is_structural() {
    let mut gen = Gen::new(0x5eed_0002);
    for _ in 0..CASES {
        let a = gen.nat_list();
        let b = gen.nat_list();
        assert_eq!(
            Value::nat_list(&a) == Value::nat_list(&b),
            a == b,
            "structural equality disagreed on {a:?} vs {b:?}"
        );
    }
}

/// The module operations preserve the no-duplicates representation
/// invariant (a semantic check of the benchmark itself, independent of
/// inference).
#[test]
fn list_set_insert_preserves_no_duplicates() {
    let problem = Problem::from_source(LIST_SET).unwrap();
    let mut gen = Gen::new(0x5eed_0003);
    for _ in 0..CASES {
        let items = gen.nat_list();
        let x = gen.range(0, 5);
        // Build a duplicate-free list by repeated insertion.
        let mut set_value = Value::nat_list(&[]);
        for item in &items {
            set_value = problem
                .eval_call("insert", &[set_value, Value::nat(*item)])
                .unwrap();
        }
        let result = problem
            .eval_call("insert", &[set_value, Value::nat(x)])
            .unwrap();
        let elements: Vec<u64> = result
            .as_list()
            .unwrap()
            .iter()
            .map(|v| v.as_nat().unwrap())
            .collect();
        let mut dedup = elements.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(
            dedup.len(),
            elements.len(),
            "insert produced duplicates: {elements:?}"
        );
    }
}

/// Any predicate the synthesizer returns is consistent with the examples
/// it was given (the `Synth` soundness contract of §3.3).
#[test]
fn synthesized_predicates_respect_their_examples() {
    let problem = Problem::from_source(LIST_SET).unwrap();
    let mut gen = Gen::new(0x5eed_0004);
    // Synthesis cases are slower; a quarter of the usual case count keeps the
    // test well under a second while still varying the example sets.
    for _ in 0..CASES / 4 {
        let pos: Vec<Vec<u64>> = (0..gen.range(1, 3)).map(|_| gen.nat_list()).collect();
        let neg_seed = gen.nat_list();
        // Negatives: the seed list with an element duplicated at the front
        // (guaranteed distinct from every positive after dedup below).
        let mut neg = neg_seed.clone();
        neg.insert(0, *neg_seed.first().unwrap_or(&0));

        let mut examples = ExampleSet::new();
        for p in &pos {
            let _ = examples.add_positive(Value::nat_list(p));
        }
        let negative = Value::nat_list(&neg);
        if examples.add_negative(negative).is_err() {
            continue; // analogue of prop_assume!: skip contradictory draws
        }
        let (examples, _) = examples.trace_completed(&problem.tyenv, problem.concrete_type());

        let mut synth = MythSynth::new();
        match synth.synthesize(&problem, &examples, &Deadline::none()) {
            Ok(candidate) => {
                for (value, expected) in examples.labeled() {
                    let actual = problem.eval_predicate(&candidate, &value).unwrap();
                    assert_eq!(
                        actual, expected,
                        "candidate {candidate} misclassifies {value}"
                    );
                }
            }
            Err(SynthError::NoCandidate) | Err(SynthError::Timeout) => {
                // Failing to find a candidate is allowed by the contract.
            }
            Err(other) => panic!("unexpected synthesis error: {other}"),
        }
    }
}

#[test]
fn enumeration_is_duplicate_free_and_size_ordered() {
    let problem = Problem::from_source(LIST_SET).unwrap();
    let mut enumerator = ValueEnumerator::new(&problem.tyenv);
    let values = enumerator.first_values(&Type::named("list"), 500, 30);
    assert_eq!(values.len(), 500);
    for window in values.windows(2) {
        assert!(window[0].size() <= window[1].size());
    }
    let mut seen = std::collections::HashSet::new();
    for v in &values {
        assert!(seen.insert(v.clone()), "duplicate enumerated value {v}");
        assert!(v.has_type(&problem.tyenv, &Type::named("list")));
    }
}

#[test]
fn the_std_prelude_composes_with_benchmark_programs() {
    let program = hanoi_repro::lang::prelude::std_prelude_program().unwrap();
    assert!(program.data_decls().count() >= 3);
    // The prelude plus a tiny module still elaborates into a problem.
    let source = hanoi_repro::lang::prelude::with_std_prelude(
        r#"
        interface BOX = sig
          type t
          val make : nat -> t
          val get : t -> nat
        end
        module NatBox : BOX = struct
          type t = nat
          let make (n : nat) : t = n
          let get (b : t) : nat = b
        end
        spec (b : t) = get b == get b
    "#,
    );
    let problem = Problem::from_source(&source).unwrap();
    assert_eq!(problem.concrete_type(), &Type::named("nat"));
    let parsed = parse_program(&source).unwrap();
    assert!(parsed.module().is_some());
}
