//! Property-based integration tests over the language substrate: printing /
//! parsing round trips, enumeration invariants, and the soundness contract of
//! the synthesizer on randomly generated example sets.

use proptest::prelude::*;

use hanoi_repro::abstraction::Problem;
use hanoi_repro::lang::enumerate::ValueEnumerator;
use hanoi_repro::lang::parser::{parse_expr, parse_program};
use hanoi_repro::lang::types::Type;
use hanoi_repro::lang::util::Deadline;
use hanoi_repro::lang::value::Value;
use hanoi_repro::synth::{ExampleSet, MythSynth, SynthError, Synthesizer};

const LIST_SET: &str = r#"
    type nat = O | S of nat
    type list = Nil | Cons of nat * list
    interface SET = sig
      type t
      val empty : t
      val insert : t -> nat -> t
      val lookup : t -> nat -> bool
    end
    module ListSet : SET = struct
      type t = list
      let empty : t = Nil
      let rec lookup (l : t) (x : nat) : bool =
        match l with
        | Nil -> False
        | Cons (hd, tl) -> hd == x || lookup tl x
        end
      let insert (l : t) (x : nat) : t =
        if lookup l x then l else Cons (x, l)
    end
    spec (s : t) (i : nat) = lookup (insert s i) i
"#;

/// A strategy for small nat lists.
fn nat_lists() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(0u64..5, 0..5)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Values printed as expressions re-parse to the same expression.
    #[test]
    fn value_expression_round_trip(items in nat_lists()) {
        let value = Value::nat_list(&items);
        let expr = value.to_expr().unwrap();
        let printed = expr.to_string();
        let reparsed = parse_expr(&printed).unwrap();
        prop_assert_eq!(expr, reparsed);
    }

    /// Structural equality of values agrees with equality of the vectors they
    /// were built from.
    #[test]
    fn value_equality_is_structural(a in nat_lists(), b in nat_lists()) {
        prop_assert_eq!(Value::nat_list(&a) == Value::nat_list(&b), a == b);
    }

    /// The module operations preserve the no-duplicates representation
    /// invariant (a semantic check of the benchmark itself, independent of
    /// inference).
    #[test]
    fn list_set_insert_preserves_no_duplicates(items in nat_lists(), x in 0u64..5) {
        let problem = Problem::from_source(LIST_SET).unwrap();
        // Build a duplicate-free list by repeated insertion.
        let mut set_value = Value::nat_list(&[]);
        for item in &items {
            set_value = problem.eval_call("insert", &[set_value, Value::nat(*item)]).unwrap();
        }
        let result = problem.eval_call("insert", &[set_value, Value::nat(x)]).unwrap();
        let elements: Vec<u64> =
            result.as_list().unwrap().iter().map(|v| v.as_nat().unwrap()).collect();
        let mut dedup = elements.clone();
        dedup.sort_unstable();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), elements.len(), "insert produced duplicates: {:?}", elements);
    }

    /// Any predicate the synthesizer returns is consistent with the examples
    /// it was given (the `Synth` soundness contract of §3.3).
    #[test]
    fn synthesized_predicates_respect_their_examples(
        pos in proptest::collection::vec(nat_lists(), 1..3),
        neg_seed in nat_lists(),
    ) {
        let problem = Problem::from_source(LIST_SET).unwrap();
        // Negatives: the seed list with an element duplicated at the front
        // (guaranteed distinct from every positive after dedup below).
        let mut neg = neg_seed.clone();
        neg.insert(0, *neg_seed.first().unwrap_or(&0));

        let mut examples = ExampleSet::new();
        let mut used = Vec::new();
        for p in &pos {
            let value = Value::nat_list(p);
            if examples.add_positive(value.clone()).is_ok() {
                used.push(p.clone());
            }
        }
        let negative = Value::nat_list(&neg);
        prop_assume!(examples.add_negative(negative).is_ok());
        let (examples, _) = examples.trace_completed(&problem.tyenv, problem.concrete_type());

        let mut synth = MythSynth::new();
        match synth.synthesize(&problem, &examples, &Deadline::none()) {
            Ok(candidate) => {
                for (value, expected) in examples.labeled() {
                    let actual = problem.eval_predicate(&candidate, &value).unwrap();
                    prop_assert_eq!(actual, expected, "candidate {} misclassifies {}", candidate, value);
                }
            }
            Err(SynthError::NoCandidate) | Err(SynthError::Timeout) => {
                // Failing to find a candidate is allowed by the contract.
            }
            Err(other) => prop_assert!(false, "unexpected synthesis error: {other}"),
        }
    }
}

#[test]
fn enumeration_is_duplicate_free_and_size_ordered() {
    let problem = Problem::from_source(LIST_SET).unwrap();
    let mut enumerator = ValueEnumerator::new(&problem.tyenv);
    let values = enumerator.first_values(&Type::named("list"), 500, 30);
    assert_eq!(values.len(), 500);
    for window in values.windows(2) {
        assert!(window[0].size() <= window[1].size());
    }
    let mut seen = std::collections::HashSet::new();
    for v in &values {
        assert!(seen.insert(v.clone()), "duplicate enumerated value {v}");
        assert!(v.has_type(&problem.tyenv, &Type::named("list")));
    }
}

#[test]
fn the_std_prelude_composes_with_benchmark_programs() {
    let program = hanoi_repro::lang::prelude::std_prelude_program().unwrap();
    assert!(program.data_decls().count() >= 3);
    // The prelude plus a tiny module still elaborates into a problem.
    let source = hanoi_repro::lang::prelude::with_std_prelude(
        r#"
        interface BOX = sig
          type t
          val make : nat -> t
          val get : t -> nat
        end
        module NatBox : BOX = struct
          type t = nat
          let make (n : nat) : t = n
          let get (b : t) : nat = b
        end
        spec (b : t) = get b == get b
    "#,
    );
    let problem = Problem::from_source(&source).unwrap();
    assert_eq!(problem.concrete_type(), &Type::named("nat"));
    let parsed = parse_program(&source).unwrap();
    assert!(parsed.module().is_some());
}
