//! Cooperative cancellation: a [`hanoi_repro::hanoi::CancelToken`] must stop
//! an inference run promptly — at every parallelism level — with
//! [`Outcome::Cancelled`] and without panicking, replacing the old
//! timeout-only interruption model.

use std::time::{Duration, Instant};

use hanoi_repro::benchmarks;
use hanoi_repro::hanoi::{CancelToken, Engine, EngineConfig, Outcome, RunOptions};
use hanoi_repro::verifier::VerifierBounds;

/// Options for a run that would take far longer than the cancellation delay:
/// the paper's full verifier bounds (3000/30 pools, 30000-tuple
/// multi-quantifier sweeps — tens of seconds per CEGIS iteration in debug
/// builds), no wall-clock timeout, a high iteration cap.
fn long_run_options() -> RunOptions {
    RunOptions::paper()
        .with_timeout(None)
        .with_max_iterations(100_000)
        .with_bounds(VerifierBounds::paper())
}

#[test]
fn cancellation_stops_a_running_inference_promptly_at_every_parallelism() {
    let problem = benchmarks::find("/coq/unique-list-::-set")
        .unwrap()
        .problem()
        .unwrap();
    for parallelism in [1usize, 2, 0] {
        let engine = Engine::new(EngineConfig::default().with_parallelism(parallelism)).unwrap();
        let session = engine.session(&problem);
        let token = CancelToken::new();

        let canceller = {
            let token = token.clone();
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(150));
                token.cancel();
            })
        };
        let started = Instant::now();
        let result = session.run_cancellable(&long_run_options(), token);
        let elapsed = started.elapsed();
        canceller.join().unwrap();

        assert_eq!(
            result.outcome,
            Outcome::Cancelled,
            "parallelism {parallelism}: expected cancellation, got {} after {elapsed:?}",
            result.outcome
        );
        // "Promptly": well under what the full run would take.  The bound is
        // generous because debug builds enumerate paper-scale pools between
        // cancellation points.
        assert!(
            elapsed < Duration::from_secs(30),
            "parallelism {parallelism}: cancellation took {elapsed:?}"
        );
        // Statistics are still well-formed after an aborted run.
        assert!(result.stats.total_time >= Duration::from_millis(150));
        assert_eq!(result.stats.invariant_size, None);
    }
}

#[test]
fn pre_cancelled_tokens_abort_before_any_work() {
    let problem = benchmarks::find("/coq/unique-list-::-set")
        .unwrap()
        .problem()
        .unwrap();
    for parallelism in [1usize, 2, 0] {
        let engine = Engine::new(EngineConfig::default().with_parallelism(parallelism)).unwrap();
        let token = CancelToken::new();
        token.cancel();
        let result = engine
            .session(&problem)
            .run_cancellable(&long_run_options(), token);
        assert_eq!(result.outcome, Outcome::Cancelled);
        assert_eq!(result.stats.synthesis_calls, 0);
        assert_eq!(result.stats.verification_calls, 0);
    }
}

#[test]
fn cancellation_does_not_poison_the_engine() {
    // After a cancelled run, the same session must still complete fresh runs
    // normally (the caches warmed by the aborted run stay usable).
    let problem = benchmarks::find("/other/cache").unwrap().problem().unwrap();
    let engine = Engine::with_defaults();
    let session = engine.session(&problem);

    let token = CancelToken::new();
    token.cancel();
    let cancelled = session.run_cancellable(&RunOptions::quick(), token);
    assert_eq!(cancelled.outcome, Outcome::Cancelled);

    let result = session.run(&RunOptions::quick());
    assert!(result.is_success(), "{}", result.outcome);
}
