//! Fleet-level store operations seen from the engine: merging two stores
//! yields the union of their warmth, GC under a byte budget never breaks a
//! manifest that a later restore needs, bidirectional sync transfers only
//! the difference, and `migrate` converts legacy monolithic snapshots into
//! chunked form without losing warmth.
//!
//! `tests/warm_start_equivalence.rs` pins that a *single* store round-trips
//! faithfully; this suite pins that the *administrative* operations
//! (`hanoi-store merge|gc|sync|migrate`, exposed on [`ChunkStore`]) keep
//! every surviving snapshot restorable.

use std::path::PathBuf;

use hanoi_repro::benchmarks;
use hanoi_repro::hanoi::{Engine, EngineConfig, Outcome, RunOptions};
use hanoi_repro::store::{migrate_legacy_dir, ChunkStore};
use hanoi_repro::synth::SearchConfig;
use hanoi_repro::verifier::VerifierBounds;

/// Deterministic options, mirroring `tests/warm_start_equivalence.rs`.
fn test_options() -> RunOptions {
    RunOptions::quick()
        .with_timeout(None)
        .with_max_iterations(5)
        .with_bounds(VerifierBounds {
            single_count: 250,
            single_size: 12,
            multi_count: 100,
            multi_size: 8,
            total_cap: 2_500,
            ..VerifierBounds::quick()
        })
        .with_search(SearchConfig {
            schedule: vec![(0, 4), (1, 5)],
            max_terms_per_layer: 300,
            fuel: 4_000,
            ..SearchConfig::quick()
        })
}

/// A label for outcome comparison that is total.
fn outcome_key(outcome: &Outcome) -> String {
    match outcome {
        Outcome::Invariant(inv) => format!("invariant: {inv}"),
        other => other.to_string(),
    }
}

/// A unique scratch directory (the offline build has no tempfile crate).
fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "hanoi-store-roundtrip-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn warm_engine(dir: &PathBuf) -> Engine {
    Engine::new(EngineConfig::default().with_warm_start_dir(dir)).unwrap()
}

/// Solve `id` cold and checkpoint its warmth (chunked) into `dir`; returns
/// the cold result for later comparison.
fn populate(dir: &PathBuf, id: &str) -> (hanoi_repro::lang::digest::Digest, String) {
    let problem = benchmarks::find(id).unwrap().problem().unwrap();
    let engine = warm_engine(dir);
    let result = engine.run(&problem, &test_options());
    assert!(engine.save_state(dir).unwrap() >= 1, "{id}: snapshot write");
    (problem.fingerprint(), outcome_key(&result.outcome))
}

/// Run `id` against `dir` and assert it restores fully warm with the
/// expected outcome and nothing quarantined.
fn assert_warm(dir: &PathBuf, id: &str, expected_outcome: &str) {
    let problem = benchmarks::find(id).unwrap().problem().unwrap();
    let result = warm_engine(dir).run(&problem, &test_options());
    assert_eq!(
        outcome_key(&result.outcome),
        expected_outcome,
        "{id}: restored outcome diverged"
    );
    assert!(
        result.stats.warm_start_loads > 0,
        "{id}: expected a warm restore from {dir:?} ({:?})",
        result.stats
    );
    assert_eq!(
        result.stats.warm_start_quarantined, 0,
        "{id}: a clean store quarantined something ({:?})",
        result.stats
    );
}

const A: &str = "/other/cache";
const B: &str = "/other/rational";

#[test]
fn merging_two_disjoint_stores_yields_the_union_of_warmth() {
    let dir_a = scratch_dir("merge-a");
    let dir_b = scratch_dir("merge-b");
    let (_, a_outcome) = populate(&dir_a, A);
    let (_, b_outcome) = populate(&dir_b, B);

    let store_a = ChunkStore::open(&dir_a).unwrap();
    let store_b = ChunkStore::open(&dir_b).unwrap();
    let report = store_a.merge_from(&store_b).unwrap();
    assert_eq!(report.manifests_copied, 1, "{report:?}");
    assert!(report.chunks_copied > 0, "{report:?}");
    assert_eq!(report.manifests_skipped, 0, "{report:?}");

    // The destination now carries both problems' warmth; the source is
    // untouched.
    assert_warm(&dir_a, A, &a_outcome);
    assert_warm(&dir_a, B, &b_outcome);
    assert_warm(&dir_b, B, &b_outcome);

    // Merging again is a no-op: every chunk and manifest already exists.
    let again = store_a.merge_from(&store_b).unwrap();
    assert_eq!(again.manifests_copied, 0, "{again:?}");
    assert_eq!(again.chunks_copied, 0, "{again:?}");

    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
}

#[test]
fn sync_transfers_only_the_difference_both_ways() {
    let dir_local = scratch_dir("sync-local");
    let dir_remote = scratch_dir("sync-remote");
    let (_, a_outcome) = populate(&dir_local, A);
    let (_, b_outcome) = populate(&dir_remote, B);

    let local = ChunkStore::open(&dir_local).unwrap();
    let remote = ChunkStore::open(&dir_remote).unwrap();
    let (pulled, pushed) = local.sync(&remote).unwrap();
    assert_eq!(pulled.manifests_copied, 1, "{pulled:?}");
    assert_eq!(pushed.manifests_copied, 1, "{pushed:?}");

    // Both sides now restore both problems.
    for dir in [&dir_local, &dir_remote] {
        assert_warm(dir, A, &a_outcome);
        assert_warm(dir, B, &b_outcome);
    }

    // A second sync finds nothing to move.
    let (pulled, pushed) = local.sync(&remote).unwrap();
    assert_eq!(pulled.manifests_copied + pushed.manifests_copied, 0);
    assert_eq!(pulled.chunks_copied + pushed.chunks_copied, 0);

    let _ = std::fs::remove_dir_all(&dir_local);
    let _ = std::fs::remove_dir_all(&dir_remote);
}

#[test]
fn gc_respects_the_budget_and_never_breaks_a_surviving_manifest() {
    let dir = scratch_dir("gc");
    let (a_fp, _) = populate(&dir, A);
    let (b_fp, b_outcome) = populate(&dir, B);

    let store = ChunkStore::open(&dir).unwrap();
    let before = store.stats();
    assert_eq!(before.manifests, 2);
    let budget = before.total_bytes() - 1;

    // Make B the most recently used so the LRU eviction targets A.
    store.touch(b_fp, 0);
    let report = store.gc(Some(budget)).unwrap();
    assert!(report.manifests_evicted >= 1, "{report:?}");
    assert!(report.bytes_remaining <= budget, "{report:?}");

    let after = store.stats();
    assert!(
        after.total_bytes() <= budget,
        "gc left {} bytes against a budget of {budget}",
        after.total_bytes()
    );
    assert!(store.manifest(a_fp).is_none(), "A was the LRU victim");
    assert!(store.manifest(b_fp).is_some(), "B must survive");

    // The survivor is *fully* restorable: every chunk its manifest names
    // is still present and intact.
    let verify = store.verify();
    assert_eq!(verify.manifests_broken, 0, "{verify:?}");
    assert_eq!(verify.chunks_quarantined, 0, "{verify:?}");
    assert_warm(&dir, B, &b_outcome);

    // A is simply cold again — no error, no quarantine.
    let a_problem = benchmarks::find(A).unwrap().problem().unwrap();
    let a_result = warm_engine(&dir).run(&a_problem, &test_options());
    assert_eq!(a_result.stats.warm_start_loads, 0);
    assert_eq!(a_result.stats.warm_start_quarantined, 0);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn migrate_converts_legacy_snapshots_without_losing_warmth() {
    let dir = scratch_dir("migrate");
    let problem = benchmarks::find(A).unwrap().problem().unwrap();
    let options = test_options();

    // A legacy process: monolithic snapshot at the store root.
    let engine = warm_engine(&dir);
    let cold = engine.run(&problem, &options);
    engine.save_state_monolithic(&dir).unwrap();
    let legacy_path = dir.join(format!("{}.json", problem.fingerprint().to_hex()));
    assert!(legacy_path.is_file());

    // Legacy snapshots restore as-is, no migration required...
    assert_warm(&dir, A, &outcome_key(&cold.outcome));

    // ...and migration lifts them into chunked form, removing the original.
    let report = migrate_legacy_dir(&dir).unwrap();
    assert_eq!(report.migrated, 1, "{report:?}");
    assert_eq!(report.failed, 0, "{report:?}");
    assert!(
        !legacy_path.is_file(),
        "migrate must consume the legacy file"
    );

    let store = ChunkStore::open(&dir).unwrap();
    assert!(store.manifest(problem.fingerprint()).is_some());
    assert_eq!(store.stats().legacy_snapshots, 0);
    assert_warm(&dir, A, &outcome_key(&cold.outcome));

    let _ = std::fs::remove_dir_all(&dir);
}
