//! Incremental synthesis correctness: an engine backed by a persistent
//! [`hanoi_repro::synth::TermBank`] must return *identical* predicates (and
//! enumerate identical term counts at parallelism 1) to a
//! rebuild-per-iteration engine, across every benchmark of the suite and a
//! CEGIS-like sequence of growing example sets — parallel guessing must be
//! outcome-identical to serial guessing, and the packed bitset signature
//! rows must be indistinguishable (outcomes, terms enumerated, eq-class
//! splits) from the per-cell id rows they replace.

use hanoi_repro::hanoi::{Engine as InferenceEngine, RunOptions};
use hanoi_repro::lang::enumerate::ValueEnumerator;
use hanoi_repro::lang::util::Deadline;
use hanoi_repro::lang::value::Value;
use hanoi_repro::synth::engine::Engine;
use hanoi_repro::synth::{ExampleSet, SearchConfig, TermBank};

/// A small search configuration: big enough to exercise every generation
/// rule (components, constructors, equality, connectives, match refinement,
/// recursion), small enough that even a failed search over 28 benchmarks
/// stays fast in debug builds.
fn test_config(parallelism: usize) -> SearchConfig {
    SearchConfig {
        schedule: vec![(0, 4), (1, 5)],
        max_terms_per_layer: 300,
        fuel: 4_000,
        allow_recursion: true,
        extra_components: Vec::new(),
        parallelism: Some(parallelism),
        use_bitset_rows: true,
        int_literals: Vec::new(),
    }
}

/// The numeric-family search: the base test configuration widened with the
/// bounded linear-arithmetic components and the integer literal pool, and a
/// schedule deep enough to apply binary atoms.
fn numeric_config(parallelism: usize) -> SearchConfig {
    let bounds = hanoi_repro::synth::arith::ArithBounds::default();
    SearchConfig {
        schedule: vec![(0, 5), (1, 7)],
        extra_components: hanoi_repro::synth::arith::components(&bounds),
        int_literals: hanoi_repro::synth::arith::literal_pool(&bounds),
        ..test_config(parallelism)
    }
}

/// The same search with the packed bitset rows disabled: every signature
/// stays a per-cell id row.  The two representations must be observably
/// identical.
fn id_row_config(parallelism: usize) -> SearchConfig {
    SearchConfig {
        use_bitset_rows: false,
        ..test_config(parallelism)
    }
}

/// A CEGIS-like example sequence for one benchmark: the smallest enumerable
/// values of the concrete type split into a fixed positive set and a stream
/// of negatives added one per iteration, each step trace-completed exactly
/// like the inference driver does.
fn example_sequence(problem: &hanoi_repro::abstraction::Problem) -> Vec<ExampleSet> {
    let concrete = problem.concrete_type().clone();
    let values = ValueEnumerator::new(&problem.tyenv).first_values(&concrete, 9, 7);
    if values.len() < 3 {
        return Vec::new();
    }
    let split = (values.len() * 2) / 3;
    let (positives, negatives) = values.split_at(split);
    let mut sequence = Vec::new();
    for step in 1..=negatives.len() {
        let examples =
            ExampleSet::from_sets(positives.iter().cloned(), negatives[..step].iter().cloned())
                .expect("enumerated values are distinct");
        let (closed, _) = examples.trace_completed(&problem.tyenv, &concrete);
        sequence.push(closed);
    }
    sequence
}

#[test]
fn persistent_bank_engines_match_fresh_engines_on_every_benchmark() {
    for benchmark in hanoi_repro::benchmarks::registry() {
        let problem = benchmark
            .problem()
            .unwrap_or_else(|e| panic!("{}: {e}", benchmark.id));
        let sequence = example_sequence(&problem);
        assert!(
            !sequence.is_empty(),
            "{}: no example sequence",
            benchmark.id
        );

        let serial_engine = Engine::new(&problem, test_config(1));
        let parallel_engines: Vec<(usize, Engine<'_>)> = [2usize, 0]
            .into_iter()
            .map(|p| (p, Engine::new(&problem, test_config(p))))
            .collect();
        let idrow_engines: Vec<(usize, Engine<'_>)> = [1usize, 2, 0]
            .into_iter()
            .map(|p| (p, Engine::new(&problem, id_row_config(p))))
            .collect();
        let bank = TermBank::new();
        let parallel_banks: Vec<TermBank> =
            parallel_engines.iter().map(|_| TermBank::new()).collect();
        let idrow_banks: Vec<TermBank> = idrow_engines.iter().map(|_| TermBank::new()).collect();

        for (iteration, examples) in sequence.iter().enumerate() {
            // Rebuild-per-iteration baseline: a throwaway bank per call.
            let fresh_bank = TermBank::new();
            let fresh =
                serial_engine.synthesize_with_bank(&fresh_bank, examples, &Deadline::none());

            // Persistent-bank run of the same iteration.
            let terms_before = bank.stats().terms_enumerated;
            let banked = serial_engine.synthesize_with_bank(&bank, examples, &Deadline::none());
            let banked_terms = bank.stats().terms_enumerated - terms_before;

            assert_eq!(
                banked, fresh,
                "{}: iteration {iteration} diverged between persistent and \
                 fresh banks",
                benchmark.id
            );
            assert_eq!(
                banked_terms,
                fresh_bank.stats().terms_enumerated,
                "{}: iteration {iteration} enumerated a different number of \
                 terms with a persistent bank",
                benchmark.id
            );

            // Parallel guessing (own persistent banks) must be
            // outcome-identical to the serial run.
            for ((parallelism, engine), pbank) in parallel_engines.iter().zip(&parallel_banks) {
                let parallel = engine.synthesize_with_bank(pbank, examples, &Deadline::none());
                assert_eq!(
                    parallel, banked,
                    "{}: iteration {iteration} diverged at parallelism \
                     {parallelism}",
                    benchmark.id
                );
            }

            // Per-cell id rows (own persistent banks) must match the packed
            // bitset rows — outcome *and* terms enumerated, at every
            // parallelism level.
            for ((parallelism, engine), ibank) in idrow_engines.iter().zip(&idrow_banks) {
                let iterms_before = ibank.stats().terms_enumerated;
                let idrow = engine.synthesize_with_bank(ibank, examples, &Deadline::none());
                assert_eq!(
                    idrow, banked,
                    "{}: iteration {iteration} diverged between bitset and \
                     id rows at parallelism {parallelism}",
                    benchmark.id
                );
                if *parallelism == 1 {
                    assert_eq!(
                        ibank.stats().terms_enumerated - iterms_before,
                        banked_terms,
                        "{}: iteration {iteration} enumerated a different \
                         number of terms with id rows",
                        benchmark.id
                    );
                }
            }
        }

        // The bitset and id-row representations must partition terms into
        // identical equivalence classes: same split counts over the whole
        // sequence.
        assert_eq!(
            bank.stats().eq_class_splits,
            idrow_banks[0].stats().eq_class_splits,
            "{}: bitset and id rows disagreed on eq-class splits",
            benchmark.id
        );

        // Later iterations of a growing example sequence must actually have
        // exercised the incremental machinery.
        let stats = bank.stats();
        assert_eq!(stats.sessions as usize, sequence.len(), "{}", benchmark.id);
        assert!(
            stats.column_appends > 0,
            "{}: new negatives must append signature columns",
            benchmark.id
        );
    }
}

#[test]
fn numeric_family_engines_agree_across_every_representation() {
    // The linear-arithmetic grammar must satisfy the same equivalence
    // matrix as the base grammar: persistent bank ≡ fresh bank (outcome and
    // term counts, including the arithmetic-atom counter), parallel ≡
    // serial, and bitset ≡ id rows — on every numeric benchmark.
    for benchmark in hanoi_repro::benchmarks::numeric_registry() {
        let problem = benchmark
            .problem()
            .unwrap_or_else(|e| panic!("{}: {e}", benchmark.id));
        let sequence = example_sequence(&problem);
        assert!(
            !sequence.is_empty(),
            "{}: no example sequence",
            benchmark.id
        );

        let serial_engine = Engine::new(&problem, numeric_config(1));
        let parallel_engines: Vec<(usize, Engine<'_>)> = [2usize, 0]
            .into_iter()
            .map(|p| (p, Engine::new(&problem, numeric_config(p))))
            .collect();
        let idrow_engine = Engine::new(
            &problem,
            SearchConfig {
                use_bitset_rows: false,
                ..numeric_config(1)
            },
        );
        let bank = TermBank::new();
        let parallel_banks: Vec<TermBank> =
            parallel_engines.iter().map(|_| TermBank::new()).collect();
        let idrow_bank = TermBank::new();

        for (iteration, examples) in sequence.iter().enumerate() {
            let fresh_bank = TermBank::new();
            let fresh =
                serial_engine.synthesize_with_bank(&fresh_bank, examples, &Deadline::none());

            let before = bank.stats();
            let banked = serial_engine.synthesize_with_bank(&bank, examples, &Deadline::none());
            let after = bank.stats();

            assert_eq!(
                banked, fresh,
                "{}: iteration {iteration} diverged between persistent and fresh banks",
                benchmark.id
            );
            let fresh_stats = fresh_bank.stats();
            assert_eq!(
                after.terms_enumerated - before.terms_enumerated,
                fresh_stats.terms_enumerated,
                "{}: iteration {iteration} term counts diverged",
                benchmark.id
            );
            assert_eq!(
                after.arith_atoms - before.arith_atoms,
                fresh_stats.arith_atoms,
                "{}: iteration {iteration} arith-atom counts diverged between \
                 persistent (memo-replayed) and fresh banks",
                benchmark.id
            );

            for ((parallelism, engine), pbank) in parallel_engines.iter().zip(&parallel_banks) {
                let parallel = engine.synthesize_with_bank(pbank, examples, &Deadline::none());
                assert_eq!(
                    parallel, banked,
                    "{}: iteration {iteration} diverged at parallelism {parallelism}",
                    benchmark.id
                );
            }

            let ibefore = idrow_bank.stats();
            let idrow = idrow_engine.synthesize_with_bank(&idrow_bank, examples, &Deadline::none());
            let iafter = idrow_bank.stats();
            assert_eq!(
                idrow, banked,
                "{}: iteration {iteration} diverged between bitset and id rows",
                benchmark.id
            );
            assert_eq!(
                iafter.terms_enumerated - ibefore.terms_enumerated,
                after.terms_enumerated - before.terms_enumerated,
                "{}: iteration {iteration} enumerated a different number of \
                 terms with id rows",
                benchmark.id
            );
            assert_eq!(
                iafter.arith_atoms - ibefore.arith_atoms,
                after.arith_atoms - before.arith_atoms,
                "{}: iteration {iteration} arith-atom counts depend on the row \
                 representation",
                benchmark.id
            );
        }

        // The numeric grammar must actually have been exercised: integer
        // literals and arithmetic components enumerate on every benchmark.
        assert!(
            bank.stats().arith_atoms > 0,
            "{}: no arithmetic atoms enumerated",
            benchmark.id
        );
        assert_eq!(
            bank.stats().eq_class_splits,
            idrow_bank.stats().eq_class_splits,
            "{}: bitset and id rows disagreed on eq-class splits",
            benchmark.id
        );
    }
}

#[test]
fn bank_reuse_across_iterations_serves_hits() {
    // On a benchmark with real function components the warm iterations must
    // be served largely from the bank.
    let problem = hanoi_repro::benchmarks::find("/coq/unique-list-::-set")
        .unwrap()
        .problem()
        .unwrap();
    let engine = Engine::new(&problem, test_config(1));
    let bank = TermBank::new();
    for examples in example_sequence(&problem) {
        let _ = engine.synthesize_with_bank(&bank, &examples, &Deadline::none());
    }
    let stats = bank.stats();
    assert!(stats.bank_misses > 0, "cold columns reach the interpreter");
    assert!(
        stats.bank_hits > stats.bank_misses,
        "warm iterations must be dominated by bank hits: hits={} misses={}",
        stats.bank_hits,
        stats.bank_misses
    );
}

#[test]
fn eq_class_splits_are_detected_when_a_column_distinguishes_terms() {
    // [0] and [1] are indistinguishable to size-1 terms until an example
    // involving their contents arrives; growing the example set must report
    // re-splits of previously merged equivalence classes.
    let problem = hanoi_repro::benchmarks::find("/coq/unique-list-::-set")
        .unwrap()
        .problem()
        .unwrap();
    let engine = Engine::new(&problem, test_config(1));
    let bank = TermBank::new();
    let first = ExampleSet::from_sets([Value::nat_list(&[])], [Value::nat_list(&[0, 0])]).unwrap();
    let (first, _) = first.trace_completed(&problem.tyenv, problem.concrete_type());
    let _ = engine.synthesize_with_bank(&bank, &first, &Deadline::none());

    let second = ExampleSet::from_sets(
        [
            Value::nat_list(&[]),
            Value::nat_list(&[1]),
            Value::nat_list(&[2, 1]),
        ],
        [
            Value::nat_list(&[0, 0]),
            Value::nat_list(&[1, 1]),
            Value::nat_list(&[2, 2]),
        ],
    )
    .unwrap();
    let (second, _) = second.trace_completed(&problem.tyenv, problem.concrete_type());
    let _ = engine.synthesize_with_bank(&bank, &second, &Deadline::none());

    let stats = bank.stats();
    assert!(stats.column_appends > 0);
    assert!(
        stats.eq_class_splits > 0,
        "new columns must re-split previously merged classes: {stats:?}"
    );
}

/// The packed signature matrix itself: packing, connectives, equality and
/// projection must behave cell-for-cell like the id rows they replace —
/// including error cells (`None`), mixed boolean/non-boolean rows, and
/// columns that straddle the 64-world word boundary.
mod sig_matrix_units {
    use hanoi_repro::synth::bank::{bool_id, Sig, SigMatrix, FALSE_ID, TRUE_ID};

    /// A deterministic mixed row over `width` worlds: errors every 7th
    /// world, true/false elsewhere by parity.
    fn bool_cells(width: usize, phase: usize) -> Vec<Option<u32>> {
        (0..width)
            .map(|w| {
                (!(w + phase).is_multiple_of(7)).then(|| bool_id((w + phase).is_multiple_of(2)))
            })
            .collect()
    }

    fn cells_of(sig: &Sig, width: usize) -> Vec<Option<u32>> {
        (0..width).map(|w| sig.cell(w)).collect()
    }

    #[test]
    fn boolean_rows_pack_and_read_back_across_word_boundaries() {
        for width in [1usize, 63, 64, 65, 70, 128, 130] {
            let matrix = SigMatrix::new(width, true);
            let cells = bool_cells(width, 0);
            let sig = matrix.pack(true, cells.clone());
            assert!(
                matches!(sig, Sig::Bits(_)),
                "width {width}: boolean rows must pack"
            );
            assert_eq!(cells_of(&sig, width), cells, "width {width}");
        }
    }

    #[test]
    fn non_boolean_and_mixed_rows_fall_back_to_id_rows() {
        let matrix = SigMatrix::new(66, true);
        // A non-boolean type never packs, even when its ids look boolean.
        let sig = matrix.pack(false, vec![Some(TRUE_ID); 66]);
        assert!(matches!(sig, Sig::Ids(_)));
        // A boolean-typed row with one non-boolean id (impossible in real
        // runs, the canonical guard) falls back too.
        let mut cells = bool_cells(66, 0);
        cells[65] = Some(17);
        let sig = matrix.pack(true, cells.clone());
        assert!(matches!(sig, Sig::Ids(_)));
        assert_eq!(cells_of(&sig, 66), cells);
        // With the matrix disabled nothing packs.
        let disabled = SigMatrix::new(66, false);
        let sig = disabled.pack(true, bool_cells(66, 0));
        assert!(matches!(sig, Sig::Ids(_)));
    }

    #[test]
    fn connectives_match_per_cell_semantics_with_error_cells() {
        for width in [5usize, 64, 65, 130] {
            let packed = SigMatrix::new(width, true);
            let plain = SigMatrix::new(width, false);
            let (a, b) = (bool_cells(width, 0), bool_cells(width, 3));
            let pa = packed.pack(true, a.clone());
            let pb = packed.pack(true, b.clone());
            let ia = plain.pack(true, a);
            let ib = plain.pack(true, b);
            for (bits, ids) in [
                (packed.not(&pa), plain.not(&ia)),
                (
                    packed.connective(&pa, &pb, true),
                    plain.connective(&ia, &ib, true),
                ),
                (
                    packed.connective(&pa, &pb, false),
                    plain.connective(&ia, &ib, false),
                ),
                (packed.equality(&pa, &pb), plain.equality(&ia, &ib)),
            ] {
                assert_eq!(
                    cells_of(&bits, width),
                    cells_of(&ids, width),
                    "width {width}: bitset and id connectives diverged"
                );
            }
            // An error operand poisons exactly its own world.
            let not_a = packed.not(&pa);
            for w in 0..width {
                assert_eq!(not_a.cell(w).is_none(), pa.cell(w).is_none(), "world {w}");
            }
        }
    }

    #[test]
    fn equality_of_id_rows_packs_boolean_results() {
        let matrix = SigMatrix::new(65, true);
        let a = matrix.pack(false, (0..65).map(|w| Some(w as u32 + 2)).collect());
        let b = matrix.pack(
            false,
            (0..65)
                .map(|w| Some(if w % 3 == 0 { w as u32 + 2 } else { 1_000_000 }))
                .collect(),
        );
        let eq = matrix.equality(&a, &b);
        assert!(
            matches!(eq, Sig::Bits(_)),
            "equality outcomes are boolean and must pack"
        );
        for w in 0..65 {
            assert_eq!(eq.cell(w), Some(bool_id(w % 3 == 0)), "world {w}");
        }
    }

    #[test]
    fn projections_are_canonical_across_representations() {
        // The same logical row must project to the same `OldSig` whether it
        // was packed or not — otherwise split counts would depend on the
        // representation.
        for width in [8usize, 64, 66, 129] {
            let packed = SigMatrix::new(width, true);
            let plain = SigMatrix::new(width, false);
            let mask: Vec<bool> = (0..width).map(|w| w % 3 != 1).collect();
            let cells = bool_cells(width, 1);
            let from_bits = {
                let sig = packed.pack(true, cells.clone());
                assert!(matches!(sig, Sig::Bits(_)));
                packed.project(&sig, &packed.mask_words(&mask), &mask)
            };
            let from_ids = {
                let sig = plain.pack(true, cells);
                assert!(matches!(sig, Sig::Ids(_)));
                // Project through the *enabled* matrix, as `Sieve::add` does
                // when a packable id row arrives.
                packed.project(&sig, &packed.mask_words(&mask), &mask)
            };
            assert_eq!(from_bits, from_ids, "width {width}");
        }
    }

    #[test]
    fn wide_int_id_rows_stay_dense_and_keep_the_validity_mask_exact() {
        // Int-typed rows are non-boolean: whatever their ids look like, they
        // must stay on the dense-id lane even with packing enabled, and
        // their error cells must survive round trips and equality exactly —
        // in particular in the tail words past the first 64 worlds.
        for width in [65usize, 128, 130, 192] {
            let matrix = SigMatrix::new(width, true);
            // Errors every 9th world; distinct ids elsewhere (simulating
            // interned Int values).
            let cells: Vec<Option<u32>> = (0..width)
                .map(|w| (w % 9 != 5).then(|| w as u32 + 10))
                .collect();
            let sig = matrix.pack(false, cells.clone());
            assert!(
                matches!(sig, Sig::Ids(_)),
                "width {width}: int rows must not pack"
            );
            assert_eq!(cells_of(&sig, width), cells, "width {width}");

            // Equality against a fully-valid row: the result is boolean (so
            // it packs), and its validity mask must equal the int row's —
            // no world, least of all one past a word boundary, may flip
            // from error to valid or back.
            let other = matrix.pack(false, (0..width).map(|w| Some(w as u32 + 10)).collect());
            let eq = matrix.equality(&sig, &other);
            assert!(
                matches!(eq, Sig::Bits(_)),
                "width {width}: equality of int rows is boolean and packs"
            );
            for (w, cell) in cells.iter().enumerate() {
                match cell {
                    None => assert_eq!(eq.cell(w), None, "width {width} world {w}"),
                    Some(_) => assert_eq!(
                        eq.cell(w),
                        Some(TRUE_ID),
                        "width {width} world {w}: equal ids must compare true"
                    ),
                }
            }

            // Projection through a mask keeps the dense representation and
            // the per-world validity, including boundary worlds 63..66.
            let mask: Vec<bool> = (0..width).map(|w| w % 4 != 2).collect();
            let projected = matrix.project(&sig, &matrix.mask_words(&mask), &mask);
            let reference = {
                let plain = SigMatrix::new(width, false);
                let sig = plain.pack(false, cells.clone());
                matrix.project(&sig, &matrix.mask_words(&mask), &mask)
            };
            assert_eq!(
                projected, reference,
                "width {width}: projection is canonical"
            );
        }
    }

    #[test]
    fn matches_compares_whole_rows() {
        let matrix = SigMatrix::new(70, true);
        let target = matrix.pack(true, vec![Some(TRUE_ID); 70]);
        let mut almost = vec![Some(TRUE_ID); 70];
        almost[69] = Some(FALSE_ID);
        assert!(matrix.matches(&target, &matrix.pack(true, vec![Some(TRUE_ID); 70])));
        assert!(!matrix.matches(&matrix.pack(true, almost), &target));
        assert!(matrix.ops() > 0, "bitset comparisons are counted");
    }
}

#[test]
fn word_boundary_example_sets_agree_across_representations() {
    // More than 64 example worlds forces multi-word bitset lanes; the
    // packed and per-cell engines must still agree exactly.
    let problem = hanoi_repro::benchmarks::find("/coq/unique-list-::-set")
        .unwrap()
        .problem()
        .unwrap();
    let concrete = problem.concrete_type().clone();
    let values = ValueEnumerator::new(&problem.tyenv).first_values(&concrete, 90, 12);
    assert!(
        values.len() >= 80,
        "need enough worlds, got {}",
        values.len()
    );
    let (positives, negatives) = values.split_at(40);
    let examples = ExampleSet::from_sets(positives.iter().cloned(), negatives.iter().cloned())
        .expect("enumerated values are distinct");
    let (examples, _) = examples.trace_completed(&problem.tyenv, &concrete);
    assert!(
        examples.len() > 64,
        "the closed example set must straddle the word boundary, got {}",
        examples.len()
    );

    let bitset_engine = Engine::new(&problem, test_config(1));
    let idrow_engine = Engine::new(&problem, id_row_config(1));
    let bitset_bank = TermBank::new();
    let idrow_bank = TermBank::new();
    let packed = bitset_engine.synthesize_with_bank(&bitset_bank, &examples, &Deadline::none());
    let plain = idrow_engine.synthesize_with_bank(&idrow_bank, &examples, &Deadline::none());
    assert_eq!(packed, plain);
    let (b, i) = (bitset_bank.stats(), idrow_bank.stats());
    assert_eq!(b.terms_enumerated, i.terms_enumerated);
    assert_eq!(b.eq_class_splits, i.eq_class_splits);
    assert!(b.bitset_row_ops > 0, "the packed path must be exercised");
    assert_eq!(i.bitset_row_ops, 0, "the id-row path must not pack");
}

#[test]
fn run_stats_surface_the_synthesis_counters() {
    let problem = hanoi_repro::benchmarks::find("/coq/unique-list-::-set")
        .unwrap()
        .problem()
        .unwrap();
    let result = InferenceEngine::with_defaults().run(&problem, &RunOptions::quick());
    assert!(result.is_success(), "{:?}", result.outcome);
    let stats = &result.stats;
    assert!(stats.synth_terms_enumerated > 0, "terms are counted");
    assert!(
        stats.synth_column_appends > 0,
        "counterexamples append signature columns: {stats:?}"
    );
    assert!(
        stats.synth_bank_hits > 0,
        "later iterations reuse banked evaluations: {stats:?}"
    );
}
