//! Incremental synthesis correctness: an engine backed by a persistent
//! [`hanoi_repro::synth::TermBank`] must return *identical* predicates (and
//! enumerate identical term counts at parallelism 1) to a
//! rebuild-per-iteration engine, across every benchmark of the suite and a
//! CEGIS-like sequence of growing example sets — and parallel guessing must
//! be outcome-identical to serial guessing.

use hanoi_repro::hanoi::{Engine as InferenceEngine, RunOptions};
use hanoi_repro::lang::enumerate::ValueEnumerator;
use hanoi_repro::lang::util::Deadline;
use hanoi_repro::lang::value::Value;
use hanoi_repro::synth::engine::Engine;
use hanoi_repro::synth::{ExampleSet, SearchConfig, TermBank};

/// A small search configuration: big enough to exercise every generation
/// rule (components, constructors, equality, connectives, match refinement,
/// recursion), small enough that even a failed search over 28 benchmarks
/// stays fast in debug builds.
fn test_config(parallelism: usize) -> SearchConfig {
    SearchConfig {
        schedule: vec![(0, 4), (1, 5)],
        max_terms_per_layer: 300,
        fuel: 4_000,
        allow_recursion: true,
        extra_components: Vec::new(),
        parallelism: Some(parallelism),
    }
}

/// A CEGIS-like example sequence for one benchmark: the smallest enumerable
/// values of the concrete type split into a fixed positive set and a stream
/// of negatives added one per iteration, each step trace-completed exactly
/// like the inference driver does.
fn example_sequence(problem: &hanoi_repro::abstraction::Problem) -> Vec<ExampleSet> {
    let concrete = problem.concrete_type().clone();
    let values = ValueEnumerator::new(&problem.tyenv).first_values(&concrete, 9, 7);
    if values.len() < 3 {
        return Vec::new();
    }
    let split = (values.len() * 2) / 3;
    let (positives, negatives) = values.split_at(split);
    let mut sequence = Vec::new();
    for step in 1..=negatives.len() {
        let examples =
            ExampleSet::from_sets(positives.iter().cloned(), negatives[..step].iter().cloned())
                .expect("enumerated values are distinct");
        let (closed, _) = examples.trace_completed(&problem.tyenv, &concrete);
        sequence.push(closed);
    }
    sequence
}

#[test]
fn persistent_bank_engines_match_fresh_engines_on_every_benchmark() {
    for benchmark in hanoi_repro::benchmarks::registry() {
        let problem = benchmark
            .problem()
            .unwrap_or_else(|e| panic!("{}: {e}", benchmark.id));
        let sequence = example_sequence(&problem);
        assert!(
            !sequence.is_empty(),
            "{}: no example sequence",
            benchmark.id
        );

        let serial_engine = Engine::new(&problem, test_config(1));
        let parallel_engines: Vec<(usize, Engine<'_>)> = [2usize, 0]
            .into_iter()
            .map(|p| (p, Engine::new(&problem, test_config(p))))
            .collect();
        let bank = TermBank::new();
        let parallel_banks: Vec<TermBank> =
            parallel_engines.iter().map(|_| TermBank::new()).collect();

        for (iteration, examples) in sequence.iter().enumerate() {
            // Rebuild-per-iteration baseline: a throwaway bank per call.
            let fresh_bank = TermBank::new();
            let fresh =
                serial_engine.synthesize_with_bank(&fresh_bank, examples, &Deadline::none());

            // Persistent-bank run of the same iteration.
            let terms_before = bank.stats().terms_enumerated;
            let banked = serial_engine.synthesize_with_bank(&bank, examples, &Deadline::none());
            let banked_terms = bank.stats().terms_enumerated - terms_before;

            assert_eq!(
                banked, fresh,
                "{}: iteration {iteration} diverged between persistent and \
                 fresh banks",
                benchmark.id
            );
            assert_eq!(
                banked_terms,
                fresh_bank.stats().terms_enumerated,
                "{}: iteration {iteration} enumerated a different number of \
                 terms with a persistent bank",
                benchmark.id
            );

            // Parallel guessing (own persistent banks) must be
            // outcome-identical to the serial run.
            for ((parallelism, engine), pbank) in parallel_engines.iter().zip(&parallel_banks) {
                let parallel = engine.synthesize_with_bank(pbank, examples, &Deadline::none());
                assert_eq!(
                    parallel, banked,
                    "{}: iteration {iteration} diverged at parallelism \
                     {parallelism}",
                    benchmark.id
                );
            }
        }

        // Later iterations of a growing example sequence must actually have
        // exercised the incremental machinery.
        let stats = bank.stats();
        assert_eq!(stats.sessions as usize, sequence.len(), "{}", benchmark.id);
        assert!(
            stats.column_appends > 0,
            "{}: new negatives must append signature columns",
            benchmark.id
        );
    }
}

#[test]
fn bank_reuse_across_iterations_serves_hits() {
    // On a benchmark with real function components the warm iterations must
    // be served largely from the bank.
    let problem = hanoi_repro::benchmarks::find("/coq/unique-list-::-set")
        .unwrap()
        .problem()
        .unwrap();
    let engine = Engine::new(&problem, test_config(1));
    let bank = TermBank::new();
    for examples in example_sequence(&problem) {
        let _ = engine.synthesize_with_bank(&bank, &examples, &Deadline::none());
    }
    let stats = bank.stats();
    assert!(stats.bank_misses > 0, "cold columns reach the interpreter");
    assert!(
        stats.bank_hits > stats.bank_misses,
        "warm iterations must be dominated by bank hits: hits={} misses={}",
        stats.bank_hits,
        stats.bank_misses
    );
}

#[test]
fn eq_class_splits_are_detected_when_a_column_distinguishes_terms() {
    // [0] and [1] are indistinguishable to size-1 terms until an example
    // involving their contents arrives; growing the example set must report
    // re-splits of previously merged equivalence classes.
    let problem = hanoi_repro::benchmarks::find("/coq/unique-list-::-set")
        .unwrap()
        .problem()
        .unwrap();
    let engine = Engine::new(&problem, test_config(1));
    let bank = TermBank::new();
    let first = ExampleSet::from_sets([Value::nat_list(&[])], [Value::nat_list(&[0, 0])]).unwrap();
    let (first, _) = first.trace_completed(&problem.tyenv, problem.concrete_type());
    let _ = engine.synthesize_with_bank(&bank, &first, &Deadline::none());

    let second = ExampleSet::from_sets(
        [
            Value::nat_list(&[]),
            Value::nat_list(&[1]),
            Value::nat_list(&[2, 1]),
        ],
        [
            Value::nat_list(&[0, 0]),
            Value::nat_list(&[1, 1]),
            Value::nat_list(&[2, 2]),
        ],
    )
    .unwrap();
    let (second, _) = second.trace_completed(&problem.tyenv, problem.concrete_type());
    let _ = engine.synthesize_with_bank(&bank, &second, &Deadline::none());

    let stats = bank.stats();
    assert!(stats.column_appends > 0);
    assert!(
        stats.eq_class_splits > 0,
        "new columns must re-split previously merged classes: {stats:?}"
    );
}

#[test]
fn run_stats_surface_the_synthesis_counters() {
    let problem = hanoi_repro::benchmarks::find("/coq/unique-list-::-set")
        .unwrap()
        .problem()
        .unwrap();
    let result = InferenceEngine::with_defaults().run(&problem, &RunOptions::quick());
    assert!(result.is_success(), "{:?}", result.outcome);
    let stats = &result.stats;
    assert!(stats.synth_terms_enumerated > 0, "terms are counted");
    assert!(
        stats.synth_column_appends > 0,
        "counterexamples append signature columns: {stats:?}"
    );
    assert!(
        stats.synth_bank_hits > 0,
        "later iterations reuse banked evaluations: {stats:?}"
    );
}
