//! Cross-crate integration tests: run the full inference pipeline on fast
//! benchmarks from the suite and validate the inferred invariants against
//! ground truth (the constructibility oracle and the specification).

use hanoi_repro::abstraction::constructible::ConstructibleBounds;
use hanoi_repro::abstraction::ConstructibleOracle;
use hanoi_repro::benchmarks;
use hanoi_repro::hanoi::{Engine, Outcome, RunOptions};
use hanoi_repro::lang::eval::Fuel;
use hanoi_repro::lang::value::Value;
use hanoi_repro::verifier::{Verifier, VerifierBounds};

/// Runs full Hanoi inference on one benchmark with quick bounds.
fn infer(
    id: &str,
) -> (
    hanoi_repro::abstraction::Problem,
    hanoi_repro::hanoi::RunResult,
) {
    let benchmark = benchmarks::find(id).unwrap_or_else(|| panic!("unknown benchmark {id}"));
    let problem = benchmark.problem().expect("benchmark elaborates");
    let result = Engine::with_defaults().run(&problem, &RunOptions::quick());
    (problem, result)
}

/// The invariant must accept every constructible value (up to the oracle's
/// bounds) and must imply the specification on every enumerated value — the
/// two inclusions of Figure 2.
fn validate_invariant(
    problem: &hanoi_repro::abstraction::Problem,
    invariant: &hanoi_repro::lang::ast::Expr,
) {
    problem
        .typecheck_invariant(invariant)
        .expect("invariant typechecks");

    let oracle = ConstructibleOracle::compute(problem, ConstructibleBounds::default());
    assert!(
        !oracle.values().is_empty(),
        "the oracle found no constructible values"
    );
    for value in oracle.values() {
        assert!(
            problem.eval_predicate(invariant, value).unwrap_or(false),
            "invariant {invariant} rejects constructible value {value}"
        );
    }

    let verifier = Verifier::new(problem).with_bounds(VerifierBounds::quick());
    assert!(
        verifier.check_sufficiency(invariant).unwrap().is_valid(),
        "invariant {invariant} is not sufficient"
    );
    assert!(
        verifier
            .check_full_inductiveness(invariant)
            .unwrap()
            .is_valid(),
        "invariant {invariant} is not inductive"
    );
}

#[test]
fn unique_list_set_infers_a_no_duplicates_style_invariant() {
    let (problem, result) = infer("/coq/unique-list-::-set");
    let invariant = result
        .outcome
        .invariant()
        .expect("an invariant is inferred")
        .clone();
    validate_invariant(&problem, &invariant);
    // The spirit of the paper's I⋆: duplicate lists are rejected.
    assert!(!problem
        .eval_predicate(&invariant, &Value::nat_list(&[4, 4]))
        .unwrap());
    assert!(problem
        .eval_predicate(&invariant, &Value::nat_list(&[5, 3, 1]))
        .unwrap());
}

#[test]
fn maxfirst_heap_infers_a_head_is_max_style_invariant() {
    let (problem, result) = infer("/coq/maxfirst-list-::-heap");
    let invariant = result
        .outcome
        .invariant()
        .expect("an invariant is inferred")
        .clone();
    validate_invariant(&problem, &invariant);
    assert!(problem
        .eval_predicate(&invariant, &Value::nat_list(&[9, 2, 5]))
        .unwrap());
    assert!(!problem
        .eval_predicate(&invariant, &Value::nat_list(&[1, 5]))
        .unwrap());
}

#[test]
fn cache_and_rational_and_sized_list_complete() {
    for id in ["/other/cache", "/other/rational", "/other/sized-list"] {
        let (problem, result) = infer(id);
        let invariant = result
            .outcome
            .invariant()
            .unwrap_or_else(|| panic!("{id} did not produce an invariant: {}", result.outcome))
            .clone();
        validate_invariant(&problem, &invariant);
        assert!(
            result.stats.verification_calls > 0,
            "{id} made no verification calls"
        );
    }
}

#[test]
fn table_benchmarks_admit_the_trivial_invariant() {
    // The VFA tables need no non-trivial invariant (the paper reports size-4
    // invariants); inference should finish fast and the result must accept
    // every enumerated value.
    for id in ["/vfa/assoc-list-::-table", "/vfa/bst-::-table"] {
        let (problem, result) = infer(id);
        let invariant = result
            .outcome
            .invariant()
            .unwrap_or_else(|| panic!("{id} did not produce an invariant: {}", result.outcome))
            .clone();
        validate_invariant(&problem, &invariant);
        // Trivial-ish: small.
        assert!(
            result.stats.invariant_size.unwrap() <= 10,
            "{id} produced a large invariant"
        );
    }
}

#[test]
fn sized_list_invariant_ties_the_cached_length_to_the_list() {
    let (problem, result) = infer("/other/sized-list");
    let invariant = result
        .outcome
        .invariant()
        .expect("an invariant is inferred")
        .clone();
    // MkSized (2, [7; 3]) is fine; MkSized (1, [7; 3]) is not.
    let good = Value::Ctor(
        "MkSized".into(),
        vec![Value::nat(2), Value::nat_list(&[7, 3])].into(),
    );
    let bad = Value::Ctor(
        "MkSized".into(),
        vec![Value::nat(1), Value::nat_list(&[7, 3])].into(),
    );
    assert!(problem.eval_predicate(&invariant, &good).unwrap());
    assert!(!problem.eval_predicate(&invariant, &bad).unwrap());
}

#[test]
fn spec_violations_are_detected_end_to_end() {
    // Sanity check across crates: a module that genuinely violates its spec
    // is reported as such, not as an invariant.
    let source = benchmarks::find("/coq/unique-list-::-set")
        .unwrap()
        .source
        .replace("if lookup l x then l else Cons (x, l)", "Cons (x, l)");
    let problem = hanoi_repro::abstraction::Problem::from_source(&source).unwrap();
    let result = Engine::with_defaults().run(&problem, &RunOptions::quick());
    match result.outcome {
        Outcome::SpecViolation(witnesses) => {
            // The witnesses really do violate the spec for some index.
            assert!(!witnesses.is_empty());
            let witness = &witnesses[0];
            let mut violated = false;
            for i in 0..5u64 {
                let holds = problem
                    .eval_spec_with_fuel(&[witness.clone(), Value::nat(i)], &mut Fuel::standard())
                    .unwrap_or(false);
                if !holds {
                    violated = true;
                    break;
                }
            }
            assert!(
                violated,
                "reported witness {witness} does not violate the spec"
            );
        }
        other => panic!("expected a spec violation, got {other}"),
    }
}
