//! Slot-resolution equivalence: the interpreter's indexed fast path (slot
//! resolution + `Locals` stack) is observationally identical to the
//! historical linked-list environment path — same values, same errors, and
//! the same fuel consumption, pinned over the tier-1 example modules and at
//! every layer (expression evaluation, module operations, specifications,
//! whole inference runs).

use hanoi_repro::abstraction::Problem;
use hanoi_repro::hanoi::{Engine, EngineConfig, RunOptions};
use hanoi_repro::lang::enumerate::ValueEnumerator;
use hanoi_repro::lang::eval::Fuel;
use hanoi_repro::lang::parser::parse_expr;
use hanoi_repro::lang::resolve::resolve;
use hanoi_repro::lang::value::Value;

/// The tier-1 example modules: one spec with two quantifiers, a tree-based
/// module and a size-tracking module — the same trio the parallel
/// determinism suite pins.
const MODULES: [&str; 3] = [
    "/coq/unique-list-::-set",
    "/other/cache",
    "/other/sized-list",
];

/// Builds the same benchmark twice: once on the resolved fast path (the
/// default) and once with name-based environment lookups only.
fn both_paths(id: &str) -> (Problem, Problem) {
    let source = hanoi_repro::benchmarks::find(id).unwrap().source;
    let resolved = Problem::from_source(&source).unwrap();
    let by_name = Problem::from_source_with(&source, false).unwrap();
    (resolved, by_name)
}

/// Small sample values for every spec parameter of a problem.
fn spec_sample_tuples(problem: &Problem) -> Vec<Vec<Value>> {
    let mut pools: Vec<Vec<Value>> = Vec::new();
    for (_, ty) in &problem.spec.params {
        let concrete = ty.subst_abstract(problem.concrete_type());
        let mut enumerator = ValueEnumerator::new(&problem.tyenv);
        pools.push(enumerator.first_values(&concrete, 12, 8));
    }
    // Full cartesian product of the small pools, capped.
    let mut tuples = vec![Vec::new()];
    for pool in &pools {
        let mut next = Vec::new();
        for prefix in &tuples {
            for value in pool {
                let mut tuple = prefix.clone();
                tuple.push(value.clone());
                next.push(tuple);
            }
        }
        tuples = next;
        tuples.truncate(200);
    }
    tuples
}

#[test]
fn specs_agree_on_values_and_fuel_across_both_paths() {
    for id in MODULES {
        let (resolved, by_name) = both_paths(id);
        for tuple in spec_sample_tuples(&resolved) {
            let mut fuel_resolved = Fuel::new(200_000);
            let mut fuel_by_name = Fuel::new(200_000);
            let fast = resolved.eval_spec_with_fuel(&tuple, &mut fuel_resolved);
            let slow = by_name.eval_spec_with_fuel(&tuple, &mut fuel_by_name);
            assert_eq!(fast, slow, "{id}: spec diverged on {tuple:?}");
            assert_eq!(
                fuel_resolved.used(),
                fuel_by_name.used(),
                "{id}: fuel consumption diverged on {tuple:?}"
            );
        }
    }
}

#[test]
fn module_operations_agree_on_values_and_fuel_across_both_paths() {
    for id in MODULES {
        let (resolved, by_name) = both_paths(id);
        let mut enumerator = ValueEnumerator::new(&resolved.tyenv);
        let mut checked = 0usize;
        for op in resolved.inductive_ops() {
            let (arg_sigs, _) = op.sig.uncurry();
            // Instantiate every argument with the smallest value of its
            // (concretised) type, plus a couple of slightly larger ones for
            // the first argument.
            let arg_pools: Vec<Vec<Value>> = arg_sigs
                .iter()
                .enumerate()
                .map(|(i, sig)| {
                    let concrete = sig.subst_abstract(resolved.concrete_type());
                    enumerator.first_values(&concrete, if i == 0 { 8 } else { 2 }, 8)
                })
                .collect();
            if arg_pools.iter().any(|p| p.is_empty()) {
                continue; // higher-order positions have no enumerable values
            }
            let mut tuples = vec![Vec::new()];
            for pool in &arg_pools {
                let mut next = Vec::new();
                for prefix in &tuples {
                    for value in pool {
                        let mut tuple = prefix.clone();
                        tuple.push(value.clone());
                        next.push(tuple);
                    }
                }
                tuples = next;
                tuples.truncate(32);
            }
            for tuple in tuples {
                let mut fuel_resolved = Fuel::new(200_000);
                let mut fuel_by_name = Fuel::new(200_000);
                let fast =
                    resolved.eval_call_with_fuel(op.name.as_str(), &tuple, &mut fuel_resolved);
                let slow = by_name.eval_call_with_fuel(op.name.as_str(), &tuple, &mut fuel_by_name);
                assert_eq!(fast, slow, "{id}: op `{}` diverged on {tuple:?}", op.name);
                assert_eq!(
                    fuel_resolved.used(),
                    fuel_by_name.used(),
                    "{id}: op `{}` fuel diverged on {tuple:?}",
                    op.name
                );
                checked += 1;
            }
        }
        assert!(checked > 0, "{id}: no operation tuples were compared");
    }
}

#[test]
fn candidate_predicates_agree_across_eval_and_eval_resolved() {
    let (problem, _) = both_paths("/coq/unique-list-::-set");
    let candidates = [
        "fix inv (l : list) : bool = \
           match l with | Nil -> True | Cons (hd, tl) -> not (lookup tl hd) && inv tl end",
        "fun (l : list) -> True",
        "fun (l : list) -> match l with | Nil -> True | Cons (hd, tl) -> not (hd == 1) end",
        "fun (l : list) -> let x = lookup l 0 in not x",
    ];
    let mut enumerator = ValueEnumerator::new(&problem.tyenv);
    let samples = enumerator.first_values(problem.concrete_type(), 40, 10);
    let evaluator = problem.evaluator();
    for source in candidates {
        let expr = parse_expr(source).unwrap();
        let resolved_expr = resolve(&expr);
        // Compile both flavours of the closure with identical budgets.
        let mut fuel_fast = Fuel::new(100_000);
        let mut fuel_slow = Fuel::new(100_000);
        let fast_closure = evaluator
            .eval_resolved(&problem.globals, &resolved_expr, &mut fuel_fast)
            .unwrap();
        let slow_closure = evaluator
            .eval(&problem.globals, &expr, &mut fuel_slow)
            .unwrap();
        assert_eq!(fuel_fast.used(), fuel_slow.used(), "compile fuel: {source}");
        for value in &samples {
            let mut fuel_fast = Fuel::new(100_000);
            let mut fuel_slow = Fuel::new(100_000);
            let fast = evaluator.apply_pred(&fast_closure, value, &mut fuel_fast);
            let slow = evaluator.apply_pred(&slow_closure, value, &mut fuel_slow);
            assert_eq!(fast, slow, "{source} diverged on {value}");
            assert_eq!(
                fuel_fast.used(),
                fuel_slow.used(),
                "{source} fuel diverged on {value}"
            );
        }
    }
}

#[test]
fn whole_inference_runs_agree_across_both_paths() {
    // The strongest form of the equivalence: the complete CEGIS trajectory
    // (outcome, iteration count, final example sets) is identical whether
    // the globals run on the slot-indexed or the linked-list path, at
    // parallelism 1, 2 and 0.
    for id in MODULES {
        let (resolved, by_name) = both_paths(id);
        for parallelism in [1usize, 2, 0] {
            let engine =
                Engine::new(EngineConfig::default().with_parallelism(parallelism)).unwrap();
            let options = RunOptions::quick();
            let fast = engine.run(&resolved, &options);
            let slow = engine.run(&by_name, &options);
            assert_eq!(
                fast.outcome, slow.outcome,
                "{id}: outcome diverged at parallelism {parallelism}"
            );
            assert_eq!(
                fast.stats.iterations, slow.stats.iterations,
                "{id}: iterations diverged at parallelism {parallelism}"
            );
            assert_eq!(
                fast.stats.final_positives, slow.stats.final_positives,
                "{id}: V+ diverged at parallelism {parallelism}"
            );
            assert_eq!(
                fast.stats.final_negatives, slow.stats.final_negatives,
                "{id}: V− diverged at parallelism {parallelism}"
            );
        }
    }
}
