//! Integration tests for the §5.5 baselines and the §4.4 optimizations: all
//! configurations must agree on the easy benchmarks (they find *some*
//! sufficient invariant), and the optimizations must not change outcomes.

use hanoi_repro::benchmarks;
use hanoi_repro::hanoi::{Engine, Mode, Optimizations, Outcome, RunOptions};
use hanoi_repro::verifier::{Verifier, VerifierBounds};

fn run(id: &str, mode: Mode, optimizations: Optimizations) -> (bool, usize, usize) {
    let benchmark = benchmarks::find(id).unwrap();
    let problem = benchmark.problem().unwrap();
    let options = RunOptions::quick()
        .with_mode(mode)
        .with_optimizations(optimizations);
    let result = Engine::with_defaults().run(&problem, &options);
    let success = match &result.outcome {
        Outcome::Invariant(invariant) => {
            let verifier = Verifier::new(&problem).with_bounds(VerifierBounds::quick());
            verifier.check_sufficiency(invariant).unwrap().is_valid()
                && verifier
                    .check_full_inductiveness(invariant)
                    .unwrap()
                    .is_valid()
        }
        _ => false,
    };
    (
        success,
        result.stats.verification_calls,
        result.stats.synthesis_calls,
    )
}

#[test]
fn all_hanoi_optimization_variants_solve_the_running_example() {
    for optimizations in [
        Optimizations::all(),
        Optimizations::without_src(),
        Optimizations::without_clc(),
        Optimizations::none(),
    ] {
        let (success, tvc, _) = run("/coq/unique-list-::-set", Mode::Hanoi, optimizations);
        assert!(success, "Hanoi with {optimizations:?} failed");
        assert!(tvc > 0);
    }
}

#[test]
fn conj_str_and_la_solve_the_easy_benchmarks() {
    for id in ["/other/cache", "/other/rational"] {
        for mode in [Mode::ConjStr, Mode::LinearArbitrary] {
            let (success, _, _) = run(id, mode, Optimizations::all());
            assert!(success, "{mode:?} failed on {id}");
        }
    }
}

#[test]
fn synthesis_result_caching_reduces_synthesis_calls() {
    // On the running example the CEGIS loop revisits earlier candidates after
    // V− resets; with the cache those revisits are free.
    let (_, _, with_cache_calls) =
        run("/coq/unique-list-::-set", Mode::Hanoi, Optimizations::all());
    let (_, _, without_cache_calls) = run(
        "/coq/unique-list-::-set",
        Mode::Hanoi,
        Optimizations::without_src(),
    );
    assert!(
        with_cache_calls <= without_cache_calls,
        "caching increased synthesis calls: {with_cache_calls} > {without_cache_calls}"
    );
}

#[test]
fn one_shot_is_cheap_but_usually_insufficient() {
    // OneShot makes at most one synthesis call on every benchmark it applies
    // to; whether it succeeds is benchmark-dependent (the paper: 1 of 28).
    let mut total_calls = 0usize;
    for id in ["/coq/unique-list-::-set", "/other/cache", "/other/rational"] {
        let benchmark = benchmarks::find(id).unwrap();
        let problem = benchmark.problem().unwrap();
        let options = RunOptions::quick().with_mode(Mode::OneShot);
        let result = Engine::with_defaults().run(&problem, &options);
        assert!(result.stats.synthesis_calls <= 1);
        total_calls += result.stats.synthesis_calls;
        assert!(result.stats.iterations <= 1);
    }
    assert!(total_calls >= 1);
}
