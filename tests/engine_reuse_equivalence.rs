//! Cross-run cache reuse correctness: a *warm* engine — one that has already
//! run inference on a problem and kept its value pools and term banks — must
//! produce results identical to a *cold* engine on every benchmark of the
//! suite.  Both caches are semantically transparent by design; this test
//! pins it end to end, through the public service API.
//!
//! The run options are chosen deterministic (no wall-clock timeout, a small
//! iteration cap, a small search schedule) so outcomes are pure functions of
//! the problem and the caches: any warm/cold divergence is a cache bug, not
//! scheduling noise.

use hanoi_repro::benchmarks;
use hanoi_repro::hanoi::{Engine, Mode, Outcome, RunOptions};
use hanoi_repro::synth::SearchConfig;
use hanoi_repro::verifier::VerifierBounds;

/// Deterministic options: bounded iterations instead of a wall-clock budget,
/// and a search schedule small enough that even failing searches stay fast
/// in debug builds across all 28 benchmarks.
fn test_options() -> RunOptions {
    RunOptions::quick()
        .with_timeout(None)
        .with_max_iterations(5)
        .with_bounds(VerifierBounds {
            single_count: 250,
            single_size: 12,
            multi_count: 100,
            multi_size: 8,
            total_cap: 2_500,
            ..VerifierBounds::quick()
        })
        .with_search(SearchConfig {
            schedule: vec![(0, 4), (1, 5)],
            max_terms_per_layer: 300,
            fuel: 4_000,
            ..SearchConfig::quick()
        })
}

/// A label for outcome comparison that is total (invariants compare by
/// expression, failures by kind+message).
fn outcome_key(outcome: &Outcome) -> String {
    match outcome {
        Outcome::Invariant(inv) => format!("invariant: {inv}"),
        other => other.to_string(),
    }
}

#[test]
fn warm_engines_match_cold_engines_on_every_benchmark() {
    for benchmark in benchmarks::registry() {
        let problem = benchmark
            .problem()
            .unwrap_or_else(|e| panic!("{}: {e}", benchmark.id));
        let options = test_options();

        // Cold: a fresh engine, exactly one run.
        let cold = Engine::with_defaults().run(&problem, &options);

        // Warm: one engine, the same run twice; the second starts from the
        // first run's pools and term bank.
        let engine = Engine::with_defaults();
        let session = engine.session(&problem);
        let first = session.run(&options);
        let warm = session.run(&options);

        assert_eq!(
            outcome_key(&first.outcome),
            outcome_key(&cold.outcome),
            "{}: first warm-engine run diverged from a cold engine",
            benchmark.id
        );
        assert_eq!(
            outcome_key(&warm.outcome),
            outcome_key(&cold.outcome),
            "{}: warm re-run diverged from a cold run",
            benchmark.id
        );
        assert_eq!(
            warm.stats.iterations, cold.stats.iterations,
            "{}: warm re-run took a different CEGIS path",
            benchmark.id
        );
        assert_eq!(
            warm.stats.final_positives, cold.stats.final_positives,
            "{}: warm re-run learned a different V+",
            benchmark.id
        );
        assert_eq!(
            warm.stats.final_negatives, cold.stats.final_negatives,
            "{}: warm re-run learned a different V−",
            benchmark.id
        );

        // The warmth must be real: the second run re-enumerates nothing.
        assert_eq!(
            warm.stats.pool_builds, 0,
            "{}: a warm run built pools ({:?})",
            benchmark.id, warm.stats
        );
        assert_eq!(
            warm.stats.pool_slab_builds, 0,
            "{}: a warm run built slabs",
            benchmark.id
        );
        assert!(
            warm.stats.synth_terms_enumerated <= cold.stats.synth_terms_enumerated,
            "{}: a warm bank enumerated more terms than a cold one ({} > {})",
            benchmark.id,
            warm.stats.synth_terms_enumerated,
            cold.stats.synth_terms_enumerated
        );
    }
}

#[test]
fn warm_oneshot_matches_cold_oneshot_after_a_hanoi_run() {
    // The OneShot baseline shares the session's term bank with the main
    // algorithm; a OneShot run served from a Hanoi-warmed bank must be
    // outcome-identical to a cold OneShot run.
    for id in ["/coq/unique-list-::-set", "/other/cache", "/other/rational"] {
        let problem = benchmarks::find(id).unwrap().problem().unwrap();
        let options = test_options();
        let one_shot = test_options().with_mode(Mode::OneShot);

        let engine = Engine::with_defaults();
        let session = engine.session(&problem);
        let _ = session.run(&options);
        let warm = session.run(&one_shot);
        let cold = Engine::with_defaults().run(&problem, &one_shot);
        assert_eq!(
            outcome_key(&warm.outcome),
            outcome_key(&cold.outcome),
            "{id}: OneShot diverged when sharing the Hanoi run's bank"
        );
        // OneShot requests some pool keys of its own (the labelled sample,
        // the spec's base-type pools), so a handful of warm assemblies is
        // legitimate — but the Hanoi run's slabs and pools must be reused,
        // never rebuilt.
        assert!(
            warm.stats.pool_builds <= cold.stats.pool_builds,
            "{id}: warm OneShot built more pools than a cold one"
        );
        assert!(
            warm.stats.pool_slab_builds <= cold.stats.pool_slab_builds,
            "{id}: warm OneShot enumerated more slabs than a cold one"
        );
    }
}

#[test]
fn batches_match_sequential_sessions() {
    use hanoi_repro::hanoi::BatchJob;

    let problems: Vec<_> = ["/other/cache", "/other/rational", "/other/sized-list"]
        .iter()
        .map(|id| benchmarks::find(id).unwrap().problem().unwrap())
        .collect();
    let jobs: Vec<BatchJob<'_>> = problems
        .iter()
        .map(|p| BatchJob::new(p, test_options()))
        .collect();

    let parallel_engine =
        Engine::new(hanoi_repro::hanoi::EngineConfig::default().with_parallelism(2)).unwrap();
    let batched = parallel_engine.run_batch(&jobs);

    for (job, result) in jobs.iter().zip(&batched) {
        let sequential = Engine::with_defaults().run(job.problem, &job.options);
        assert_eq!(
            outcome_key(&result.outcome),
            outcome_key(&sequential.outcome),
            "batched result diverged from a sequential run"
        );
    }
}
