//! Facade crate for the Rust reproduction of *Data-Driven Inference of
//! Representation Invariants* (Miltner, Padhi, Millstein, Walker — PLDI
//! 2020).
//!
//! This crate simply re-exports the workspace members so that examples and
//! integration tests can depend on a single package:
//!
//! * [`lang`] — the object language (parser, type checker, interpreter,
//!   enumeration);
//! * [`abstraction`] — interfaces, modules, specifications, contracts;
//! * [`verifier`] — the bounded enumerative verifier and the conditional
//!   inductiveness checker;
//! * [`synth`] — the Myth-style and fold-based example-directed synthesizers;
//! * [`hanoi`] — the CEGIS driver (visible inductiveness), optimizations and
//!   baseline modes;
//! * [`store`] — the content-addressed, chunked warm-start store (GC,
//!   merge, fleet sync, the `hanoi-store` admin tool);
//! * [`benchmarks`] — the 28-problem benchmark suite.

pub use hanoi as hanoi_core;
pub use hanoi_abstraction as abstraction;
pub use hanoi_benchmarks as benchmarks;
pub use hanoi_lang as lang;
pub use hanoi_store as store;
pub use hanoi_synth as synth;
pub use hanoi_verifier as verifier;

/// Re-export of the core inference entry points under a short name.
pub mod hanoi {
    pub use ::hanoi::*;
}
