//! The `/numeric/...` group: machine-integer modules whose invariants are
//! linear-arithmetic facts (`0 <= n`, `b - a <= 4`, parity, `b = 2a`) rather
//! than structural properties of an algebraic data type.
//!
//! These benchmarks are not part of the paper's 28-problem suite
//! ([`crate::registry`] stays pinned); they open the second problem family
//! of the numeric/trace workload and are registered via
//! [`crate::numeric_registry`].  Their positive example sets can also be
//! produced by the ground-truth trace generator ([`crate::trace`]), which
//! samples worlds by running random interface-operation sequences from the
//! initial state.
//!
//! Every representation is a single-constructor wrapper (`R of int`,
//! `P of int * int`): the engine's match refinement splits such wrappers
//! open, exposing the integer fields to the linear-arithmetic grammar
//! (`hanoi_synth::arith`).

use crate::{Benchmark, Group};

use super::make;

/// A monotone counter: starts at zero, only ever incremented — the
/// representation integer is never negative.
fn counter_nonneg() -> String {
    r#"
type rep = R of int

interface COUNTER = sig
  type t
  val init : t
  val bump : t -> t
  val read : t -> int
end

module Counter : COUNTER = struct
  type t = rep
  let init : t = R #0
  let bump (c : t) : t =
    match c with
    | R n -> R (iadd n #1)
    end
  let read (c : t) : int =
    match c with
    | R n -> n
    end
end

spec (c : t) = ile #0 (read c)
"#
    .to_string()
}

/// A counter stepping by two from zero: the representation integer stays
/// even.
fn counter_even() -> String {
    r#"
type rep = R of int

interface COUNTER = sig
  type t
  val init : t
  val step : t -> t
  val read : t -> int
end

module EvenCounter : COUNTER = struct
  type t = rep
  let init : t = R #0
  let step (c : t) : t =
    match c with
    | R n -> R (iadd n #2)
    end
  let read (c : t) : int =
    match c with
    | R n -> n
    end
end

spec (c : t) = imod (read c) #2 == #0
"#
    .to_string()
}

/// A closed integer range built from a point and widened upward: the lower
/// bound never exceeds the upper bound.
fn range_ordered() -> String {
    r#"
type rep = P of int * int

interface RANGE = sig
  type t
  val make : int -> t
  val extend : t -> t
  val lo : t -> int
  val hi : t -> int
end

module Range : RANGE = struct
  type t = rep
  let make (n : int) : t = P (n, n)
  let extend (r : t) : t =
    match r with
    | P (a, b) -> P (a, iadd b #1)
    end
  let lo (r : t) : int =
    match r with
    | P (a, b) -> a
    end
  let hi (r : t) : int =
    match r with
    | P (a, b) -> b
    end
end

spec (r : t) = ile (lo r) (hi r)
"#
    .to_string()
}

/// A sliding window whose width is capped: `widen` refuses to grow the
/// window past four, `slide` translates it — the difference of the bounds
/// stays bounded.
fn window_bounded() -> String {
    r#"
type rep = P of int * int

interface WINDOW = sig
  type t
  val init : t
  val widen : t -> t
  val slide : t -> t
  val lo : t -> int
  val hi : t -> int
end

module Window : WINDOW = struct
  type t = rep
  let init : t = P (#0, #0)
  let widen (w : t) : t =
    match w with
    | P (a, b) -> if ilt (isub b a) #4 then P (a, iadd b #1) else P (a, b)
    end
  let slide (w : t) : t =
    match w with
    | P (a, b) -> P (iadd a #1, iadd b #1)
    end
  let lo (w : t) : int =
    match w with
    | P (a, b) -> a
    end
  let hi (w : t) : int =
    match w with
    | P (a, b) -> b
    end
end

spec (w : t) = ile (isub (hi w) (lo w)) #4
"#
    .to_string()
}

/// A pair advancing in lockstep at different rates: the second component is
/// always exactly twice the first.
fn pair_double() -> String {
    r#"
type rep = P of int * int

interface PAIR = sig
  type t
  val init : t
  val step : t -> t
  val first : t -> int
  val second : t -> int
end

module Double : PAIR = struct
  type t = rep
  let init : t = P (#0, #0)
  let step (p : t) : t =
    match p with
    | P (a, b) -> P (iadd a #1, iadd b #2)
    end
  let first (p : t) : int =
    match p with
    | P (a, b) -> a
    end
  let second (p : t) : int =
    match p with
    | P (a, b) -> b
    end
end

spec (p : t) = second p == imul #2 (first p)
"#
    .to_string()
}

/// The numeric benchmarks (no paper-reported numbers: the family is not in
/// Figure 7).
pub fn benchmarks() -> Vec<Benchmark> {
    vec![
        make(
            "/numeric/counter-::-nonneg",
            Group::Numeric,
            counter_nonneg(),
            false,
            None,
        ),
        make(
            "/numeric/counter-::-even",
            Group::Numeric,
            counter_even(),
            false,
            None,
        ),
        make(
            "/numeric/range-::-ordered",
            Group::Numeric,
            range_ordered(),
            false,
            None,
        ),
        make(
            "/numeric/window-::-bounded",
            Group::Numeric,
            window_bounded(),
            false,
            None,
        ),
        make(
            "/numeric/pair-::-double",
            Group::Numeric,
            pair_double(),
            false,
            None,
        ),
    ]
}
