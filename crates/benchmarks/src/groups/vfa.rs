//! The `/vfa/...` group: lookup tables and priority queues from *Verified
//! Functional Algorithms*.

use crate::{Benchmark, Group};

use super::{make, LEQ, NAT_LIST_DECLS, TREE_DECL};

/// Association-list table: `get` returns the most recent binding (or 0).
pub(crate) fn assoc_list_table(extra_vals: &str, extra_ops: &str, extra_spec: &str) -> String {
    format!(
        r#"{NAT_LIST_DECLS}
type alist = ANil | ACons of nat * nat * alist

interface TABLE = sig
  type t
  val empty : t
  val set : t -> nat -> nat -> t
  val get : t -> nat -> nat
{extra_vals}end

module AssocListTable : TABLE = struct
  type t = alist
  let empty : t = ANil
  let set (m : t) (k : nat) (v : nat) : t = ACons (k, v, m)
  let rec get (m : t) (k : nat) : nat =
    match m with
    | ANil -> O
    | ACons (k2, v2, rest) -> if k == k2 then v2 else get rest k
    end
{extra_ops}end

spec (m : t) (k : nat) (v : nat) =
  get empty k == 0 && get (set m k v) k == v{extra_spec}
"#
    )
}

/// Binary-search-tree table keyed by naturals.
pub(crate) fn bst_table(extra_vals: &str, extra_ops: &str, extra_spec: &str) -> String {
    format!(
        r#"{NAT_LIST_DECLS}{LEQ}
type tbl = E | T of tbl * nat * nat * tbl

let lt (m : nat) (n : nat) : bool = leq (S m) n

interface TABLE = sig
  type t
  val empty : t
  val set : t -> nat -> nat -> t
  val get : t -> nat -> nat
{extra_vals}end

module BstTable : TABLE = struct
  type t = tbl
  let empty : t = E
  let rec get (m : t) (k : nat) : nat =
    match m with
    | E -> O
    | T (l, k2, v2, r) ->
        if k == k2 then v2 else if lt k k2 then get l k else get r k
    end
  let rec set (m : t) (k : nat) (v : nat) : t =
    match m with
    | E -> T (E, k, v, E)
    | T (l, k2, v2, r) ->
        if k == k2 then T (l, k2, v, r)
        else if lt k k2 then T (set l k v, k2, v2, r)
        else T (l, k2, v2, set r k v)
    end
{extra_ops}end

spec (m : t) (k : nat) (v : nat) =
  get empty k == 0 && get (set m k v) k == v{extra_spec}
"#
    )
}

/// Trie table keyed by binary positives.
pub(crate) fn trie_table(extra_vals: &str, extra_ops: &str, extra_spec: &str) -> String {
    format!(
        r#"{NAT_LIST_DECLS}
type pos = XH | XO of pos | XI of pos
type natoption = NoneN | SomeN of nat
type trie = TLeaf | TNode of trie * natoption * trie

interface TRIE = sig
  type t
  val empty : t
  val set : t -> pos -> nat -> t
  val get : t -> pos -> natoption
{extra_vals}end

module TrieTable : TRIE = struct
  type t = trie
  let empty : t = TLeaf
  let rec get (m : t) (k : pos) : natoption =
    match m with
    | TLeaf -> NoneN
    | TNode (l, v, r) ->
        match k with
        | XH -> v
        | XO k2 -> get l k2
        | XI k2 -> get r k2
        end
    end
  let rec set (m : t) (k : pos) (v : nat) : t =
    match m with
    | TLeaf ->
        (match k with
         | XH -> TNode (TLeaf, SomeN v, TLeaf)
         | XO k2 -> TNode (set TLeaf k2 v, NoneN, TLeaf)
         | XI k2 -> TNode (TLeaf, NoneN, set TLeaf k2 v)
         end)
    | TNode (l, w, r) ->
        match k with
        | XH -> TNode (l, SomeN v, r)
        | XO k2 -> TNode (set l k2 v, w, r)
        | XI k2 -> TNode (l, w, set r k2 v)
        end
    end
{extra_ops}end

spec (m : t) (k : pos) (v : nat) =
  get empty k == NoneN && get (set m k v) k == SomeN v{extra_spec}
"#
    )
}

/// A binary max-heap priority queue over trees; `heap_le` is the helper the
/// paper adds (playing the role of `true_maximum`) so the invariant is
/// expressible without synthesizing an auxiliary fold.
fn tree_priqueue(with_merge: bool) -> String {
    let merge_val = if with_merge {
        "  val merge : t -> t -> t\n"
    } else {
        ""
    };
    let merge_op = if with_merge {
        r#"
  let rec merge (a : t) (b : t) : t =
    match a with
    | Leaf -> b
    | Node (l, v, r) -> insert (merge l (merge r b)) v
    end
"#
    } else {
        ""
    };
    let spec = if with_merge {
        r#"
spec (q1 : t) (q2 : t) (i : nat) =
  member (insert q1 i) i
  && (not (member q1 i) || leq i (max_elt q1))
  && (not (member q1 i || member q2 i) || member (merge q1 q2) i)
"#
    } else {
        r#"
spec (q : t) (i : nat) =
  member (insert q i) i && (not (member q i) || leq i (max_elt q))
"#
    };
    format!(
        r#"{NAT_LIST_DECLS}{TREE_DECL}{LEQ}
let rec heap_le (x : nat) (q : tree) : bool =
  match q with
  | Leaf -> True
  | Node (l, v, r) -> leq v x && heap_le x l && heap_le x r
  end

interface PRIQUEUE = sig
  type t
  val empty : t
  val insert : t -> nat -> t
  val max_elt : t -> nat
  val member : t -> nat -> bool
{merge_val}end

module TreePriqueue : PRIQUEUE = struct
  type t = tree
  let empty : t = Leaf
  let max_elt (q : t) : nat =
    match q with
    | Leaf -> O
    | Node (l, v, r) -> v
    end
  let rec member (q : t) (x : nat) : bool =
    match q with
    | Leaf -> False
    | Node (l, v, r) -> v == x || member l x || member r x
    end
  let rec insert (q : t) (x : nat) : t =
    match q with
    | Leaf -> Node (Leaf, x, Leaf)
    | Node (l, v, r) ->
        if leq x v then Node (insert r x, v, l) else Node (insert r v, x, l)
    end
{merge_op}end
{spec}"#
    )
}

/// The 5 benchmarks of the group.
pub fn benchmarks() -> Vec<Benchmark> {
    vec![
        make(
            "/vfa/assoc-list-::-table",
            Group::Vfa,
            assoc_list_table("", "", ""),
            false,
            Some((4, 1.9)),
        ),
        make(
            "/vfa/bst-::-table",
            Group::Vfa,
            bst_table("", "", ""),
            false,
            Some((4, 12.9)),
        ),
        make(
            "/vfa/tree-::-priqueue",
            Group::Vfa,
            tree_priqueue(false),
            true,
            Some((47, 65.7)),
        ),
        make(
            "/vfa/tree-::-priqueue+binfuncs",
            Group::Vfa,
            tree_priqueue(true),
            true,
            Some((47, 79.4)),
        ),
        make(
            "/vfa/trie-::-table",
            Group::Vfa,
            trie_table("", "", ""),
            false,
            Some((4, 17.7)),
        ),
    ]
}
