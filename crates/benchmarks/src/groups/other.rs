//! The `/other/...` group: six custom modules exercising naturals, pairs,
//! options and tree shapes beyond the set/table benchmarks.

use crate::{Benchmark, Group};

use super::{make, LEQ, NAT_LIST_DECLS, TREE_DECL};

/// A memoising cache: the second component always stores the doubled first
/// component.
fn cache() -> String {
    format!(
        r#"{NAT_LIST_DECLS}
type cache = MkCache of nat * nat

let rec plus (m : nat) (n : nat) : nat =
  match m with
  | O -> n
  | S m2 -> S (plus m2 n)
  end

interface CACHE = sig
  type t
  val init : t
  val store : t -> nat -> t
  val key : t -> nat
  val cached : t -> nat
end

module DoubleCache : CACHE = struct
  type t = cache
  let init : t = MkCache (O, O)
  let store (c : t) (x : nat) : t = MkCache (x, plus x x)
  let key (c : t) : nat =
    match c with
    | MkCache (k, v) -> k
    end
  let cached (c : t) : nat =
    match c with
    | MkCache (k, v) -> v
    end
end

spec (c : t) = cached c == plus (key c) (key c)
"#
    )
}

/// A tree constrained to be list-like: every left subtree is a leaf.
fn listlike_tree() -> String {
    format!(
        r#"{NAT_LIST_DECLS}{TREE_DECL}
let rec plus (m : nat) (n : nat) : nat =
  match m with
  | O -> n
  | S m2 -> S (plus m2 n)
  end

let rec tree_size (x : tree) : nat =
  match x with
  | Leaf -> O
  | Node (l, v, r) -> S (plus (tree_size l) (tree_size r))
  end

interface SEQ = sig
  type t
  val empty : t
  val push : t -> nat -> t
  val count : t -> nat
  val head : t -> nat
end

module ListLikeTree : SEQ = struct
  type t = tree
  let empty : t = Leaf
  let push (s : t) (x : nat) : t = Node (Leaf, x, s)
  let rec count (s : t) : nat =
    match s with
    | Leaf -> O
    | Node (l, v, r) -> S (count r)
    end
  let head (s : t) : nat =
    match s with
    | Leaf -> O
    | Node (l, v, r) -> v
    end
end

spec (s : t) (i : nat) =
  count s == tree_size s && count (push s i) == S (count s) && head (push s i) == i
"#
    )
}

/// Half-open / closed ranges over naturals: the upper bound, when present, is
/// at least the lower bound.
fn range() -> String {
    format!(
        r#"{NAT_LIST_DECLS}{LEQ}
type natoption = NoneN | SomeN of nat
type range = MkRange of nat * natoption

let natmax (m : nat) (n : nat) : nat = if leq m n then n else m

interface RANGE = sig
  type t
  val from : nat -> t
  val close : t -> nat -> t
  val widen : t -> t
  val lower : t -> nat
  val contains : t -> nat -> bool
end

module NatRange : RANGE = struct
  type t = range
  let from (n : nat) : t = MkRange (n, NoneN)
  let lower (r : t) : nat =
    match r with
    | MkRange (lo, hi) -> lo
    end
  let close (r : t) (m : nat) : t =
    match r with
    | MkRange (lo, hi) -> MkRange (lo, SomeN (natmax lo m))
    end
  let widen (r : t) : t =
    match r with
    | MkRange (lo, hi) ->
        match hi with
        | NoneN -> MkRange (lo, NoneN)
        | SomeN h -> MkRange (lo, SomeN (S h))
        end
    end
  let contains (r : t) (i : nat) : bool =
    match r with
    | MkRange (lo, hi) ->
        match hi with
        | NoneN -> leq lo i
        | SomeN h -> leq lo i && leq i h
        end
    end
end

spec (r : t) = contains r (lower r) && contains (widen r) (lower r)
"#
    )
}

/// Rationals represented as numerator/denominator pairs with a non-zero
/// denominator.
fn rational() -> String {
    format!(
        r#"{NAT_LIST_DECLS}
type rat = MkRat of nat * nat

let rec plus (m : nat) (n : nat) : nat =
  match m with
  | O -> n
  | S m2 -> S (plus m2 n)
  end

interface RAT = sig
  type t
  val make : nat -> nat -> t
  val add_num : t -> nat -> t
  val numer : t -> nat
  val denom : t -> nat
end

module Rational : RAT = struct
  type t = rat
  let make (n : nat) (d : nat) : t =
    if d == 0 then MkRat (n, S O) else MkRat (n, d)
  let add_num (q : t) (k : nat) : t =
    match q with
    | MkRat (n, d) -> MkRat (plus n k, d)
    end
  let numer (q : t) : nat =
    match q with
    | MkRat (n, d) -> n
    end
  let denom (q : t) : nat =
    match q with
    | MkRat (n, d) -> d
    end
end

spec (q : t) = not (denom q == 0) && not (denom (add_num q 1) == 0)
"#
    )
}

/// A list paired with its cached length.
fn sized_list() -> String {
    format!(
        r#"{NAT_LIST_DECLS}
type sized = MkSized of nat * list

let rec len (l : list) : nat =
  match l with
  | Nil -> O
  | Cons (hd, tl) -> S (len tl)
  end

interface SIZED = sig
  type t
  val empty : t
  val push : t -> nat -> t
  val size : t -> nat
  val elems : t -> list
end

module SizedList : SIZED = struct
  type t = sized
  let empty : t = MkSized (O, Nil)
  let push (s : t) (x : nat) : t =
    match s with
    | MkSized (n, l) -> MkSized (S n, Cons (x, l))
    end
  let size (s : t) : nat =
    match s with
    | MkSized (n, l) -> n
    end
  let elems (s : t) : list =
    match s with
    | MkSized (n, l) -> l
    end
end

spec (s : t) (i : nat) =
  size s == len (elems s) && size (push s i) == S (size s)
"#
    )
}

/// A list whose length is always even because elements are pushed in pairs.
fn stutter_list() -> String {
    format!(
        r#"{NAT_LIST_DECLS}
let rec len (l : list) : nat =
  match l with
  | Nil -> O
  | Cons (hd, tl) -> S (len tl)
  end

let rec even (n : nat) : bool =
  match n with
  | O -> True
  | S m ->
      match m with
      | O -> False
      | S k -> even k
      end
  end

interface STUTTER = sig
  type t
  val empty : t
  val push : t -> nat -> t
  val pop2 : t -> t
  val first : t -> nat
end

module StutterList : STUTTER = struct
  type t = list
  let empty : t = Nil
  let push (s : t) (x : nat) : t = Cons (x, Cons (x, s))
  let pop2 (s : t) : t =
    match s with
    | Nil -> Nil
    | Cons (a, s2) ->
        match s2 with
        | Nil -> Nil
        | Cons (b, s3) -> s3
        end
    end
  let first (s : t) : nat =
    match s with
    | Nil -> O
    | Cons (a, s2) -> a
    end
end

spec (s : t) (i : nat) =
  even (len s) && first (push s i) == i && even (len (push s i))
"#
    )
}

/// The 6 benchmarks of the group.
pub fn benchmarks() -> Vec<Benchmark> {
    vec![
        make(
            "/other/cache",
            Group::Other,
            cache(),
            false,
            Some((29, 1.3)),
        ),
        make(
            "/other/listlike-tree",
            Group::Other,
            listlike_tree(),
            false,
            Some((53, 9.0)),
        ),
        make(
            "/other/nat-nat-option-::-range",
            Group::Other,
            range(),
            false,
            Some((23, 1.6)),
        ),
        make(
            "/other/rational",
            Group::Other,
            rational(),
            false,
            Some((28, 8.6)),
        ),
        make(
            "/other/sized-list",
            Group::Other,
            sized_list(),
            false,
            Some((45, 15.4)),
        ),
        make(
            "/other/stutter-list",
            Group::Other,
            stutter_list(),
            false,
            Some((49, 6.9)),
        ),
    ]
}
