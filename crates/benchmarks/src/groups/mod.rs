//! The benchmark groups and the shared source fragments they are assembled
//! from.
//!
//! Each benchmark is an ordinary `hanoi-lang` program (data declarations,
//! prelude helpers, an interface, a module and a spec); the fragments below
//! keep the 28 sources readable and consistent.

pub mod coq;
pub mod numeric;
pub mod other;
pub mod vfa;
pub mod vfa_extended;

use crate::{Benchmark, Group};

/// Builds a [`Benchmark`] record.
pub(crate) fn make(
    id: &'static str,
    group: Group,
    source: String,
    helper_provided: bool,
    paper: Option<(usize, f64)>,
) -> Benchmark {
    Benchmark {
        id,
        group,
        source,
        helper_provided,
        paper_completed: paper.is_some(),
        paper_size: paper.map(|(size, _)| size),
        paper_time_secs: paper.map(|(_, time)| time),
    }
}

/// Peano naturals and lists of naturals.
pub(crate) const NAT_LIST_DECLS: &str = r#"
type nat = O | S of nat
type list = Nil | Cons of nat * list
"#;

/// `leq` on naturals.
pub(crate) const LEQ: &str = r#"
let rec leq (m : nat) (n : nat) : bool =
  match m with
  | O -> True
  | S m2 ->
      match n with
      | O -> False
      | S n2 -> leq m2 n2
      end
  end
"#;

/// The SET interface of §2.
pub(crate) const SET_INTERFACE: &str = r#"
interface SET = sig
  type t
  val empty : t
  val insert : t -> nat -> t
  val delete : t -> nat -> t
  val lookup : t -> nat -> bool
end
"#;

/// The SET specification φ of §2.
pub(crate) const SET_SPEC: &str = r#"
spec (s : t) (i : nat) =
  not (lookup empty i) && lookup (insert s i) i && not (lookup (delete s i) i)
"#;

/// The extended SET specification φ ∧ φ' of §2.2 (binary functions).
pub(crate) const ESET_SPEC: &str = r#"
spec (s1 : t) (s2 : t) (i : nat) =
  not (lookup empty i)
  && lookup (insert s1 i) i
  && not (lookup (delete s1 i) i)
  && (not (lookup s1 i || lookup s2 i) || lookup (union s1 s2) i)
  && (not (lookup s1 i && lookup s2 i) || lookup (inter s1 s2) i)
"#;

/// The list-based duplicate-free set module body (shared by the
/// `unique-list` family); callers wrap it with an interface and spec.
pub(crate) const UNIQUE_LIST_OPS: &str = r#"
  let empty : t = Nil
  let rec lookup (l : t) (x : nat) : bool =
    match l with
    | Nil -> False
    | Cons (hd, tl) -> hd == x || lookup tl x
    end
  let insert (l : t) (x : nat) : t =
    if lookup l x then l else Cons (x, l)
  let rec delete (l : t) (x : nat) : t =
    match l with
    | Nil -> Nil
    | Cons (hd, tl) -> if hd == x then tl else Cons (hd, delete tl x)
    end
"#;

/// The sorted (and duplicate-free) list set module body.
pub(crate) const SORTED_LIST_OPS: &str = r#"
  let empty : t = Nil
  let rec lookup (l : t) (x : nat) : bool =
    match l with
    | Nil -> False
    | Cons (hd, tl) -> hd == x || lookup tl x
    end
  let rec place (l : t) (x : nat) : t =
    match l with
    | Nil -> Cons (x, Nil)
    | Cons (hd, tl) -> if leq x hd then Cons (x, Cons (hd, tl)) else Cons (hd, place tl x)
    end
  let insert (l : t) (x : nat) : t =
    if lookup l x then l else place l x
  let rec delete (l : t) (x : nat) : t =
    match l with
    | Nil -> Nil
    | Cons (hd, tl) -> if hd == x then tl else Cons (hd, delete tl x)
    end
"#;

/// Binary set operations implemented on top of `insert`/`lookup` (used by the
/// `+binfuncs` variants).
pub(crate) const LIST_SET_BINFUNCS: &str = r#"
  let rec union (a : t) (b : t) : t =
    match a with
    | Nil -> b
    | Cons (hd, tl) -> insert (union tl b) hd
    end
  let rec inter (a : t) (b : t) : t =
    match a with
    | Nil -> Nil
    | Cons (hd, tl) -> if lookup b hd then insert (inter tl b) hd else inter tl b
    end
"#;

/// Higher-order operations over list sets (used by the `+hofs` variants).
pub(crate) const LIST_SET_HOFS: &str = r#"
  let rec filter (p : nat -> bool) (l : t) : t =
    match l with
    | Nil -> Nil
    | Cons (hd, tl) -> if p hd then Cons (hd, filter p tl) else filter p tl
    end
  let rec fold (f : nat -> t -> t) (a : t) (s : t) : t =
    match s with
    | Nil -> a
    | Cons (hd, tl) -> f hd (fold f a tl)
    end
"#;

/// Interface items for the binary functions.
pub(crate) const BINFUNCS_VALS: &str = r#"
  val union : t -> t -> t
  val inter : t -> t -> t
"#;

/// Interface items for the higher-order functions.
pub(crate) const HOFS_VALS: &str = r#"
  val filter : (nat -> bool) -> t -> t
  val fold : (nat -> t -> t) -> t -> t -> t
"#;

/// Binary trees of naturals.
pub(crate) const TREE_DECL: &str = r#"
type tree = Leaf | Node of tree * nat * tree
"#;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fragments_compose_into_a_parsable_program() {
        let source = format!(
            "{NAT_LIST_DECLS}{LEQ}{SET_INTERFACE}\nmodule S : SET = struct\n  type t = list\n{UNIQUE_LIST_OPS}\nend\n{SET_SPEC}"
        );
        hanoi_lang::parser::parse_program(&source).unwrap();
    }
}
