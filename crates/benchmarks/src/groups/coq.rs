//! The `/coq/...` group: list- and tree-based set implementations modelled on
//! the Coq standard library, with `+binfuncs` (union/intersection) and
//! `+hofs` (filter/fold) variants.

use crate::{Benchmark, Group};

use super::{
    make, BINFUNCS_VALS, ESET_SPEC, HOFS_VALS, LEQ, LIST_SET_BINFUNCS, LIST_SET_HOFS,
    NAT_LIST_DECLS, SET_INTERFACE, SET_SPEC, SORTED_LIST_OPS, TREE_DECL, UNIQUE_LIST_OPS,
};

fn list_set(ops: &str) -> String {
    format!(
        "{NAT_LIST_DECLS}{LEQ}{SET_INTERFACE}\nmodule ListSet : SET = struct\n  type t = list\n{ops}\nend\n{SET_SPEC}"
    )
}

fn list_set_binfuncs(ops: &str) -> String {
    format!(
        "{NAT_LIST_DECLS}{LEQ}\n\
         interface ESET = sig\n  type t\n  val empty : t\n  val insert : t -> nat -> t\n  val delete : t -> nat -> t\n  val lookup : t -> nat -> bool\n{BINFUNCS_VALS}\nend\n\
         module ListSet : ESET = struct\n  type t = list\n{ops}{LIST_SET_BINFUNCS}\nend\n{ESET_SPEC}"
    )
}

fn list_set_hofs(ops: &str) -> String {
    format!(
        "{NAT_LIST_DECLS}{LEQ}\n\
         interface HSET = sig\n  type t\n  val empty : t\n  val insert : t -> nat -> t\n  val delete : t -> nat -> t\n  val lookup : t -> nat -> bool\n{HOFS_VALS}\nend\n\
         module ListSet : HSET = struct\n  type t = list\n{ops}{LIST_SET_HOFS}\nend\n{SET_SPEC}"
    )
}

/// The max-first list "heap": the head of the list is always a maximum
/// element.
fn maxfirst_heap(with_merge: bool) -> String {
    let merge_val = if with_merge {
        "  val merge : t -> t -> t\n"
    } else {
        ""
    };
    let merge_op = if with_merge {
        r#"
  let rec merge (a : t) (b : t) : t =
    match a with
    | Nil -> b
    | Cons (hd, tl) -> push (merge tl b) hd
    end
"#
    } else {
        ""
    };
    let spec = if with_merge {
        r#"
spec (h1 : t) (h2 : t) (i : nat) =
  member (push h1 i) i
  && (not (member h1 i) || leq i (max_elt h1))
  && (not (member h1 i || member h2 i) || member (merge h1 h2) i)
"#
    } else {
        r#"
spec (h : t) (i : nat) =
  member (push h i) i && (not (member h i) || leq i (max_elt h))
"#
    };
    format!(
        r#"{NAT_LIST_DECLS}{LEQ}
let rec all_geq (x : nat) (l : list) : bool =
  match l with
  | Nil -> True
  | Cons (hd, tl) -> leq hd x && all_geq x tl
  end

interface HEAP = sig
  type t
  val empty : t
  val push : t -> nat -> t
  val max_elt : t -> nat
  val member : t -> nat -> bool
{merge_val}end

module MaxFirstList : HEAP = struct
  type t = list
  let empty : t = Nil
  let max_elt (h : t) : nat =
    match h with
    | Nil -> O
    | Cons (hd, tl) -> hd
    end
  let rec member (h : t) (x : nat) : bool =
    match h with
    | Nil -> False
    | Cons (hd, tl) -> hd == x || member tl x
    end
  let push (h : t) (x : nat) : t =
    match h with
    | Nil -> Cons (x, Nil)
    | Cons (hd, tl) ->
        if leq hd x then Cons (x, Cons (hd, tl)) else Cons (hd, Cons (x, tl))
    end
{merge_op}end
{spec}"#
    )
}

/// A binary search tree set; `tmax` is the helper function the paper had to
/// provide for Myth (`min_max_tree` in their naming).
fn bst_set(extra_vals: &str, extra_ops: &str, spec: &str) -> String {
    format!(
        r#"{NAT_LIST_DECLS}{TREE_DECL}{LEQ}
let lt (m : nat) (n : nat) : bool = leq (S m) n

interface BSTSET = sig
  type t
  val empty : t
  val insert : t -> nat -> t
  val delete : t -> nat -> t
  val lookup : t -> nat -> bool
{extra_vals}end

module BstSet : BSTSET = struct
  type t = tree
  let empty : t = Leaf
  let rec lookup (x : t) (k : nat) : bool =
    match x with
    | Leaf -> False
    | Node (l, v, r) ->
        if k == v then True else if lt k v then lookup l k else lookup r k
    end
  let rec insert (x : t) (k : nat) : t =
    match x with
    | Leaf -> Node (Leaf, k, Leaf)
    | Node (l, v, r) ->
        if k == v then Node (l, v, r)
        else if lt k v then Node (insert l k, v, r)
        else Node (l, v, insert r k)
    end
  let rec tmax (x : t) : nat =
    match x with
    | Leaf -> O
    | Node (l, v, r) ->
        match r with
        | Leaf -> v
        | Node (rl, rv, rr) -> tmax r
        end
    end
  let rec delete (x : t) (k : nat) : t =
    match x with
    | Leaf -> Leaf
    | Node (l, v, r) ->
        if k == v then
          (match l with
           | Leaf -> r
           | Node (ll, lv, lr) -> Node (delete l (tmax l), tmax l, r)
           end)
        else if lt k v then Node (delete l k, v, r)
        else Node (l, v, delete r k)
    end
{extra_ops}end
{spec}"#
    )
}

const BST_BINFUNCS: &str = r#"
  let rec union (a : t) (b : t) : t =
    match a with
    | Leaf -> b
    | Node (l, v, r) -> insert (union l (union r b)) v
    end
  let rec inter (a : t) (b : t) : t =
    match a with
    | Leaf -> Leaf
    | Node (l, v, r) ->
        if lookup b v then insert (union (inter l b) (inter r b)) v
        else union (inter l b) (inter r b)
    end
"#;

const BST_HOFS: &str = r#"
  let rec fold (f : nat -> t -> t) (a : t) (s : t) : t =
    match s with
    | Leaf -> a
    | Node (l, v, r) -> f v (fold f (fold f a l) r)
    end
"#;

const BST_HOFS_VALS: &str = "  val fold : (nat -> t -> t) -> t -> t -> t\n";

/// A red-black tree set with Okasaki-style rebalancing on insertion.
fn rbtree_set(extra_vals: &str, extra_ops: &str, spec: &str) -> String {
    format!(
        r#"{NAT_LIST_DECLS}{LEQ}
type color = Red | Black
type rbt = RLeaf | RNode of color * rbt * nat * rbt

let lt (m : nat) (n : nat) : bool = leq (S m) n

let balance (c : color) (l : rbt) (v : nat) (r : rbt) : rbt =
  match (c, l, v, r) with
  | (Black, RNode (Red, RNode (Red, a, x, b), y, c2), z, d) ->
      RNode (Red, RNode (Black, a, x, b), y, RNode (Black, c2, z, d))
  | (Black, RNode (Red, a, x, RNode (Red, b, y, c2)), z, d) ->
      RNode (Red, RNode (Black, a, x, b), y, RNode (Black, c2, z, d))
  | (Black, a, x, RNode (Red, RNode (Red, b, y, c2), z, d)) ->
      RNode (Red, RNode (Black, a, x, b), y, RNode (Black, c2, z, d))
  | (Black, a, x, RNode (Red, b, y, RNode (Red, c2, z, d))) ->
      RNode (Red, RNode (Black, a, x, b), y, RNode (Black, c2, z, d))
  | (c3, l2, v2, r2) -> RNode (c3, l2, v2, r2)
  end

interface RBSET = sig
  type t
  val empty : t
  val insert : t -> nat -> t
  val lookup : t -> nat -> bool
{extra_vals}end

module RbSet : RBSET = struct
  type t = rbt
  let empty : t = RLeaf
  let rec lookup (x : t) (k : nat) : bool =
    match x with
    | RLeaf -> False
    | RNode (c, l, v, r) ->
        if k == v then True else if lt k v then lookup l k else lookup r k
    end
  let rec ins (x : t) (k : nat) : t =
    match x with
    | RLeaf -> RNode (Red, RLeaf, k, RLeaf)
    | RNode (c, l, v, r) ->
        if k == v then RNode (c, l, v, r)
        else if lt k v then balance c (ins l k) v r
        else balance c l v (ins r k)
    end
  let insert (x : t) (k : nat) : t =
    match ins x k with
    | RLeaf -> RLeaf
    | RNode (c, l, v, r) -> RNode (Black, l, v, r)
    end
{extra_ops}end
{spec}"#
    )
}

const RB_SPEC: &str = r#"
spec (s : t) (i : nat) =
  not (lookup empty i) && lookup (insert s i) i
"#;

const RB_BINFUNCS: &str = r#"
  let rec union (a : t) (b : t) : t =
    match a with
    | RLeaf -> b
    | RNode (c, l, v, r) -> insert (union l (union r b)) v
    end
  let rec inter (a : t) (b : t) : t =
    match a with
    | RLeaf -> RLeaf
    | RNode (c, l, v, r) ->
        if lookup b v then insert (union (inter l b) (inter r b)) v
        else union (inter l b) (inter r b)
    end
"#;

const RB_BINFUNCS_SPEC: &str = r#"
spec (s1 : t) (s2 : t) (i : nat) =
  not (lookup empty i)
  && lookup (insert s1 i) i
  && (not (lookup s1 i || lookup s2 i) || lookup (union s1 s2) i)
  && (not (lookup s1 i && lookup s2 i) || lookup (inter s1 s2) i)
"#;

const RB_HOFS: &str = r#"
  let rec fold (f : nat -> t -> t) (a : t) (s : t) : t =
    match s with
    | RLeaf -> a
    | RNode (c, l, v, r) -> f v (fold f (fold f a l) r)
    end
"#;

const BST_BINFUNCS_SPEC: &str = r#"
spec (s1 : t) (s2 : t) (i : nat) =
  not (lookup empty i)
  && lookup (insert s1 i) i
  && not (lookup (delete s1 i) i)
  && (not (lookup s1 i || lookup s2 i) || lookup (union s1 s2) i)
  && (not (lookup s1 i && lookup s2 i) || lookup (inter s1 s2) i)
"#;

/// The 14 benchmarks of the group.
pub fn benchmarks() -> Vec<Benchmark> {
    vec![
        make(
            "/coq/bst-::-set",
            Group::Coq,
            bst_set("", "", SET_SPEC),
            true,
            None,
        ),
        make(
            "/coq/bst-::-set+binfuncs",
            Group::Coq,
            bst_set(BINFUNCS_VALS, BST_BINFUNCS, BST_BINFUNCS_SPEC),
            false,
            Some((15, 42.0)),
        ),
        make(
            "/coq/bst-::-set+hofs",
            Group::Coq,
            bst_set(BST_HOFS_VALS, BST_HOFS, SET_SPEC),
            true,
            None,
        ),
        make(
            "/coq/rbtree-::-set",
            Group::Coq,
            rbtree_set("", "", RB_SPEC),
            true,
            None,
        ),
        make(
            "/coq/rbtree-::-set+binfuncs",
            Group::Coq,
            rbtree_set(BINFUNCS_VALS, RB_BINFUNCS, RB_BINFUNCS_SPEC),
            false,
            None,
        ),
        make(
            "/coq/rbtree-::-set+hofs",
            Group::Coq,
            rbtree_set(BST_HOFS_VALS, RB_HOFS, RB_SPEC),
            true,
            None,
        ),
        make(
            "/coq/maxfirst-list-::-heap",
            Group::Coq,
            maxfirst_heap(false),
            false,
            Some((35, 6.2)),
        ),
        make(
            "/coq/maxfirst-list-::-heap+binfuncs",
            Group::Coq,
            maxfirst_heap(true),
            false,
            Some((35, 7.4)),
        ),
        make(
            "/coq/sorted-list-::-set",
            Group::Coq,
            list_set(SORTED_LIST_OPS),
            false,
            Some((49, 22.9)),
        ),
        make(
            "/coq/sorted-list-::-set+binfuncs",
            Group::Coq,
            list_set_binfuncs(SORTED_LIST_OPS),
            false,
            Some((49, 17.3)),
        ),
        make(
            "/coq/sorted-list-::-set+hofs",
            Group::Coq,
            list_set_hofs(SORTED_LIST_OPS),
            false,
            Some((49, 101.3)),
        ),
        make(
            "/coq/unique-list-::-set",
            Group::Coq,
            list_set(UNIQUE_LIST_OPS),
            false,
            Some((35, 13.2)),
        ),
        make(
            "/coq/unique-list-::-set+binfuncs",
            Group::Coq,
            list_set_binfuncs(UNIQUE_LIST_OPS),
            false,
            Some((15, 15.7)),
        ),
        make(
            "/coq/unique-list-::-set+hofs",
            Group::Coq,
            list_set_hofs(UNIQUE_LIST_OPS),
            false,
            Some((17, 81.7)),
        ),
    ]
}
