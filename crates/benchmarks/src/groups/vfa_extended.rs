//! The `/vfa-extended/...` group: the VFA tables with additional operations
//! (and corresponding specification conjuncts) drawn from the Coq standard
//! library's table interfaces.

use crate::{Benchmark, Group};

use super::super::Group::VfaExtended;
use super::make;
use super::vfa::{assoc_list_table, bst_table, trie_table};

/// The 3 benchmarks of the group.
pub fn benchmarks() -> Vec<Benchmark> {
    let _ = Group::VfaExtended;
    vec![
        make(
            "/vfa-extended/assoc-list-::-table",
            VfaExtended,
            assoc_list_table(
                "  val remove : t -> nat -> t\n",
                r#"
  let rec remove (m : t) (k : nat) : t =
    match m with
    | ANil -> ANil
    | ACons (k2, v2, rest) ->
        if k == k2 then remove rest k else ACons (k2, v2, remove rest k)
    end
"#,
                " && get (remove m k) k == 0",
            ),
            false,
            Some((4, 2.6)),
        ),
        make(
            "/vfa-extended/bst-::-table",
            VfaExtended,
            bst_table(
                "  val merge : t -> t -> t\n  val min_key : t -> nat\n",
                r#"
  let rec merge (a : t) (b : t) : t =
    match a with
    | E -> b
    | T (l, k2, v2, r) -> set (merge l (merge r b)) k2 v2
    end
  let rec min_key (m : t) : nat =
    match m with
    | E -> O
    | T (l, k2, v2, r) ->
        match l with
        | E -> k2
        | T (ll, lk, lv, lr) -> min_key l
        end
    end
"#,
                " && (get m k == 0 || leq (min_key m) k)",
            ),
            false,
            None,
        ),
        make(
            "/vfa-extended/trie-::-table",
            VfaExtended,
            trie_table(
                "  val remove : t -> pos -> t\n",
                r#"
  let rec remove (m : t) (k : pos) : t =
    match m with
    | TLeaf -> TLeaf
    | TNode (l, w, r) ->
        match k with
        | XH -> TNode (l, NoneN, r)
        | XO k2 -> TNode (remove l k2, w, r)
        | XI k2 -> TNode (l, w, remove r k2)
        end
    end
"#,
                " && get (remove m k) k == NoneN",
            ),
            false,
            Some((4, 15.5)),
        ),
    ]
}
