//! The 28-problem benchmark suite of §5.1.
//!
//! The suite mirrors the paper's Figure 7/9: four groups — VFA (5 problems
//! from *Verified Functional Algorithms*), VFA-extended (3), Coq (14 list-
//! and tree-based data structures with `+binfuncs` and `+hofs` variants) and
//! Other (6 custom modules) — for a total of 28 verification problems, each a
//! module + interface + specification in the `hanoi-lang` surface language.
//!
//! The original Coq/VFA sources are not reproduced verbatim (they are not in
//! the paper); each benchmark is re-derived from its name, the invariant the
//! paper reports for it, and the descriptions in §5.  Benchmarks marked with
//! `*` in Figure 7 were given an extra helper function to compensate for
//! Myth's inability to synthesize helper functions; [`Benchmark::helper_provided`]
//! records the same flag here.

pub mod groups;
pub mod trace;

use hanoi_abstraction::{AbstractionError, Problem};

/// The benchmark group, as in Figure 7's path prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Group {
    /// `/vfa/...` — Verified Functional Algorithms modules.
    Vfa,
    /// `/vfa-extended/...` — VFA modules with additional operations.
    VfaExtended,
    /// `/coq/...` — Coq standard library style data structures.
    Coq,
    /// `/other/...` — custom modules.
    Other,
    /// `/numeric/...` — machine-integer modules with linear-arithmetic
    /// invariants (not part of the paper's Figure 7 suite).
    Numeric,
}

impl Group {
    /// The path prefix used in benchmark ids.
    pub fn prefix(&self) -> &'static str {
        match self {
            Group::Vfa => "/vfa",
            Group::VfaExtended => "/vfa-extended",
            Group::Coq => "/coq",
            Group::Other => "/other",
            Group::Numeric => "/numeric",
        }
    }
}

/// One verification problem of the suite.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// The benchmark id, e.g. `/coq/unique-list-::-set`.
    pub id: &'static str,
    /// Its group.
    pub group: Group,
    /// The full surface-language source.
    pub source: String,
    /// Whether the benchmark carries a helper function that the paper added
    /// to work around synthesizer limitations (the `*` of Figure 7).
    pub helper_provided: bool,
    /// Whether the paper reports this benchmark as completing within the
    /// 30-minute timeout (used by the harness to compare shapes, not to gate
    /// anything).
    pub paper_completed: bool,
    /// The invariant size the paper reports (None for timeouts).
    pub paper_size: Option<usize>,
    /// The total time in seconds the paper reports (None for timeouts).
    pub paper_time_secs: Option<f64>,
}

impl Benchmark {
    /// Elaborates the benchmark into a [`Problem`].
    pub fn problem(&self) -> Result<Problem, AbstractionError> {
        Ok(Problem::from_source(&self.source)?.with_name(self.id))
    }

    /// `true` if any interface operation is higher-order.
    pub fn is_higher_order(&self) -> bool {
        self.id.ends_with("+hofs") || self.id.contains("priqueue")
    }
}

/// The full suite, in the order of Figure 7.  The numeric family is *not*
/// included — the paper suite stays pinned at 28; see [`numeric_registry`].
pub fn registry() -> Vec<Benchmark> {
    let mut all = Vec::new();
    all.extend(groups::coq::benchmarks());
    all.extend(groups::other::benchmarks());
    all.extend(groups::vfa_extended::benchmarks());
    all.extend(groups::vfa::benchmarks());
    all
}

/// The numeric/trace invariant family: machine-integer modules whose
/// invariants are linear-arithmetic facts.  Runs against these should enable
/// the numeric search grammar (`RunOptions::with_numeric_grammar` in the
/// core crate); their positive examples can be generated from ground-truth
/// traces by [`trace`].
pub fn numeric_registry() -> Vec<Benchmark> {
    groups::numeric::benchmarks()
}

/// Looks a benchmark up by id, across the paper suite and the numeric
/// family.
pub fn find(id: &str) -> Option<Benchmark> {
    registry()
        .into_iter()
        .chain(numeric_registry())
        .find(|b| b.id == id)
}

/// The subset of the suite the paper reports as solvable within 30 minutes.
pub fn paper_completed() -> Vec<Benchmark> {
    registry()
        .into_iter()
        .filter(|b| b.paper_completed)
        .collect()
}

/// A small subset of fast benchmarks used by integration tests and quick
/// experiment runs.
pub fn quick_subset() -> Vec<Benchmark> {
    const QUICK: &[&str] = &[
        "/coq/unique-list-::-set",
        "/coq/maxfirst-list-::-heap",
        "/other/cache",
        "/other/sized-list",
        "/other/rational",
        "/vfa/assoc-list-::-table",
        "/vfa/bst-::-table",
    ];
    registry()
        .into_iter()
        .filter(|b| QUICK.contains(&b.id))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_suite_has_28_benchmarks_in_four_groups() {
        let all = registry();
        assert_eq!(all.len(), 28);
        assert_eq!(all.iter().filter(|b| b.group == Group::Coq).count(), 14);
        assert_eq!(all.iter().filter(|b| b.group == Group::Other).count(), 6);
        assert_eq!(
            all.iter().filter(|b| b.group == Group::VfaExtended).count(),
            3
        );
        assert_eq!(all.iter().filter(|b| b.group == Group::Vfa).count(), 5);
        // Ids are unique.
        let mut ids: Vec<&str> = all.iter().map(|b| b.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 28);
    }

    #[test]
    fn paper_reported_numbers_match_figure_7() {
        let all = registry();
        assert_eq!(all.iter().filter(|b| b.paper_completed).count(), 22);
        let unique = find("/coq/unique-list-::-set").unwrap();
        assert_eq!(unique.paper_size, Some(35));
        assert_eq!(unique.paper_time_secs, Some(13.2));
        let bst = find("/coq/bst-::-set").unwrap();
        assert!(!bst.paper_completed);
        assert!(bst.helper_provided);
    }

    #[test]
    fn every_benchmark_parses_and_elaborates() {
        for benchmark in registry() {
            let problem = benchmark
                .problem()
                .unwrap_or_else(|e| panic!("benchmark {} is broken: {e}", benchmark.id));
            assert!(
                problem.interface.len() >= 2,
                "{} has too few operations",
                benchmark.id
            );
            assert!(problem.spec.abstract_arity() >= 1);
        }
    }

    #[test]
    fn lookup_and_subsets() {
        assert!(find("/coq/unique-list-::-set").is_some());
        assert!(find("/nonexistent").is_none());
        assert!(!quick_subset().is_empty());
        assert!(quick_subset().len() < registry().len());
        assert_eq!(paper_completed().len(), 22);
        assert_eq!(Group::Coq.prefix(), "/coq");
    }

    #[test]
    fn higher_order_flags() {
        assert!(find("/coq/unique-list-::-set+hofs")
            .unwrap()
            .is_higher_order());
        assert!(!find("/coq/unique-list-::-set").unwrap().is_higher_order());
    }
}
