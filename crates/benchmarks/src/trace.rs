//! Ground-truth trace generation for the numeric family.
//!
//! The paper's CEGIS loop discovers its positive examples (`V+`) one
//! counterexample at a time.  For the numeric benchmarks we can do better
//! when testing the pipeline itself: each module in
//! [`crate::numeric_registry`] has a *known* representation invariant, so we
//! can sample reachable worlds by replaying random interface-operation
//! traces from the initial states — every world so produced satisfies the
//! ground truth by construction (the invariant is inductive and the initial
//! states satisfy it).
//!
//! That gives a differential test tier: run inference with the numeric
//! grammar enabled, then check the inferred invariant accepts every world of
//! a held-out trace sample.  Since ground truth implies any sufficient &
//! inductive invariant on reachable states, a rejection is a bug — in the
//! sampler, the grammar, or the engine.
//!
//! Sampling is deterministic: a [`SplitMix64`] stream seeded explicitly
//! drives every choice, so a `(benchmark, seed, count)` triple names the
//! same example set forever — the `trace-smoke` CI job and
//! `tests/trace_workload_soundness.rs` rely on this.

use hanoi_abstraction::Problem;
use hanoi_lang::ast::Expr;
use hanoi_lang::json::{self, Json};
use hanoi_lang::parser::parse_expr;
use hanoi_lang::types::Type;
use hanoi_lang::value::Value;

/// A deterministic 64-bit PRNG (Steele et al.'s splitmix64 finalizer).
/// Small, seedable and portable — exactly what reproducible trace sampling
/// needs; statistical quality far beyond what the sampler asks of it.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator with the given seed; equal seeds give equal streams.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next 64 raw bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform draw from `0..n` (`n` must be nonzero).  The modulo bias at
    /// 64 bits is far below anything a test could observe.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    /// A uniform draw from the inclusive range `lo..=hi`.
    pub fn int_in(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo <= hi);
        let span = (hi - lo) as u64 + 1;
        lo + self.below(span) as i64
    }
}

/// The known representation invariant of one numeric benchmark, as a
/// predicate body over the free variable `v` of the concrete type.
#[derive(Debug, Clone, Copy)]
pub struct GroundTruth {
    /// The benchmark this invariant belongs to.
    pub benchmark_id: &'static str,
    /// Surface syntax of the invariant body (free variable `v`).
    pub body: &'static str,
}

impl GroundTruth {
    /// The invariant as a closed predicate `fun (v : τc) -> body`, ready for
    /// [`Problem::eval_predicate`] / [`Problem::typecheck_invariant`].
    pub fn predicate(&self, problem: &Problem) -> Expr {
        let body = parse_expr(self.body).expect("ground-truth bodies are well-formed");
        Expr::lambda("v", problem.concrete_type().clone(), body)
    }

    /// Whether `world` satisfies the invariant.
    pub fn holds(&self, problem: &Problem, world: &Value) -> bool {
        problem
            .eval_predicate(&self.predicate(problem), world)
            .expect("ground-truth predicates are total on concrete values")
    }
}

/// The ground-truth invariants of every benchmark in
/// [`crate::numeric_registry`], in registry order.
///
/// Each is *inductive* for its module (preserved by every operation) and
/// holds in every initial state, which is what makes trace sampling sound:
/// any operation sequence stays inside the invariant.
pub fn ground_truths() -> Vec<GroundTruth> {
    vec![
        GroundTruth {
            benchmark_id: "/numeric/counter-::-nonneg",
            body: "match v with | R n -> ile #0 n end",
        },
        GroundTruth {
            benchmark_id: "/numeric/counter-::-even",
            body: "match v with | R n -> imod n #2 == #0 end",
        },
        GroundTruth {
            benchmark_id: "/numeric/range-::-ordered",
            body: "match v with | P (a, b) -> ile a b end",
        },
        GroundTruth {
            benchmark_id: "/numeric/window-::-bounded",
            body: "match v with | P (a, b) -> ile a b && ile (isub b a) #4 end",
        },
        GroundTruth {
            benchmark_id: "/numeric/pair-::-double",
            body: "match v with | P (a, b) -> ile #0 a && b == imul #2 a end",
        },
    ]
}

/// Looks the ground truth of a benchmark up by id.
pub fn ground_truth(benchmark_id: &str) -> Option<GroundTruth> {
    ground_truths()
        .into_iter()
        .find(|g| g.benchmark_id == benchmark_id)
}

/// How a trace sample is drawn.
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// PRNG seed; equal configurations sample equal world sets.
    pub seed: u64,
    /// How many *distinct* worlds to collect.
    pub count: usize,
    /// Maximum operations applied per trace before restarting from an
    /// initial state.
    pub steps: usize,
    /// Integer operation arguments are drawn from `-int_range..=int_range`.
    pub int_range: i64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            seed: 0xB5_EED,
            count: 24,
            steps: 12,
            int_range: 8,
        }
    }
}

/// Why sampling failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// No interface operation produces the abstract type from scratch.
    NoProducer,
    /// An operation argument type the sampler cannot synthesize a value for.
    UnsupportedArgument(String),
    /// An operation failed to evaluate on sampled arguments.
    Eval(String),
    /// A sampled world violates the declared ground truth — the invariant is
    /// not actually inductive for the module, i.e. the table in
    /// [`ground_truths`] is wrong.
    GroundTruthViolated(String),
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::NoProducer => {
                write!(f, "the interface has no operation producing the abstract type from non-abstract inputs")
            }
            TraceError::UnsupportedArgument(ty) => {
                write!(f, "cannot sample an operation argument of type `{ty}`")
            }
            TraceError::Eval(e) => write!(f, "operation evaluation failed: {e}"),
            TraceError::GroundTruthViolated(world) => {
                write!(f, "sampled world violates the ground truth: {world}")
            }
        }
    }
}

impl std::error::Error for TraceError {}

/// One interface operation, classified for the sampler.
struct SampledOp {
    name: String,
    args: Vec<Type>,
}

/// Classifies the interface: operations returning the abstract type become
/// producers (no abstract inputs) or steppers (at least one); observers are
/// ignored.  Operations with argument types the sampler cannot fill (only
/// abstract, `int` and `bool` are supported) are skipped rather than
/// rejected — but if no producer survives, sampling cannot start.
fn classify(problem: &Problem) -> Result<(Vec<SampledOp>, Vec<SampledOp>), TraceError> {
    let mut producers = Vec::new();
    let mut steppers = Vec::new();
    for op in &problem.interface.ops {
        let (args, ret) = op.uncurried();
        if !matches!(ret, Type::Abstract) {
            continue;
        }
        let supported = args
            .iter()
            .all(|a| matches!(a, Type::Abstract) || a.is_int() || **a == Type::bool());
        if !supported {
            continue;
        }
        let takes_abstract = args.iter().any(|a| matches!(a, Type::Abstract));
        let sampled = SampledOp {
            name: op.name.as_str().to_string(),
            args: args.into_iter().cloned().collect(),
        };
        if takes_abstract {
            steppers.push(sampled);
        } else {
            producers.push(sampled);
        }
    }
    if producers.is_empty() {
        return Err(TraceError::NoProducer);
    }
    Ok((producers, steppers))
}

/// Applies one classified operation, drawing non-abstract arguments from the
/// PRNG and abstract ones from `world`.
fn apply_op(
    problem: &Problem,
    op: &SampledOp,
    world: Option<&Value>,
    rng: &mut SplitMix64,
    int_range: i64,
) -> Result<Value, TraceError> {
    let mut args = Vec::with_capacity(op.args.len());
    for ty in &op.args {
        let arg = match ty {
            Type::Abstract => world
                .cloned()
                .ok_or_else(|| TraceError::UnsupportedArgument("t (no world yet)".into()))?,
            ty if ty.is_int() => Value::int(rng.int_in(-int_range, int_range)),
            ty if *ty == Type::bool() => {
                if rng.below(2) == 0 {
                    Value::fls()
                } else {
                    Value::tru()
                }
            }
            other => return Err(TraceError::UnsupportedArgument(other.to_string())),
        };
        args.push(arg);
    }
    problem
        .eval_call(&op.name, &args)
        .map_err(|e| TraceError::Eval(e.to_string()))
}

/// Samples distinct reachable worlds of `problem` by replaying random
/// operation traces, validating every world against `truth` on the way out.
///
/// The walk restarts from a fresh producer call whenever a trace reaches
/// [`TraceConfig::steps`] operations; duplicate worlds are dropped (the
/// module may well revisit states — `window-::-bounded`'s `widen` saturates,
/// for instance).  If the state space is smaller than
/// [`TraceConfig::count`], the sample is simply smaller — determinism is
/// kept by bounding the total number of operation applications.
pub fn sample_worlds(
    problem: &Problem,
    truth: &GroundTruth,
    config: &TraceConfig,
) -> Result<Vec<Value>, TraceError> {
    let (producers, steppers) = classify(problem)?;
    let mut rng = SplitMix64::new(config.seed);
    let mut worlds: Vec<Value> = Vec::new();
    let record = |world: &Value, worlds: &mut Vec<Value>| -> Result<(), TraceError> {
        if !truth.holds(problem, world) {
            return Err(TraceError::GroundTruthViolated(world.to_string()));
        }
        if !worlds.contains(world) {
            worlds.push(world.clone());
        }
        Ok(())
    };

    // The attempt budget bounds the walk when `count` distinct states are
    // not reachable (or not reachable quickly); it is generous enough that
    // real samples never hit it.
    let budget = config.count.max(1) * (config.steps + 1) * 8;
    let mut spent = 0;
    'outer: while worlds.len() < config.count && spent < budget {
        let producer = &producers[rng.below(producers.len() as u64) as usize];
        let mut world = apply_op(problem, producer, None, &mut rng, config.int_range)?;
        spent += 1;
        record(&world, &mut worlds)?;
        if steppers.is_empty() {
            continue;
        }
        for _ in 0..config.steps {
            if worlds.len() >= config.count || spent >= budget {
                continue 'outer;
            }
            let stepper = &steppers[rng.below(steppers.len() as u64) as usize];
            world = apply_op(problem, stepper, Some(&world), &mut rng, config.int_range)?;
            spent += 1;
            record(&world, &mut worlds)?;
        }
    }
    Ok(worlds)
}

/// Serializes a sampled example set: benchmark id, the sampling seed, and
/// the worlds as `V+` in the structural value encoding of
/// [`hanoi_lang::json::value_to_json`] (the same encoding the warm-start
/// snapshots use, so the worlds survive the `f64`-backed JSON numbers
/// losslessly).
pub fn worlds_to_json(benchmark_id: &str, seed: u64, worlds: &[Value]) -> Json {
    let encoded: Vec<Json> = worlds
        .iter()
        .map(|w| json::value_to_json(w).expect("sampled worlds are first-order"))
        .collect();
    Json::obj([
        ("benchmark", Json::Str(benchmark_id.to_string())),
        ("seed", Json::Str(seed.to_string())),
        ("v_plus", Json::Arr(encoded)),
    ])
}

/// Parses the [`worlds_to_json`] encoding back into `(benchmark, seed, V+)`.
pub fn worlds_from_json(json: &Json) -> Option<(String, u64, Vec<Value>)> {
    let benchmark = json.get("benchmark")?.as_str()?.to_string();
    let seed = json.get("seed")?.as_str()?.parse::<u64>().ok()?;
    let worlds: Option<Vec<Value>> = json
        .get("v_plus")?
        .as_arr()?
        .iter()
        .map(json::value_from_json)
        .collect();
    Some((benchmark, seed, worlds?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::numeric_registry;

    #[test]
    fn splitmix_is_deterministic_and_spreads() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        // Known first output of splitmix64(seed=0) from the reference
        // implementation — pins the exact stream, not just self-consistency.
        assert_eq!(SplitMix64::new(0).next_u64(), 0xe220a8397b1dcdaf);
        let mut r = SplitMix64::new(7);
        for _ in 0..100 {
            let v = r.int_in(-3, 3);
            assert!((-3..=3).contains(&v));
        }
    }

    #[test]
    fn every_numeric_benchmark_has_a_ground_truth_and_samples() {
        let truths = ground_truths();
        for benchmark in numeric_registry() {
            let truth = ground_truth(benchmark.id)
                .unwrap_or_else(|| panic!("{} has no ground truth", benchmark.id));
            let problem = benchmark.problem().unwrap();
            // The declared invariant typechecks as τc -> bool.
            problem
                .typecheck_invariant(&truth.predicate(&problem))
                .unwrap_or_else(|e| panic!("{} ground truth ill-typed: {e}", benchmark.id));
            let worlds = sample_worlds(&problem, &truth, &TraceConfig::default())
                .unwrap_or_else(|e| panic!("{} fails to sample: {e}", benchmark.id));
            assert!(
                worlds.len() >= 4,
                "{} sampled only {} worlds",
                benchmark.id,
                worlds.len()
            );
        }
        assert_eq!(truths.len(), numeric_registry().len());
    }

    #[test]
    fn sampling_is_deterministic_and_seed_sensitive() {
        let benchmark = crate::find("/numeric/range-::-ordered").unwrap();
        let problem = benchmark.problem().unwrap();
        let truth = ground_truth(benchmark.id).unwrap();
        let config = TraceConfig::default();
        let a = sample_worlds(&problem, &truth, &config).unwrap();
        let b = sample_worlds(&problem, &truth, &config).unwrap();
        assert_eq!(a, b);
        let other = TraceConfig {
            seed: config.seed + 1,
            ..config
        };
        let c = sample_worlds(&problem, &truth, &other).unwrap();
        assert_ne!(a, c, "different seeds should sample different world sets");
    }

    #[test]
    fn json_round_trips() {
        let benchmark = crate::find("/numeric/pair-::-double").unwrap();
        let problem = benchmark.problem().unwrap();
        let truth = ground_truth(benchmark.id).unwrap();
        let worlds = sample_worlds(&problem, &truth, &TraceConfig::default()).unwrap();
        let json = worlds_to_json(benchmark.id, 99, &worlds);
        let reparsed = hanoi_lang::json::parse(&json.render()).unwrap();
        let (id, seed, back) = worlds_from_json(&reparsed).unwrap();
        assert_eq!(id, benchmark.id);
        assert_eq!(seed, 99);
        assert_eq!(back, worlds);
    }

    #[test]
    fn a_wrong_ground_truth_is_caught() {
        // Claim the nonneg counter stays *strictly positive* — the initial
        // state `R 0` refutes it immediately.
        let benchmark = crate::find("/numeric/counter-::-nonneg").unwrap();
        let problem = benchmark.problem().unwrap();
        let wrong = GroundTruth {
            benchmark_id: benchmark.id,
            body: "match v with | R n -> ilt #0 n end",
        };
        let err = sample_worlds(&problem, &wrong, &TraceConfig::default()).unwrap_err();
        assert!(matches!(err, TraceError::GroundTruthViolated(_)));
    }
}
