//! Specifications: universally quantified properties of the module.
//!
//! A specification `spec (s : t) (i : nat) = e` is a boolean expression over
//! parameters that are all universally quantified.  Parameters of abstract
//! type are the ones a candidate invariant must be *sufficient* for
//! (Definition 3.4); additional base-type parameters (the `∀i : int` of the
//! paper's running example) are simply enumerated by the verifier.

use hanoi_lang::ast::{Expr, SpecDecl};
use hanoi_lang::symbol::Symbol;
use hanoi_lang::types::Type;

/// An elaborated specification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Spec {
    /// The quantified parameters, with abstract-type positions preserved as
    /// [`Type::Abstract`].
    pub params: Vec<(Symbol, Type)>,
    /// The boolean body, evaluated with the parameters and all module
    /// operations in scope.
    pub body: Expr,
    /// The body with its internal binders slot-resolved
    /// ([`hanoi_lang::resolve`]), set at problem elaboration.  The quantified
    /// parameters stay name-based (they are bound by the evaluation
    /// environment), but every `let`/`match`/`fun` inside the body runs on
    /// the interpreter's indexed fast path.  `None` when the problem was
    /// elaborated with resolution disabled.
    pub resolved_body: Option<Expr>,
}

impl Spec {
    /// Builds a specification from its surface declaration.
    pub fn from_decl(decl: &SpecDecl) -> Self {
        Spec {
            params: decl.params.clone(),
            body: decl.body.clone(),
            resolved_body: None,
        }
    }

    /// Runs the slot-resolution pass over the body (see
    /// [`Spec::resolved_body`]).
    pub fn resolve_body(&mut self) {
        self.resolved_body = Some(hanoi_lang::resolve::resolve(&self.body));
    }

    /// Total number of quantified parameters.
    pub fn arity(&self) -> usize {
        self.params.len()
    }

    /// Indices of the parameters of abstract type, in order.
    pub fn abstract_positions(&self) -> Vec<usize> {
        self.params
            .iter()
            .enumerate()
            .filter(|(_, (_, ty))| ty.mentions_abstract())
            .map(|(i, _)| i)
            .collect()
    }

    /// Number of parameters of abstract type.
    pub fn abstract_arity(&self) -> usize {
        self.abstract_positions().len()
    }

    /// Indices of the parameters that are *not* of abstract type.
    pub fn base_positions(&self) -> Vec<usize> {
        self.params
            .iter()
            .enumerate()
            .filter(|(_, (_, ty))| !ty.mentions_abstract())
            .map(|(i, _)| i)
            .collect()
    }

    /// The parameter types with the abstract type replaced by `concrete`.
    pub fn concrete_param_types(&self, concrete: &Type) -> Vec<Type> {
        self.params
            .iter()
            .map(|(_, ty)| ty.subst_abstract(concrete))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hanoi_lang::parser::parse_program;

    fn spec_of(src: &str) -> Spec {
        let program = parse_program(src).unwrap();
        Spec::from_decl(program.spec().unwrap())
    }

    #[test]
    fn single_abstract_parameter() {
        let spec = spec_of("spec (s : t) (i : nat) = lookup (insert s i) i");
        assert_eq!(spec.arity(), 2);
        assert_eq!(spec.abstract_positions(), vec![0]);
        assert_eq!(spec.base_positions(), vec![1]);
        assert_eq!(spec.abstract_arity(), 1);
        assert_eq!(
            spec.concrete_param_types(&Type::named("list")),
            vec![Type::named("list"), Type::named("nat")]
        );
    }

    #[test]
    fn binary_specification() {
        // The φ' of §2.2: quantifies over two sets.
        let spec = spec_of(
            "spec (s1 : t) (s2 : t) (i : nat) = lookup (union s1 s2) i || not (lookup s1 i)",
        );
        assert_eq!(spec.abstract_positions(), vec![0, 1]);
        assert_eq!(spec.abstract_arity(), 2);
        assert_eq!(spec.base_positions(), vec![2]);
    }

    #[test]
    fn no_base_parameters() {
        let spec = spec_of("spec (s : t) = is_wf s");
        assert_eq!(spec.arity(), 1);
        assert!(spec.base_positions().is_empty());
    }
}
