//! Module implementations: the existential package `M = ⟨τc, vm⟩`.

use hanoi_lang::symbol::Symbol;
use hanoi_lang::types::Type;
use hanoi_lang::value::Value;

/// One elaborated module operation.
#[derive(Debug, Clone)]
pub struct ModuleOp {
    /// The operation name.
    pub name: Symbol,
    /// Its interface signature, over the abstract type.
    pub sig: Type,
    /// The signature with the abstract type replaced by the concrete
    /// representation type (`sig[α ↦ τc]`).
    pub concrete_sig: Type,
    /// The evaluated operation (a closure for functions, a plain value for
    /// constants such as `empty`).
    pub value: Value,
}

impl ModuleOp {
    /// The curried argument types of the operation's interface signature.
    pub fn arg_sigs(&self) -> Vec<&Type> {
        self.sig.uncurry().0
    }

    /// The result type of the operation's interface signature.
    pub fn result_sig(&self) -> &Type {
        self.sig.uncurry().1
    }

    /// `true` if the abstract type appears in the operation's signature.
    pub fn mentions_abstract(&self) -> bool {
        self.sig.mentions_abstract()
    }

    /// `true` if every argument position is 0-order.
    pub fn is_first_order(&self) -> bool {
        self.sig.is_first_order()
    }
}

/// An elaborated module: a concrete representation type together with the
/// operations demanded by its interface.
#[derive(Debug, Clone)]
pub struct Module {
    /// The module name (e.g. `ListSet`).
    pub name: Symbol,
    /// The concrete representation type `τc`.
    pub concrete: Type,
    /// The operations, in interface declaration order.
    pub ops: Vec<ModuleOp>,
}

impl Module {
    /// Looks up an operation by name.
    pub fn op(&self, name: &str) -> Option<&ModuleOp> {
        self.ops.iter().find(|o| o.name.as_str() == name)
    }

    /// The operations whose signature mentions the abstract type.
    pub fn abstract_ops(&self) -> impl Iterator<Item = &ModuleOp> {
        self.ops.iter().filter(|o| o.mentions_abstract())
    }

    /// `true` when every operation is first-order.
    pub fn is_first_order(&self) -> bool {
        self.ops.iter().all(ModuleOp::is_first_order)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::Problem;

    const LIST_SET: &str = r#"
        type nat = O | S of nat
        type list = Nil | Cons of nat * list

        interface SET = sig
          type t
          val empty : t
          val insert : t -> nat -> t
          val delete : t -> nat -> t
          val lookup : t -> nat -> bool
        end

        module ListSet : SET = struct
          type t = list
          let empty : t = Nil
          let rec lookup (l : t) (x : nat) : bool =
            match l with
            | Nil -> False
            | Cons (hd, tl) -> hd == x || lookup tl x
            end
          let insert (l : t) (x : nat) : t =
            if lookup l x then l else Cons (x, l)
          let rec delete (l : t) (x : nat) : t =
            match l with
            | Nil -> Nil
            | Cons (hd, tl) -> if hd == x then tl else Cons (hd, delete tl x)
            end
        end

        spec (s : t) (i : nat) =
          not (lookup empty i) && lookup (insert s i) i && not (lookup (delete s i) i)
    "#;

    #[test]
    fn module_ops_follow_interface_order() {
        let problem = Problem::from_source(LIST_SET).unwrap();
        let names: Vec<&str> = problem.module.ops.iter().map(|o| o.name.as_str()).collect();
        assert_eq!(names, vec!["empty", "insert", "delete", "lookup"]);
        assert_eq!(problem.module.concrete, Type::named("list"));
        assert!(problem.module.is_first_order());
    }

    #[test]
    fn signatures_are_substituted() {
        let problem = Problem::from_source(LIST_SET).unwrap();
        let insert = problem.module.op("insert").unwrap();
        assert_eq!(
            insert.sig,
            Type::arrows(vec![Type::Abstract, Type::named("nat")], Type::Abstract)
        );
        assert_eq!(
            insert.concrete_sig,
            Type::arrows(
                vec![Type::named("list"), Type::named("nat")],
                Type::named("list")
            )
        );
        assert_eq!(insert.arg_sigs().len(), 2);
        assert_eq!(insert.result_sig(), &Type::Abstract);
        assert!(insert.mentions_abstract());
    }

    #[test]
    fn empty_is_a_plain_value() {
        let problem = Problem::from_source(LIST_SET).unwrap();
        let empty = problem.module.op("empty").unwrap();
        assert_eq!(empty.value, Value::nat_list(&[]));
    }
}
