//! Modules, interfaces, specifications and higher-order contracts.
//!
//! This crate turns a parsed surface program into a *verification problem*
//! (§3.1 of the paper): an interface `F = ∃α. τm`, a module implementation
//! `M = ⟨τc, vm⟩` that is well-typed against `τm[α ↦ τc]`, and a
//! specification `φ` universally quantified over values of the abstract type
//! (and possibly additional base-type values).
//!
//! The crate also provides:
//!
//! * [`constructible`] — a ground-truth oracle that computes the set of
//!   α-constructible values (Definition 3.1) up to a budget, used by tests
//!   and by the experiment harness to validate inferred invariants;
//! * [`contract`] — higher-order contract instrumentation (§4.2): enumerated
//!   functional arguments are wrapped so that every value crossing the module
//!   boundary is logged, which is how inductiveness counterexamples are
//!   extracted from higher-order operations.

pub mod constructible;
pub mod contract;
pub mod error;
pub mod interface;
pub mod module;
pub mod problem;
pub mod spec;

pub use constructible::ConstructibleOracle;
pub use contract::{instrument_function, BoundaryLog};
pub use error::AbstractionError;
pub use interface::{Interface, OpSig};
pub use module::{Module, ModuleOp};
pub use problem::Problem;
pub use spec::Spec;
