//! Higher-order contract instrumentation (§4.2).
//!
//! When a module operation takes a *functional* argument whose type mentions
//! the abstract type (e.g. `fold : (nat -> t -> t) -> t -> t -> t`), values
//! of abstract type cross the module boundary in both directions every time
//! the module calls that argument: the module *supplies* a value when it
//! passes it to the client's function, and the client *supplies* a value when
//! the function returns.  Following Findler–Felleisen higher-order contracts,
//! the verifier wraps every enumerated functional argument so that these
//! crossings are logged; the log is then checked against the `P`/`Q`
//! predicates of conditional inductiveness to extract counterexamples
//! (the `S` and `V` sets of Figure 3).

use std::sync::{Arc, Mutex};

use hanoi_lang::error::EvalError;
use hanoi_lang::eval::{Evaluator, Fuel};
use hanoi_lang::types::{Type, TypeEnv};
use hanoi_lang::value::Value;

/// A log of the abstract-type values that crossed a module boundary through
/// one instrumented functional argument.
#[derive(Debug, Default)]
pub struct BoundaryLog {
    /// Values of abstract type the *module* passed to the client function
    /// (positive positions of the function argument; checked against `Q`).
    pub module_supplied: Mutex<Vec<Value>>,
    /// Values of abstract type the *client* function returned to the module
    /// (negative positions; these satisfy `P` by construction and join the
    /// counterexample's `S` set).
    pub client_supplied: Mutex<Vec<Value>>,
}

impl BoundaryLog {
    /// A fresh, empty log.
    pub fn new() -> Arc<BoundaryLog> {
        Arc::new(BoundaryLog::default())
    }

    /// Values the module supplied, cloned out of the log.
    pub fn module_supplied_values(&self) -> Vec<Value> {
        self.module_supplied.lock().unwrap().clone()
    }

    /// Values the client supplied, cloned out of the log.
    pub fn client_supplied_values(&self) -> Vec<Value> {
        self.client_supplied.lock().unwrap().clone()
    }

    /// Empties the log.
    pub fn clear(&self) {
        self.module_supplied.lock().unwrap().clear();
        self.client_supplied.lock().unwrap().clear();
    }
}

/// Wraps a functional argument `implementation` of (interface) type `fn_sig`
/// so that every call the module makes to it is observed in `log`.
///
/// `fn_sig` is stated over the abstract type (e.g. `nat -> t -> t`); argument
/// positions whose type mentions `t` are recorded as module-supplied values,
/// and the final result is recorded as a client-supplied value when its type
/// mentions `t`.  The wrapper delegates to `implementation` (an ordinary
/// closure enumerated by the verifier) for the actual computation.
pub fn instrument_function(
    tyenv: &TypeEnv,
    fn_sig: &Type,
    implementation: Value,
    log: Arc<BoundaryLog>,
) -> Value {
    let (arg_sigs, result_sig) = fn_sig.uncurry();
    let arg_mentions: Vec<bool> = arg_sigs.iter().map(|t| t.mentions_abstract()).collect();
    let result_mentions = result_sig.mentions_abstract();
    let arity = arg_sigs.len().max(1);
    let tyenv = tyenv.clone();
    Value::native("contract", arity, move |args: &[Value]| {
        for (value, mentions) in args.iter().zip(&arg_mentions) {
            if *mentions && value.is_first_order() {
                log.module_supplied.lock().unwrap().push(value.clone());
            }
        }
        let evaluator = Evaluator::new(&tyenv);
        let mut fuel = Fuel::standard();
        let result = evaluator.apply_many(implementation.clone(), args, &mut fuel)?;
        if result_mentions && result.is_first_order() {
            log.client_supplied.lock().unwrap().push(result.clone());
        }
        Ok::<Value, EvalError>(result)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::Problem;
    use hanoi_lang::parser::parse_expr;

    const FOLD_SET: &str = r#"
        type nat = O | S of nat
        type list = Nil | Cons of nat * list

        interface FSET = sig
          type t
          val empty : t
          val insert : t -> nat -> t
          val lookup : t -> nat -> bool
          val fold : (nat -> t -> t) -> t -> t -> t
        end

        module ListSet : FSET = struct
          type t = list
          let empty : t = Nil
          let rec lookup (l : t) (x : nat) : bool =
            match l with
            | Nil -> False
            | Cons (hd, tl) -> hd == x || lookup tl x
            end
          let insert (l : t) (x : nat) : t =
            if lookup l x then l else Cons (x, l)
          let rec fold (f : nat -> t -> t) (a : t) (s : t) : t =
            match s with
            | Nil -> a
            | Cons (hd, tl) -> f hd (fold f a tl)
            end
        end

        spec (s : t) (i : nat) = lookup (insert s i) i
    "#;

    #[test]
    fn boundary_crossings_are_logged() {
        let problem = Problem::from_source(FOLD_SET).unwrap();
        let log = BoundaryLog::new();
        // The client function re-inserts every element: fun x acc -> insert acc x
        let client = parse_expr("fun (x : nat) (acc : list) -> insert acc x").unwrap();
        let client_value = problem
            .evaluator()
            .eval(&problem.globals, &client, &mut Fuel::standard())
            .unwrap();
        let fn_sig = problem.interface.op("fold").unwrap().ty.uncurry().0[0].clone();
        let wrapped = instrument_function(&problem.tyenv, &fn_sig, client_value, Arc::clone(&log));

        let acc = Value::nat_list(&[]);
        let s = Value::nat_list(&[1, 2]);
        let result = problem.eval_call("fold", &[wrapped, acc, s]).unwrap();
        assert_eq!(result, Value::nat_list(&[1, 2]));

        // The module called `f` twice, supplying the accumulators built so
        // far; the client returned two new lists.
        let supplied = log.module_supplied_values();
        let returned = log.client_supplied_values();
        assert_eq!(supplied.len(), 2);
        assert_eq!(returned.len(), 2);
        assert!(returned.contains(&Value::nat_list(&[2])));
        assert!(returned.contains(&Value::nat_list(&[1, 2])));
    }

    #[test]
    fn clearing_resets_the_log() {
        let log = BoundaryLog::new();
        log.module_supplied.lock().unwrap().push(Value::nat(1));
        log.client_supplied.lock().unwrap().push(Value::nat(2));
        log.clear();
        assert!(log.module_supplied_values().is_empty());
        assert!(log.client_supplied_values().is_empty());
    }

    #[test]
    fn non_abstract_positions_are_not_logged() {
        let problem = Problem::from_source(FOLD_SET).unwrap();
        let log = BoundaryLog::new();
        // A function whose signature never mentions t: nat -> nat.
        let client = parse_expr("fun (x : nat) -> S x").unwrap();
        let client_value = problem
            .evaluator()
            .eval(&problem.globals, &client, &mut Fuel::standard())
            .unwrap();
        let sig = Type::arrow(Type::named("nat"), Type::named("nat"));
        let wrapped = instrument_function(&problem.tyenv, &sig, client_value, Arc::clone(&log));
        let evaluator = problem.evaluator();
        let out = evaluator
            .apply(wrapped, Value::nat(3), &mut Fuel::standard())
            .unwrap();
        assert_eq!(out, Value::nat(4));
        assert!(log.module_supplied_values().is_empty());
        assert!(log.client_supplied_values().is_empty());
    }
}
