//! The verification problem: interface + module + specification, elaborated
//! and ready for the verifier, the synthesizer and the inference driver.

use hanoi_lang::ast::{Expr, Program, TopLet};
use hanoi_lang::digest::{Digest, DigestBuilder};
use hanoi_lang::error::EvalError;
use hanoi_lang::eval::{Evaluator, Fuel};
use hanoi_lang::parser::parse_program;
use hanoi_lang::symbol::Symbol;
use hanoi_lang::typecheck::TypeChecker;
use hanoi_lang::types::{Type, TypeEnv};
use hanoi_lang::value::{Env, Value};

use crate::error::AbstractionError;
use crate::interface::{check_wellformed_with_abstract, Interface};
use crate::module::{Module, ModuleOp};
use crate::spec::Spec;

/// A fully elaborated verification problem.
///
/// Holds everything the inference pipeline needs: the data type environment,
/// a global evaluation environment containing the prelude functions *and* the
/// module operations, the interface/module/spec triple, and the original
/// top-level bindings (used to assemble synthesis component libraries).
#[derive(Debug, Clone)]
pub struct Problem {
    /// Declared data types (including the builtin `bool`).
    pub tyenv: TypeEnv,
    /// Prelude functions and module operations, bound by name.
    pub globals: Env,
    /// The prelude bindings, in order.
    pub prelude: Vec<TopLet>,
    /// The module bindings with the abstract type substituted away, in order.
    pub module_lets: Vec<TopLet>,
    /// The interface.
    pub interface: Interface,
    /// The module.
    pub module: Module,
    /// The specification.
    pub spec: Spec,
    /// An optional human-readable name (benchmark id).
    pub name: Option<String>,
}

impl Problem {
    /// Parses and elaborates a surface program.
    pub fn from_source(source: &str) -> Result<Problem, AbstractionError> {
        let program = parse_program(source)?;
        Self::from_program(&program)
    }

    /// Like [`Problem::from_source`], but with explicit control over whether
    /// prelude and module closures go through the slot-resolution pass
    /// (`true`, the default) or use the historical name-based environment
    /// lookups (`false`) — the equivalence tests run both.
    pub fn from_source_with(
        source: &str,
        resolve_globals: bool,
    ) -> Result<Problem, AbstractionError> {
        let program = parse_program(source)?;
        Self::from_program_with(&program, resolve_globals)
    }

    /// Elaborates an already parsed surface program.
    pub fn from_program(program: &Program) -> Result<Problem, AbstractionError> {
        Self::from_program_with(program, true)
    }

    /// [`Problem::from_program`] with explicit control over slot resolution
    /// of the global (prelude + module) closures.
    pub fn from_program_with(
        program: &Program,
        resolve_globals: bool,
    ) -> Result<Problem, AbstractionError> {
        let elaborated = program.elaborate_with(resolve_globals)?;
        let tyenv = elaborated.tyenv.clone();

        let iface_decl = program
            .interface()
            .ok_or(AbstractionError::MissingInterface)?;
        let module_decl = program.module().ok_or(AbstractionError::MissingModule)?;
        let spec_decl = program.spec().ok_or(AbstractionError::MissingSpec)?;

        let interface = Interface::from_decl(iface_decl, &tyenv)?;
        if module_decl.interface != iface_decl.name {
            return Err(AbstractionError::InterfaceMismatch(format!(
                "module `{}` claims interface `{}` but the program declares `{}`",
                module_decl.name, module_decl.interface, iface_decl.name
            )));
        }

        // The concrete representation type must be a declared, 0-order,
        // inhabited type.
        let concrete = module_decl.concrete.clone();
        tyenv
            .check_wellformed(&concrete)
            .map_err(AbstractionError::from)?;
        if !concrete.is_zero_order() {
            return Err(AbstractionError::InterfaceMismatch(format!(
                "the representation type `{concrete}` must not contain functions"
            )));
        }
        if !tyenv.is_inhabited(&concrete) {
            return Err(AbstractionError::InterfaceMismatch(format!(
                "the representation type `{concrete}` has no finite values"
            )));
        }

        // Type-check and evaluate the module bindings, in order, with the
        // prelude and earlier module bindings in scope.
        let mut checker = TypeChecker::new(&tyenv);
        for top in &elaborated.lets {
            checker.declare_global(top.name.clone(), top.ty());
        }
        let mut globals = elaborated.globals.clone();
        let evaluator = Evaluator::new(&tyenv);
        let mut module_lets = Vec::new();
        for top in &module_decl.lets {
            let substituted = top.subst_abstract(&concrete);
            let expr = substituted.to_expr();
            let declared = substituted.ty();
            checker.check_closed(&expr, &declared).map_err(|e| {
                AbstractionError::InterfaceMismatch(format!(
                    "module operation `{}` is ill-typed: {e}",
                    top.name
                ))
            })?;
            let mut fuel = Fuel::new(1_000_000);
            let value = if resolve_globals {
                let resolved = hanoi_lang::resolve::resolve(&expr);
                evaluator.eval_resolved(&globals, &resolved, &mut fuel)
            } else {
                evaluator.eval(&globals, &expr, &mut fuel)
            }
            .map_err(AbstractionError::from)?;
            globals = globals.bind(substituted.name.clone(), value);
            checker.declare_global(substituted.name.clone(), declared);
            module_lets.push(substituted);
        }

        // Check that every interface operation is implemented at the declared
        // type, and collect them in interface order.
        let mut ops = Vec::new();
        for op_sig in &interface.ops {
            let implementation = module_lets
                .iter()
                .find(|l| l.name == op_sig.name)
                .ok_or_else(|| {
                    AbstractionError::InterfaceMismatch(format!(
                        "operation `{}` is declared by the interface but not implemented",
                        op_sig.name
                    ))
                })?;
            let expected = op_sig.ty.subst_abstract(&concrete);
            if implementation.ty() != expected {
                return Err(AbstractionError::InterfaceMismatch(format!(
                    "operation `{}` has type `{}` but the interface requires `{}`",
                    op_sig.name,
                    implementation.ty(),
                    expected
                )));
            }
            let value = globals
                .lookup(&op_sig.name)
                .cloned()
                .expect("module operation was just bound");
            ops.push(ModuleOp {
                name: op_sig.name.clone(),
                sig: op_sig.ty.clone(),
                concrete_sig: expected,
                value,
            });
        }
        let module = Module {
            name: module_decl.name.clone(),
            concrete: concrete.clone(),
            ops,
        };

        // Elaborate and check the specification: every parameter type must be
        // well formed, and the body must be boolean once the abstract type is
        // substituted away.
        let mut spec = Spec::from_decl(spec_decl);
        if resolve_globals {
            // The spec body is evaluated once per enumerated argument tuple
            // in the verifier's sufficiency sweep and once per sample in the
            // OneShot baseline — resolve it here so all of those run on the
            // interpreter's slot-indexed fast path.
            spec.resolve_body();
        }
        if spec.abstract_arity() == 0 {
            return Err(AbstractionError::BadSpec(
                "the specification must quantify over at least one value of abstract type".into(),
            ));
        }
        for (name, ty) in &spec.params {
            check_wellformed_with_abstract(ty, &tyenv)
                .map_err(|msg| AbstractionError::BadSpec(format!("parameter `{name}`: {msg}")))?;
        }
        let mut spec_ctx = hanoi_lang::typecheck::TypeContext::new();
        for (name, ty) in &spec.params {
            spec_ctx = spec_ctx.bind(name.clone(), ty.subst_abstract(&concrete));
        }
        checker
            .check(&spec_ctx, &spec.body, &Type::bool())
            .map_err(|e| AbstractionError::BadSpec(e.to_string()))?;

        Ok(Problem {
            tyenv,
            globals,
            prelude: elaborated.lets,
            module_lets,
            interface,
            module,
            spec,
            name: None,
        })
    }

    /// Gives the problem a human-readable name (benchmark id).
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = Some(name.into());
        self
    }

    /// The concrete representation type `τc`.
    pub fn concrete_type(&self) -> &Type {
        &self.module.concrete
    }

    /// A stable structural fingerprint of the whole problem *definition*:
    /// the declared data types, every prelude and module binding (the
    /// definitional source of the globals environment — the environment
    /// itself is a deterministic function of them), the interface, the
    /// concrete representation type and the specification.
    ///
    /// Two problems share a fingerprint exactly when every cache the engine
    /// keys by problem — value pools, check outcomes, term banks — may be
    /// shared between them, up to the 2⁻¹²⁸ digest collision bound.  Being
    /// interner-independent ([`hanoi_lang::digest`]), the fingerprint is
    /// valid *across processes*: it names the per-problem warm-start
    /// snapshot files (`Engine::save_state` / `EngineConfig::warm_start_dir`
    /// in the core crate).
    pub fn fingerprint(&self) -> Digest {
        let mut b = DigestBuilder::new("hanoi-problem-v1");
        let decls = self.tyenv.decls();
        b.add_u64(decls.len() as u64);
        for decl in decls {
            b.add_str(decl.name.as_str());
            b.add_u64(decl.ctors.len() as u64);
            for ctor in &decl.ctors {
                b.add_str(ctor.name.as_str());
                b.add_u64(ctor.args.len() as u64);
                for arg in &ctor.args {
                    b.add_digest(Digest::of_type(arg));
                }
            }
        }
        let mut add_lets = |label: &str, lets: &[TopLet]| {
            b.add_str(label);
            b.add_u64(lets.len() as u64);
            for top in lets {
                b.add_str(top.name.as_str());
                b.add_u64(top.recursive as u64);
                b.add_digest(Digest::of_type(&top.ty()));
                // Whole-binding digest: `to_expr` folds the parameters into
                // binders, so parameter *names* drop out (α-invariance)
                // while their order and types stay significant.
                b.add_digest(Digest::of_expr(&top.to_expr()));
            }
        };
        add_lets("prelude", &self.prelude);
        add_lets("module", &self.module_lets);
        b.add_str("interface");
        b.add_str(self.interface.name.as_str());
        b.add_u64(self.interface.ops.len() as u64);
        for op in &self.interface.ops {
            b.add_str(op.name.as_str());
            b.add_digest(Digest::of_type(&op.ty));
        }
        b.add_str("concrete");
        b.add_digest(Digest::of_type(self.concrete_type()));
        b.add_str("spec");
        b.add_u64(self.spec.params.len() as u64);
        for (name, ty) in &self.spec.params {
            // Spec parameters are free variables of the body, so their
            // names are significant (unlike binder names).
            b.add_str(name.as_str());
            b.add_digest(Digest::of_type(ty));
        }
        b.add_digest(Digest::of_expr(&self.spec.body));
        b.finish()
    }

    /// An interpreter over this problem's data types.
    pub fn evaluator(&self) -> Evaluator<'_> {
        Evaluator::new(&self.tyenv)
    }

    /// Applies a module operation (or prelude function) by name.
    pub fn eval_call(&self, name: &str, args: &[Value]) -> Result<Value, EvalError> {
        self.eval_call_with_fuel(name, args, &mut Fuel::standard())
    }

    /// Applies a module operation (or prelude function) by name with an
    /// explicit fuel budget.
    pub fn eval_call_with_fuel(
        &self,
        name: &str,
        args: &[Value],
        fuel: &mut Fuel,
    ) -> Result<Value, EvalError> {
        let f = self
            .globals
            .lookup(&Symbol::new(name))
            .cloned()
            .ok_or_else(|| EvalError::UnboundVariable(Symbol::new(name)))?;
        self.evaluator().apply_many(f, args, fuel)
    }

    /// Evaluates the specification body on a full argument tuple (one value
    /// per quantified parameter, in order).
    pub fn eval_spec(&self, args: &[Value]) -> Result<bool, EvalError> {
        self.eval_spec_with_fuel(args, &mut Fuel::standard())
    }

    /// Evaluates the specification with an explicit fuel budget.
    pub fn eval_spec_with_fuel(&self, args: &[Value], fuel: &mut Fuel) -> Result<bool, EvalError> {
        if args.len() != self.spec.arity() {
            return Err(EvalError::Other(format!(
                "specification expects {} argument(s), got {}",
                self.spec.arity(),
                args.len()
            )));
        }
        let mut env = self.globals.clone();
        for ((name, _), value) in self.spec.params.iter().zip(args) {
            env = env.bind(name.clone(), value.clone());
        }
        // The resolved body (when elaboration built one) is fuel-identical to
        // the name-based original, so both paths report the same outcomes.
        match &self.spec.resolved_body {
            Some(resolved) => {
                let v = self.evaluator().eval_resolved(&env, resolved, fuel)?;
                v.as_bool()
                    .ok_or_else(|| EvalError::NotABool(v.to_string()))
            }
            None => self.evaluator().eval_bool(&env, &self.spec.body, fuel),
        }
    }

    /// Evaluates a candidate invariant (an expression of type `τc -> bool`
    /// closed over the problem's globals) on one value of the concrete type.
    pub fn eval_predicate(&self, predicate: &Expr, arg: &Value) -> Result<bool, EvalError> {
        self.eval_predicate_with_fuel(predicate, arg, &mut Fuel::standard())
    }

    /// Evaluates a candidate invariant with an explicit fuel budget.
    pub fn eval_predicate_with_fuel(
        &self,
        predicate: &Expr,
        arg: &Value,
        fuel: &mut Fuel,
    ) -> Result<bool, EvalError> {
        let evaluator = self.evaluator();
        let pred_value = evaluator.eval(&self.globals, predicate, fuel)?;
        evaluator.apply_pred(&pred_value, arg, fuel)
    }

    /// Evaluates a candidate invariant that has already been through the
    /// slot-resolution pass ([`hanoi_lang::resolve::resolve`]), on the
    /// interpreter's indexed fast path.  Fuel consumption and results are
    /// identical to [`Problem::eval_predicate_with_fuel`] on the unresolved
    /// expression.
    pub fn eval_predicate_resolved_with_fuel(
        &self,
        predicate: &Expr,
        arg: &Value,
        fuel: &mut Fuel,
    ) -> Result<bool, EvalError> {
        let evaluator = self.evaluator();
        let pred_value = evaluator.eval_resolved(&self.globals, predicate, fuel)?;
        evaluator.apply_pred(&pred_value, arg, fuel)
    }

    /// Type-checks a candidate invariant against `τc -> bool`.
    pub fn typecheck_invariant(&self, invariant: &Expr) -> Result<(), AbstractionError> {
        let mut checker = TypeChecker::new(&self.tyenv);
        for top in self.prelude.iter().chain(&self.module_lets) {
            checker.declare_global(top.name.clone(), top.ty());
        }
        let expected = Type::arrow(self.concrete_type().clone(), Type::bool());
        checker
            .check_closed(invariant, &expected)
            .map_err(AbstractionError::from)
    }

    /// The component library visible to the synthesizers: every prelude
    /// function and module operation, with its (concrete) type.
    pub fn synthesis_components(&self) -> Vec<(Symbol, Type)> {
        self.prelude
            .iter()
            .map(|l| (l.name.clone(), l.ty()))
            .chain(self.module_lets.iter().map(|l| (l.name.clone(), l.ty())))
            .collect()
    }

    /// The operations that participate in inductiveness checking: those whose
    /// interface signature mentions the abstract type.
    pub fn inductive_ops(&self) -> Vec<&ModuleOp> {
        self.module.abstract_ops().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) const LIST_SET: &str = r#"
        type nat = O | S of nat
        type list = Nil | Cons of nat * list

        interface SET = sig
          type t
          val empty : t
          val insert : t -> nat -> t
          val delete : t -> nat -> t
          val lookup : t -> nat -> bool
        end

        module ListSet : SET = struct
          type t = list
          let empty : t = Nil
          let rec lookup (l : t) (x : nat) : bool =
            match l with
            | Nil -> False
            | Cons (hd, tl) -> hd == x || lookup tl x
            end
          let insert (l : t) (x : nat) : t =
            if lookup l x then l else Cons (x, l)
          let rec delete (l : t) (x : nat) : t =
            match l with
            | Nil -> Nil
            | Cons (hd, tl) -> if hd == x then tl else Cons (hd, delete tl x)
            end
        end

        spec (s : t) (i : nat) =
          not (lookup empty i) && lookup (insert s i) i && not (lookup (delete s i) i)
    "#;

    #[test]
    fn elaborates_the_running_example() {
        let problem = Problem::from_source(LIST_SET).unwrap().with_name("listset");
        assert_eq!(problem.name.as_deref(), Some("listset"));
        assert_eq!(problem.concrete_type(), &Type::named("list"));
        assert_eq!(problem.interface.len(), 4);
        assert_eq!(problem.inductive_ops().len(), 4);
        assert!(problem
            .synthesis_components()
            .iter()
            .any(|(n, _)| n.as_str() == "lookup"));
    }

    #[test]
    fn fingerprints_are_stable_and_spec_sensitive() {
        let a = Problem::from_source(LIST_SET).unwrap();
        let b = Problem::from_source(LIST_SET).unwrap();
        assert_eq!(
            a.fingerprint(),
            b.fingerprint(),
            "identical sources share a fingerprint (across elaborations)"
        );
        // The name is presentation, not semantics.
        assert_eq!(a.with_name("x").fingerprint(), b.fingerprint());

        // A clone with a weakened spec (sharing the globals Env!) must get
        // its own fingerprint — check outcomes depend on the spec.
        let mut weaker = b.clone();
        weaker.spec.body = hanoi_lang::parser::parse_expr("not (lookup empty i)").unwrap();
        assert_ne!(weaker.fingerprint(), b.fingerprint());

        // A buggy module body changes the fingerprint even though every
        // type and signature is unchanged.
        let buggy = LIST_SET.replace("if lookup l x then l else Cons (x, l)", "Cons (x, l)");
        let buggy = Problem::from_source(&buggy).unwrap();
        assert_ne!(buggy.fingerprint(), b.fingerprint());
    }

    #[test]
    fn module_operations_execute() {
        let problem = Problem::from_source(LIST_SET).unwrap();
        let s = problem
            .eval_call("insert", &[Value::nat_list(&[]), Value::nat(3)])
            .unwrap();
        assert_eq!(s, Value::nat_list(&[3]));
        let found = problem
            .eval_call("lookup", &[s.clone(), Value::nat(3)])
            .unwrap();
        assert_eq!(found, Value::tru());
        let removed = problem.eval_call("delete", &[s, Value::nat(3)]).unwrap();
        assert_eq!(removed, Value::nat_list(&[]));
    }

    #[test]
    fn spec_evaluation_matches_the_paper() {
        let problem = Problem::from_source(LIST_SET).unwrap();
        // The spec holds on the empty list...
        assert!(problem
            .eval_spec(&[Value::nat_list(&[]), Value::nat(1)])
            .unwrap());
        // ...and on a duplicate-free list...
        assert!(problem
            .eval_spec(&[Value::nat_list(&[2, 3]), Value::nat(3)])
            .unwrap());
        // ...but fails on [1;1] with i = 1 (deleting one copy leaves the other).
        assert!(!problem
            .eval_spec(&[Value::nat_list(&[1, 1]), Value::nat(1)])
            .unwrap());
    }

    #[test]
    fn predicates_are_evaluated_against_globals() {
        let problem = Problem::from_source(LIST_SET).unwrap();
        // fun (l : list) -> not (lookup l 0)
        let pred = hanoi_lang::parser::parse_expr("fun (l : list) -> not (lookup l 0)").unwrap();
        problem.typecheck_invariant(&pred).unwrap();
        assert!(problem
            .eval_predicate(&pred, &Value::nat_list(&[1]))
            .unwrap());
        assert!(!problem
            .eval_predicate(&pred, &Value::nat_list(&[0]))
            .unwrap());
    }

    #[test]
    fn missing_pieces_are_reported() {
        let no_spec = LIST_SET.rsplit_once("spec").unwrap().0;
        assert_eq!(
            Problem::from_source(no_spec).unwrap_err(),
            AbstractionError::MissingSpec
        );
        let err = Problem::from_source(
            r#"
            type nat = O | S of nat
            interface I = sig
              type t
              val make : t
              val get : t -> nat
            end
            module M : I = struct
              type t = nat
              let make : t = O
            end
            spec (s : t) = get s == O
        "#,
        )
        .unwrap_err();
        assert!(err.to_string().contains("get"));
    }

    #[test]
    fn interface_type_mismatches_are_reported() {
        let err = Problem::from_source(
            r#"
            type nat = O | S of nat
            interface I = sig
              type t
              val make : t
              val get : t -> nat
            end
            module M : I = struct
              type t = nat
              let make : t = O
              let get (x : t) : bool = True
            end
            spec (s : t) = get s == O
        "#,
        )
        .unwrap_err();
        assert!(matches!(err, AbstractionError::InterfaceMismatch(_)));
    }

    #[test]
    fn ill_typed_module_bodies_are_reported() {
        let err = Problem::from_source(
            r#"
            type nat = O | S of nat
            interface I = sig
              type t
              val make : t
            end
            module M : I = struct
              type t = nat
              let make : t = True
            end
            spec (s : t) = make == s
        "#,
        )
        .unwrap_err();
        assert!(matches!(err, AbstractionError::InterfaceMismatch(_)));
    }

    #[test]
    fn spec_must_mention_abstract_type() {
        let err = Problem::from_source(
            r#"
            type nat = O | S of nat
            interface I = sig
              type t
              val make : t
            end
            module M : I = struct
              type t = nat
              let make : t = O
            end
            spec (i : nat) = i == i
        "#,
        )
        .unwrap_err();
        assert!(matches!(err, AbstractionError::BadSpec(_)));
    }
}
