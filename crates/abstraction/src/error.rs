//! Errors produced while elaborating verification problems.

use std::fmt;

use hanoi_lang::error::{EvalError, LangError, ParseError, TypeError};

/// Anything that can go wrong while turning a surface program into a
/// [`crate::Problem`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AbstractionError {
    /// The underlying language layer failed (parse, type or evaluation).
    Lang(LangError),
    /// The program contains no interface declaration.
    MissingInterface,
    /// The program contains no module declaration.
    MissingModule,
    /// The program contains no specification.
    MissingSpec,
    /// The module does not faithfully implement its interface.
    InterfaceMismatch(String),
    /// The specification is ill-formed.
    BadSpec(String),
    /// Any other elaboration failure.
    Other(String),
}

impl fmt::Display for AbstractionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AbstractionError::Lang(e) => write!(f, "{e}"),
            AbstractionError::MissingInterface => f.write_str("the program declares no interface"),
            AbstractionError::MissingModule => f.write_str("the program declares no module"),
            AbstractionError::MissingSpec => f.write_str("the program declares no specification"),
            AbstractionError::InterfaceMismatch(msg) => {
                write!(f, "module does not implement its interface: {msg}")
            }
            AbstractionError::BadSpec(msg) => write!(f, "ill-formed specification: {msg}"),
            AbstractionError::Other(msg) => f.write_str(msg),
        }
    }
}

impl std::error::Error for AbstractionError {}

impl From<LangError> for AbstractionError {
    fn from(e: LangError) -> Self {
        AbstractionError::Lang(e)
    }
}

impl From<ParseError> for AbstractionError {
    fn from(e: ParseError) -> Self {
        AbstractionError::Lang(LangError::Parse(e))
    }
}

impl From<TypeError> for AbstractionError {
    fn from(e: TypeError) -> Self {
        AbstractionError::Lang(LangError::Type(e))
    }
}

impl From<EvalError> for AbstractionError {
    fn from(e: EvalError) -> Self {
        AbstractionError::Lang(LangError::Eval(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(AbstractionError::MissingInterface
            .to_string()
            .contains("interface"));
        assert!(AbstractionError::InterfaceMismatch("no insert".into())
            .to_string()
            .contains("insert"));
        let e: AbstractionError = TypeError::UnboundVariable("x".into()).into();
        assert!(e.to_string().contains('x'));
    }
}
