//! A ground-truth oracle for α-constructibility (Definition 3.1).
//!
//! A value `v` is α-constructible when some client program, given the module
//! operations, can produce `v` at the abstract type.  The inference algorithm
//! itself never needs the full set — it discovers constructible values lazily
//! through visible-inductiveness counterexamples — but tests and the
//! experiment harness use this oracle to check that inferred invariants
//! over-approximate the representations of the abstract type (Figure 2).
//!
//! The oracle saturates the set of constructible values by repeatedly
//! applying every module operation to already-known constructible values (for
//! abstract argument positions) and enumerated small values (for base-type
//! argument positions), up to configurable bounds.

use hanoi_lang::enumerate::ValueEnumerator;
use hanoi_lang::eval::Fuel;
use hanoi_lang::types::Type;
use hanoi_lang::util::OrderedSet;
use hanoi_lang::value::Value;

use crate::problem::Problem;

/// Bounds for the constructibility saturation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConstructibleBounds {
    /// Maximum number of saturation rounds (module-operation applications
    /// are nested at most this deep).
    pub max_rounds: usize,
    /// Maximum size (in nodes) of base-type argument values supplied to
    /// operations.
    pub base_value_size: usize,
    /// Maximum number of base-type argument values tried per position.
    pub base_value_count: usize,
    /// Discard constructed values larger than this many nodes.
    pub max_value_size: usize,
    /// Stop once this many constructible values are known.
    pub max_values: usize,
}

impl Default for ConstructibleBounds {
    fn default() -> Self {
        ConstructibleBounds {
            max_rounds: 3,
            base_value_size: 5,
            base_value_count: 8,
            max_value_size: 30,
            max_values: 2000,
        }
    }
}

/// The constructibility oracle.
#[derive(Debug, Clone)]
pub struct ConstructibleOracle {
    values: OrderedSet<Value>,
    bounds: ConstructibleBounds,
}

impl ConstructibleOracle {
    /// Saturates the constructible set for `problem` under the given bounds.
    pub fn compute(problem: &Problem, bounds: ConstructibleBounds) -> Self {
        let mut values: OrderedSet<Value> = OrderedSet::new();
        let mut enumerator = ValueEnumerator::new(&problem.tyenv);
        let evaluator = problem.evaluator();

        for _round in 0..bounds.max_rounds {
            let mut added = 0usize;
            for op in problem.module.abstract_ops() {
                let (arg_sigs, result_sig) = op.sig.uncurry();
                if !result_sig.mentions_abstract() {
                    // Operations that only consume the abstract type cannot
                    // create new constructible values.
                    if !arg_sigs.is_empty() {
                        continue;
                    }
                }
                // Skip higher-order operations: applying them requires
                // synthesizing functional arguments, which the oracle does
                // not attempt (matching the paper's first-order theory).
                if arg_sigs.iter().any(|t| !t.is_zero_order()) {
                    continue;
                }
                // Build the candidate argument pools per position.
                let pools: Vec<Vec<Value>> = arg_sigs
                    .iter()
                    .map(|sig| {
                        if sig.mentions_abstract() {
                            values.iter().cloned().collect()
                        } else {
                            enumerator.first_values(
                                sig,
                                bounds.base_value_count,
                                bounds.base_value_size,
                            )
                        }
                    })
                    .collect();
                if pools.iter().any(|p| p.is_empty()) && !arg_sigs.is_empty() {
                    // `empty`-style constants have no pools; anything else
                    // with an empty pool cannot be applied this round.
                    if arg_sigs.iter().any(|t| t.mentions_abstract()) && values.is_empty() {
                        // First round: only constants can fire.
                    }
                    if pools.iter().any(|p| p.is_empty()) {
                        continue;
                    }
                }
                let mut results = Vec::new();
                apply_cartesian(&pools, &mut Vec::new(), &mut |args| {
                    let mut fuel = Fuel::standard();
                    if let Ok(result) = evaluator.apply_many(op.value.clone(), args, &mut fuel) {
                        results.push(result);
                    }
                });
                if arg_sigs.is_empty() {
                    results.push(op.value.clone());
                }
                for result in results {
                    for projected in project_abstract(&result, result_sig, &problem.module.concrete)
                    {
                        if projected.size() <= bounds.max_value_size
                            && values.len() < bounds.max_values
                            && values.insert(projected)
                        {
                            added += 1;
                        }
                    }
                }
            }
            if added == 0 || values.len() >= bounds.max_values {
                break;
            }
        }
        ConstructibleOracle { values, bounds }
    }

    /// Saturates the constructible set with default bounds.
    pub fn compute_default(problem: &Problem) -> Self {
        Self::compute(problem, ConstructibleBounds::default())
    }

    /// The known constructible values, in discovery order.
    pub fn values(&self) -> &[Value] {
        self.values.as_slice()
    }

    /// `true` if `value` is known to be constructible (within bounds).
    pub fn contains(&self, value: &Value) -> bool {
        self.values.contains(value)
    }

    /// The bounds this oracle was computed with.
    pub fn bounds(&self) -> ConstructibleBounds {
        self.bounds
    }
}

/// Extracts the abstract-type components of an operation result, guided by
/// the result's interface signature: a result of type `t` is itself
/// constructible, a pair containing `t` contributes its components, a result
/// not mentioning `t` contributes nothing.
fn project_abstract(value: &Value, sig: &Type, _concrete: &Type) -> Vec<Value> {
    match sig {
        Type::Abstract => vec![value.clone()],
        Type::Tuple(sigs) => match value {
            Value::Tuple(items) if items.len() == sigs.len() => sigs
                .iter()
                .zip(items.iter())
                .flat_map(|(s, v)| project_abstract(v, s, _concrete))
                .collect(),
            _ => Vec::new(),
        },
        Type::Named(_) => {
            // A named type may still *contain* the abstract type only via
            // declarations, which the surface language does not allow (data
            // declarations cannot mention `t`), so nothing to extract.
            Vec::new()
        }
        Type::Arrow(_, _) => Vec::new(),
    }
}

fn apply_cartesian(
    pools: &[Vec<Value>],
    current: &mut Vec<Value>,
    emit: &mut impl FnMut(&[Value]),
) {
    if pools.is_empty() {
        emit(current);
        return;
    }
    if current.len() == pools.len() {
        emit(current);
        return;
    }
    let index = current.len();
    for item in &pools[index] {
        current.push(item.clone());
        apply_cartesian(pools, current, emit);
        current.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LIST_SET: &str = r#"
        type nat = O | S of nat
        type list = Nil | Cons of nat * list

        interface SET = sig
          type t
          val empty : t
          val insert : t -> nat -> t
          val delete : t -> nat -> t
          val lookup : t -> nat -> bool
        end

        module ListSet : SET = struct
          type t = list
          let empty : t = Nil
          let rec lookup (l : t) (x : nat) : bool =
            match l with
            | Nil -> False
            | Cons (hd, tl) -> hd == x || lookup tl x
            end
          let insert (l : t) (x : nat) : t =
            if lookup l x then l else Cons (x, l)
          let rec delete (l : t) (x : nat) : t =
            match l with
            | Nil -> Nil
            | Cons (hd, tl) -> if hd == x then tl else Cons (hd, delete tl x)
            end
        end

        spec (s : t) (i : nat) =
          not (lookup empty i) && lookup (insert s i) i && not (lookup (delete s i) i)
    "#;

    #[test]
    fn empty_and_inserted_sets_are_constructible() {
        let problem = Problem::from_source(LIST_SET).unwrap();
        let oracle = ConstructibleOracle::compute_default(&problem);
        assert!(oracle.contains(&Value::nat_list(&[])));
        assert!(oracle.contains(&Value::nat_list(&[0])));
        assert!(oracle.contains(&Value::nat_list(&[1])));
        // insert 0 then 1 gives [1; 0]
        assert!(oracle.contains(&Value::nat_list(&[1, 0])));
        assert!(oracle.values().len() > 5);
    }

    #[test]
    fn duplicate_lists_are_not_constructible() {
        let problem = Problem::from_source(LIST_SET).unwrap();
        let oracle = ConstructibleOracle::compute_default(&problem);
        // The ListSet module never builds a list with duplicates.
        assert!(!oracle.contains(&Value::nat_list(&[1, 1])));
        for v in oracle.values() {
            let items: Vec<u64> = v
                .as_list()
                .unwrap()
                .iter()
                .map(|x| x.as_nat().unwrap())
                .collect();
            let mut dedup = items.clone();
            dedup.sort_unstable();
            dedup.dedup();
            assert_eq!(
                dedup.len(),
                items.len(),
                "constructible value {v} has duplicates"
            );
        }
    }

    #[test]
    fn bounds_are_respected() {
        let problem = Problem::from_source(LIST_SET).unwrap();
        let bounds = ConstructibleBounds {
            max_values: 5,
            ..ConstructibleBounds::default()
        };
        let oracle = ConstructibleOracle::compute(&problem, bounds);
        assert!(oracle.values().len() <= 5);
        assert_eq!(oracle.bounds().max_values, 5);
    }
}
