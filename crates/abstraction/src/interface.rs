//! Module interfaces: `F = ∃α. τm`.

use hanoi_lang::ast::InterfaceDecl;
use hanoi_lang::symbol::Symbol;
use hanoi_lang::types::{Type, TypeEnv};

use crate::error::AbstractionError;

/// The signature of one interface operation, stated over the abstract type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpSig {
    /// The operation name.
    pub name: Symbol,
    /// Its type over the abstract type `α` (surface `t`).
    pub ty: Type,
}

impl OpSig {
    /// Creates an operation signature.
    pub fn new(name: impl Into<Symbol>, ty: Type) -> Self {
        OpSig {
            name: name.into(),
            ty,
        }
    }

    /// `true` if no argument position of the operation has a function type —
    /// the fragment covered by the paper's formal development.
    pub fn is_first_order(&self) -> bool {
        self.ty.is_first_order()
    }

    /// `true` if the abstract type appears anywhere in the signature.
    pub fn mentions_abstract(&self) -> bool {
        self.ty.mentions_abstract()
    }

    /// The curried argument types and result type of the operation.
    pub fn uncurried(&self) -> (Vec<&Type>, &Type) {
        self.ty.uncurry()
    }
}

/// A module interface: an abstract type together with operation signatures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Interface {
    /// The interface name (e.g. `SET`).
    pub name: Symbol,
    /// The operations, in declaration order.
    pub ops: Vec<OpSig>,
}

impl Interface {
    /// Builds an interface from a parsed declaration, checking that every
    /// named type in the signatures is declared.
    pub fn from_decl(decl: &InterfaceDecl, tyenv: &TypeEnv) -> Result<Self, AbstractionError> {
        let mut ops = Vec::new();
        for (name, ty) in &decl.vals {
            check_wellformed_with_abstract(ty, tyenv).map_err(|msg| {
                AbstractionError::InterfaceMismatch(format!(
                    "signature of `{name}` is ill-formed: {msg}"
                ))
            })?;
            ops.push(OpSig::new(name.clone(), ty.clone()));
        }
        Ok(Interface {
            name: decl.name.clone(),
            ops,
        })
    }

    /// Looks up an operation signature by name.
    pub fn op(&self, name: &str) -> Option<&OpSig> {
        self.ops.iter().find(|o| o.name.as_str() == name)
    }

    /// `true` when every operation is first-order (the fragment with the
    /// soundness/completeness proof).
    pub fn is_first_order(&self) -> bool {
        self.ops.iter().all(OpSig::is_first_order)
    }

    /// The operations whose signature mentions the abstract type (only these
    /// participate in inductiveness checking).
    pub fn abstract_ops(&self) -> impl Iterator<Item = &OpSig> {
        self.ops.iter().filter(|o| o.mentions_abstract())
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// `true` when the interface declares no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// Checks that a type references only declared data types; the abstract type
/// is allowed (unlike [`TypeEnv::check_wellformed`]).
pub(crate) fn check_wellformed_with_abstract(ty: &Type, tyenv: &TypeEnv) -> Result<(), String> {
    match ty {
        Type::Abstract => Ok(()),
        Type::Named(n) => {
            if tyenv.is_declared(n) {
                Ok(())
            } else {
                Err(format!("unknown type `{n}`"))
            }
        }
        Type::Tuple(ts) => ts
            .iter()
            .try_for_each(|t| check_wellformed_with_abstract(t, tyenv)),
        Type::Arrow(a, b) => {
            check_wellformed_with_abstract(a, tyenv)?;
            check_wellformed_with_abstract(b, tyenv)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hanoi_lang::parser::parse_program;

    fn set_interface() -> (Interface, TypeEnv) {
        let src = r#"
            type nat = O | S of nat
            type list = Nil | Cons of nat * list
            interface SET = sig
              type t
              val empty : t
              val insert : t -> nat -> t
              val lookup : t -> nat -> bool
              val size : nat
            end
        "#;
        let program = parse_program(src).unwrap();
        let elaborated = program.elaborate().unwrap();
        let iface = Interface::from_decl(program.interface().unwrap(), &elaborated.tyenv).unwrap();
        (iface, elaborated.tyenv)
    }

    #[test]
    fn builds_from_declaration() {
        let (iface, _) = set_interface();
        assert_eq!(iface.name, Symbol::new("SET"));
        assert_eq!(iface.len(), 4);
        assert!(!iface.is_empty());
        let insert = iface.op("insert").unwrap();
        assert_eq!(
            insert.ty,
            Type::arrows(vec![Type::Abstract, Type::named("nat")], Type::Abstract)
        );
        assert!(insert.mentions_abstract());
        assert!(insert.is_first_order());
        assert!(iface.op("delete").is_none());
    }

    #[test]
    fn abstract_ops_excludes_pure_base_operations() {
        let (iface, _) = set_interface();
        let names: Vec<&str> = iface.abstract_ops().map(|o| o.name.as_str()).collect();
        assert_eq!(names, vec!["empty", "insert", "lookup"]);
    }

    #[test]
    fn first_order_classification() {
        let src = r#"
            type nat = O | S of nat
            interface F = sig
              type t
              val fold : (nat -> t -> t) -> t -> t -> t
            end
        "#;
        let program = parse_program(src).unwrap();
        let elaborated = program.elaborate().unwrap();
        let iface = Interface::from_decl(program.interface().unwrap(), &elaborated.tyenv).unwrap();
        assert!(!iface.is_first_order());
        assert!(iface.op("fold").unwrap().mentions_abstract());
    }

    #[test]
    fn unknown_types_are_rejected() {
        let src = r#"
            interface F = sig
              type t
              val get : t -> widget
            end
        "#;
        let program = parse_program(src).unwrap();
        let elaborated = program.elaborate().unwrap();
        let err =
            Interface::from_decl(program.interface().unwrap(), &elaborated.tyenv).unwrap_err();
        assert!(err.to_string().contains("widget"));
    }
}
