//! Offline stand-in for the [`criterion`](https://docs.rs/criterion) harness.
//!
//! The repository builds in an environment without network access, so the
//! real criterion crate cannot be downloaded. This crate implements the
//! subset of criterion's API used by the benches in `crates/bench/benches/`
//! on top of `std::time::Instant`:
//!
//! * [`criterion_group!`] / [`criterion_main!`];
//! * [`Criterion::benchmark_group`] and [`BenchmarkGroup::bench_function`];
//! * [`Bencher::iter`] and [`Bencher::iter_batched`];
//! * [`black_box`] (re-exported from `std::hint`);
//! * sample-count and measurement-time knobs (accepted, loosely honoured).
//!
//! Timing methodology: each benchmark is warmed up for a fixed number of
//! iterations, then timed over `sample_size` samples, each sample running
//! enough iterations to take roughly one millisecond (or a single iteration
//! for slow benchmarks). Mean, median, and min/max per-iteration times are
//! printed in a criterion-like format. Results are additionally appended to
//! the `CRITERION_JSON` file when that environment variable is set, one JSON
//! object per line, so harness binaries can collect machine-readable output.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Mirrors criterion's `BatchSize`; only used to pick how many setup calls
/// are batched together in [`Bencher::iter_batched`]. The stand-in always
/// runs one setup per iteration, so the variants only differ in name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs: batch many iterations per sample.
    SmallInput,
    /// Large per-iteration inputs: one iteration per sample.
    LargeInput,
    /// Inputs of unpredictable size.
    PerIteration,
}

/// A single measured sample set for one benchmark function.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Full benchmark id, `group/function`.
    pub id: String,
    /// Per-iteration times of each sample, in nanoseconds.
    pub sample_ns: Vec<f64>,
}

impl Measurement {
    /// Mean per-iteration time in nanoseconds.
    pub fn mean_ns(&self) -> f64 {
        if self.sample_ns.is_empty() {
            return 0.0;
        }
        self.sample_ns.iter().sum::<f64>() / self.sample_ns.len() as f64
    }

    /// Median per-iteration time in nanoseconds.
    pub fn median_ns(&self) -> f64 {
        if self.sample_ns.is_empty() {
            return 0.0;
        }
        let mut sorted = self.sample_ns.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mid = sorted.len() / 2;
        if sorted.len().is_multiple_of(2) {
            (sorted[mid - 1] + sorted[mid]) / 2.0
        } else {
            sorted[mid]
        }
    }

    fn min_ns(&self) -> f64 {
        self.sample_ns.iter().copied().fold(f64::INFINITY, f64::min)
    }

    fn max_ns(&self) -> f64 {
        self.sample_ns.iter().copied().fold(0.0, f64::max)
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// The top-level harness handle, passed to every registered bench function.
pub struct Criterion {
    default_sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 20,
            measurement_time: Duration::from_secs(2),
        }
    }
}

impl Criterion {
    /// Sets the default number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.default_sample_size = n;
        self
    }

    /// Sets the target measurement time per benchmark.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size,
            measurement_time: self.measurement_time,
            _criterion: self,
        }
    }

    /// Benches a standalone function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("");
        group.bench_function(id, f);
        group.finish();
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Sets the target measurement time for benchmarks in this group.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Runs one benchmark function and reports its timing.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let full_id = if self.name.is_empty() {
            id
        } else {
            format!("{}/{}", self.name, id)
        };
        let mut bencher = Bencher {
            sample_size: self.sample_size.max(2),
            measurement_time: self.measurement_time,
            measurement: None,
        };
        f(&mut bencher);
        if let Some(mut m) = bencher.measurement.take() {
            m.id = full_id.clone();
            report(&m);
        } else {
            println!("{full_id:<50} (no measurement recorded)");
        }
        self
    }

    /// Ends the group (printing is immediate in this stand-in, so this is a
    /// no-op kept for API compatibility).
    pub fn finish(&mut self) {}
}

fn report(m: &Measurement) {
    println!(
        "{:<50} time: [{} {} {}]  (n={})",
        m.id,
        fmt_ns(m.min_ns()),
        fmt_ns(m.mean_ns()),
        fmt_ns(m.max_ns()),
        m.sample_ns.len(),
    );
    if let Ok(path) = std::env::var("CRITERION_JSON") {
        let mut line = String::new();
        let _ = write!(
            line,
            "{{\"id\":{:?},\"mean_ns\":{:.1},\"median_ns\":{:.1},\"min_ns\":{:.1},\"max_ns\":{:.1},\"samples\":{}}}",
            m.id,
            m.mean_ns(),
            m.median_ns(),
            m.min_ns(),
            m.max_ns(),
            m.sample_ns.len(),
        );
        line.push('\n');
        use std::io::Write as _;
        if let Ok(mut f) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
        {
            let _ = f.write_all(line.as_bytes());
        }
    }
}

/// Measures a closure's execution time; handed to each benchmark function.
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    measurement: Option<Measurement>,
}

impl Bencher {
    /// Times `routine`, running it repeatedly per sample.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up + calibration: find how many iterations fill ~1 ms.
        let cal_start = Instant::now();
        black_box(routine());
        let once = cal_start.elapsed();
        let iters_per_sample = if once >= Duration::from_millis(1) {
            1
        } else {
            let per_iter_ns = once.as_nanos().max(1) as u64;
            (1_000_000 / per_iter_ns).clamp(1, 10_000)
        };
        let budget = Instant::now();
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            samples.push(elapsed.as_nanos() as f64 / iters_per_sample as f64);
            // Honour the measurement-time budget loosely (always >= 2 samples).
            if budget.elapsed() > self.measurement_time * 4 && samples.len() >= 2 {
                break;
            }
        }
        self.measurement = Some(Measurement {
            id: String::new(),
            sample_ns: samples,
        });
    }

    /// Times `routine` with a fresh input from `setup` on every iteration;
    /// setup time is excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let budget = Instant::now();
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            let elapsed = start.elapsed();
            samples.push(elapsed.as_nanos() as f64);
            if budget.elapsed() > self.measurement_time * 4 && samples.len() >= 2 {
                break;
            }
        }
        self.measurement = Some(Measurement {
            id: String::new(),
            sample_ns: samples,
        });
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_records_samples() {
        let mut c = Criterion::default().sample_size(5);
        let mut ran = 0u64;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                ran += 1;
                std::hint::black_box(ran)
            })
        });
        assert!(ran > 0);
    }

    #[test]
    fn iter_batched_runs_setup_per_iteration() {
        let mut c = Criterion::default().sample_size(4);
        let mut group = c.benchmark_group("g");
        group.sample_size(4);
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }

    #[test]
    fn measurement_stats() {
        let m = Measurement {
            id: "x".into(),
            sample_ns: vec![1.0, 3.0, 2.0],
        };
        assert_eq!(m.mean_ns(), 2.0);
        assert_eq!(m.median_ns(), 2.0);
    }
}
