//! Splitting engine warm-start wrappers into chunks and reassembling them.
//!
//! The engine's per-problem snapshot is a *wrapper* object — `{version,
//! kind, fingerprint, check_cache, banks, pool_shapes}` — whose component
//! formats are owned by the verifier ([`CheckCache`]) and the synthesizer
//! ([`TermBank`]).  This module routes the wrapper through the component
//! chunk codecs on save and back on load; the store itself never interprets
//! component contents, and the reassembled wrapper is byte-for-byte what a
//! monolithic save would have written (pinned by tests), so the engine's
//! existing validation pipeline consumes it unchanged.
//!
//! Section names in the manifest:
//!
//! | section             | contents                                        |
//! |---------------------|-------------------------------------------------|
//! | `checks`            | one check-cache recency stripe (oldest first)   |
//! | `bank-core:<label>` | one term bank's value/name/world tables         |
//! | `bank-part:<label>` | a slice of one bank's memo tables               |
//! | `shapes`            | the pool-slab shape list                        |

use std::collections::BTreeMap;
use std::io;
use std::path::Path;

use hanoi_lang::digest::Digest;
use hanoi_lang::json::Json;
use hanoi_synth::TermBank;
use hanoi_verifier::CheckCache;

use crate::{ChunkLoad, ChunkStore, Manifest, ManifestEntry, ROWS_PER_PART, STRIPE_LEN};

/// What one [`ChunkStore::save_wrapper`] did.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct SaveReport {
    /// Chunks the manifest references in total.
    pub chunks_total: usize,
    /// Chunks that were newly written (the rest were already present under
    /// their content address — the incremental-save win).
    pub chunks_written: usize,
    /// Bytes newly written (chunk files only).
    pub bytes_written: u64,
    /// Total bytes across all referenced chunks, new or shared.
    pub bytes_total: u64,
}

/// The outcome of a [`ChunkStore::load_wrapper`].
#[derive(Debug)]
pub enum WrapperLoad {
    /// No manifest exists for the problem.
    Missing,
    /// A manifest existed but was defective and has been quarantined; the
    /// caller proceeds as if missing (and counts the quarantine).
    Corrupt,
    /// The wrapper was reassembled.  `quarantined` counts chunks that were
    /// corrupt (quarantined on disk) or missing; their sections were
    /// dropped, costing warmth but never correctness.
    Loaded {
        /// The reassembled wrapper, in the engine's monolithic format.
        wrapper: Json,
        /// Chunks dropped from the restore (corrupt or missing).
        quarantined: u64,
    },
}

impl ChunkStore {
    /// Saves an engine warm-start wrapper as chunks plus a manifest.
    ///
    /// The wrapper must carry `version`, `kind`, a hex `fingerprint`, a
    /// `check_cache` snapshot, a `banks` object and a `pool_shapes` array —
    /// anything else is rejected as [`io::ErrorKind::InvalidData`] (the
    /// engine only ever hands over wrappers it built itself, so a mismatch
    /// is a programming error, not an environmental one).
    pub fn save_wrapper(&self, wrapper: &Json) -> io::Result<SaveReport> {
        let invalid =
            |message: &str| io::Error::new(io::ErrorKind::InvalidData, message.to_string());
        let fingerprint = wrapper
            .get("fingerprint")
            .and_then(Json::as_str)
            .and_then(Digest::from_hex)
            .ok_or_else(|| invalid("wrapper has no fingerprint"))?;
        let wrapper_version = wrapper
            .get("version")
            .and_then(Json::as_usize)
            .ok_or_else(|| invalid("wrapper has no version"))? as u64;
        let wrapper_kind = wrapper
            .get("kind")
            .and_then(Json::as_str)
            .ok_or_else(|| invalid("wrapper has no kind"))?
            .to_string();

        // Section chunks, in assembly order.
        let mut sections: Vec<(String, Json)> = Vec::new();
        let checks = wrapper
            .get("check_cache")
            .ok_or_else(|| invalid("wrapper has no check_cache"))?;
        for stripe in CheckCache::split_snapshot(checks, STRIPE_LEN)
            .ok_or_else(|| invalid("check_cache snapshot does not split"))?
        {
            sections.push(("checks".to_string(), stripe));
        }
        let Json::Obj(banks) = wrapper
            .get("banks")
            .ok_or_else(|| invalid("wrapper has no banks"))?
        else {
            return Err(invalid("wrapper banks is not an object"));
        };
        for (label, bank) in banks {
            let chunks = TermBank::split_snapshot(bank, ROWS_PER_PART)
                .ok_or_else(|| invalid("bank snapshot does not split"))?;
            let mut chunks = chunks.into_iter();
            let core = chunks.next().expect("split yields at least the core");
            sections.push((format!("bank-core:{label}"), core));
            for part in chunks {
                sections.push((format!("bank-part:{label}"), part));
            }
        }
        let shapes = wrapper
            .get("pool_shapes")
            .ok_or_else(|| invalid("wrapper has no pool_shapes"))?;
        sections.push((
            "shapes".to_string(),
            Json::obj([
                ("version", Json::Num(crate::STORE_VERSION as f64)),
                ("kind", Json::Str("hanoi-pool-shapes".to_string())),
                ("shapes", shapes.clone()),
            ]),
        ));

        let mut report = SaveReport::default();
        let mut entries = Vec::new();
        for (section, chunk) in sections {
            let (digest, bytes, new) = self.put_chunk(&chunk.render_pretty())?;
            report.chunks_total += 1;
            report.bytes_total += bytes;
            if new {
                report.chunks_written += 1;
                report.bytes_written += bytes;
            }
            entries.push(ManifestEntry {
                section,
                chunk: digest,
                bytes,
            });
        }
        self.put_manifest(&Manifest {
            fingerprint,
            wrapper_version,
            wrapper_kind,
            entries,
        })?;
        hanoi_lang::util::sync_dir(&self.root().join("chunks"));
        hanoi_lang::util::sync_dir(&self.root().join("manifests"));
        Ok(report)
    }

    /// Reassembles the wrapper for `fingerprint` from its manifest and
    /// chunks.  Corrupt chunks are quarantined and *dropped* — a dropped
    /// check stripe means fewer memoized outcomes, a dropped bank part
    /// means fewer memo rows, a dropped bank core drops that one bank —
    /// and the count comes back in [`WrapperLoad::Loaded::quarantined`].
    pub fn load_wrapper(&self, fingerprint: Digest) -> WrapperLoad {
        if !self.manifest_path_exists(fingerprint) {
            return WrapperLoad::Missing;
        }
        let Some(manifest) = self.manifest(fingerprint) else {
            // `manifest()` quarantined the defective file.
            return WrapperLoad::Corrupt;
        };
        let mut quarantined = 0u64;
        let mut stripes: Vec<Json> = Vec::new();
        let mut bank_cores: BTreeMap<String, Json> = BTreeMap::new();
        let mut bank_parts: BTreeMap<String, Vec<Json>> = BTreeMap::new();
        let mut shapes = Json::Arr(Vec::new());
        for entry in &manifest.entries {
            let chunk = match self.load_chunk(entry.chunk) {
                ChunkLoad::Loaded(chunk) => chunk,
                // A hole costs exactly this chunk's section, never the
                // restore.
                ChunkLoad::Missing | ChunkLoad::Quarantined => {
                    quarantined += 1;
                    continue;
                }
            };
            if entry.section == "checks" {
                stripes.push(chunk);
            } else if let Some(label) = entry.section.strip_prefix("bank-core:") {
                bank_cores.insert(label.to_string(), chunk);
            } else if let Some(label) = entry.section.strip_prefix("bank-part:") {
                bank_parts.entry(label.to_string()).or_default().push(chunk);
            } else if entry.section == "shapes" {
                if let Some(list) = chunk.get("shapes") {
                    shapes = list.clone();
                }
            }
            // Unknown sections (a future format) are ignored, not fatal.
        }

        let (check_cache, skipped) = CheckCache::join_stripes(stripes.iter());
        quarantined += skipped as u64;
        let mut banks = BTreeMap::new();
        for (label, core) in &bank_cores {
            let parts = bank_parts.remove(label).unwrap_or_default();
            match TermBank::join_chunks(core, parts.iter()) {
                Some((bank, skipped)) => {
                    quarantined += skipped as u64;
                    banks.insert(label.clone(), bank);
                }
                // A core that loaded but does not join is defective beyond
                // its digest (cannot happen for chunks we wrote); drop the
                // bank.
                None => quarantined += 1,
            }
        }
        // Parts whose core was dropped have nothing to resolve their ids
        // against; they are already counted via the dropped core chunk.

        let wrapper = Json::Obj(
            [
                (
                    "version".to_string(),
                    Json::Num(manifest.wrapper_version as f64),
                ),
                ("kind".to_string(), Json::Str(manifest.wrapper_kind.clone())),
                ("fingerprint".to_string(), Json::Str(fingerprint.to_hex())),
                ("check_cache".to_string(), check_cache),
                ("banks".to_string(), Json::Obj(banks.into_iter().collect())),
                ("pool_shapes".to_string(), shapes),
            ]
            .into_iter()
            .collect(),
        );
        self.touch(fingerprint, manifest.chunk_bytes());
        WrapperLoad::Loaded {
            wrapper,
            quarantined,
        }
    }

    fn manifest_path_exists(&self, fingerprint: Digest) -> bool {
        self.root()
            .join("manifests")
            .join(format!("{}.json", fingerprint.to_hex()))
            .is_file()
    }
}

/// What a [`migrate_legacy_dir`] pass did.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct MigrateReport {
    /// Legacy monolithic snapshots converted to chunked form (and removed).
    pub migrated: usize,
    /// Legacy files that failed to parse or validate (quarantined as
    /// `.json.corrupt`).
    pub failed: usize,
    /// Chunks newly written across all migrations.
    pub chunks_written: usize,
}

impl MigrateReport {
    /// The report as a JSON object (the admin CLI's output format).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("migrated", Json::Num(self.migrated as f64)),
            ("failed", Json::Num(self.failed as f64)),
            ("chunks_written", Json::Num(self.chunks_written as f64)),
        ])
    }
}

/// Converts every legacy monolithic snapshot (`<fingerprint>.json` at the
/// store root, the pre-chunking engine format) into chunked form in place:
/// parse, validate the wrapper shell, [`ChunkStore::save_wrapper`], then
/// remove the legacy file (its contents live on, content-addressed).
/// Defective legacy files are quarantined rather than deleted.
pub fn migrate_legacy_dir(dir: &Path) -> io::Result<MigrateReport> {
    let store = ChunkStore::open(dir)?;
    let mut report = MigrateReport::default();
    let mut legacy: Vec<(Digest, std::path::PathBuf)> = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let Ok(metadata) = entry.metadata() else {
            continue;
        };
        if !metadata.is_file() {
            continue;
        }
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(stem) = name.strip_suffix(".json") else {
            continue;
        };
        if let Some(fingerprint) = Digest::from_hex(stem) {
            legacy.push((fingerprint, entry.path()));
        }
    }
    legacy.sort_by_key(|(fp, _)| fp.0);
    for (fingerprint, path) in legacy {
        let converted = std::fs::read_to_string(&path)
            .ok()
            .and_then(|text| hanoi_lang::json::parse(&text).ok())
            // The fingerprint in the file must match the file name, exactly
            // as the engine's own restore demands.
            .filter(|json| {
                json.get("fingerprint")
                    .and_then(Json::as_str)
                    .and_then(Digest::from_hex)
                    == Some(fingerprint)
            })
            .and_then(|json| store.save_wrapper(&json).ok());
        match converted {
            Some(save) => {
                report.migrated += 1;
                report.chunks_written += save.chunks_written;
                std::fs::remove_file(&path)?;
            }
            None => {
                report.failed += 1;
                let _ = std::fs::rename(&path, path.with_extension("json.corrupt"));
            }
        }
    }
    Ok(report)
}
