//! The content-addressed, chunked warm-start store.
//!
//! PR 5–7 made cold-start cost a *cache* problem — structural digests key
//! the check-outcome cache, the term banks and the pool-slab shapes, and the
//! engine persists them between processes — but persistence was one
//! monolithic JSON blob per problem fingerprint: all-or-nothing to restore,
//! impossible to share incrementally between hosts, and unbounded on disk.
//! This crate replaces the blob with a **content-addressed chunk store**:
//!
//! - Every snapshot is split into independently addressed **chunks** — the
//!   check cache by recency stripe ([`hanoi_verifier::CheckCache::split_snapshot`]),
//!   each term bank into a core (value/name/world tables) plus memo-table
//!   parts ([`hanoi_synth::TermBank::split_snapshot`]), and the pool-slab
//!   shapes as one chunk.  A chunk lives at `chunks/<digest>.json`, where
//!   the digest ([`hanoi_lang::digest::Digest::of_str`]) is computed over
//!   exactly the bytes in the file — so every read can re-hash and *prove*
//!   the chunk is what its name claims.
//! - A per-problem **manifest** at `manifests/<fingerprint>.json` lists, in
//!   assembly order, the `(section, chunk digest, bytes)` triples a restore
//!   needs.  Chunks shared between saves (or between problems) are stored
//!   once; a save whose older stripes did not move writes only the new
//!   chunks.
//! - A **store index** (`store_index.json`) carries a logical LRU clock:
//!   every save or restore stamps the problem's manifest, and the
//!   byte-budgeted GC evicts the least-recently-stamped manifests first.
//!   The index is advisory — a missing or corrupt index degrades to file
//!   mtimes, never to data loss.
//!
//! # Corruption isolation
//!
//! A chunk whose bytes no longer hash to its name is **quarantined**
//! (renamed to `<digest>.json.corrupt`) and the restore proceeds with the
//! remaining chunks: a tampered check stripe costs its few dozen memoized
//! outcomes, a tampered bank part costs its memo rows, a tampered bank core
//! costs that one bank — never the snapshot, and never correctness, because
//! every surviving component is validated by the same decoders a monolithic
//! restore uses.  Compare PR 7's whole-snapshot quarantine, which one
//! flipped byte anywhere could trigger.
//!
//! # GC liveness
//!
//! [`ChunkStore::gc`] deletes a chunk only when **no** manifest references
//! it, and a byte budget is enforced by deleting whole least-recently-used
//! *manifests* (then their newly orphaned chunks) — so a manifest that
//! survives GC always has every chunk it lists, and a restore that finds a
//! manifest can never be broken by a concurrent budget pass that respected
//! this order.  [`ChunkStore::merge_from`] maintains the same invariant
//! from the other side: chunks are copied *before* the manifest that
//! references them, so an interrupted merge leaves at worst unreferenced
//! chunks (collected by the next GC), never a live manifest with holes.
//!
//! # Fleet sync
//!
//! Two stores sync by manifest diff: [`ChunkStore::merge_from`] copies the
//! manifests the destination is missing (or holds an older version of) and
//! only the chunks those manifests need that the destination does not
//! already have.  The Nth process in a fleet therefore warms up by copying
//! deltas, not whole snapshots — see the `fleet_warm` workload of the
//! `cegis_hot_path` bench.  [`ChunkStore::sync`] is the bidirectional
//! convenience (pull, then push).
//!
//! The `hanoi-store` admin binary exposes `stats`, `verify`, `gc
//! --max-bytes`, `merge`, `sync` and `migrate` over these primitives.

#![warn(missing_docs)]

use std::collections::{BTreeMap, HashSet};
use std::io;
use std::path::{Path, PathBuf};

use hanoi_lang::digest::Digest;
use hanoi_lang::json::Json;
use hanoi_lang::util::{sync_dir, write_atomic};

mod snapshot;

pub use snapshot::{migrate_legacy_dir, MigrateReport, SaveReport, WrapperLoad};

/// The manifest / index format version written by this crate.
pub const STORE_VERSION: u64 = 1;

/// Check-cache entries per stripe chunk.  Small enough that an appending
/// save re-writes only the newest stripe; large enough that a big cache is
/// hundreds of chunks, not tens of thousands of files.
pub const STRIPE_LEN: usize = 64;

/// Memo-table rows per term-bank part chunk.
pub const ROWS_PER_PART: usize = 256;

/// Chunk files larger than this are treated as corrupt on load (a hostile
/// store cannot make a restore allocate unboundedly).
const MAX_CHUNK_BYTES: u64 = 64 * 1024 * 1024;

/// Manifest / index files larger than this are treated as corrupt.
const MAX_META_BYTES: u64 = 16 * 1024 * 1024;

/// One `(section, chunk, bytes)` row of a [`Manifest`], in assembly order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestEntry {
    /// Which snapshot section the chunk belongs to: `"checks"` (one per
    /// recency stripe), `"bank-core:<label>"` / `"bank-part:<label>"` per
    /// synthesizer back end, or `"shapes"`.
    pub section: String,
    /// The content address: the digest of the chunk file's exact bytes.
    pub chunk: Digest,
    /// The chunk's size in bytes, as written.
    pub bytes: u64,
}

/// A per-problem manifest: everything a restore needs, by content address.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// The problem fingerprint this manifest belongs to (also its file
    /// name).
    pub fingerprint: Digest,
    /// The engine wrapper format version the snapshot was saved under —
    /// carried through so the store never has to understand the wrapper.
    pub wrapper_version: u64,
    /// The engine wrapper `kind` tag, carried through like the version.
    pub wrapper_kind: String,
    /// The chunk list, in assembly order.
    pub entries: Vec<ManifestEntry>,
}

impl Manifest {
    /// Total bytes of the chunks this manifest references.
    pub fn chunk_bytes(&self) -> u64 {
        self.entries.iter().map(|e| e.bytes).sum()
    }

    fn to_json(&self) -> Json {
        Json::obj([
            ("version", Json::Num(STORE_VERSION as f64)),
            ("kind", Json::Str("hanoi-manifest".to_string())),
            ("fingerprint", Json::Str(self.fingerprint.to_hex())),
            ("wrapper_version", Json::Num(self.wrapper_version as f64)),
            ("wrapper_kind", Json::Str(self.wrapper_kind.clone())),
            (
                "chunks",
                Json::Arr(
                    self.entries
                        .iter()
                        .map(|e| {
                            Json::obj([
                                ("section", Json::Str(e.section.clone())),
                                ("chunk", Json::Str(e.chunk.to_hex())),
                                ("bytes", Json::Num(e.bytes as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    fn from_json(json: &Json) -> Option<Manifest> {
        if json.get("version").and_then(Json::as_usize)? as u64 != STORE_VERSION
            || json.get("kind").and_then(Json::as_str)? != "hanoi-manifest"
        {
            return None;
        }
        let fingerprint = Digest::from_hex(json.get("fingerprint").and_then(Json::as_str)?)?;
        let wrapper_version = json.get("wrapper_version").and_then(Json::as_usize)? as u64;
        let wrapper_kind = json.get("wrapper_kind").and_then(Json::as_str)?.to_string();
        let mut entries = Vec::new();
        for row in json.get("chunks").and_then(Json::as_arr)? {
            entries.push(ManifestEntry {
                section: row.get("section").and_then(Json::as_str)?.to_string(),
                chunk: Digest::from_hex(row.get("chunk").and_then(Json::as_str)?)?,
                bytes: row.get("bytes").and_then(Json::as_usize)? as u64,
            });
        }
        Some(Manifest {
            fingerprint,
            wrapper_version,
            wrapper_kind,
            entries,
        })
    }
}

/// The advisory LRU index: a logical clock plus one `(stamp, bytes)` pair
/// per manifest.  Purely an eviction-ordering aid — rebuilt from file
/// mtimes when missing or corrupt.
#[derive(Debug, Default)]
struct StoreIndex {
    clock: u64,
    entries: BTreeMap<String, (u64, u64)>,
}

impl StoreIndex {
    fn to_json(&self) -> Json {
        Json::obj([
            ("version", Json::Num(STORE_VERSION as f64)),
            ("kind", Json::Str("hanoi-store-index".to_string())),
            ("clock", Json::Num(self.clock as f64)),
            (
                "entries",
                Json::Arr(
                    self.entries
                        .iter()
                        .map(|(fp, (stamp, bytes))| {
                            Json::obj([
                                ("fingerprint", Json::Str(fp.clone())),
                                ("stamp", Json::Num(*stamp as f64)),
                                ("bytes", Json::Num(*bytes as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    fn from_json(json: &Json) -> Option<StoreIndex> {
        if json.get("version").and_then(Json::as_usize)? as u64 != STORE_VERSION
            || json.get("kind").and_then(Json::as_str)? != "hanoi-store-index"
        {
            return None;
        }
        let mut index = StoreIndex {
            clock: json.get("clock").and_then(Json::as_usize)? as u64,
            entries: BTreeMap::new(),
        };
        for row in json.get("entries").and_then(Json::as_arr)? {
            let fp = row.get("fingerprint").and_then(Json::as_str)?.to_string();
            let stamp = row.get("stamp").and_then(Json::as_usize)? as u64;
            let bytes = row.get("bytes").and_then(Json::as_usize)? as u64;
            index.entries.insert(fp, (stamp, bytes));
        }
        Some(index)
    }
}

/// Point-in-time store statistics, as reported by [`ChunkStore::stats`].
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct StoreStats {
    /// Live manifests (problems restorable from this store).
    pub manifests: usize,
    /// Live chunk files.
    pub chunks: usize,
    /// Total bytes across live chunk files.
    pub chunk_bytes: u64,
    /// Total bytes across manifest files.
    pub manifest_bytes: u64,
    /// Quarantined files (`*.corrupt`) awaiting diagnosis or GC.
    pub quarantined: usize,
    /// Legacy monolithic snapshots (`<fingerprint>.json` at the store root)
    /// that `hanoi-store migrate` would convert.
    pub legacy_snapshots: usize,
}

impl StoreStats {
    /// Total live bytes (chunks + manifests) — the quantity `gc --max-bytes`
    /// budgets.
    pub fn total_bytes(&self) -> u64 {
        self.chunk_bytes + self.manifest_bytes
    }

    /// The stats as a JSON object (the admin CLI's output format).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("manifests", Json::Num(self.manifests as f64)),
            ("chunks", Json::Num(self.chunks as f64)),
            ("chunk_bytes", Json::Num(self.chunk_bytes as f64)),
            ("manifest_bytes", Json::Num(self.manifest_bytes as f64)),
            ("total_bytes", Json::Num(self.total_bytes() as f64)),
            ("quarantined", Json::Num(self.quarantined as f64)),
            ("legacy_snapshots", Json::Num(self.legacy_snapshots as f64)),
        ])
    }
}

/// The outcome of a [`ChunkStore::verify`] sweep.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct VerifyReport {
    /// Chunks whose bytes re-hashed to their name.
    pub chunks_ok: usize,
    /// Chunks that failed the re-hash and were quarantined.
    pub chunks_quarantined: usize,
    /// Manifests whose every chunk exists and verified.
    pub manifests_ok: usize,
    /// Manifests referencing a missing or quarantined chunk (restores from
    /// them degrade to partial warmth), or unparseable manifest files
    /// (quarantined).
    pub manifests_broken: usize,
}

impl VerifyReport {
    /// The report as a JSON object (the admin CLI's output format).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("chunks_ok", Json::Num(self.chunks_ok as f64)),
            (
                "chunks_quarantined",
                Json::Num(self.chunks_quarantined as f64),
            ),
            ("manifests_ok", Json::Num(self.manifests_ok as f64)),
            ("manifests_broken", Json::Num(self.manifests_broken as f64)),
        ])
    }
}

/// The outcome of a [`ChunkStore::gc`] pass.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct GcReport {
    /// Unreferenced chunk files deleted.
    pub chunks_deleted: usize,
    /// Manifests evicted to meet the byte budget (LRU first).
    pub manifests_evicted: usize,
    /// Quarantined (`*.corrupt`) and leftover temporary files purged.
    pub debris_purged: usize,
    /// Total bytes freed.
    pub bytes_freed: u64,
    /// Live bytes remaining after the pass.
    pub bytes_remaining: u64,
}

impl GcReport {
    /// The report as a JSON object (the admin CLI's output format).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("chunks_deleted", Json::Num(self.chunks_deleted as f64)),
            (
                "manifests_evicted",
                Json::Num(self.manifests_evicted as f64),
            ),
            ("debris_purged", Json::Num(self.debris_purged as f64)),
            ("bytes_freed", Json::Num(self.bytes_freed as f64)),
            ("bytes_remaining", Json::Num(self.bytes_remaining as f64)),
        ])
    }
}

/// The outcome of a [`ChunkStore::merge_from`] (one direction of a sync).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct MergeReport {
    /// Manifests copied into the destination (new or updated).
    pub manifests_copied: usize,
    /// Manifests already present byte-identically (nothing transferred).
    pub manifests_unchanged: usize,
    /// Manifests skipped because a needed source chunk was missing or
    /// corrupt — the destination never receives a manifest with holes.
    pub manifests_skipped: usize,
    /// Chunks actually transferred (the delta).
    pub chunks_copied: usize,
    /// Bytes actually transferred — the headline fleet-sync number: for an
    /// incremental sync this is ≪ the full snapshot size.
    pub chunk_bytes_copied: u64,
}

impl MergeReport {
    /// The report as a JSON object (the admin CLI's output format).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("manifests_copied", Json::Num(self.manifests_copied as f64)),
            (
                "manifests_unchanged",
                Json::Num(self.manifests_unchanged as f64),
            ),
            (
                "manifests_skipped",
                Json::Num(self.manifests_skipped as f64),
            ),
            ("chunks_copied", Json::Num(self.chunks_copied as f64)),
            (
                "chunk_bytes_copied",
                Json::Num(self.chunk_bytes_copied as f64),
            ),
        ])
    }
}

/// The outcome of a chunk read.
#[derive(Debug)]
pub enum ChunkLoad {
    /// No chunk file with this digest exists.
    Missing,
    /// The file existed but its bytes did not hash to its name; it was
    /// renamed to `<digest>.json.corrupt`.
    Quarantined,
    /// The chunk verified and parsed.
    Loaded(Json),
}

/// A content-addressed chunk store rooted at one directory.
///
/// The root holds `chunks/`, `manifests/`, the advisory `store_index.json`,
/// and — read-compatibly — any legacy monolithic `<fingerprint>.json`
/// snapshots from before the chunked format (`hanoi-store migrate` converts
/// them in place).  All writes go through
/// [`hanoi_lang::util::write_atomic`], so concurrent readers (other engine
/// processes warm-starting from the same directory) never observe torn
/// files.
#[derive(Debug, Clone)]
pub struct ChunkStore {
    root: PathBuf,
}

impl ChunkStore {
    /// Opens (creating if necessary) the store rooted at `root`.
    pub fn open(root: impl AsRef<Path>) -> io::Result<ChunkStore> {
        let root = root.as_ref().to_path_buf();
        std::fs::create_dir_all(root.join("chunks"))?;
        std::fs::create_dir_all(root.join("manifests"))?;
        Ok(ChunkStore { root })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn chunks_dir(&self) -> PathBuf {
        self.root.join("chunks")
    }

    fn manifests_dir(&self) -> PathBuf {
        self.root.join("manifests")
    }

    fn chunk_path(&self, digest: Digest) -> PathBuf {
        self.chunks_dir().join(format!("{}.json", digest.to_hex()))
    }

    fn manifest_path(&self, fingerprint: Digest) -> PathBuf {
        self.manifests_dir()
            .join(format!("{}.json", fingerprint.to_hex()))
    }

    fn index_path(&self) -> PathBuf {
        self.root.join("store_index.json")
    }

    /// Writes `text` as a chunk named by its own digest.  Idempotent: an
    /// already-present chunk is not rewritten (content addressing makes the
    /// existing bytes provably identical).  Returns the digest, the chunk
    /// size, and whether the file was newly written.
    pub fn put_chunk(&self, text: &str) -> io::Result<(Digest, u64, bool)> {
        let digest = Digest::of_str(text);
        let path = self.chunk_path(digest);
        let bytes = text.len() as u64;
        if path.is_file() {
            return Ok((digest, bytes, false));
        }
        write_atomic(&path, text.as_bytes())?;
        Ok((digest, bytes, true))
    }

    /// Reads and *proves* a chunk: the file's bytes are re-hashed and must
    /// equal the digest in its name, else the file is quarantined
    /// (best-effort rename to `.corrupt`) and the caller proceeds without
    /// it.
    pub fn load_chunk(&self, digest: Digest) -> ChunkLoad {
        let path = self.chunk_path(digest);
        let Ok(metadata) = std::fs::metadata(&path) else {
            return ChunkLoad::Missing;
        };
        if !metadata.is_file() {
            return ChunkLoad::Missing;
        }
        let quarantine = || {
            let corrupt = path.with_extension("json.corrupt");
            let _ = std::fs::rename(&path, corrupt);
            ChunkLoad::Quarantined
        };
        if metadata.len() > MAX_CHUNK_BYTES {
            return quarantine();
        }
        let Ok(text) = std::fs::read_to_string(&path) else {
            return quarantine();
        };
        if Digest::of_str(&text) != digest {
            return quarantine();
        }
        match hanoi_lang::json::parse(&text) {
            // The digest matched, so these are exactly the bytes `put_chunk`
            // rendered — but a store is just a directory, and a foreign tool
            // could have content-addressed non-JSON into it.
            Ok(json) => ChunkLoad::Loaded(json),
            Err(_) => quarantine(),
        }
    }

    /// Writes `manifest` (atomically) and stamps it in the LRU index.
    pub fn put_manifest(&self, manifest: &Manifest) -> io::Result<()> {
        write_atomic(
            &self.manifest_path(manifest.fingerprint),
            manifest.to_json().render_pretty().as_bytes(),
        )?;
        self.touch(manifest.fingerprint, manifest.chunk_bytes());
        Ok(())
    }

    /// Reads the manifest for `fingerprint`.  `None` covers both absence and
    /// defect; a defective manifest file is quarantined so the next open
    /// does not re-parse the same broken bytes.
    pub fn manifest(&self, fingerprint: Digest) -> Option<Manifest> {
        let path = self.manifest_path(fingerprint);
        let metadata = std::fs::metadata(&path).ok().filter(|m| m.is_file())?;
        let parsed = (metadata.len() <= MAX_META_BYTES)
            .then(|| std::fs::read_to_string(&path).ok())
            .flatten()
            .and_then(|text| hanoi_lang::json::parse(&text).ok())
            .and_then(|json| Manifest::from_json(&json))
            // A renamed or copied manifest file must not answer for a
            // different problem.
            .filter(|m| m.fingerprint == fingerprint);
        if parsed.is_none() {
            let _ = std::fs::rename(&path, path.with_extension("json.corrupt"));
        }
        parsed
    }

    /// Whether a (parse-checked) manifest for `fingerprint` exists.
    pub fn has_manifest(&self, fingerprint: Digest) -> bool {
        self.manifest(fingerprint).is_some()
    }

    /// Every live manifest in the store, in fingerprint order.
    pub fn manifests(&self) -> Vec<Manifest> {
        let mut fingerprints: Vec<Digest> = list_json_stems(&self.manifests_dir())
            .into_iter()
            .filter_map(|stem| Digest::from_hex(&stem))
            .collect();
        fingerprints.sort_by_key(|d| d.0);
        fingerprints
            .into_iter()
            .filter_map(|fp| self.manifest(fp))
            .collect()
    }

    /// Point-in-time statistics over the store directory.
    pub fn stats(&self) -> StoreStats {
        let mut stats = StoreStats::default();
        for entry in read_dir_files(&self.chunks_dir()) {
            let name = entry.0;
            if name.ends_with(".corrupt") {
                stats.quarantined += 1;
            } else if name.ends_with(".json") {
                stats.chunks += 1;
                stats.chunk_bytes += entry.1;
            }
        }
        for entry in read_dir_files(&self.manifests_dir()) {
            let name = entry.0;
            if name.ends_with(".corrupt") {
                stats.quarantined += 1;
            } else if name.ends_with(".json") {
                stats.manifests += 1;
                stats.manifest_bytes += entry.1;
            }
        }
        for entry in read_dir_files(&self.root) {
            let name = entry.0;
            if name.ends_with(".corrupt") {
                stats.quarantined += 1;
            } else if let Some(stem) = name.strip_suffix(".json") {
                if Digest::from_hex(stem).is_some() {
                    stats.legacy_snapshots += 1;
                }
            }
        }
        stats
    }

    /// Re-hashes every chunk (quarantining mismatches) and checks every
    /// manifest's chunk list for holes.
    pub fn verify(&self) -> VerifyReport {
        let mut report = VerifyReport::default();
        for (name, _) in read_dir_files(&self.chunks_dir()) {
            let Some(stem) = name.strip_suffix(".json") else {
                continue;
            };
            let Some(digest) = Digest::from_hex(stem) else {
                continue;
            };
            match self.load_chunk(digest) {
                ChunkLoad::Loaded(_) => report.chunks_ok += 1,
                ChunkLoad::Quarantined => report.chunks_quarantined += 1,
                ChunkLoad::Missing => {}
            }
        }
        for stem in list_json_stems(&self.manifests_dir()) {
            let Some(fingerprint) = Digest::from_hex(&stem) else {
                continue;
            };
            match self.manifest(fingerprint) {
                Some(manifest) => {
                    if manifest
                        .entries
                        .iter()
                        .all(|e| self.chunk_path(e.chunk).is_file())
                    {
                        report.manifests_ok += 1;
                    } else {
                        report.manifests_broken += 1;
                    }
                }
                // `manifest()` quarantined the defective file.
                None => report.manifests_broken += 1,
            }
        }
        report
    }

    /// Garbage-collects the store: purges quarantined and temporary debris,
    /// deletes every chunk no live manifest references, and — when
    /// `max_bytes` is given — evicts whole least-recently-used manifests
    /// (then *their* newly orphaned chunks) until live bytes fit the
    /// budget.
    ///
    /// Liveness invariant: a chunk is deleted only when no surviving
    /// manifest lists it, and budget pressure removes the manifest *before*
    /// its chunks — so any manifest a subsequent restore finds still has
    /// every chunk it needs.
    pub fn gc(&self, max_bytes: Option<u64>) -> io::Result<GcReport> {
        let mut report = GcReport::default();
        // Debris first: quarantined files and interrupted-write leftovers.
        for dir in [self.chunks_dir(), self.manifests_dir(), self.root.clone()] {
            for (name, bytes) in read_dir_files(&dir) {
                if (name.ends_with(".corrupt") || name.ends_with(".tmp"))
                    && std::fs::remove_file(dir.join(&name)).is_ok()
                {
                    report.debris_purged += 1;
                    report.bytes_freed += bytes;
                }
            }
        }

        let mut manifests: Vec<(Manifest, u64)> = Vec::new();
        for stem in list_json_stems(&self.manifests_dir()) {
            let Some(fingerprint) = Digest::from_hex(&stem) else {
                continue;
            };
            // A defective manifest is quarantined by `manifest()`; its
            // now-unreferenced chunks fall out below.
            if let Some(manifest) = self.manifest(fingerprint) {
                let bytes = std::fs::metadata(self.manifest_path(fingerprint))
                    .map(|m| m.len())
                    .unwrap_or(0);
                manifests.push((manifest, bytes));
            }
        }
        let mut index = self.load_index();
        // LRU order: least-recently-stamped first; manifests the index does
        // not know (e.g. the index was lost) count as oldest, tie-broken by
        // fingerprint for determinism.
        manifests.sort_by_key(|(m, _)| {
            let stamp = index
                .entries
                .get(&m.fingerprint.to_hex())
                .map(|(stamp, _)| *stamp)
                .unwrap_or(0);
            (stamp, m.fingerprint.0)
        });

        let sweep_orphans = |live: &HashSet<Digest>, report: &mut GcReport| -> io::Result<()> {
            for (name, bytes) in read_dir_files(&self.chunks_dir()) {
                let Some(stem) = name.strip_suffix(".json") else {
                    continue;
                };
                let Some(digest) = Digest::from_hex(stem) else {
                    continue;
                };
                if !live.contains(&digest) {
                    std::fs::remove_file(self.chunks_dir().join(&name))?;
                    report.chunks_deleted += 1;
                    report.bytes_freed += bytes;
                }
            }
            Ok(())
        };

        let live: HashSet<Digest> = manifests
            .iter()
            .flat_map(|(m, _)| m.entries.iter().map(|e| e.chunk))
            .collect();
        sweep_orphans(&live, &mut report)?;

        if let Some(budget) = max_bytes {
            let chunk_sizes: BTreeMap<Digest, u64> = read_dir_files(&self.chunks_dir())
                .into_iter()
                .filter_map(|(name, bytes)| {
                    let stem = name.strip_suffix(".json")?;
                    Some((Digest::from_hex(stem)?, bytes))
                })
                .collect();
            let mut total: u64 = chunk_sizes.values().sum::<u64>()
                + manifests.iter().map(|(_, bytes)| *bytes).sum::<u64>();
            let mut evict_at = 0;
            while total > budget && evict_at < manifests.len() {
                // Evict the coldest manifest, then the chunks only it held
                // live.
                let (manifest, manifest_bytes) = &manifests[evict_at];
                evict_at += 1;
                std::fs::remove_file(self.manifest_path(manifest.fingerprint))?;
                index.entries.remove(&manifest.fingerprint.to_hex());
                report.manifests_evicted += 1;
                report.bytes_freed += manifest_bytes;
                total -= manifest_bytes;
                let live: HashSet<Digest> = manifests[evict_at..]
                    .iter()
                    .flat_map(|(m, _)| m.entries.iter().map(|e| e.chunk))
                    .collect();
                let before = report.bytes_freed;
                sweep_orphans(&live, &mut report)?;
                total = total.saturating_sub(report.bytes_freed - before);
            }
            report.bytes_remaining = total;
        } else {
            report.bytes_remaining = {
                let stats = self.stats();
                stats.total_bytes()
            };
        }
        self.store_index(&index);
        sync_dir(&self.chunks_dir());
        sync_dir(&self.manifests_dir());
        Ok(report)
    }

    /// Copies into `self` every manifest `src` has that `self` is missing or
    /// holds a different (by content) version of, transferring only the
    /// chunks `self` does not already have — the manifest-diff sync
    /// protocol.  Chunks are verified as they are read and land *before*
    /// the manifest referencing them; a source manifest with an unreadable
    /// chunk is skipped whole.
    pub fn merge_from(&self, src: &ChunkStore) -> io::Result<MergeReport> {
        let mut report = MergeReport::default();
        for manifest in src.manifests() {
            let ours = self.manifest(manifest.fingerprint);
            if ours.as_ref() == Some(&manifest) {
                report.manifests_unchanged += 1;
                continue;
            }
            // Chunks first (liveness: the manifest must never land with
            // holes).  Reading through `load_chunk` re-hashes, so corruption
            // in the source is detected here, not propagated.
            let mut complete = true;
            let mut copied = Vec::new();
            for entry in &manifest.entries {
                if self.chunk_path(entry.chunk).is_file() {
                    continue;
                }
                match src.load_chunk(entry.chunk) {
                    ChunkLoad::Loaded(json) => copied.push(json.render_pretty()),
                    ChunkLoad::Missing | ChunkLoad::Quarantined => {
                        complete = false;
                        break;
                    }
                }
            }
            if !complete {
                report.manifests_skipped += 1;
                continue;
            }
            for text in copied {
                let (_, bytes, new) = self.put_chunk(&text)?;
                if new {
                    report.chunks_copied += 1;
                    report.chunk_bytes_copied += bytes;
                }
            }
            self.put_manifest(&manifest)?;
            report.manifests_copied += 1;
        }
        sync_dir(&self.chunks_dir());
        sync_dir(&self.manifests_dir());
        Ok(report)
    }

    /// Bidirectional fleet sync: pull everything `remote` has that `self`
    /// lacks, then push the reverse.  Returns `(pulled, pushed)`.
    pub fn sync(&self, remote: &ChunkStore) -> io::Result<(MergeReport, MergeReport)> {
        let pulled = self.merge_from(remote)?;
        let pushed = remote.merge_from(self)?;
        Ok((pulled, pushed))
    }

    /// Stamps `fingerprint` as most recently used in the advisory LRU
    /// index.  Best-effort: an unwritable index never fails a save or a
    /// restore.
    pub fn touch(&self, fingerprint: Digest, bytes: u64) {
        let mut index = self.load_index();
        index.clock += 1;
        let stamp = index.clock;
        index.entries.insert(fingerprint.to_hex(), (stamp, bytes));
        self.store_index(&index);
    }

    fn load_index(&self) -> StoreIndex {
        std::fs::metadata(self.index_path())
            .ok()
            .filter(|m| m.is_file() && m.len() <= MAX_META_BYTES)
            .and_then(|_| std::fs::read_to_string(self.index_path()).ok())
            .and_then(|text| hanoi_lang::json::parse(&text).ok())
            .and_then(|json| StoreIndex::from_json(&json))
            .unwrap_or_default()
    }

    fn store_index(&self, index: &StoreIndex) {
        let _ = write_atomic(
            &self.index_path(),
            index.to_json().render_pretty().as_bytes(),
        );
    }
}

/// Lists `(file name, size)` for every plain file directly in `dir`.
fn read_dir_files(dir: &Path) -> Vec<(String, u64)> {
    let mut files = Vec::new();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return files;
    };
    for entry in entries.flatten() {
        let Ok(metadata) = entry.metadata() else {
            continue;
        };
        if !metadata.is_file() {
            continue;
        }
        if let Ok(name) = entry.file_name().into_string() {
            files.push((name, metadata.len()));
        }
    }
    files.sort();
    files
}

/// The stems of `*.json` files directly in `dir` (sorted).
fn list_json_stems(dir: &Path) -> Vec<String> {
    let mut stems: Vec<String> = read_dir_files(dir)
        .into_iter()
        .filter_map(|(name, _)| name.strip_suffix(".json").map(str::to_string))
        .collect();
    stems.sort();
    stems
}

#[cfg(test)]
mod tests {
    use super::*;
    use hanoi_synth::bank::GuessMemo;
    use hanoi_synth::TermBank;

    fn temp_store(tag: &str) -> ChunkStore {
        let dir = std::env::temp_dir().join(format!(
            "hanoi-store-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        ChunkStore::open(&dir).unwrap()
    }

    /// A realistic engine wrapper: empty check cache, one term bank with
    /// `memos` guess memos, no shapes.
    fn wrapper(fingerprint: Digest, memos: u64) -> Json {
        let bank = TermBank::new();
        for i in 0..memos {
            bank.guess_memo_put(
                Digest(i as u128 + 1),
                GuessMemo {
                    result: None,
                    terms: i,
                    splits: 0,
                    arith: 0,
                },
            );
        }
        Json::Obj(
            [
                ("version".to_string(), Json::Num(2.0)),
                ("kind".to_string(), Json::Str("hanoi-warm-start".into())),
                ("fingerprint".to_string(), Json::Str(fingerprint.to_hex())),
                (
                    "check_cache".to_string(),
                    Json::obj([
                        ("version", Json::Num(1.0)),
                        ("kind", Json::Str("check-cache".into())),
                        ("entries", Json::Arr(Vec::new())),
                    ]),
                ),
                (
                    "banks".to_string(),
                    Json::Obj(
                        [("fold".to_string(), bank.to_json().unwrap())]
                            .into_iter()
                            .collect(),
                    ),
                ),
                ("pool_shapes".to_string(), Json::Arr(Vec::new())),
            ]
            .into_iter()
            .collect(),
        )
    }

    #[test]
    fn chunks_round_trip_and_tampering_quarantines() {
        let store = temp_store("chunk");
        let (digest, bytes, new) = store.put_chunk("{\"hello\": 1}").unwrap();
        assert!(new);
        assert_eq!(bytes, 12);
        // Idempotent re-put.
        let (d2, _, new2) = store.put_chunk("{\"hello\": 1}").unwrap();
        assert_eq!(d2, digest);
        assert!(!new2);
        assert!(matches!(store.load_chunk(digest), ChunkLoad::Loaded(_)));

        // Tamper: the name no longer proves the bytes.
        std::fs::write(store.chunk_path(digest), "{\"hello\": 2}").unwrap();
        assert!(matches!(store.load_chunk(digest), ChunkLoad::Quarantined));
        // The defect was moved aside, not re-read forever.
        assert!(matches!(store.load_chunk(digest), ChunkLoad::Missing));
        assert!(store
            .chunks_dir()
            .join(format!("{}.json.corrupt", digest.to_hex()))
            .is_file());
    }

    #[test]
    fn wrappers_reassemble_byte_identically() {
        let store = temp_store("wrapper");
        let fingerprint = Digest(42);
        let original = wrapper(fingerprint, 10);
        let report = store.save_wrapper(&original).unwrap();
        assert!(report.chunks_total >= 3, "checks + bank core + shapes");
        assert_eq!(report.chunks_written, report.chunks_total);

        let WrapperLoad::Loaded {
            wrapper: restored,
            quarantined,
        } = store.load_wrapper(fingerprint)
        else {
            panic!("manifest must load");
        };
        assert_eq!(quarantined, 0);
        assert_eq!(restored.render_pretty(), original.render_pretty());
        // Unknown problems are simply missing.
        assert!(matches!(
            store.load_wrapper(Digest(7)),
            WrapperLoad::Missing
        ));
    }

    #[test]
    fn identical_saves_write_nothing_new() {
        let store = temp_store("incremental");
        let fingerprint = Digest(43);
        store.save_wrapper(&wrapper(fingerprint, 5)).unwrap();
        let again = store.save_wrapper(&wrapper(fingerprint, 5)).unwrap();
        assert_eq!(again.chunks_written, 0);
        assert_eq!(again.bytes_written, 0);
        // A grown snapshot shares its unchanged chunks.
        let grown = store.save_wrapper(&wrapper(fingerprint, 600)).unwrap();
        assert!(grown.chunks_written < grown.chunks_total);
    }

    #[test]
    fn merge_transfers_only_missing_chunks() {
        let a = temp_store("merge-a");
        let b = temp_store("merge-b");
        a.save_wrapper(&wrapper(Digest(1), 5)).unwrap();
        let full = b.merge_from(&a).unwrap();
        assert_eq!(full.manifests_copied, 1);
        assert!(full.chunk_bytes_copied > 0);

        // Nothing changed: the second sync is pure manifest comparison.
        let noop = b.merge_from(&a).unwrap();
        assert_eq!(noop.manifests_unchanged, 1);
        assert_eq!(noop.chunk_bytes_copied, 0);

        // One more problem in `a`: only its chunks travel.  The new wrapper
        // shares the empty check cache and shapes chunks with the first one,
        // so the delta is strictly smaller than a full copy.
        a.save_wrapper(&wrapper(Digest(2), 5)).unwrap();
        let delta = b.merge_from(&a).unwrap();
        assert_eq!(delta.manifests_copied, 1);
        assert!(delta.chunk_bytes_copied < full.chunk_bytes_copied);
        assert!(matches!(
            b.load_wrapper(Digest(2)),
            WrapperLoad::Loaded { quarantined: 0, .. }
        ));
    }

    #[test]
    fn merge_skips_manifests_with_corrupt_source_chunks() {
        let a = temp_store("merge-corrupt-a");
        let b = temp_store("merge-corrupt-b");
        a.save_wrapper(&wrapper(Digest(1), 5)).unwrap();
        let manifest = a.manifest(Digest(1)).unwrap();
        let victim = manifest.entries[0].chunk;
        std::fs::write(a.chunk_path(victim), "tampered").unwrap();
        let report = b.merge_from(&a).unwrap();
        assert_eq!(report.manifests_skipped, 1);
        assert_eq!(report.manifests_copied, 0);
        // The destination never received a manifest with holes.
        assert!(matches!(b.load_wrapper(Digest(1)), WrapperLoad::Missing));
    }

    #[test]
    fn gc_deletes_only_orphans_and_evicts_lru_under_budget() {
        let store = temp_store("gc");
        store.save_wrapper(&wrapper(Digest(1), 5)).unwrap();
        store.save_wrapper(&wrapper(Digest(2), 300)).unwrap();
        // An orphan chunk no manifest references, plus quarantine debris.
        store.put_chunk("\"orphan\"").unwrap();
        std::fs::write(store.chunks_dir().join("junk.json.corrupt"), "x").unwrap();

        let unbudgeted = store.gc(None).unwrap();
        assert_eq!(unbudgeted.chunks_deleted, 1);
        assert_eq!(unbudgeted.debris_purged, 1);
        assert_eq!(unbudgeted.manifests_evicted, 0);
        // Both problems still restore in full.
        for fp in [Digest(1), Digest(2)] {
            assert!(matches!(
                store.load_wrapper(fp),
                WrapperLoad::Loaded { quarantined: 0, .. }
            ));
        }

        // Touch problem 1 (the restore above already stamped both; stamp 1
        // again so 2 is the LRU), then squeeze: the budget fits one problem.
        assert!(matches!(
            store.load_wrapper(Digest(1)),
            WrapperLoad::Loaded { .. }
        ));
        let squeezed = store.gc(Some(2048)).unwrap();
        assert!(squeezed.manifests_evicted >= 1);
        assert!(squeezed.bytes_remaining <= 2048);
        // The survivor is whole; the evictee is gone, not broken.
        assert!(matches!(
            store.load_wrapper(Digest(1)),
            WrapperLoad::Loaded { quarantined: 0, .. }
        ));
        assert!(matches!(
            store.load_wrapper(Digest(2)),
            WrapperLoad::Missing
        ));
    }

    #[test]
    fn verify_reports_and_quarantines() {
        let store = temp_store("verify");
        store.save_wrapper(&wrapper(Digest(1), 5)).unwrap();
        let clean = store.verify();
        assert_eq!(clean.chunks_quarantined, 0);
        assert_eq!(clean.manifests_broken, 0);
        assert_eq!(clean.manifests_ok, 1);
        assert!(clean.chunks_ok >= 3);

        let manifest = store.manifest(Digest(1)).unwrap();
        std::fs::write(store.chunk_path(manifest.entries[0].chunk), "bad").unwrap();
        let dirty = store.verify();
        assert_eq!(dirty.chunks_quarantined, 1);
        assert_eq!(dirty.manifests_broken, 1);
        // The restore still proceeds, minus the quarantined chunk.
        assert!(matches!(
            store.load_wrapper(Digest(1)),
            WrapperLoad::Loaded { quarantined: 1, .. }
        ));
    }

    #[test]
    fn stats_count_the_store() {
        let store = temp_store("stats");
        assert_eq!(store.stats(), StoreStats::default());
        store.save_wrapper(&wrapper(Digest(1), 5)).unwrap();
        std::fs::write(
            store.root().join(format!("{}.json", Digest(9).to_hex())),
            "{}",
        )
        .unwrap();
        let stats = store.stats();
        assert_eq!(stats.manifests, 1);
        assert!(stats.chunks >= 3);
        assert!(stats.total_bytes() > 0);
        assert_eq!(stats.legacy_snapshots, 1);
        assert_eq!(stats.quarantined, 0);
    }

    #[test]
    fn migrate_converts_legacy_snapshots_in_place() {
        let store = temp_store("migrate");
        let fingerprint = Digest(77);
        let legacy = wrapper(fingerprint, 5);
        let path = store.root().join(format!("{}.json", fingerprint.to_hex()));
        std::fs::write(&path, legacy.render_pretty()).unwrap();
        // A defective legacy file rides along.
        let bad = store.root().join(format!("{}.json", Digest(78).to_hex()));
        std::fs::write(&bad, "not json").unwrap();

        let report = migrate_legacy_dir(store.root()).unwrap();
        assert_eq!(report.migrated, 1);
        assert_eq!(report.failed, 1);
        assert!(!path.is_file(), "migrated legacy file is removed");
        assert!(bad.with_extension("json.corrupt").is_file());
        let WrapperLoad::Loaded {
            wrapper: restored,
            quarantined,
        } = store.load_wrapper(fingerprint)
        else {
            panic!("migrated snapshot must load");
        };
        assert_eq!(quarantined, 0);
        assert_eq!(restored.render_pretty(), legacy.render_pretty());
    }

    #[test]
    fn corrupt_manifests_are_quarantined_not_fatal() {
        let store = temp_store("manifest-corrupt");
        store.save_wrapper(&wrapper(Digest(1), 5)).unwrap();
        std::fs::write(store.manifest_path(Digest(1)), "garbage").unwrap();
        assert!(matches!(
            store.load_wrapper(Digest(1)),
            WrapperLoad::Corrupt
        ));
        // Quarantined: the next open treats it as missing.
        assert!(matches!(
            store.load_wrapper(Digest(1)),
            WrapperLoad::Missing
        ));
    }
}
