//! The warm-start store admin tool.
//!
//! ```text
//! hanoi-store stats   <store-dir>
//! hanoi-store verify  <store-dir>
//! hanoi-store gc      <store-dir> [--max-bytes N]
//! hanoi-store merge   <src-dir> <dst-dir>
//! hanoi-store sync    <store-dir> <remote-dir>
//! hanoi-store migrate <store-dir>
//! ```
//!
//! Every subcommand prints one JSON object on stdout (machine-consumable —
//! the CI smoke job and `scripts/bench_trend` parse it) and exits non-zero
//! on I/O failure.  `verify` additionally exits with status 2 when it
//! quarantined chunks or found broken manifests, so scripts can gate on
//! store health.

use std::process::ExitCode;

use hanoi_store::{migrate_legacy_dir, ChunkStore};

fn usage() -> ExitCode {
    eprintln!(
        "usage: hanoi-store <stats|verify|gc|merge|sync|migrate> <dir> [<dir2>] [--max-bytes N]"
    );
    ExitCode::FAILURE
}

fn fail(context: &str, error: std::io::Error) -> ExitCode {
    eprintln!("hanoi-store: {context}: {error}");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        return usage();
    };
    let max_bytes_at = args.iter().position(|a| a == "--max-bytes");
    let max_bytes = max_bytes_at
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<u64>().ok());
    if max_bytes_at.is_some() && max_bytes.is_none() {
        return usage();
    }
    // Positional operands: everything after the subcommand that is neither
    // a flag nor the value consumed by one.
    let positional: Vec<&String> = args
        .iter()
        .enumerate()
        .skip(1)
        .filter(|(i, a)| !a.starts_with("--") && Some(i.wrapping_sub(1)) != max_bytes_at)
        .map(|(_, a)| a)
        .collect();

    let open = |dir: &String| ChunkStore::open(dir);
    match (command.as_str(), positional.as_slice()) {
        ("stats", [dir]) => match open(dir) {
            Ok(store) => {
                println!("{}", store.stats().to_json().render_pretty());
                ExitCode::SUCCESS
            }
            Err(e) => fail("open", e),
        },
        ("verify", [dir]) => match open(dir) {
            Ok(store) => {
                let report = store.verify();
                println!("{}", report.to_json().render_pretty());
                if report.chunks_quarantined > 0 || report.manifests_broken > 0 {
                    ExitCode::from(2)
                } else {
                    ExitCode::SUCCESS
                }
            }
            Err(e) => fail("open", e),
        },
        ("gc", [dir]) => match open(dir).and_then(|store| store.gc(max_bytes)) {
            Ok(report) => {
                println!("{}", report.to_json().render_pretty());
                ExitCode::SUCCESS
            }
            Err(e) => fail("gc", e),
        },
        ("merge", [src, dst]) => {
            let merged = open(src).and_then(|src| Ok((src, open(dst)?)));
            match merged.and_then(|(src, dst)| dst.merge_from(&src)) {
                Ok(report) => {
                    println!("{}", report.to_json().render_pretty());
                    ExitCode::SUCCESS
                }
                Err(e) => fail("merge", e),
            }
        }
        ("sync", [dir, remote]) => {
            let opened = open(dir).and_then(|local| Ok((local, open(remote)?)));
            match opened.and_then(|(local, remote)| local.sync(&remote)) {
                Ok((pulled, pushed)) => {
                    let combined = hanoi_lang::json::Json::obj([
                        ("pulled", pulled.to_json()),
                        ("pushed", pushed.to_json()),
                    ]);
                    println!("{}", combined.render_pretty());
                    ExitCode::SUCCESS
                }
                Err(e) => fail("sync", e),
            }
        }
        ("migrate", [dir]) => match migrate_legacy_dir(std::path::Path::new(dir)) {
            Ok(report) => {
                println!("{}", report.to_json().render_pretty());
                ExitCode::SUCCESS
            }
            Err(e) => fail("migrate", e),
        },
        _ => usage(),
    }
}
