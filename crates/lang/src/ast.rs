//! Abstract syntax: core expressions, patterns and surface-level program
//! items (data declarations, top-level bindings, interfaces, modules and
//! specifications).
//!
//! The core expression language is the first-order lambda calculus of §3.1
//! extended with the conveniences of the paper's implementation language
//! (§4.1): `match` over algebraic data, `let`, `if`, recursive functions and
//! builtin structural equality / boolean connectives.

use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

use crate::error::{LangError, TypeError};
use crate::eval::{Evaluator, Fuel};
use crate::symbol::Symbol;
use crate::typecheck::TypeChecker;
use crate::types::{DataDecl, Type, TypeEnv};
use crate::value::{Env, Value};

/// A pattern in a `match` arm.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Pattern {
    /// Matches anything, binds nothing.
    Wildcard,
    /// Matches anything, binds it to the given variable.
    Var(Symbol),
    /// Matches a constructor application.
    Ctor(Symbol, Vec<Pattern>),
    /// Matches a tuple.
    Tuple(Vec<Pattern>),
}

impl Pattern {
    /// Variable pattern.
    pub fn var(name: &str) -> Pattern {
        Pattern::Var(Symbol::new(name))
    }

    /// Constructor pattern.
    pub fn ctor(name: &str, args: Vec<Pattern>) -> Pattern {
        Pattern::Ctor(Symbol::new(name), args)
    }

    /// All variables bound by the pattern, in left-to-right order.
    pub fn bound_vars(&self) -> Vec<Symbol> {
        let mut out = Vec::new();
        self.collect_bound(&mut out);
        out
    }

    fn collect_bound(&self, out: &mut Vec<Symbol>) {
        match self {
            Pattern::Wildcard => {}
            Pattern::Var(x) => out.push(x.clone()),
            Pattern::Ctor(_, ps) | Pattern::Tuple(ps) => {
                ps.iter().for_each(|p| p.collect_bound(out))
            }
        }
    }
}

/// One arm of a `match` expression.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MatchArm {
    /// The pattern guarding the arm.
    pub pattern: Pattern,
    /// The arm body.
    pub body: Expr,
}

impl MatchArm {
    /// Creates a match arm.
    pub fn new(pattern: Pattern, body: Expr) -> Self {
        MatchArm { pattern, body }
    }
}

/// A lambda abstraction `fun (x : ty) -> body`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LambdaExpr {
    /// Parameter name.
    pub param: Symbol,
    /// Parameter type.
    pub param_ty: Type,
    /// Function body.
    pub body: Expr,
}

/// A recursive function `fix f (x : a) : r = body`; recursive occurrences of
/// `f` are in scope inside `body`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FixExpr {
    /// The function's own name, bound inside the body.
    pub name: Symbol,
    /// Parameter name.
    pub param: Symbol,
    /// Parameter type.
    pub param_ty: Type,
    /// Declared result type (the type of `body`).
    pub ret_ty: Type,
    /// Function body.
    pub body: Expr,
}

/// A core expression.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Expr {
    /// A variable reference.
    Var(Symbol),
    /// A resolved local-slot reference produced by [`crate::resolve`]: the
    /// `u32` is a de-Bruijn-style index into the interpreter's [`Locals`]
    /// stack (`0` = innermost binding), the [`Symbol`] is the original
    /// variable name, kept for display and diagnostics.  The parser never
    /// produces this variant; it only appears in bodies that went through
    /// the slot-resolution pass.
    ///
    /// [`Locals`]: crate::value::Locals
    Local(u32, Symbol),
    /// A saturated constructor application.
    Ctor(Symbol, Vec<Expr>),
    /// A tuple literal (`Tuple(vec![])` is the unit value).
    Tuple(Vec<Expr>),
    /// Projection of the `i`-th component of a tuple (0-based).
    Proj(usize, Box<Expr>),
    /// Function application.
    App(Box<Expr>, Box<Expr>),
    /// Lambda abstraction.
    Lambda(Arc<LambdaExpr>),
    /// Recursive function.
    Fix(Arc<FixExpr>),
    /// Pattern match.
    Match(Box<Expr>, Vec<MatchArm>),
    /// Let binding.
    Let(Symbol, Box<Expr>, Box<Expr>),
    /// Conditional over the builtin `bool` type.
    If(Box<Expr>, Box<Expr>, Box<Expr>),
    /// Builtin structural equality at a 0-order type; evaluates to `bool`.
    Eq(Box<Expr>, Box<Expr>),
    /// Short-circuiting conjunction.
    And(Box<Expr>, Box<Expr>),
    /// Short-circuiting disjunction.
    Or(Box<Expr>, Box<Expr>),
    /// Boolean negation.
    Not(Box<Expr>),
    /// A machine-integer literal of the builtin `int` type (surface syntax
    /// `#5` / `#-3`; bare decimal literals remain Peano-nat sugar).  Declared
    /// last so derived `Ord` keeps the historical variant ordering.
    Int(i64),
}

impl Expr {
    /// A variable reference.
    pub fn var(name: &str) -> Expr {
        Expr::Var(Symbol::new(name))
    }

    /// A constructor application.
    pub fn ctor(name: &str, args: Vec<Expr>) -> Expr {
        Expr::Ctor(Symbol::new(name), args)
    }

    /// A machine-integer literal.
    pub fn int(i: i64) -> Expr {
        Expr::Int(i)
    }

    /// The boolean literal `True`.
    pub fn tru() -> Expr {
        Expr::ctor("True", vec![])
    }

    /// The boolean literal `False`.
    pub fn fls() -> Expr {
        Expr::ctor("False", vec![])
    }

    /// Function application.
    pub fn app(f: Expr, arg: Expr) -> Expr {
        Expr::App(Box::new(f), Box::new(arg))
    }

    /// Applies `f` to several arguments, left-associatively.
    pub fn apps(f: Expr, args: impl IntoIterator<Item = Expr>) -> Expr {
        args.into_iter().fold(f, Expr::app)
    }

    /// Applies a named function to arguments.
    pub fn call(name: &str, args: impl IntoIterator<Item = Expr>) -> Expr {
        Expr::apps(Expr::var(name), args)
    }

    /// A lambda abstraction.
    pub fn lambda(param: &str, param_ty: Type, body: Expr) -> Expr {
        Expr::Lambda(Arc::new(LambdaExpr {
            param: Symbol::new(param),
            param_ty,
            body,
        }))
    }

    /// A recursive function.
    pub fn fix(name: &str, param: &str, param_ty: Type, ret_ty: Type, body: Expr) -> Expr {
        Expr::Fix(Arc::new(FixExpr {
            name: Symbol::new(name),
            param: Symbol::new(param),
            param_ty,
            ret_ty,
            body,
        }))
    }

    /// A match expression.
    pub fn match_(scrutinee: Expr, arms: Vec<MatchArm>) -> Expr {
        Expr::Match(Box::new(scrutinee), arms)
    }

    /// A let binding.
    pub fn let_(name: &str, bound: Expr, body: Expr) -> Expr {
        Expr::Let(Symbol::new(name), Box::new(bound), Box::new(body))
    }

    /// A conditional.
    pub fn if_(cond: Expr, then: Expr, els: Expr) -> Expr {
        Expr::If(Box::new(cond), Box::new(then), Box::new(els))
    }

    /// Structural equality.
    pub fn eq(a: Expr, b: Expr) -> Expr {
        Expr::Eq(Box::new(a), Box::new(b))
    }

    /// Conjunction.
    pub fn and(a: Expr, b: Expr) -> Expr {
        Expr::And(Box::new(a), Box::new(b))
    }

    /// Conjunction of arbitrarily many expressions (`True` when empty).
    pub fn and_all(es: impl IntoIterator<Item = Expr>) -> Expr {
        let mut iter = es.into_iter();
        match iter.next() {
            None => Expr::tru(),
            Some(first) => iter.fold(first, Expr::and),
        }
    }

    /// Disjunction.
    pub fn or(a: Expr, b: Expr) -> Expr {
        Expr::Or(Box::new(a), Box::new(b))
    }

    /// Negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(a: Expr) -> Expr {
        Expr::Not(Box::new(a))
    }

    /// The free variables of the expression.
    pub fn free_vars(&self) -> BTreeSet<Symbol> {
        let mut out = BTreeSet::new();
        self.free_vars_into(&mut BTreeSet::new(), &mut out);
        out
    }

    fn free_vars_into(&self, bound: &mut BTreeSet<Symbol>, out: &mut BTreeSet<Symbol>) {
        match self {
            Expr::Var(x) => {
                if !bound.contains(x) {
                    out.insert(x.clone());
                }
            }
            // A resolved slot points at a lexical binder by construction.
            Expr::Local(_, _) | Expr::Int(_) => {}
            Expr::Ctor(_, args) | Expr::Tuple(args) => {
                args.iter().for_each(|e| e.free_vars_into(bound, out))
            }
            Expr::Proj(_, e) | Expr::Not(e) => e.free_vars_into(bound, out),
            Expr::App(a, b) | Expr::Eq(a, b) | Expr::And(a, b) | Expr::Or(a, b) => {
                a.free_vars_into(bound, out);
                b.free_vars_into(bound, out);
            }
            Expr::If(c, t, e) => {
                c.free_vars_into(bound, out);
                t.free_vars_into(bound, out);
                e.free_vars_into(bound, out);
            }
            Expr::Lambda(l) => {
                let fresh = bound.insert(l.param.clone());
                l.body.free_vars_into(bound, out);
                if fresh {
                    bound.remove(&l.param);
                }
            }
            Expr::Fix(fx) => {
                let fresh_f = bound.insert(fx.name.clone());
                let fresh_x = bound.insert(fx.param.clone());
                fx.body.free_vars_into(bound, out);
                if fresh_x {
                    bound.remove(&fx.param);
                }
                if fresh_f {
                    bound.remove(&fx.name);
                }
            }
            Expr::Match(scrutinee, arms) => {
                scrutinee.free_vars_into(bound, out);
                for arm in arms {
                    let vars = arm.pattern.bound_vars();
                    let newly: Vec<Symbol> = vars
                        .into_iter()
                        .filter(|v| bound.insert(v.clone()))
                        .collect();
                    arm.body.free_vars_into(bound, out);
                    for v in newly {
                        bound.remove(&v);
                    }
                }
            }
            Expr::Let(x, bound_expr, body) => {
                bound_expr.free_vars_into(bound, out);
                let fresh = bound.insert(x.clone());
                body.free_vars_into(bound, out);
                if fresh {
                    bound.remove(x);
                }
            }
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        crate::pretty::fmt_expr(self, f)
    }
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        crate::pretty::fmt_pattern(self, f)
    }
}

/// A top-level `let` binding, possibly recursive and possibly with
/// parameters:
///
/// ```text
/// let rec lookup (l : list) (x : nat) : bool = ...
/// let empty : list = Nil
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopLet {
    /// Binding name.
    pub name: Symbol,
    /// Whether the binding may refer to itself.
    pub recursive: bool,
    /// Parameters (possibly empty for plain value bindings).
    pub params: Vec<(Symbol, Type)>,
    /// Declared result type (type of the body).
    pub ret_ty: Type,
    /// The body expression.
    pub body: Expr,
}

impl TopLet {
    /// The overall (curried) type of the binding.
    pub fn ty(&self) -> Type {
        Type::arrows(
            self.params.iter().map(|(_, t)| t.clone()),
            self.ret_ty.clone(),
        )
    }

    /// Converts the binding into a single core expression (a chain of lambdas
    /// or a `fix` whose body is a chain of lambdas).
    pub fn to_expr(&self) -> Expr {
        if !self.recursive || self.params.is_empty() {
            // Non-recursive bindings (or parameterless ones, which cannot
            // usefully recurse in a terminating CBV language) are plain
            // lambda chains.
            self.params
                .iter()
                .rev()
                .fold(self.body.clone(), |acc, (p, t)| {
                    Expr::lambda(p.as_str(), t.clone(), acc)
                })
        } else {
            let (first_param, first_ty) = &self.params[0];
            let inner = self.params[1..]
                .iter()
                .rev()
                .fold(self.body.clone(), |acc, (p, t)| {
                    Expr::lambda(p.as_str(), t.clone(), acc)
                });
            let inner_ret = Type::arrows(
                self.params[1..].iter().map(|(_, t)| t.clone()),
                self.ret_ty.clone(),
            );
            Expr::fix(
                self.name.as_str(),
                first_param.as_str(),
                first_ty.clone(),
                inner_ret,
                inner,
            )
        }
    }

    /// Applies the substitution `[t ↦ concrete]` to every type annotation in
    /// the binding (used when elaborating module bodies, where the abstract
    /// type is an alias for the concrete representation type).
    pub fn subst_abstract(&self, concrete: &Type) -> TopLet {
        fn subst_expr(e: &Expr, concrete: &Type) -> Expr {
            match e {
                Expr::Var(_) | Expr::Local(_, _) | Expr::Int(_) => e.clone(),
                Expr::Ctor(c, args) => Expr::Ctor(
                    c.clone(),
                    args.iter().map(|a| subst_expr(a, concrete)).collect(),
                ),
                Expr::Tuple(args) => {
                    Expr::Tuple(args.iter().map(|a| subst_expr(a, concrete)).collect())
                }
                Expr::Proj(i, e) => Expr::Proj(*i, Box::new(subst_expr(e, concrete))),
                Expr::App(a, b) => Expr::app(subst_expr(a, concrete), subst_expr(b, concrete)),
                Expr::Lambda(l) => Expr::Lambda(Arc::new(LambdaExpr {
                    param: l.param.clone(),
                    param_ty: l.param_ty.subst_abstract(concrete),
                    body: subst_expr(&l.body, concrete),
                })),
                Expr::Fix(fx) => Expr::Fix(Arc::new(FixExpr {
                    name: fx.name.clone(),
                    param: fx.param.clone(),
                    param_ty: fx.param_ty.subst_abstract(concrete),
                    ret_ty: fx.ret_ty.subst_abstract(concrete),
                    body: subst_expr(&fx.body, concrete),
                })),
                Expr::Match(s, arms) => Expr::Match(
                    Box::new(subst_expr(s, concrete)),
                    arms.iter()
                        .map(|arm| {
                            MatchArm::new(arm.pattern.clone(), subst_expr(&arm.body, concrete))
                        })
                        .collect(),
                ),
                Expr::Let(x, bound, body) => Expr::Let(
                    x.clone(),
                    Box::new(subst_expr(bound, concrete)),
                    Box::new(subst_expr(body, concrete)),
                ),
                Expr::If(c, t, e2) => Expr::if_(
                    subst_expr(c, concrete),
                    subst_expr(t, concrete),
                    subst_expr(e2, concrete),
                ),
                Expr::Eq(a, b) => Expr::eq(subst_expr(a, concrete), subst_expr(b, concrete)),
                Expr::And(a, b) => Expr::and(subst_expr(a, concrete), subst_expr(b, concrete)),
                Expr::Or(a, b) => Expr::or(subst_expr(a, concrete), subst_expr(b, concrete)),
                Expr::Not(a) => Expr::not(subst_expr(a, concrete)),
            }
        }
        TopLet {
            name: self.name.clone(),
            recursive: self.recursive,
            params: self
                .params
                .iter()
                .map(|(p, t)| (p.clone(), t.subst_abstract(concrete)))
                .collect(),
            ret_ty: self.ret_ty.subst_abstract(concrete),
            body: subst_expr(&self.body, concrete),
        }
    }
}

/// An interface declaration `interface NAME = sig type t val f : ... end`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InterfaceDecl {
    /// The interface name.
    pub name: Symbol,
    /// Operation signatures over the abstract type, in declaration order.
    pub vals: Vec<(Symbol, Type)>,
}

/// A module declaration `module NAME : IFACE = struct type t = ... <lets> end`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModuleDecl {
    /// The module name.
    pub name: Symbol,
    /// Name of the interface it claims to implement.
    pub interface: Symbol,
    /// The concrete representation type bound to `t`.
    pub concrete: Type,
    /// The module operations.
    pub lets: Vec<TopLet>,
}

/// A specification declaration `spec (s : t) (i : nat) = e`.  All parameters
/// are universally quantified; parameters of abstract type are the ones that
/// sufficiency counterexamples project onto (§2.2 of the paper).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecDecl {
    /// The quantified parameters.
    pub params: Vec<(Symbol, Type)>,
    /// The boolean body.
    pub body: Expr,
}

/// A single top-level item of a surface program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Item {
    /// A data type declaration.
    Data(DataDecl),
    /// A top-level (prelude) binding.
    Let(TopLet),
    /// An interface declaration.
    Interface(InterfaceDecl),
    /// A module declaration.
    Module(ModuleDecl),
    /// A specification.
    Spec(SpecDecl),
}

/// A parsed surface program: an ordered list of items.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Program {
    /// The items, in source order.
    pub items: Vec<Item>,
}

impl Program {
    /// All data declarations, in order.
    pub fn data_decls(&self) -> impl Iterator<Item = &DataDecl> {
        self.items.iter().filter_map(|i| match i {
            Item::Data(d) => Some(d),
            _ => None,
        })
    }

    /// All top-level (prelude) bindings, in order.
    pub fn top_lets(&self) -> impl Iterator<Item = &TopLet> {
        self.items.iter().filter_map(|i| match i {
            Item::Let(l) => Some(l),
            _ => None,
        })
    }

    /// The first interface declaration, if any.
    pub fn interface(&self) -> Option<&InterfaceDecl> {
        self.items.iter().find_map(|i| match i {
            Item::Interface(d) => Some(d),
            _ => None,
        })
    }

    /// The first module declaration, if any.
    pub fn module(&self) -> Option<&ModuleDecl> {
        self.items.iter().find_map(|i| match i {
            Item::Module(d) => Some(d),
            _ => None,
        })
    }

    /// The first specification, if any.
    pub fn spec(&self) -> Option<&SpecDecl> {
        self.items.iter().find_map(|i| match i {
            Item::Spec(d) => Some(d),
            _ => None,
        })
    }

    /// Type-checks the data declarations and prelude bindings and builds a
    /// global evaluation environment for them.
    ///
    /// Module, interface and specification items are carried through
    /// untouched; the `hanoi-abstraction` crate elaborates those.
    ///
    /// Prelude bindings are evaluated through the slot-resolution pass
    /// ([`crate::resolve`]), so the closures in the resulting environment run
    /// on the interpreter's indexed fast path.  Use
    /// [`Program::elaborate_with`] to opt out (the equivalence tests compare
    /// the two paths).
    pub fn elaborate(&self) -> Result<Elaborated, LangError> {
        self.elaborate_with(true)
    }

    /// [`Program::elaborate`] with explicit control over whether prelude
    /// closures are slot-resolved (`true`, the default) or evaluated with
    /// the historical name-based environment lookups (`false`).
    pub fn elaborate_with(&self, resolve_globals: bool) -> Result<Elaborated, LangError> {
        let mut tyenv = TypeEnv::new();
        for decl in self.data_decls() {
            tyenv.declare(decl.clone())?;
        }
        // `TypeChecker::new` pre-declares the machine-integer builtins
        // (`iadd`, `ile`, ...); here they also get their host-native *values*
        // bound beneath every prelude binding, so any surface program can use
        // them and user bindings may shadow them.
        let mut checker = TypeChecker::new(&tyenv);
        let mut globals = Env::empty();
        for (name, _, value) in crate::ints::builtins() {
            globals = globals.bind(name, value);
        }
        let mut lets = Vec::new();
        for top in self.top_lets() {
            let expr = top.to_expr();
            let declared = top.ty();
            checker.check_closed(&expr, &declared).map_err(|e| {
                LangError::Type(TypeError::Other(format!(
                    "in top-level binding `{}`: {e}",
                    top.name
                )))
            })?;
            let evaluator = Evaluator::new(&tyenv);
            let mut fuel = Fuel::new(1_000_000);
            let value = if resolve_globals {
                let resolved = crate::resolve::resolve(&expr);
                evaluator.eval_resolved(&globals, &resolved, &mut fuel)
            } else {
                evaluator.eval(&globals, &expr, &mut fuel)
            }
            .map_err(LangError::Eval)?;
            globals = globals.bind(top.name.clone(), value);
            checker.declare_global(top.name.clone(), declared);
            lets.push(top.clone());
        }
        Ok(Elaborated {
            tyenv,
            globals,
            lets,
            program: self.clone(),
        })
    }
}

/// The result of elaborating a surface program's data declarations and
/// prelude bindings.
#[derive(Debug, Clone)]
pub struct Elaborated {
    /// The type environment containing every declared data type.
    pub tyenv: TypeEnv,
    /// The global value environment containing every prelude binding.
    pub globals: Env,
    /// The elaborated prelude bindings, in order.
    pub lets: Vec<TopLet>,
    /// The original surface program.
    pub program: Program,
}

impl Elaborated {
    /// Calls a prelude function by name on the given (already evaluated)
    /// arguments.
    pub fn eval_call(&self, name: &str, args: &[Value]) -> Result<Value, LangError> {
        let evaluator = Evaluator::new(&self.tyenv);
        let f = self.globals.lookup(&Symbol::new(name)).ok_or_else(|| {
            LangError::Eval(crate::error::EvalError::UnboundVariable(Symbol::new(name)))
        })?;
        let mut fuel = Fuel::new(1_000_000);
        evaluator
            .apply_many(f.clone(), args, &mut fuel)
            .map_err(LangError::Eval)
    }

    /// The declared (curried) type of a prelude binding, if present.
    pub fn global_type(&self, name: &str) -> Option<Type> {
        self.lets
            .iter()
            .find(|l| l.name.as_str() == name)
            .map(TopLet::ty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_bound_vars_in_order() {
        let p = Pattern::ctor("Cons", vec![Pattern::var("hd"), Pattern::var("tl")]);
        let vars = p.bound_vars();
        assert_eq!(vars, vec![Symbol::new("hd"), Symbol::new("tl")]);
    }

    #[test]
    fn free_vars_respect_binders() {
        // fun (x : nat) -> plus x y
        let e = Expr::lambda(
            "x",
            Type::named("nat"),
            Expr::call("plus", [Expr::var("x"), Expr::var("y")]),
        );
        let fv = e.free_vars();
        assert!(fv.contains(&Symbol::new("plus")));
        assert!(fv.contains(&Symbol::new("y")));
        assert!(!fv.contains(&Symbol::new("x")));
    }

    #[test]
    fn free_vars_of_match_and_fix() {
        // fix len (l : list) : nat = match l with Nil -> O | Cons (h, t) -> S (len t)
        let e = Expr::fix(
            "len",
            "l",
            Type::named("list"),
            Type::named("nat"),
            Expr::match_(
                Expr::var("l"),
                vec![
                    MatchArm::new(Pattern::ctor("Nil", vec![]), Expr::ctor("O", vec![])),
                    MatchArm::new(
                        Pattern::ctor("Cons", vec![Pattern::var("h"), Pattern::var("t")]),
                        Expr::ctor("S", vec![Expr::call("len", [Expr::var("t")])]),
                    ),
                ],
            ),
        );
        assert!(e.free_vars().is_empty());
    }

    #[test]
    fn top_let_to_expr_builds_fix_for_recursive_functions() {
        let top = TopLet {
            name: Symbol::new("id"),
            recursive: true,
            params: vec![(Symbol::new("x"), Type::named("nat"))],
            ret_ty: Type::named("nat"),
            body: Expr::var("x"),
        };
        match top.to_expr() {
            Expr::Fix(fx) => {
                assert_eq!(fx.name, Symbol::new("id"));
                assert_eq!(fx.ret_ty, Type::named("nat"));
            }
            other => panic!("expected a fix, got {other:?}"),
        }
        assert_eq!(
            top.ty(),
            Type::arrow(Type::named("nat"), Type::named("nat"))
        );
    }

    #[test]
    fn top_let_to_expr_builds_lambdas_for_nonrecursive_functions() {
        let top = TopLet {
            name: Symbol::new("const_true"),
            recursive: false,
            params: vec![(Symbol::new("x"), Type::named("bool"))],
            ret_ty: Type::bool(),
            body: Expr::tru(),
        };
        assert!(matches!(top.to_expr(), Expr::Lambda(_)));
    }

    #[test]
    fn subst_abstract_rewrites_annotations() {
        let top = TopLet {
            name: Symbol::new("insert"),
            recursive: false,
            params: vec![
                (Symbol::new("s"), Type::Abstract),
                (Symbol::new("x"), Type::named("nat")),
            ],
            ret_ty: Type::Abstract,
            body: Expr::var("s"),
        };
        let substituted = top.subst_abstract(&Type::named("list"));
        assert_eq!(substituted.params[0].1, Type::named("list"));
        assert_eq!(substituted.ret_ty, Type::named("list"));
    }

    #[test]
    fn and_all_of_empty_is_true() {
        assert_eq!(Expr::and_all([]), Expr::tru());
    }
}
