//! Types and algebraic-data-type environments.
//!
//! The type language follows §3.1 of the paper: a base of declared
//! (monomorphic, possibly recursive) algebraic data types, a single
//! designated abstract type `α` (written `t` in the surface syntax of
//! interfaces), products, and first-order arrows.  "0-order" types (`σ`) are
//! those containing no arrows; module operations have "1st-order" types (`τ`)
//! whose argument positions are 0-order.  The implementation additionally
//! allows higher-order operation types (§4.2); helpers below classify types
//! accordingly.

use std::collections::HashMap;
use std::fmt;

use crate::error::TypeError;
use crate::symbol::Symbol;

/// The reserved name of the builtin machine-integer type.  `int` is not an
/// algebraic data type — it has no constructors and infinitely many values —
/// so it lives outside the [`TypeEnv`] declaration table and is special-cased
/// wherever declaredness or inhabitation is queried.
pub const INT_TYPE_NAME: &str = "int";

/// A type of the object language.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Type {
    /// A declared algebraic data type, referenced by name (e.g. `nat`, `bool`,
    /// `list`).
    Named(Symbol),
    /// The designated abstract type `α` (surface syntax `t`).  Only meaningful
    /// inside interface signatures and specifications; it is substituted away
    /// (see [`Type::subst_abstract`]) before type checking module bodies.
    Abstract,
    /// An n-ary product type.  `Tuple(vec![])` is the unit type.
    Tuple(Vec<Type>),
    /// A function type.
    Arrow(Box<Type>, Box<Type>),
}

impl Type {
    /// The builtin boolean type.
    pub fn bool() -> Type {
        Type::Named(Symbol::new("bool"))
    }

    /// A named type.
    pub fn named(name: &str) -> Type {
        Type::Named(Symbol::new(name))
    }

    /// The builtin machine-integer type.
    pub fn int() -> Type {
        Type::Named(Symbol::new(INT_TYPE_NAME))
    }

    /// Returns `true` if this is the builtin machine-integer type.
    pub fn is_int(&self) -> bool {
        matches!(self, Type::Named(n) if n.as_str() == INT_TYPE_NAME)
    }

    /// The unit type (empty tuple).
    pub fn unit() -> Type {
        Type::Tuple(Vec::new())
    }

    /// A function type `a -> b`.
    pub fn arrow(a: Type, b: Type) -> Type {
        Type::Arrow(Box::new(a), Box::new(b))
    }

    /// Builds the type `a1 -> a2 -> ... -> ret`.
    pub fn arrows(args: impl IntoIterator<Item = Type>, ret: Type) -> Type {
        let args: Vec<Type> = args.into_iter().collect();
        args.into_iter()
            .rev()
            .fold(ret, |acc, a| Type::arrow(a, acc))
    }

    /// A pair type.
    pub fn pair(a: Type, b: Type) -> Type {
        Type::Tuple(vec![a, b])
    }

    /// Returns `true` if the type contains no arrows ("0-order", `σ` in the
    /// paper).
    pub fn is_zero_order(&self) -> bool {
        match self {
            Type::Named(_) | Type::Abstract => true,
            Type::Tuple(ts) => ts.iter().all(Type::is_zero_order),
            Type::Arrow(_, _) => false,
        }
    }

    /// Returns `true` if the type is first-order in the paper's sense: every
    /// argument position of every arrow is 0-order.
    pub fn is_first_order(&self) -> bool {
        match self {
            Type::Named(_) | Type::Abstract => true,
            Type::Tuple(ts) => ts.iter().all(Type::is_first_order),
            Type::Arrow(a, b) => a.is_zero_order() && b.is_first_order(),
        }
    }

    /// Returns `true` if the abstract type occurs anywhere in this type.
    pub fn mentions_abstract(&self) -> bool {
        match self {
            Type::Abstract => true,
            Type::Named(_) => false,
            Type::Tuple(ts) => ts.iter().any(Type::mentions_abstract),
            Type::Arrow(a, b) => a.mentions_abstract() || b.mentions_abstract(),
        }
    }

    /// Substitutes the concrete type `concrete` for every occurrence of the
    /// abstract type (`τ[α ↦ τc]` in the paper).
    pub fn subst_abstract(&self, concrete: &Type) -> Type {
        match self {
            Type::Abstract => concrete.clone(),
            Type::Named(n) => Type::Named(n.clone()),
            Type::Tuple(ts) => Type::Tuple(ts.iter().map(|t| t.subst_abstract(concrete)).collect()),
            Type::Arrow(a, b) => {
                Type::arrow(a.subst_abstract(concrete), b.subst_abstract(concrete))
            }
        }
    }

    /// Splits a (possibly nullary) function type into its argument types and
    /// final return type: `a -> b -> c` becomes `([a, b], c)`.
    pub fn uncurry(&self) -> (Vec<&Type>, &Type) {
        let mut args = Vec::new();
        let mut cur = self;
        while let Type::Arrow(a, b) = cur {
            args.push(a.as_ref());
            cur = b.as_ref();
        }
        (args, cur)
    }

    /// Number of syntactic nodes in the type, used for diagnostics.
    pub fn size(&self) -> usize {
        match self {
            Type::Named(_) | Type::Abstract => 1,
            Type::Tuple(ts) => 1 + ts.iter().map(Type::size).sum::<usize>(),
            Type::Arrow(a, b) => 1 + a.size() + b.size(),
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn atom(t: &Type, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match t {
                Type::Named(n) => write!(f, "{n}"),
                Type::Abstract => f.write_str("t"),
                Type::Tuple(ts) if ts.is_empty() => f.write_str("unit"),
                _ => {
                    f.write_str("(")?;
                    fmt::Display::fmt(t, f)?;
                    f.write_str(")")
                }
            }
        }
        match self {
            Type::Named(_) | Type::Abstract => atom(self, f),
            Type::Tuple(ts) if ts.is_empty() => f.write_str("unit"),
            Type::Tuple(ts) => {
                for (i, t) in ts.iter().enumerate() {
                    if i > 0 {
                        f.write_str(" * ")?;
                    }
                    match t {
                        Type::Tuple(inner) if !inner.is_empty() => atom(t, f)?,
                        Type::Arrow(_, _) => atom(t, f)?,
                        _ => fmt::Display::fmt(t, f)?,
                    }
                }
                Ok(())
            }
            Type::Arrow(a, b) => {
                match a.as_ref() {
                    Type::Arrow(_, _) => atom(a, f)?,
                    _ => fmt::Display::fmt(a, f)?,
                }
                f.write_str(" -> ")?;
                fmt::Display::fmt(b, f)
            }
        }
    }
}

/// A single constructor declaration, e.g. `Cons of nat * list`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CtorDecl {
    /// The constructor name (capitalised by convention).
    pub name: Symbol,
    /// Argument types, in order.  Empty for nullary constructors.
    pub args: Vec<Type>,
}

impl CtorDecl {
    /// A new constructor declaration.
    pub fn new(name: &str, args: Vec<Type>) -> Self {
        CtorDecl {
            name: Symbol::new(name),
            args,
        }
    }

    /// Number of arguments of the constructor.
    pub fn arity(&self) -> usize {
        self.args.len()
    }
}

/// A data type declaration, e.g. `type list = Nil | Cons of nat * list`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataDecl {
    /// The declared type name.
    pub name: Symbol,
    /// Its constructors.
    pub ctors: Vec<CtorDecl>,
}

impl DataDecl {
    /// A new data type declaration.
    pub fn new(name: &str, ctors: Vec<CtorDecl>) -> Self {
        DataDecl {
            name: Symbol::new(name),
            ctors,
        }
    }

    /// The builtin `bool` declaration (`True | False`).
    pub fn builtin_bool() -> DataDecl {
        DataDecl::new(
            "bool",
            vec![
                CtorDecl::new("True", vec![]),
                CtorDecl::new("False", vec![]),
            ],
        )
    }
}

/// Everything the constructor environment knows about one constructor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CtorInfo {
    /// The data type the constructor belongs to.
    pub data_type: Symbol,
    /// Its argument types.
    pub args: Vec<Type>,
    /// Index of the constructor within its data type declaration.
    pub index: usize,
}

/// An environment of algebraic data type declarations, with a constructor
/// index for fast lookup.
///
/// The builtin `bool` type is always present.
#[derive(Debug, Clone, Default)]
pub struct TypeEnv {
    decls: Vec<DataDecl>,
    by_name: HashMap<Symbol, usize>,
    ctors: HashMap<Symbol, CtorInfo>,
}

impl TypeEnv {
    /// Creates a type environment containing only the builtin `bool` type.
    pub fn new() -> Self {
        let mut env = TypeEnv {
            decls: Vec::new(),
            by_name: HashMap::new(),
            ctors: HashMap::new(),
        };
        env.declare(DataDecl::builtin_bool())
            .expect("builtin bool declaration is well formed");
        env
    }

    /// Adds a data type declaration, failing on duplicate type or constructor
    /// names or references to unknown types in constructor arguments that are
    /// neither previously declared nor the type being declared (mutual
    /// recursion between distinct declarations is not supported, matching the
    /// paper's benchmarks).
    pub fn declare(&mut self, decl: DataDecl) -> Result<(), TypeError> {
        if self.by_name.contains_key(&decl.name) || decl.name.as_str() == INT_TYPE_NAME {
            return Err(TypeError::DuplicateDefinition(decl.name.clone()));
        }
        for ctor in &decl.ctors {
            if self.ctors.contains_key(&ctor.name) {
                return Err(TypeError::DuplicateDefinition(ctor.name.clone()));
            }
            for arg in &ctor.args {
                self.check_wellformed_with(arg, Some(&decl.name))?;
            }
        }
        let index = self.decls.len();
        self.by_name.insert(decl.name.clone(), index);
        for (i, ctor) in decl.ctors.iter().enumerate() {
            self.ctors.insert(
                ctor.name.clone(),
                CtorInfo {
                    data_type: decl.name.clone(),
                    args: ctor.args.clone(),
                    index: i,
                },
            );
        }
        self.decls.push(decl);
        Ok(())
    }

    /// All declarations, in declaration order (`bool` first).
    pub fn decls(&self) -> &[DataDecl] {
        &self.decls
    }

    /// Looks up a data type declaration by name.
    pub fn lookup(&self, name: &Symbol) -> Option<&DataDecl> {
        self.by_name.get(name).map(|&i| &self.decls[i])
    }

    /// Looks up constructor information by constructor name.
    pub fn ctor(&self, name: &Symbol) -> Option<&CtorInfo> {
        self.ctors.get(name)
    }

    /// Returns `true` if `name` is a declared data type (or the builtin
    /// `int`, which is always available).
    pub fn is_declared(&self, name: &Symbol) -> bool {
        self.by_name.contains_key(name) || name.as_str() == INT_TYPE_NAME
    }

    /// Checks that a type only references declared data types and contains no
    /// abstract type.
    pub fn check_wellformed(&self, ty: &Type) -> Result<(), TypeError> {
        self.check_wellformed_with(ty, None)
    }

    fn check_wellformed_with(&self, ty: &Type, pending: Option<&Symbol>) -> Result<(), TypeError> {
        match ty {
            Type::Named(n) => {
                if self.by_name.contains_key(n) || pending == Some(n) || n.as_str() == INT_TYPE_NAME
                {
                    Ok(())
                } else {
                    Err(TypeError::UnknownType(n.clone()))
                }
            }
            Type::Abstract => Err(TypeError::UnexpectedAbstractType(
                "data type declaration".to_string(),
            )),
            Type::Tuple(ts) => ts
                .iter()
                .try_for_each(|t| self.check_wellformed_with(t, pending)),
            Type::Arrow(a, b) => {
                self.check_wellformed_with(a, pending)?;
                self.check_wellformed_with(b, pending)
            }
        }
    }

    /// Returns `true` if the given 0-order type has at least one value that
    /// can be built in finitely many constructor applications.
    pub fn is_inhabited(&self, ty: &Type) -> bool {
        self.inhabited_inner(ty, &mut Vec::new())
    }

    fn inhabited_inner(&self, ty: &Type, visiting: &mut Vec<Symbol>) -> bool {
        match ty {
            Type::Abstract => false,
            Type::Arrow(_, _) => true,
            Type::Tuple(ts) => ts.iter().all(|t| self.inhabited_inner(t, visiting)),
            Type::Named(n) => {
                if n.as_str() == INT_TYPE_NAME {
                    return true;
                }
                if visiting.contains(n) {
                    return false;
                }
                let Some(decl) = self.lookup(n) else {
                    return false;
                };
                visiting.push(n.clone());
                let ok = decl
                    .ctors
                    .iter()
                    .any(|c| c.args.iter().all(|a| self.inhabited_inner(a, visiting)));
                visiting.pop();
                ok
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nat_list_env() -> TypeEnv {
        let mut env = TypeEnv::new();
        env.declare(DataDecl::new(
            "nat",
            vec![
                CtorDecl::new("O", vec![]),
                CtorDecl::new("S", vec![Type::named("nat")]),
            ],
        ))
        .unwrap();
        env.declare(DataDecl::new(
            "list",
            vec![
                CtorDecl::new("Nil", vec![]),
                CtorDecl::new("Cons", vec![Type::named("nat"), Type::named("list")]),
            ],
        ))
        .unwrap();
        env
    }

    #[test]
    fn builtin_bool_is_present() {
        let env = TypeEnv::new();
        assert!(env.is_declared(&Symbol::new("bool")));
        assert_eq!(
            env.ctor(&Symbol::new("True")).unwrap().data_type,
            Symbol::new("bool")
        );
    }

    #[test]
    fn declare_and_lookup() {
        let env = nat_list_env();
        assert_eq!(env.lookup(&Symbol::new("list")).unwrap().ctors.len(), 2);
        let cons = env.ctor(&Symbol::new("Cons")).unwrap();
        assert_eq!(cons.args.len(), 2);
        assert_eq!(cons.data_type, Symbol::new("list"));
    }

    #[test]
    fn duplicate_declaration_rejected() {
        let mut env = nat_list_env();
        let err = env
            .declare(DataDecl::new("nat", vec![CtorDecl::new("Z", vec![])]))
            .unwrap_err();
        assert_eq!(err, TypeError::DuplicateDefinition(Symbol::new("nat")));
        let err = env
            .declare(DataDecl::new("nat2", vec![CtorDecl::new("O", vec![])]))
            .unwrap_err();
        assert_eq!(err, TypeError::DuplicateDefinition(Symbol::new("O")));
    }

    #[test]
    fn unknown_argument_type_rejected() {
        let mut env = TypeEnv::new();
        let err = env
            .declare(DataDecl::new(
                "wrap",
                vec![CtorDecl::new("Wrap", vec![Type::named("zzz")])],
            ))
            .unwrap_err();
        assert_eq!(err, TypeError::UnknownType(Symbol::new("zzz")));
    }

    #[test]
    fn recursive_declaration_allowed() {
        let env = nat_list_env();
        assert!(env.is_declared(&Symbol::new("nat")));
    }

    #[test]
    fn order_classification() {
        let nat = Type::named("nat");
        let t1 = Type::arrow(nat.clone(), Type::bool());
        assert!(nat.is_zero_order());
        assert!(!t1.is_zero_order());
        assert!(t1.is_first_order());
        let higher = Type::arrow(t1.clone(), Type::bool());
        assert!(!higher.is_first_order());
        assert!(Type::pair(nat.clone(), nat.clone()).is_zero_order());
    }

    #[test]
    fn abstract_substitution() {
        let sig = Type::arrows(vec![Type::Abstract, Type::named("nat")], Type::Abstract);
        let concrete = sig.subst_abstract(&Type::named("list"));
        assert_eq!(
            concrete,
            Type::arrows(
                vec![Type::named("list"), Type::named("nat")],
                Type::named("list")
            )
        );
        assert!(sig.mentions_abstract());
        assert!(!concrete.mentions_abstract());
    }

    #[test]
    fn uncurry_splits_arrows() {
        let ty = Type::arrows(vec![Type::named("nat"), Type::bool()], Type::named("list"));
        let (args, ret) = ty.uncurry();
        assert_eq!(args.len(), 2);
        assert_eq!(ret, &Type::named("list"));
    }

    #[test]
    fn display_round_trips_shapes() {
        let ty = Type::arrow(
            Type::pair(Type::named("nat"), Type::named("nat")),
            Type::arrow(Type::named("nat"), Type::bool()),
        );
        assert_eq!(ty.to_string(), "nat * nat -> nat -> bool");
        let ho = Type::arrow(
            Type::arrow(Type::named("nat"), Type::named("nat")),
            Type::bool(),
        );
        assert_eq!(ho.to_string(), "(nat -> nat) -> bool");
    }

    #[test]
    fn inhabitedness() {
        let env = nat_list_env();
        assert!(env.is_inhabited(&Type::named("nat")));
        assert!(env.is_inhabited(&Type::named("list")));
        let mut env2 = TypeEnv::new();
        env2.declare(DataDecl::new(
            "stream",
            vec![CtorDecl::new(
                "SCons",
                vec![Type::named("bool"), Type::named("stream")],
            )],
        ))
        .unwrap();
        assert!(!env2.is_inhabited(&Type::named("stream")));
    }
}
