//! A fuel-limited, environment-based, call-by-value interpreter.
//!
//! The object language itself is intended to be terminating, but the
//! inference loop executes *synthesized* candidate invariants and enumerated
//! higher-order arguments, which may diverge.  Every evaluation therefore
//! carries a [`Fuel`] budget; exhausting it is reported as
//! [`EvalError::OutOfFuel`] and treated by callers as "this candidate
//! misbehaves".

use std::sync::Arc;

use crate::ast::{Expr, MatchArm, Pattern};
use crate::error::EvalError;
use crate::types::TypeEnv;
use crate::value::{Closure, Env, Locals, NativeFn, Value};

/// A step budget for one evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fuel {
    remaining: u64,
    initial: u64,
    max_depth: u32,
}

/// Default bound on the depth of nested evaluation (protects the host stack
/// from divergent synthesized candidates before the step budget runs out).
pub const DEFAULT_MAX_DEPTH: u32 = 300;

impl Fuel {
    /// A budget of `n` evaluation steps with the default depth bound.
    pub fn new(n: u64) -> Fuel {
        Fuel {
            remaining: n,
            initial: n,
            max_depth: DEFAULT_MAX_DEPTH,
        }
    }

    /// Overrides the maximum nesting depth of evaluation.
    pub fn with_max_depth(mut self, max_depth: u32) -> Fuel {
        self.max_depth = max_depth;
        self
    }

    /// The default budget used by most callers (large enough for every
    /// benchmark module operation at the verifier's size bounds).
    pub fn standard() -> Fuel {
        Fuel::new(200_000)
    }

    /// Steps still available.
    pub fn remaining(&self) -> u64 {
        self.remaining
    }

    /// Steps consumed so far.
    pub fn used(&self) -> u64 {
        self.initial - self.remaining
    }

    /// Consumes one step and checks the depth bound.
    fn tick(&mut self, depth: u32) -> Result<(), EvalError> {
        if self.remaining == 0 || depth > self.max_depth {
            Err(EvalError::OutOfFuel)
        } else {
            self.remaining -= 1;
            Ok(())
        }
    }
}

/// The interpreter.
#[derive(Debug, Clone, Copy)]
pub struct Evaluator<'a> {
    tyenv: &'a TypeEnv,
}

impl<'a> Evaluator<'a> {
    /// Creates an interpreter over the given data type environment.
    pub fn new(tyenv: &'a TypeEnv) -> Self {
        Evaluator { tyenv }
    }

    /// The data type environment the interpreter was created with.
    pub fn tyenv(&self) -> &'a TypeEnv {
        self.tyenv
    }

    /// Evaluates `expr` in `env`.
    pub fn eval(&self, env: &Env, expr: &Expr, fuel: &mut Fuel) -> Result<Value, EvalError> {
        self.eval_at(env, expr, fuel, 0)
    }

    fn eval_at(
        &self,
        env: &Env,
        expr: &Expr,
        fuel: &mut Fuel,
        depth: u32,
    ) -> Result<Value, EvalError> {
        fuel.tick(depth)?;
        match expr {
            Expr::Var(x) => env
                .lookup(x)
                .cloned()
                .ok_or_else(|| EvalError::UnboundVariable(x.clone())),
            // Slot references need the resolved-mode evaluator (which carries
            // the Locals stack); reaching one here means a resolved body was
            // evaluated through the name-based entry point.
            Expr::Local(_, x) => Err(EvalError::Other(format!(
                "slot reference `{x}` evaluated outside resolved mode"
            ))),
            Expr::Int(i) => Ok(Value::Int(*i)),
            Expr::Ctor(c, args) => {
                if let Some(info) = self.tyenv.ctor(c) {
                    if info.args.len() != args.len() {
                        return Err(EvalError::Other(format!(
                            "constructor `{c}` applied to {} argument(s), expected {}",
                            args.len(),
                            info.args.len()
                        )));
                    }
                }
                let mut values = Vec::with_capacity(args.len());
                for a in args {
                    values.push(self.eval_at(env, a, fuel, depth + 1)?);
                }
                Ok(Value::Ctor(c.clone(), values.into()))
            }
            Expr::Tuple(args) => {
                let mut values = Vec::with_capacity(args.len());
                for a in args {
                    values.push(self.eval_at(env, a, fuel, depth + 1)?);
                }
                Ok(Value::Tuple(values.into()))
            }
            Expr::Proj(i, e) => {
                let v = self.eval_at(env, e, fuel, depth + 1)?;
                match v {
                    Value::Tuple(items) if *i < items.len() => Ok(items[*i].clone()),
                    other => Err(EvalError::BadProjection(other.to_string())),
                }
            }
            Expr::App(f, arg) => {
                let fv = self.eval_at(env, f, fuel, depth + 1)?;
                let av = self.eval_at(env, arg, fuel, depth + 1)?;
                self.apply_at(fv, av, fuel, depth + 1)
            }
            Expr::Lambda(l) => Ok(Value::Closure(Arc::new(Closure::by_name(
                l.param.clone(),
                l.body.clone(),
                env.clone(),
                None,
            )))),
            Expr::Fix(fx) => Ok(Value::Closure(Arc::new(Closure::by_name(
                fx.param.clone(),
                fx.body.clone(),
                env.clone(),
                Some(fx.name.clone()),
            )))),
            Expr::Match(scrutinee, arms) => {
                let v = self.eval_at(env, scrutinee, fuel, depth + 1)?;
                self.eval_match(env, &v, arms, fuel, depth + 1)
            }
            Expr::Let(x, bound, body) => {
                let bv = self.eval_at(env, bound, fuel, depth + 1)?;
                let env2 = env.bind(x.clone(), bv);
                self.eval_at(&env2, body, fuel, depth + 1)
            }
            Expr::If(cond, then, els) => {
                let cv = self.eval_at(env, cond, fuel, depth + 1)?;
                match cv.as_bool() {
                    Some(true) => self.eval_at(env, then, fuel, depth + 1),
                    Some(false) => self.eval_at(env, els, fuel, depth + 1),
                    None => Err(EvalError::NotABool(cv.to_string())),
                }
            }
            Expr::Eq(a, b) => {
                let av = self.eval_at(env, a, fuel, depth + 1)?;
                let bv = self.eval(env, b, fuel)?;
                if !av.is_first_order() || !bv.is_first_order() {
                    return Err(EvalError::EqualityOnClosure);
                }
                Ok(Value::bool(av == bv))
            }
            Expr::And(a, b) => {
                let av = self.eval_at(env, a, fuel, depth + 1)?;
                match av.as_bool() {
                    Some(false) => Ok(Value::fls()),
                    Some(true) => {
                        let bv = self.eval(env, b, fuel)?;
                        bv.as_bool()
                            .map(Value::bool)
                            .ok_or_else(|| EvalError::NotABool(bv.to_string()))
                    }
                    None => Err(EvalError::NotABool(av.to_string())),
                }
            }
            Expr::Or(a, b) => {
                let av = self.eval_at(env, a, fuel, depth + 1)?;
                match av.as_bool() {
                    Some(true) => Ok(Value::tru()),
                    Some(false) => {
                        let bv = self.eval(env, b, fuel)?;
                        bv.as_bool()
                            .map(Value::bool)
                            .ok_or_else(|| EvalError::NotABool(bv.to_string()))
                    }
                    None => Err(EvalError::NotABool(av.to_string())),
                }
            }
            Expr::Not(a) => {
                let av = self.eval_at(env, a, fuel, depth + 1)?;
                av.as_bool()
                    .map(|b| Value::bool(!b))
                    .ok_or_else(|| EvalError::NotABool(av.to_string()))
            }
        }
    }

    fn eval_match(
        &self,
        env: &Env,
        scrutinee: &Value,
        arms: &[MatchArm],
        fuel: &mut Fuel,
        depth: u32,
    ) -> Result<Value, EvalError> {
        for arm in arms {
            if let Some(env2) = Self::match_pattern(&arm.pattern, scrutinee, env) {
                return self.eval_at(&env2, &arm.body, fuel, depth);
            }
        }
        Err(EvalError::MatchFailure(scrutinee.to_string()))
    }

    /// Attempts to match `value` against `pattern`, extending `env` with the
    /// pattern's bindings on success.
    pub fn match_pattern(pattern: &Pattern, value: &Value, env: &Env) -> Option<Env> {
        match (pattern, value) {
            (Pattern::Wildcard, _) => Some(env.clone()),
            (Pattern::Var(x), v) => Some(env.bind(x.clone(), v.clone())),
            (Pattern::Ctor(c, ps), Value::Ctor(vc, vs)) if c == vc && ps.len() == vs.len() => {
                let mut cur = env.clone();
                for (p, v) in ps.iter().zip(vs.iter()) {
                    cur = Self::match_pattern(p, v, &cur)?;
                }
                Some(cur)
            }
            (Pattern::Tuple(ps), Value::Tuple(vs)) if ps.len() == vs.len() => {
                let mut cur = env.clone();
                for (p, v) in ps.iter().zip(vs.iter()) {
                    cur = Self::match_pattern(p, v, &cur)?;
                }
                Some(cur)
            }
            _ => None,
        }
    }

    /// Evaluates a slot-resolved expression (see [`crate::resolve`]) in
    /// `env`, starting from an empty local-slot stack.
    ///
    /// This is the interpreter's fast path: lexically-bound variables are
    /// read from a [`Locals`] stack by index instead of walking the
    /// environment chain by name.  Evaluation order, fuel consumption and
    /// results are identical to [`Evaluator::eval`] on the unresolved
    /// expression.
    pub fn eval_resolved(
        &self,
        env: &Env,
        expr: &Expr,
        fuel: &mut Fuel,
    ) -> Result<Value, EvalError> {
        // An unresolved expression evaluated here would silently read
        // same-named *globals* where it meant lexically-bound locals
        // (resolved-mode `let`/`match` never extend `env`).  Resolution is
        // idempotent, so a properly resolved expression is a fixed point.
        debug_assert!(
            crate::resolve::resolve(expr) == *expr,
            "eval_resolved requires a slot-resolved expression \
             (run hanoi_lang::resolve::resolve first)"
        );
        self.eval_res_at(env, &Locals::empty(), expr, fuel, 0)
    }

    /// Resolved-mode twin of [`Evaluator::eval_at`]: every arm mirrors the
    /// name-based evaluator's recursion (including depth resets on the right
    /// operands of `==`/`&&`/`||`) so the two paths consume fuel
    /// identically.
    fn eval_res_at(
        &self,
        env: &Env,
        locals: &Locals,
        expr: &Expr,
        fuel: &mut Fuel,
        depth: u32,
    ) -> Result<Value, EvalError> {
        fuel.tick(depth)?;
        match expr {
            Expr::Local(slot, x) => locals
                .get(*slot)
                .cloned()
                .ok_or_else(|| EvalError::UnboundVariable(x.clone())),
            // Free (global) variables keep their name-based lookup.
            Expr::Var(x) => env
                .lookup(x)
                .cloned()
                .ok_or_else(|| EvalError::UnboundVariable(x.clone())),
            Expr::Int(i) => Ok(Value::Int(*i)),
            Expr::Ctor(c, args) => {
                if let Some(info) = self.tyenv.ctor(c) {
                    if info.args.len() != args.len() {
                        return Err(EvalError::Other(format!(
                            "constructor `{c}` applied to {} argument(s), expected {}",
                            args.len(),
                            info.args.len()
                        )));
                    }
                }
                let mut values = Vec::with_capacity(args.len());
                for a in args {
                    values.push(self.eval_res_at(env, locals, a, fuel, depth + 1)?);
                }
                Ok(Value::Ctor(c.clone(), values.into()))
            }
            Expr::Tuple(args) => {
                let mut values = Vec::with_capacity(args.len());
                for a in args {
                    values.push(self.eval_res_at(env, locals, a, fuel, depth + 1)?);
                }
                Ok(Value::Tuple(values.into()))
            }
            Expr::Proj(i, e) => {
                let v = self.eval_res_at(env, locals, e, fuel, depth + 1)?;
                match v {
                    Value::Tuple(items) if *i < items.len() => Ok(items[*i].clone()),
                    other => Err(EvalError::BadProjection(other.to_string())),
                }
            }
            Expr::App(f, arg) => {
                let fv = self.eval_res_at(env, locals, f, fuel, depth + 1)?;
                let av = self.eval_res_at(env, locals, arg, fuel, depth + 1)?;
                self.apply_at(fv, av, fuel, depth + 1)
            }
            Expr::Lambda(l) => Ok(Value::Closure(Arc::new(Closure {
                param: l.param.clone(),
                body: l.body.clone(),
                env: env.clone(),
                rec_name: None,
                locals: locals.clone(),
                resolved: true,
            }))),
            Expr::Fix(fx) => Ok(Value::Closure(Arc::new(Closure {
                param: fx.param.clone(),
                body: fx.body.clone(),
                env: env.clone(),
                rec_name: Some(fx.name.clone()),
                locals: locals.clone(),
                resolved: true,
            }))),
            Expr::Match(scrutinee, arms) => {
                let v = self.eval_res_at(env, locals, scrutinee, fuel, depth + 1)?;
                for arm in arms {
                    let mut chunk = Vec::new();
                    if Self::match_pattern_collect(&arm.pattern, &v, &mut chunk) {
                        let locals = locals.push_chunk(chunk);
                        return self.eval_res_at(env, &locals, &arm.body, fuel, depth + 1);
                    }
                }
                Err(EvalError::MatchFailure(v.to_string()))
            }
            Expr::Let(_, bound, body) => {
                let bv = self.eval_res_at(env, locals, bound, fuel, depth + 1)?;
                let locals = locals.push_chunk(vec![bv]);
                self.eval_res_at(env, &locals, body, fuel, depth + 1)
            }
            Expr::If(cond, then, els) => {
                let cv = self.eval_res_at(env, locals, cond, fuel, depth + 1)?;
                match cv.as_bool() {
                    Some(true) => self.eval_res_at(env, locals, then, fuel, depth + 1),
                    Some(false) => self.eval_res_at(env, locals, els, fuel, depth + 1),
                    None => Err(EvalError::NotABool(cv.to_string())),
                }
            }
            Expr::Eq(a, b) => {
                let av = self.eval_res_at(env, locals, a, fuel, depth + 1)?;
                let bv = self.eval_res_at(env, locals, b, fuel, 0)?;
                if !av.is_first_order() || !bv.is_first_order() {
                    return Err(EvalError::EqualityOnClosure);
                }
                Ok(Value::bool(av == bv))
            }
            Expr::And(a, b) => {
                let av = self.eval_res_at(env, locals, a, fuel, depth + 1)?;
                match av.as_bool() {
                    Some(false) => Ok(Value::fls()),
                    Some(true) => {
                        let bv = self.eval_res_at(env, locals, b, fuel, 0)?;
                        bv.as_bool()
                            .map(Value::bool)
                            .ok_or_else(|| EvalError::NotABool(bv.to_string()))
                    }
                    None => Err(EvalError::NotABool(av.to_string())),
                }
            }
            Expr::Or(a, b) => {
                let av = self.eval_res_at(env, locals, a, fuel, depth + 1)?;
                match av.as_bool() {
                    Some(true) => Ok(Value::tru()),
                    Some(false) => {
                        let bv = self.eval_res_at(env, locals, b, fuel, 0)?;
                        bv.as_bool()
                            .map(Value::bool)
                            .ok_or_else(|| EvalError::NotABool(bv.to_string()))
                    }
                    None => Err(EvalError::NotABool(av.to_string())),
                }
            }
            Expr::Not(a) => {
                let av = self.eval_res_at(env, locals, a, fuel, depth + 1)?;
                av.as_bool()
                    .map(|b| Value::bool(!b))
                    .ok_or_else(|| EvalError::NotABool(av.to_string()))
            }
        }
    }

    /// Matches `value` against `pattern`, appending the bound values to
    /// `out` in [`Pattern::bound_vars`] order (the order the resolution pass
    /// numbers slots in).  Returns `false` — with `out` possibly partially
    /// extended; callers discard it — when the pattern does not match.
    fn match_pattern_collect(pattern: &Pattern, value: &Value, out: &mut Vec<Value>) -> bool {
        match (pattern, value) {
            (Pattern::Wildcard, _) => true,
            (Pattern::Var(_), v) => {
                out.push(v.clone());
                true
            }
            (Pattern::Ctor(c, ps), Value::Ctor(vc, vs)) if c == vc && ps.len() == vs.len() => ps
                .iter()
                .zip(vs.iter())
                .all(|(p, v)| Self::match_pattern_collect(p, v, out)),
            (Pattern::Tuple(ps), Value::Tuple(vs)) if ps.len() == vs.len() => ps
                .iter()
                .zip(vs.iter())
                .all(|(p, v)| Self::match_pattern_collect(p, v, out)),
            _ => false,
        }
    }

    /// Applies a function value to an argument value.
    pub fn apply(&self, f: Value, arg: Value, fuel: &mut Fuel) -> Result<Value, EvalError> {
        self.apply_at(f, arg, fuel, 0)
    }

    fn apply_at(
        &self,
        f: Value,
        arg: Value,
        fuel: &mut Fuel,
        depth: u32,
    ) -> Result<Value, EvalError> {
        fuel.tick(depth)?;
        match f {
            Value::Closure(clo) if clo.resolved => {
                // Fast path: one chunk push instead of one or two Env nodes;
                // the body reads its bindings by slot index.
                let chunk = match &clo.rec_name {
                    Some(_) => vec![Value::Closure(clo.clone()), arg],
                    None => vec![arg],
                };
                let locals = clo.locals.push_chunk(chunk);
                self.eval_res_at(&clo.env, &locals, &clo.body, fuel, depth + 1)
            }
            Value::Closure(clo) => {
                let mut env = clo.env.clone();
                if let Some(name) = &clo.rec_name {
                    env = env.bind(name.clone(), Value::Closure(clo.clone()));
                }
                let env = env.bind(clo.param.clone(), arg);
                self.eval_at(&env, &clo.body, fuel, depth + 1)
            }
            Value::Native(native) => {
                let mut collected = native.collected.clone();
                collected.push(arg);
                if collected.len() >= native.arity {
                    (native.func)(&collected)
                } else {
                    Ok(Value::Native(Arc::new(NativeFn {
                        name: native.name.clone(),
                        arity: native.arity,
                        collected,
                        func: native.func.clone(),
                    })))
                }
            }
            other => Err(EvalError::NotAFunction(other.to_string())),
        }
    }

    /// Applies a function value to several arguments in turn.
    pub fn apply_many(
        &self,
        f: Value,
        args: &[Value],
        fuel: &mut Fuel,
    ) -> Result<Value, EvalError> {
        let mut cur = f;
        for a in args {
            cur = self.apply(cur, a.clone(), fuel)?;
        }
        Ok(cur)
    }

    /// Evaluates an expression expected to produce a boolean.
    pub fn eval_bool(&self, env: &Env, expr: &Expr, fuel: &mut Fuel) -> Result<bool, EvalError> {
        let v = self.eval(env, expr, fuel)?;
        v.as_bool()
            .ok_or_else(|| EvalError::NotABool(v.to_string()))
    }

    /// Applies a predicate value (of type `σ -> bool`) to an argument.
    pub fn apply_pred(
        &self,
        pred: &Value,
        arg: &Value,
        fuel: &mut Fuel,
    ) -> Result<bool, EvalError> {
        let v = self.apply(pred.clone(), arg.clone(), fuel)?;
        v.as_bool()
            .ok_or_else(|| EvalError::NotABool(v.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{CtorDecl, DataDecl, Type};

    fn tyenv() -> TypeEnv {
        let mut env = TypeEnv::new();
        env.declare(DataDecl::new(
            "nat",
            vec![
                CtorDecl::new("O", vec![]),
                CtorDecl::new("S", vec![Type::named("nat")]),
            ],
        ))
        .unwrap();
        env.declare(DataDecl::new(
            "list",
            vec![
                CtorDecl::new("Nil", vec![]),
                CtorDecl::new("Cons", vec![Type::named("nat"), Type::named("list")]),
            ],
        ))
        .unwrap();
        env
    }

    fn eval_closed(e: &Expr) -> Result<Value, EvalError> {
        let tyenv = tyenv();
        let ev = Evaluator::new(&tyenv);
        ev.eval(&Env::empty(), e, &mut Fuel::standard())
    }

    /// `plus` as a core expression, used by several tests.
    fn plus_expr() -> Expr {
        Expr::fix(
            "plus",
            "m",
            Type::named("nat"),
            Type::arrow(Type::named("nat"), Type::named("nat")),
            Expr::lambda(
                "n",
                Type::named("nat"),
                Expr::match_(
                    Expr::var("m"),
                    vec![
                        MatchArm::new(Pattern::ctor("O", vec![]), Expr::var("n")),
                        MatchArm::new(
                            Pattern::ctor("S", vec![Pattern::var("m2")]),
                            Expr::ctor(
                                "S",
                                vec![Expr::call("plus", [Expr::var("m2"), Expr::var("n")])],
                            ),
                        ),
                    ],
                ),
            ),
        )
    }

    #[test]
    fn literals_and_tuples() {
        assert_eq!(eval_closed(&Expr::tru()).unwrap(), Value::tru());
        let pair = Expr::Tuple(vec![Expr::ctor("O", vec![]), Expr::tru()]);
        assert_eq!(
            eval_closed(&pair).unwrap(),
            Value::pair(Value::nat(0), Value::tru())
        );
        let proj = Expr::Proj(1, Box::new(pair));
        assert_eq!(eval_closed(&proj).unwrap(), Value::tru());
    }

    #[test]
    fn recursive_addition() {
        let call = Expr::apps(
            plus_expr(),
            [
                Value::nat(2).to_expr().unwrap(),
                Value::nat(3).to_expr().unwrap(),
            ],
        );
        assert_eq!(eval_closed(&call).unwrap(), Value::nat(5));
    }

    #[test]
    fn let_and_if_and_booleans() {
        let e = Expr::let_(
            "x",
            Expr::tru(),
            Expr::if_(
                Expr::and(Expr::var("x"), Expr::not(Expr::fls())),
                Expr::ctor("O", vec![]),
                Expr::ctor("S", vec![Expr::ctor("O", vec![])]),
            ),
        );
        assert_eq!(eval_closed(&e).unwrap(), Value::nat(0));
    }

    #[test]
    fn structural_equality() {
        let e = Expr::eq(
            Value::nat_list(&[1, 2]).to_expr().unwrap(),
            Value::nat_list(&[1, 2]).to_expr().unwrap(),
        );
        assert_eq!(eval_closed(&e).unwrap(), Value::tru());
        let e = Expr::eq(
            Value::nat_list(&[1]).to_expr().unwrap(),
            Value::nat_list(&[2]).to_expr().unwrap(),
        );
        assert_eq!(eval_closed(&e).unwrap(), Value::fls());
    }

    #[test]
    fn short_circuiting() {
        // False && diverging-ish expression: the right operand would be a
        // match failure if evaluated.
        let bad = Expr::match_(Expr::tru(), vec![]);
        let e = Expr::and(Expr::fls(), bad.clone());
        assert_eq!(eval_closed(&e).unwrap(), Value::fls());
        let e = Expr::or(Expr::tru(), bad);
        assert_eq!(eval_closed(&e).unwrap(), Value::tru());
    }

    #[test]
    fn match_failure_is_reported() {
        let e = Expr::match_(
            Expr::tru(),
            vec![MatchArm::new(Pattern::ctor("False", vec![]), Expr::tru())],
        );
        assert!(matches!(eval_closed(&e), Err(EvalError::MatchFailure(_))));
    }

    #[test]
    fn out_of_fuel_on_divergence() {
        // fix loop (x : nat) : nat = loop x
        let diverge = Expr::fix(
            "loop",
            "x",
            Type::named("nat"),
            Type::named("nat"),
            Expr::call("loop", [Expr::var("x")]),
        );
        let call = Expr::app(diverge, Expr::ctor("O", vec![]));
        let tyenv = tyenv();
        let ev = Evaluator::new(&tyenv);
        let result = ev.eval(&Env::empty(), &call, &mut Fuel::new(10_000));
        assert_eq!(result, Err(EvalError::OutOfFuel));
    }

    #[test]
    fn apply_many_curries() {
        let tyenv = tyenv();
        let ev = Evaluator::new(&tyenv);
        let mut fuel = Fuel::standard();
        let plus = ev.eval(&Env::empty(), &plus_expr(), &mut fuel).unwrap();
        let result = ev
            .apply_many(plus, &[Value::nat(4), Value::nat(4)], &mut fuel)
            .unwrap();
        assert_eq!(result, Value::nat(8));
    }

    #[test]
    fn wrong_ctor_arity_is_a_runtime_error() {
        let e = Expr::ctor("S", vec![]);
        assert!(matches!(eval_closed(&e), Err(EvalError::Other(_))));
    }

    #[test]
    fn unbound_variable() {
        assert!(matches!(
            eval_closed(&Expr::var("ghost")),
            Err(EvalError::UnboundVariable(_))
        ));
    }

    #[test]
    fn fuel_accounting() {
        let mut fuel = Fuel::new(100);
        let tyenv = tyenv();
        let ev = Evaluator::new(&tyenv);
        ev.eval(&Env::empty(), &Expr::tru(), &mut fuel).unwrap();
        assert!(fuel.used() >= 1);
        assert!(fuel.remaining() < 100);
    }
}
