//! Pretty-printing of expressions, patterns and values.
//!
//! The printers produce syntax that the parser accepts back (round-tripping
//! is property-tested in the parser module), with two readability
//! conveniences for values: Peano naturals print as decimal literals is *not*
//! done for expressions (which must re-parse), only for values, and
//! `Cons`/`Nil` lists of values print in `[a; b; c]` form.

use std::fmt;

use crate::ast::{Expr, Pattern};
use crate::value::Value;

/// Precedence levels, loosest to tightest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Prec {
    Lowest,
    Or,
    And,
    Not,
    Eq,
    App,
    Atom,
}

/// Formats an expression (used by `Display for Expr`).
pub fn fmt_expr(e: &Expr, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    write_expr(e, Prec::Lowest, f)
}

fn write_paren_if(
    cond: bool,
    f: &mut fmt::Formatter<'_>,
    inner: impl FnOnce(&mut fmt::Formatter<'_>) -> fmt::Result,
) -> fmt::Result {
    if cond {
        f.write_str("(")?;
        inner(f)?;
        f.write_str(")")
    } else {
        inner(f)
    }
}

fn write_expr(e: &Expr, prec: Prec, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    match e {
        Expr::Var(x) => write!(f, "{x}"),
        // Resolved slots print as their source name so resolved and
        // unresolved code render identically.
        Expr::Local(_, x) => write!(f, "{x}"),
        // `#`-prefixed so machine integers never collide with Peano-nat
        // decimal sugar; the lexer accepts this form back.
        Expr::Int(i) => write!(f, "#{i}"),
        Expr::Ctor(c, args) if args.is_empty() => write!(f, "{c}"),
        Expr::Ctor(c, args) => write_paren_if(prec > Prec::App, f, |f| {
            write!(f, "{c} (")?;
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write_expr(a, Prec::Lowest, f)?;
            }
            f.write_str(")")
        }),
        Expr::Tuple(args) if args.is_empty() => f.write_str("()"),
        Expr::Tuple(args) => {
            f.write_str("(")?;
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write_expr(a, Prec::Lowest, f)?;
            }
            f.write_str(")")
        }
        Expr::Proj(0, e) => write_paren_if(prec > Prec::App, f, |f| {
            f.write_str("fst ")?;
            write_expr(e, Prec::Atom, f)
        }),
        Expr::Proj(1, e) => write_paren_if(prec > Prec::App, f, |f| {
            f.write_str("snd ")?;
            write_expr(e, Prec::Atom, f)
        }),
        Expr::Proj(i, e) => write_paren_if(prec > Prec::App, f, |f| {
            write!(f, "proj{i} ")?;
            write_expr(e, Prec::Atom, f)
        }),
        Expr::App(fun, arg) => write_paren_if(prec > Prec::App, f, |f| {
            write_expr(fun, Prec::App, f)?;
            f.write_str(" ")?;
            write_expr(arg, Prec::Atom, f)
        }),
        Expr::Lambda(l) => write_paren_if(prec > Prec::Lowest, f, |f| {
            write!(f, "fun ({} : {}) -> ", l.param, l.param_ty)?;
            write_expr(&l.body, Prec::Lowest, f)
        }),
        Expr::Fix(fx) => write_paren_if(prec > Prec::Lowest, f, |f| {
            write!(
                f,
                "fix {} ({} : {}) : {} = ",
                fx.name, fx.param, fx.param_ty, fx.ret_ty
            )?;
            write_expr(&fx.body, Prec::Lowest, f)
        }),
        Expr::Match(scrutinee, arms) => write_paren_if(prec > Prec::Lowest, f, |f| {
            f.write_str("match ")?;
            write_expr(scrutinee, Prec::Lowest, f)?;
            f.write_str(" with")?;
            for arm in arms {
                write!(f, " | {} -> ", arm.pattern)?;
                write_expr(&arm.body, Prec::Or, f)?;
            }
            f.write_str(" end")
        }),
        Expr::Let(x, bound, body) => write_paren_if(prec > Prec::Lowest, f, |f| {
            write!(f, "let {x} = ")?;
            write_expr(bound, Prec::Lowest, f)?;
            f.write_str(" in ")?;
            write_expr(body, Prec::Lowest, f)
        }),
        Expr::If(c, t, e2) => write_paren_if(prec > Prec::Lowest, f, |f| {
            f.write_str("if ")?;
            write_expr(c, Prec::Lowest, f)?;
            f.write_str(" then ")?;
            write_expr(t, Prec::Lowest, f)?;
            f.write_str(" else ")?;
            write_expr(e2, Prec::Lowest, f)
        }),
        Expr::Eq(a, b) => write_paren_if(prec > Prec::Eq, f, |f| {
            write_expr(a, Prec::App, f)?;
            f.write_str(" == ")?;
            write_expr(b, Prec::App, f)
        }),
        Expr::And(a, b) => write_paren_if(prec > Prec::And, f, |f| {
            write_expr(a, Prec::Not, f)?;
            f.write_str(" && ")?;
            write_expr(b, Prec::And, f)
        }),
        Expr::Or(a, b) => write_paren_if(prec > Prec::Or, f, |f| {
            write_expr(a, Prec::And, f)?;
            f.write_str(" || ")?;
            write_expr(b, Prec::Or, f)
        }),
        Expr::Not(a) => write_paren_if(prec > Prec::Not, f, |f| {
            f.write_str("not ")?;
            write_expr(a, Prec::Atom, f)
        }),
    }
}

/// Formats a pattern (used by `Display for Pattern`).
pub fn fmt_pattern(p: &Pattern, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    match p {
        Pattern::Wildcard => f.write_str("_"),
        Pattern::Var(x) => write!(f, "{x}"),
        Pattern::Ctor(c, args) if args.is_empty() => write!(f, "{c}"),
        Pattern::Ctor(c, args) => {
            write!(f, "{c} (")?;
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                fmt_pattern(a, f)?;
            }
            f.write_str(")")
        }
        Pattern::Tuple(args) => {
            f.write_str("(")?;
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                fmt_pattern(a, f)?;
            }
            f.write_str(")")
        }
    }
}

/// Formats a value (used by `Display for Value`).
pub fn fmt_value(v: &Value, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    if let Some(n) = v.as_nat() {
        return write!(f, "{n}");
    }
    if let Some(items) = v.as_list() {
        f.write_str("[")?;
        for (i, item) in items.iter().enumerate() {
            if i > 0 {
                f.write_str("; ")?;
            }
            fmt_value(item, f)?;
        }
        return f.write_str("]");
    }
    match v {
        Value::Ctor(c, args) if args.is_empty() => write!(f, "{c}"),
        Value::Ctor(c, args) => {
            write!(f, "{c} (")?;
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                fmt_value(a, f)?;
            }
            f.write_str(")")
        }
        Value::Tuple(args) => {
            f.write_str("(")?;
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                fmt_value(a, f)?;
            }
            f.write_str(")")
        }
        Value::Int(i) => write!(f, "#{i}"),
        Value::Closure(clo) => write!(f, "<fun {}>", clo.param),
        Value::Native(native) => write!(f, "<native {}>", native.name),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::MatchArm;
    use crate::types::Type;

    #[test]
    fn values_pretty_print() {
        assert_eq!(Value::nat(3).to_string(), "3");
        assert_eq!(Value::nat_list(&[1, 2]).to_string(), "[1; 2]");
        assert_eq!(
            Value::pair(Value::nat(1), Value::tru()).to_string(),
            "(1, True)"
        );
        assert_eq!(
            Value::Ctor("Leaf".into(), vec![].into()).to_string(),
            "Leaf"
        );
    }

    #[test]
    fn expressions_pretty_print_with_precedence() {
        let e = Expr::and(
            Expr::or(Expr::var("a"), Expr::var("b")),
            Expr::not(Expr::var("c")),
        );
        assert_eq!(e.to_string(), "(a || b) && not c");

        let e = Expr::or(Expr::var("a"), Expr::and(Expr::var("b"), Expr::var("c")));
        assert_eq!(e.to_string(), "a || b && c");

        let e = Expr::call("lookup", [Expr::var("l"), Expr::var("x")]);
        assert_eq!(e.to_string(), "lookup l x");

        let e = Expr::eq(Expr::call("f", [Expr::var("x")]), Expr::var("y"));
        assert_eq!(e.to_string(), "f x == y");
    }

    #[test]
    fn nested_application_parenthesized() {
        let e = Expr::call("f", [Expr::call("g", [Expr::var("x")])]);
        assert_eq!(e.to_string(), "f (g x)");
    }

    #[test]
    fn match_and_lambda_print() {
        let e = Expr::lambda(
            "x",
            Type::named("list"),
            Expr::match_(
                Expr::var("x"),
                vec![
                    MatchArm::new(Pattern::ctor("Nil", vec![]), Expr::tru()),
                    MatchArm::new(
                        Pattern::ctor("Cons", vec![Pattern::var("h"), Pattern::Wildcard]),
                        Expr::fls(),
                    ),
                ],
            ),
        );
        let s = e.to_string();
        assert!(s.starts_with("fun (x : list) ->"));
        assert!(s.contains("| Nil -> True"));
        assert!(s.contains("| Cons (h, _) -> False"));
        assert!(s.ends_with("end"));
    }

    #[test]
    fn ctor_expr_prints_saturated() {
        let e = Expr::ctor("Cons", vec![Expr::var("x"), Expr::ctor("Nil", vec![])]);
        assert_eq!(e.to_string(), "Cons (x, Nil)");
    }
}
