//! Size-ordered enumeration of first-order values.
//!
//! The paper's verifier (§4.3) "test\[s\] the predicate on data structures,
//! from smallest to largest, until either 3000 data structures have been
//! processed, or the data structure has over 30 AST nodes".  This module
//! provides exactly that stream: all values of a 0-order type, grouped and
//! ordered by their node count, with memoisation so repeated sweeps (one per
//! verification call, of which a run makes dozens) are cheap.

use std::collections::HashMap;
use std::sync::Arc;

use crate::symbol::Symbol;
use crate::types::{Type, TypeEnv};
use crate::value::Value;

/// A memoising enumerator of first-order values by size.
#[derive(Debug, Clone)]
pub struct ValueEnumerator<'a> {
    tyenv: &'a TypeEnv,
    cache: HashMap<(Type, usize), Arc<Vec<Value>>>,
}

impl<'a> ValueEnumerator<'a> {
    /// Creates an enumerator over the given data type environment.
    pub fn new(tyenv: &'a TypeEnv) -> Self {
        ValueEnumerator {
            tyenv,
            cache: HashMap::new(),
        }
    }

    /// All values of `ty` with exactly `size` constructor/tuple nodes.
    ///
    /// Function types and the abstract type have no enumerable values and
    /// yield an empty list.
    pub fn values_of_size(&mut self, ty: &Type, size: usize) -> Arc<Vec<Value>> {
        if size == 0 {
            return Arc::new(Vec::new());
        }
        let key = (ty.clone(), size);
        if let Some(cached) = self.cache.get(&key) {
            return cached.clone();
        }
        let result = Arc::new(self.compute(ty, size));
        self.cache.insert(key, result.clone());
        result
    }

    fn compute(&mut self, ty: &Type, size: usize) -> Vec<Value> {
        match ty {
            Type::Abstract | Type::Arrow(_, _) => Vec::new(),
            // The builtin `int` is not a declared ADT; its size measure is
            // `1 + |i|`, so exactly the magnitudes ±(size-1) fit each slot
            // (positive first for a deterministic order, one value at size 1).
            Type::Named(name) if name.as_str() == crate::types::INT_TYPE_NAME => {
                let magnitude = (size - 1) as i64;
                if magnitude == 0 {
                    vec![Value::Int(0)]
                } else {
                    vec![Value::Int(magnitude), Value::Int(-magnitude)]
                }
            }
            Type::Named(name) => self.compute_named(name, size),
            Type::Tuple(elems) => {
                if elems.is_empty() {
                    if size == 1 {
                        vec![Value::unit()]
                    } else {
                        Vec::new()
                    }
                } else {
                    let mut out = Vec::new();
                    for split in compositions(size - 1, elems.len()) {
                        let groups: Vec<Arc<Vec<Value>>> = elems
                            .iter()
                            .zip(&split)
                            .map(|(t, &s)| self.values_of_size(t, s))
                            .collect();
                        cartesian(&groups, |items| out.push(Value::Tuple(items.into())));
                    }
                    out
                }
            }
        }
    }

    fn compute_named(&mut self, name: &Symbol, size: usize) -> Vec<Value> {
        let Some(decl) = self.tyenv.lookup(name) else {
            return Vec::new();
        };
        let ctors: Vec<(Symbol, Vec<Type>)> = decl
            .ctors
            .iter()
            .map(|c| (c.name.clone(), c.args.clone()))
            .collect();
        let mut out = Vec::new();
        for (ctor, args) in ctors {
            if args.is_empty() {
                if size == 1 {
                    out.push(Value::Ctor(ctor.clone(), Arc::from([])));
                }
                continue;
            }
            if size < 1 + args.len() {
                continue;
            }
            for split in compositions(size - 1, args.len()) {
                let groups: Vec<Arc<Vec<Value>>> = args
                    .iter()
                    .zip(&split)
                    .map(|(t, &s)| self.values_of_size(t, s))
                    .collect();
                cartesian(&groups, |items| {
                    out.push(Value::Ctor(ctor.clone(), items.into()))
                });
            }
        }
        out
    }

    /// Seeds the memo table with an externally computed slab — all values of
    /// `ty` with exactly `size` nodes, in this enumerator's canonical order.
    /// Callers that cache slabs across enumerator instances (the verifier's
    /// pool cache) use this so a fresh enumerator does not recompute sizes
    /// that are already known.
    pub fn seed(&mut self, ty: &Type, size: usize, slab: Arc<Vec<Value>>) {
        self.cache.insert((ty.clone(), size), slab);
    }

    /// All values of `ty` with at most `max_size` nodes, smallest first
    /// (values of equal size are in a deterministic constructor-declaration
    /// order).
    pub fn values_up_to(&mut self, ty: &Type, max_size: usize) -> Vec<Value> {
        let mut out = Vec::new();
        for size in 1..=max_size {
            out.extend(self.values_of_size(ty, size).iter().cloned());
        }
        out
    }

    /// The first `max_count` values of `ty` in size order, never exceeding
    /// `max_size` nodes — the exact stream the paper's bounded verifier
    /// consumes.
    pub fn first_values(&mut self, ty: &Type, max_count: usize, max_size: usize) -> Vec<Value> {
        let mut out = Vec::new();
        for size in 1..=max_size {
            if out.len() >= max_count {
                break;
            }
            for v in self.values_of_size(ty, size).iter() {
                if out.len() >= max_count {
                    break;
                }
                out.push(v.clone());
            }
        }
        out
    }

    /// Number of values of `ty` with at most `max_size` nodes.
    pub fn count_up_to(&mut self, ty: &Type, max_size: usize) -> usize {
        (1..=max_size)
            .map(|s| self.values_of_size(ty, s).len())
            .sum()
    }

    /// The data type environment this enumerator reads from.
    pub fn tyenv(&self) -> &'a TypeEnv {
        self.tyenv
    }
}

/// All ways to write `total` as an ordered sum of `parts` positive integers.
fn compositions(total: usize, parts: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    if parts == 0 {
        if total == 0 {
            out.push(Vec::new());
        }
        return out;
    }
    if total < parts {
        return out;
    }
    let mut current = Vec::with_capacity(parts);
    compose_rec(total, parts, &mut current, &mut out);
    out
}

fn compose_rec(total: usize, parts: usize, current: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
    if parts == 1 {
        current.push(total);
        out.push(current.clone());
        current.pop();
        return;
    }
    for first in 1..=(total - (parts - 1)) {
        current.push(first);
        compose_rec(total - first, parts - 1, current, out);
        current.pop();
    }
}

/// Calls `emit` with every element of the cartesian product of `groups`.
fn cartesian(groups: &[Arc<Vec<Value>>], mut emit: impl FnMut(Vec<Value>)) {
    fn rec(
        groups: &[Arc<Vec<Value>>],
        index: usize,
        current: &mut Vec<Value>,
        emit: &mut impl FnMut(Vec<Value>),
    ) {
        if index == groups.len() {
            emit(current.clone());
            return;
        }
        for item in groups[index].iter() {
            current.push(item.clone());
            rec(groups, index + 1, current, emit);
            current.pop();
        }
    }
    if groups.iter().any(|g| g.is_empty()) {
        return;
    }
    rec(groups, 0, &mut Vec::new(), &mut emit);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{CtorDecl, DataDecl};

    fn tyenv() -> TypeEnv {
        let mut env = TypeEnv::new();
        env.declare(DataDecl::new(
            "nat",
            vec![
                CtorDecl::new("O", vec![]),
                CtorDecl::new("S", vec![Type::named("nat")]),
            ],
        ))
        .unwrap();
        env.declare(DataDecl::new(
            "list",
            vec![
                CtorDecl::new("Nil", vec![]),
                CtorDecl::new("Cons", vec![Type::named("nat"), Type::named("list")]),
            ],
        ))
        .unwrap();
        env.declare(DataDecl::new(
            "tree",
            vec![
                CtorDecl::new("Leaf", vec![]),
                CtorDecl::new(
                    "Node",
                    vec![Type::named("tree"), Type::named("nat"), Type::named("tree")],
                ),
            ],
        ))
        .unwrap();
        env
    }

    #[test]
    fn nat_enumeration_is_one_per_size() {
        let env = tyenv();
        let mut en = ValueEnumerator::new(&env);
        for size in 1..=10 {
            let vals = en.values_of_size(&Type::named("nat"), size);
            assert_eq!(vals.len(), 1, "size {size}");
            assert_eq!(vals[0].as_nat(), Some((size - 1) as u64));
        }
    }

    #[test]
    fn bool_enumeration() {
        let env = tyenv();
        let mut en = ValueEnumerator::new(&env);
        let vals = en.values_of_size(&Type::bool(), 1);
        assert_eq!(vals.len(), 2);
        assert!(en.values_of_size(&Type::bool(), 2).is_empty());
    }

    #[test]
    fn list_counts_match_closed_form() {
        // Lists of nats: a list [n1, ..., nk] has size 1 + sum(1 + (ni+1)).
        // The number of lists with total size s equals the number of
        // compositions, which we cross-check against a direct recurrence.
        let env = tyenv();
        let mut en = ValueEnumerator::new(&env);
        // count lists by brute-force recurrence: L(1) = 1 (Nil);
        // L(s) = sum_{nat size k >= 1, k <= s-2} 1 * L(s-1-k)
        let mut expected = [0usize; 21];
        expected[1] = 1;
        for s in 2..=20usize {
            let mut total = 0;
            for k in 1..=s.saturating_sub(2) {
                total += expected[s - 1 - k];
            }
            expected[s] = total;
        }
        for (s, &expected_count) in expected.iter().enumerate().take(21).skip(1) {
            assert_eq!(
                en.values_of_size(&Type::named("list"), s).len(),
                expected_count,
                "size {s}"
            );
        }
    }

    #[test]
    fn all_enumerated_values_have_the_requested_size() {
        let env = tyenv();
        let mut en = ValueEnumerator::new(&env);
        for ty in [
            Type::named("list"),
            Type::named("tree"),
            Type::pair(Type::named("nat"), Type::bool()),
        ] {
            for size in 1..=8 {
                for v in en.values_of_size(&ty, size).iter() {
                    assert_eq!(v.size(), size, "type {ty}, value {v}");
                }
            }
        }
    }

    #[test]
    fn enumeration_has_no_duplicates() {
        use std::collections::HashSet;
        let env = tyenv();
        let mut en = ValueEnumerator::new(&env);
        let all = en.values_up_to(&Type::named("tree"), 9);
        let set: HashSet<&Value> = all.iter().collect();
        assert_eq!(set.len(), all.len());
    }

    #[test]
    fn first_values_respects_count_and_order() {
        let env = tyenv();
        let mut en = ValueEnumerator::new(&env);
        let vals = en.first_values(&Type::named("list"), 10, 30);
        assert_eq!(vals.len(), 10);
        // Sizes must be non-decreasing.
        for pair in vals.windows(2) {
            assert!(pair[0].size() <= pair[1].size());
        }
        assert_eq!(vals[0], Value::nat_list(&[]));
    }

    #[test]
    fn int_enumeration_sweeps_magnitudes() {
        let env = tyenv();
        let mut en = ValueEnumerator::new(&env);
        assert_eq!(*en.values_of_size(&Type::int(), 1), vec![Value::Int(0)]);
        assert_eq!(
            *en.values_of_size(&Type::int(), 4),
            vec![Value::Int(3), Value::Int(-3)]
        );
        // The size invariant holds for ints and int-bearing tuples too.
        let pair = Type::pair(Type::int(), Type::int());
        for size in 1..=8 {
            for v in en.values_of_size(&pair, size).iter() {
                assert_eq!(v.size(), size, "value {v}");
            }
        }
        // Pool sweep order: first_values covers small magnitudes first.
        let first = en.first_values(&Type::int(), 5, 30);
        assert_eq!(
            first,
            vec![
                Value::Int(0),
                Value::Int(1),
                Value::Int(-1),
                Value::Int(2),
                Value::Int(-2)
            ]
        );
    }

    #[test]
    fn functions_and_abstract_are_not_enumerable() {
        let env = tyenv();
        let mut en = ValueEnumerator::new(&env);
        assert!(en
            .values_of_size(&Type::arrow(Type::bool(), Type::bool()), 3)
            .is_empty());
        assert!(en.values_of_size(&Type::Abstract, 1).is_empty());
    }

    #[test]
    fn tuple_enumeration() {
        let env = tyenv();
        let mut en = ValueEnumerator::new(&env);
        let ty = Type::pair(Type::bool(), Type::bool());
        let vals = en.values_of_size(&ty, 3);
        assert_eq!(vals.len(), 4);
        assert!(en.values_of_size(&Type::unit(), 1).len() == 1);
    }

    #[test]
    fn compositions_are_correct() {
        assert_eq!(compositions(3, 1), vec![vec![3]]);
        assert_eq!(compositions(3, 2), vec![vec![1, 2], vec![2, 1]]);
        assert_eq!(compositions(4, 3).len(), 3);
        assert!(compositions(2, 3).is_empty());
    }

    #[test]
    fn count_up_to_consistent_with_values_up_to() {
        let env = tyenv();
        let mut en = ValueEnumerator::new(&env);
        assert_eq!(
            en.count_up_to(&Type::named("tree"), 9),
            en.values_up_to(&Type::named("tree"), 9).len()
        );
    }
}
