//! Runtime values and evaluation environments.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use crate::ast::Expr;
use crate::error::EvalError;
use crate::symbol::Symbol;

/// A runtime closure: a suspended function body together with the environment
/// it was created in.  Recursive closures additionally remember their own
/// name so applications can rebind it.
///
/// Closures come in two flavours distinguished by [`Closure::resolved`]:
///
/// * *name-based* closures (the default) look every variable up by name in
///   the captured [`Env`];
/// * *slot-resolved* closures carry a body whose lexically-bound variable
///   references were rewritten to [`crate::ast::Expr::Local`] slot indices by
///   [`crate::resolve`]; they additionally capture the [`Locals`] stack in
///   effect at creation, and application pushes onto that stack instead of
///   extending the environment.  Free (global) variables still resolve
///   through `env`, so the `Env` API is unchanged.
#[derive(Debug, Clone)]
pub struct Closure {
    /// The parameter name.
    pub param: Symbol,
    /// The function body.
    pub body: Expr,
    /// The captured environment.
    pub env: Env,
    /// For recursive closures, the function's own name.
    pub rec_name: Option<Symbol>,
    /// The captured local-slot stack (empty for name-based closures).
    pub locals: Locals,
    /// Whether `body` has been through the slot-resolution pass and must be
    /// evaluated in resolved mode.
    pub resolved: bool,
}

impl Closure {
    /// A name-based (unresolved) closure — the historical representation.
    pub fn by_name(param: Symbol, body: Expr, env: Env, rec_name: Option<Symbol>) -> Closure {
        Closure {
            param,
            body,
            env,
            rec_name,
            locals: Locals::empty(),
            resolved: false,
        }
    }
}

/// A host-implemented function value.
///
/// Native functions exist so that host code (in particular the verifier's
/// higher-order contract instrumentation, §4.2 of the paper) can observe the
/// values flowing across a module boundary: the host closure is invoked with
/// the fully collected argument list and may log or check them before
/// delegating to object-level code.
pub struct NativeFn {
    /// A diagnostic name.
    pub name: Symbol,
    /// How many curried arguments the function expects before being invoked.
    pub arity: usize,
    /// Arguments collected by partial applications so far.
    pub collected: Vec<Value>,
    /// The host implementation, called once all arguments are available.
    #[allow(clippy::type_complexity)]
    pub func: Arc<dyn Fn(&[Value]) -> Result<Value, EvalError> + Send + Sync>,
}

impl fmt::Debug for NativeFn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NativeFn")
            .field("name", &self.name)
            .field("arity", &self.arity)
            .field("collected", &self.collected)
            .finish_non_exhaustive()
    }
}

/// A runtime value: a constructor tree, a tuple, a closure, or a
/// host-implemented function.
///
/// First-order values (no closures) support structural equality, hashing and
/// size measurement; these are the values the enumerative verifier and the
/// synthesizers manipulate.
///
/// Constructor and tuple children are stored as `Arc<[Value]>` slabs, so
/// **cloning a value is O(1)** — a tag copy plus a reference-count bump.
/// This matters enormously on the interpreter's hot path: every variable
/// lookup, every pattern binding and every pool filter clones values, and
/// with boxed-slice children those clones no longer walk (or allocate) the
/// tree.  Structural equality and hashing are unchanged (and equality
/// short-circuits on shared slabs).
#[derive(Debug, Clone)]
pub enum Value {
    /// A saturated constructor application.
    Ctor(Symbol, Arc<[Value]>),
    /// A tuple (the empty tuple is the unit value).
    Tuple(Arc<[Value]>),
    /// A machine integer (the builtin `int` type of the numeric/trace
    /// workload).  Unlike Peano naturals these are wide and shallow: a
    /// single node regardless of magnitude, with the enumeration size
    /// measure `1 + |i|` so bounded verification still sweeps small
    /// magnitudes first.
    Int(i64),
    /// A function value.
    Closure(Arc<Closure>),
    /// A host-implemented function value.
    Native(Arc<NativeFn>),
}

impl Value {
    /// A constructor application over owned children.
    pub fn ctor_of(name: Symbol, args: Vec<Value>) -> Value {
        Value::Ctor(name, args.into())
    }

    /// A tuple over owned children.
    pub fn tuple_of(items: Vec<Value>) -> Value {
        Value::Tuple(items.into())
    }

    /// The boolean value `True`.
    ///
    /// The two boolean values are interned process-wide: every call returns
    /// a clone of the same allocation, so producing a boolean (the single
    /// most common operation in signature evaluation and predicate testing)
    /// is a reference-count bump, and equality between interned booleans
    /// short-circuits on the shared slab pointer.
    pub fn tru() -> Value {
        static TRUE: std::sync::OnceLock<Value> = std::sync::OnceLock::new();
        TRUE.get_or_init(|| Value::Ctor(Symbol::new("True"), Arc::from([])))
            .clone()
    }

    /// The boolean value `False` (interned, see [`Value::tru`]).
    pub fn fls() -> Value {
        static FALSE: std::sync::OnceLock<Value> = std::sync::OnceLock::new();
        FALSE
            .get_or_init(|| Value::Ctor(Symbol::new("False"), Arc::from([])))
            .clone()
    }

    /// A boolean value.
    pub fn bool(b: bool) -> Value {
        if b {
            Value::tru()
        } else {
            Value::fls()
        }
    }

    /// The Peano natural for `n` (`S (S ... O)`).
    pub fn nat(n: u64) -> Value {
        let mut v = Value::Ctor(Symbol::new("O"), Arc::from([]));
        for _ in 0..n {
            v = Value::Ctor(Symbol::new("S"), Arc::from([v]));
        }
        v
    }

    /// A `list` of Peano naturals built from `Cons`/`Nil`.
    pub fn nat_list(items: &[u64]) -> Value {
        let mut v = Value::Ctor(Symbol::new("Nil"), Arc::from([]));
        for &n in items.iter().rev() {
            v = Value::Ctor(Symbol::new("Cons"), Arc::from([Value::nat(n), v]));
        }
        v
    }

    /// A machine-integer value of the builtin `int` type.
    pub fn int(i: i64) -> Value {
        Value::Int(i)
    }

    /// Interprets the value as a machine integer.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The unit value.
    pub fn unit() -> Value {
        Value::Tuple(Arc::from([]))
    }

    /// A pair value.
    pub fn pair(a: Value, b: Value) -> Value {
        Value::Tuple(Arc::from([a, b]))
    }

    /// Interprets the value as a boolean, if it is `True` or `False`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Ctor(c, args) if args.is_empty() && c.as_str() == "True" => Some(true),
            Value::Ctor(c, args) if args.is_empty() && c.as_str() == "False" => Some(false),
            _ => None,
        }
    }

    /// Interprets the value as a Peano natural, if it is built from `S`/`O`.
    pub fn as_nat(&self) -> Option<u64> {
        let mut n = 0u64;
        let mut cur = self;
        loop {
            match cur {
                Value::Ctor(c, args) if c.as_str() == "O" && args.is_empty() => return Some(n),
                Value::Ctor(c, args) if c.as_str() == "S" && args.len() == 1 => {
                    n += 1;
                    cur = &args[0];
                }
                _ => return None,
            }
        }
    }

    /// Interprets the value as a `Cons`/`Nil` list of values.
    pub fn as_list(&self) -> Option<Vec<&Value>> {
        let mut out = Vec::new();
        let mut cur = self;
        loop {
            match cur {
                Value::Ctor(c, args) if c.as_str() == "Nil" && args.is_empty() => return Some(out),
                Value::Ctor(c, args) if c.as_str() == "Cons" && args.len() == 2 => {
                    out.push(&args[0]);
                    cur = &args[1];
                }
                _ => return None,
            }
        }
    }

    /// Builds a host-implemented function value of the given arity.
    pub fn native(
        name: &str,
        arity: usize,
        func: impl Fn(&[Value]) -> Result<Value, EvalError> + Send + Sync + 'static,
    ) -> Value {
        Value::Native(Arc::new(NativeFn {
            name: Symbol::new(name),
            arity,
            collected: Vec::new(),
            func: Arc::new(func),
        }))
    }

    /// `true` when the value contains no closures or native functions.
    pub fn is_first_order(&self) -> bool {
        match self {
            Value::Closure(_) | Value::Native(_) => false,
            Value::Int(_) => true,
            Value::Ctor(_, args) | Value::Tuple(args) => args.iter().all(Value::is_first_order),
        }
    }

    /// Number of constructor and tuple nodes in the value — the "AST node"
    /// size measure the paper's verifier bounds enumeration by.
    pub fn size(&self) -> usize {
        match self {
            Value::Closure(_) | Value::Native(_) => 1,
            // Integers weigh their magnitude so size-bounded enumeration
            // sweeps small magnitudes first (size s covers ±(s-1)).
            Value::Int(i) => 1 + i.unsigned_abs() as usize,
            Value::Ctor(_, args) | Value::Tuple(args) => {
                1 + args.iter().map(Value::size).sum::<usize>()
            }
        }
    }

    /// All strict subvalues (transitively), in pre-order.  Used for the trace
    /// completeness closure of §4.3.
    pub fn strict_subvalues(&self) -> Vec<Value> {
        let mut out = Vec::new();
        fn walk(v: &Value, out: &mut Vec<Value>) {
            if let Value::Ctor(_, args) | Value::Tuple(args) = v {
                for a in args.iter() {
                    out.push(a.clone());
                    walk(a, out);
                }
            }
        }
        walk(self, &mut out);
        out
    }

    /// Checks whether the (first-order part of the) value inhabits `ty`
    /// under the given data type declarations.  Closures and native functions
    /// never have a 0-order type.
    pub fn has_type(&self, tyenv: &crate::types::TypeEnv, ty: &crate::types::Type) -> bool {
        use crate::types::Type;
        match (self, ty) {
            (Value::Ctor(c, args), Type::Named(_)) => match tyenv.ctor(c) {
                Some(info) => {
                    Type::Named(info.data_type.clone()) == *ty
                        && info.args.len() == args.len()
                        && args
                            .iter()
                            .zip(&info.args)
                            .all(|(a, t)| a.has_type(tyenv, t))
                }
                None => false,
            },
            (Value::Tuple(items), Type::Tuple(tys)) => {
                items.len() == tys.len() && items.iter().zip(tys).all(|(a, t)| a.has_type(tyenv, t))
            }
            (Value::Int(_), Type::Named(n)) => n.as_str() == crate::types::INT_TYPE_NAME,
            _ => false,
        }
    }

    /// Converts the value into the expression that denotes it.  Closures
    /// cannot be converted and yield `None`.
    pub fn to_expr(&self) -> Option<Expr> {
        match self {
            Value::Ctor(c, args) => {
                let args: Option<Vec<Expr>> = args.iter().map(Value::to_expr).collect();
                Some(Expr::Ctor(c.clone(), args?))
            }
            Value::Tuple(args) => {
                let args: Option<Vec<Expr>> = args.iter().map(Value::to_expr).collect();
                Some(Expr::Tuple(args?))
            }
            Value::Int(i) => Some(Expr::Int(*i)),
            Value::Closure(_) | Value::Native(_) => None,
        }
    }
}

// Compile-time guarantee that the whole runtime representation can be handed
// across threads: the parallel verifier shares pools of `Value`s and
// candidate `Expr`s between workers.
#[allow(dead_code)]
fn _assert_runtime_types_are_thread_safe() {
    fn is_send_sync<T: Send + Sync>() {}
    is_send_sync::<Value>();
    is_send_sync::<Env>();
    is_send_sync::<Locals>();
    is_send_sync::<Closure>();
    is_send_sync::<NativeFn>();
    is_send_sync::<Expr>();
    is_send_sync::<Symbol>();
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            // Shared slabs (clones of the same pooled value) compare equal
            // without walking the tree.
            (Value::Ctor(c1, a1), Value::Ctor(c2, a2)) => {
                c1 == c2 && (Arc::ptr_eq(a1, a2) || a1 == a2)
            }
            (Value::Tuple(a1), Value::Tuple(a2)) => Arc::ptr_eq(a1, a2) || a1 == a2,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Closure(c1), Value::Closure(c2)) => Arc::ptr_eq(c1, c2),
            (Value::Native(n1), Value::Native(n2)) => Arc::ptr_eq(n1, n2),
            _ => false,
        }
    }
}

impl Eq for Value {}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Ctor(c, args) => {
                0u8.hash(state);
                c.hash(state);
                args.hash(state);
            }
            Value::Tuple(args) => {
                1u8.hash(state);
                args.hash(state);
            }
            Value::Closure(c) => {
                2u8.hash(state);
                (Arc::as_ptr(c) as usize).hash(state);
            }
            Value::Native(n) => {
                3u8.hash(state);
                (Arc::as_ptr(n) as *const () as usize).hash(state);
            }
            Value::Int(i) => {
                4u8.hash(state);
                i.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    /// Peano naturals print as decimal numbers, `Cons`/`Nil` lists print as
    /// `[a; b; c]`, everything else prints in constructor form.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        crate::pretty::fmt_value(self, f)
    }
}

/// A persistent evaluation environment, implemented as an immutable linked
/// list so that closures can capture it cheaply.
#[derive(Clone, Default)]
pub struct Env(Option<Arc<EnvNode>>);

struct EnvNode {
    name: Symbol,
    value: Value,
    rest: Env,
}

impl Env {
    /// The empty environment.
    pub fn empty() -> Env {
        Env(None)
    }

    /// Returns a new environment with `name` bound to `value`, shadowing any
    /// previous binding.
    pub fn bind(&self, name: Symbol, value: Value) -> Env {
        Env(Some(Arc::new(EnvNode {
            name,
            value,
            rest: self.clone(),
        })))
    }

    /// Looks up the most recent binding of `name`.
    pub fn lookup(&self, name: &Symbol) -> Option<&Value> {
        let mut cur = self;
        while let Some(node) = &cur.0 {
            if &node.name == name {
                return Some(&node.value);
            }
            cur = &node.rest;
        }
        None
    }

    /// `true` when the environment has no bindings.
    pub fn is_empty(&self) -> bool {
        self.0.is_none()
    }

    /// A cheap identity token for this environment: the address of its head
    /// node (`0` when empty).  Two `Env` clones share an identity; two
    /// independently constructed environments do not, even when their
    /// bindings are structurally equal.  Caches keyed by "which global
    /// environment were these values evaluated in" (the verifier's
    /// function-candidate pool) use this instead of deep comparison.
    pub fn identity(&self) -> usize {
        self.0.as_ref().map_or(0, |node| Arc::as_ptr(node) as usize)
    }

    /// Iterates over the bindings, most recent first.
    pub fn iter(&self) -> impl Iterator<Item = (&Symbol, &Value)> {
        EnvIter { cur: self }
    }

    /// Number of (possibly shadowed) bindings.
    pub fn len(&self) -> usize {
        self.iter().count()
    }
}

/// A persistent chunked stack of local-slot values, indexed de-Bruijn style
/// (slot `0` is the most recently pushed value).
///
/// This is the backing store of the interpreter's slot-resolved fast path:
/// where [`Env`] walks a linked list comparing interned names (and walks past
/// every shadowed and global binding on the way), `Locals` jumps straight to
/// the requested slot.  Each *binding event* — a function application, a
/// `let`, one `match` arm — pushes a single chunk node holding all the values
/// it binds, so the chain length is the lexical nesting depth, not the
/// binding count, and lookups touch at most `depth` nodes with no name
/// comparisons at all.
///
/// The stack is persistent (chunks are immutable and `Arc`-shared) so that
/// closures can capture it as cheaply as they capture an [`Env`].
#[derive(Clone, Default)]
pub struct Locals(Option<Arc<LocalsNode>>);

struct LocalsNode {
    /// The values bound by one binding event, oldest first (the newest value
    /// is `chunk.last()`, i.e. slot `0`).
    chunk: Vec<Value>,
    rest: Locals,
}

impl Locals {
    /// The empty stack.
    pub fn empty() -> Locals {
        Locals(None)
    }

    /// Pushes one binding event: all of `values` become the newest slots, the
    /// last element being slot `0`.  Empty chunks are skipped so slot indices
    /// always address a value.
    pub fn push_chunk(&self, values: Vec<Value>) -> Locals {
        if values.is_empty() {
            return self.clone();
        }
        Locals(Some(Arc::new(LocalsNode {
            chunk: values,
            rest: self.clone(),
        })))
    }

    /// The value at slot `index` (`0` = most recently pushed).
    pub fn get(&self, index: u32) -> Option<&Value> {
        let mut remaining = index as usize;
        let mut cur = self;
        while let Some(node) = &cur.0 {
            if remaining < node.chunk.len() {
                return Some(&node.chunk[node.chunk.len() - 1 - remaining]);
            }
            remaining -= node.chunk.len();
            cur = &node.rest;
        }
        None
    }

    /// `true` when no slots are bound.
    pub fn is_empty(&self) -> bool {
        self.0.is_none()
    }

    /// Total number of bound slots.
    pub fn len(&self) -> usize {
        let mut total = 0usize;
        let mut cur = self;
        while let Some(node) = &cur.0 {
            total += node.chunk.len();
            cur = &node.rest;
        }
        total
    }
}

impl fmt::Debug for Locals {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut list = f.debug_list();
        let mut cur = self;
        while let Some(node) = &cur.0 {
            for value in node.chunk.iter().rev() {
                list.entry(&format!("{value}"));
            }
            cur = &node.rest;
        }
        list.finish()
    }
}

struct EnvIter<'a> {
    cur: &'a Env,
}

impl<'a> Iterator for EnvIter<'a> {
    type Item = (&'a Symbol, &'a Value);

    fn next(&mut self) -> Option<Self::Item> {
        let node = self.cur.0.as_ref()?;
        self.cur = &node.rest;
        Some((&node.name, &node.value))
    }
}

impl fmt::Debug for Env {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut map = f.debug_map();
        for (k, v) in self.iter() {
            map.entry(&k.as_str(), &format!("{v}"));
        }
        map.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nat_round_trip() {
        for n in 0..10 {
            assert_eq!(Value::nat(n).as_nat(), Some(n));
        }
        assert_eq!(Value::tru().as_nat(), None);
    }

    #[test]
    fn bool_round_trip() {
        assert_eq!(Value::bool(true).as_bool(), Some(true));
        assert_eq!(Value::bool(false).as_bool(), Some(false));
        assert_eq!(Value::nat(0).as_bool(), None);
    }

    #[test]
    fn nat_list_round_trip() {
        let v = Value::nat_list(&[1, 2, 3]);
        let items = v.as_list().unwrap();
        assert_eq!(items.len(), 3);
        assert_eq!(items[0].as_nat(), Some(1));
        assert_eq!(items[2].as_nat(), Some(3));
    }

    #[test]
    fn size_counts_nodes() {
        assert_eq!(Value::nat(0).size(), 1);
        assert_eq!(Value::nat(3).size(), 4);
        // [1] = Cons(S O, Nil) = 1 + (2 + 1) = 4
        assert_eq!(Value::nat_list(&[1]).size(), 4);
        assert_eq!(Value::pair(Value::nat(0), Value::nat(0)).size(), 3);
    }

    #[test]
    fn strict_subvalues_of_a_list() {
        let v = Value::nat_list(&[1]);
        let subs = v.strict_subvalues();
        // Cons(S O, Nil) has subvalues: S O, O, Nil
        assert!(subs.contains(&Value::nat(1)));
        assert!(subs.contains(&Value::nat(0)));
        assert!(subs.contains(&Value::nat_list(&[])));
        assert!(!subs.contains(&v));
    }

    #[test]
    fn structural_equality_and_hashing() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(Value::nat_list(&[1, 2]));
        assert!(set.contains(&Value::nat_list(&[1, 2])));
        assert!(!set.contains(&Value::nat_list(&[2, 1])));
    }

    #[test]
    fn env_binding_and_shadowing() {
        let env = Env::empty();
        assert!(env.is_empty());
        let env = env.bind(Symbol::new("x"), Value::nat(1));
        let env2 = env.bind(Symbol::new("x"), Value::nat(2));
        assert_eq!(env.lookup(&Symbol::new("x")), Some(&Value::nat(1)));
        assert_eq!(env2.lookup(&Symbol::new("x")), Some(&Value::nat(2)));
        assert_eq!(env2.len(), 2);
        assert_eq!(env2.lookup(&Symbol::new("y")), None);
    }

    #[test]
    fn locals_index_from_the_top() {
        let stack = Locals::empty();
        assert!(stack.is_empty());
        assert_eq!(stack.get(0), None);
        // One application chunk [rec; arg] then a let chunk [bound].
        let stack = stack.push_chunk(vec![Value::nat(10), Value::nat(11)]);
        let stack = stack.push_chunk(vec![Value::nat(12)]);
        assert_eq!(stack.len(), 3);
        assert_eq!(stack.get(0), Some(&Value::nat(12)));
        assert_eq!(stack.get(1), Some(&Value::nat(11)));
        assert_eq!(stack.get(2), Some(&Value::nat(10)));
        assert_eq!(stack.get(3), None);
        // Persistence: pushing onto a captured stack leaves it untouched.
        let captured = stack.clone();
        let extended = stack.push_chunk(vec![Value::nat(13)]);
        assert_eq!(captured.len(), 3);
        assert_eq!(extended.get(0), Some(&Value::nat(13)));
        assert_eq!(extended.get(1), Some(&Value::nat(12)));
        // Empty chunks do not shift slot numbering.
        assert_eq!(
            captured.push_chunk(Vec::new()).get(0),
            Some(&Value::nat(12))
        );
    }

    #[test]
    fn has_type_checks_constructor_shapes() {
        use crate::types::{CtorDecl, DataDecl, Type, TypeEnv};
        let mut env = TypeEnv::new();
        env.declare(DataDecl::new(
            "nat",
            vec![
                CtorDecl::new("O", vec![]),
                CtorDecl::new("S", vec![Type::named("nat")]),
            ],
        ))
        .unwrap();
        env.declare(DataDecl::new(
            "list",
            vec![
                CtorDecl::new("Nil", vec![]),
                CtorDecl::new("Cons", vec![Type::named("nat"), Type::named("list")]),
            ],
        ))
        .unwrap();
        assert!(Value::nat(3).has_type(&env, &Type::named("nat")));
        assert!(!Value::nat(3).has_type(&env, &Type::named("list")));
        assert!(Value::nat_list(&[1]).has_type(&env, &Type::named("list")));
        assert!(Value::tru().has_type(&env, &Type::bool()));
        assert!(Value::pair(Value::nat(1), Value::tru())
            .has_type(&env, &Type::pair(Type::named("nat"), Type::bool())));
        assert!(!Value::pair(Value::nat(1), Value::tru())
            .has_type(&env, &Type::pair(Type::bool(), Type::bool())));
    }

    #[test]
    fn value_to_expr_round_trip_shape() {
        let v = Value::nat_list(&[0, 1]);
        let e = v.to_expr().unwrap();
        match e {
            Expr::Ctor(c, args) => {
                assert_eq!(c.as_str(), "Cons");
                assert_eq!(args.len(), 2);
            }
            other => panic!("unexpected expr {other:?}"),
        }
    }

    #[test]
    fn first_order_detection() {
        assert!(Value::nat(3).is_first_order());
        let clo = Value::Closure(Arc::new(Closure::by_name(
            Symbol::new("x"),
            Expr::var("x"),
            Env::empty(),
            None,
        )));
        assert!(!clo.is_first_order());
        assert!(!Value::pair(Value::nat(0), clo).is_first_order());
    }
}
