//! Error types shared across the language crate.

use std::fmt;

use crate::symbol::Symbol;
use crate::types::Type;

/// Any error the language layer can produce.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LangError {
    /// A lexing or parsing failure.
    Parse(ParseError),
    /// A static typing failure.
    Type(TypeError),
    /// A runtime failure of the interpreter.
    Eval(EvalError),
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LangError::Parse(e) => write!(f, "parse error: {e}"),
            LangError::Type(e) => write!(f, "type error: {e}"),
            LangError::Eval(e) => write!(f, "evaluation error: {e}"),
        }
    }
}

impl std::error::Error for LangError {}

impl From<ParseError> for LangError {
    fn from(e: ParseError) -> Self {
        LangError::Parse(e)
    }
}

impl From<TypeError> for LangError {
    fn from(e: TypeError) -> Self {
        LangError::Type(e)
    }
}

impl From<EvalError> for LangError {
    fn from(e: EvalError) -> Self {
        LangError::Eval(e)
    }
}

/// A lexing or parsing failure, with a 1-based line/column position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description of what went wrong.
    pub message: String,
    /// 1-based line of the offending token.
    pub line: usize,
    /// 1-based column of the offending token.
    pub column: usize,
}

impl ParseError {
    /// Creates a new parse error at the given position.
    pub fn new(message: impl Into<String>, line: usize, column: usize) -> Self {
        ParseError {
            message: message.into(),
            line,
            column,
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.column, self.message)
    }
}

impl std::error::Error for ParseError {}

/// A static type error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeError {
    /// A variable was referenced that is not in scope.
    UnboundVariable(Symbol),
    /// A constructor was referenced that is not declared by any data type.
    UnknownConstructor(Symbol),
    /// A type name was referenced that is not declared.
    UnknownType(Symbol),
    /// A data type or constructor was declared twice.
    DuplicateDefinition(Symbol),
    /// A constructor was applied to the wrong number of arguments.
    CtorArity {
        /// The constructor in question.
        ctor: Symbol,
        /// Number of arguments it was declared with.
        expected: usize,
        /// Number of arguments it was applied to.
        found: usize,
    },
    /// Two types that should have matched did not.
    Mismatch {
        /// The type required by the context.
        expected: Type,
        /// The type that was actually found.
        found: Type,
        /// A short description of the context of the mismatch.
        context: String,
    },
    /// A non-function value was applied to an argument.
    NotAFunction(Type),
    /// A projection (`fst`/`snd`) was applied to a non-tuple type.
    NotATuple(Type),
    /// A tuple projection index was out of bounds.
    ProjectionOutOfBounds { index: usize, arity: usize },
    /// A `match` scrutinee had a type that cannot be matched on.
    NotMatchable(Type),
    /// A pattern did not fit the scrutinee type.
    PatternMismatch { pattern: String, scrutinee: Type },
    /// Structural equality applied at a functional type.
    EqualityAtFunctionType(Type),
    /// The abstract type `t` appeared where a concrete type was required.
    UnexpectedAbstractType(String),
    /// Any other error, described textually.
    Other(String),
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeError::UnboundVariable(x) => write!(f, "unbound variable `{x}`"),
            TypeError::UnknownConstructor(c) => write!(f, "unknown constructor `{c}`"),
            TypeError::UnknownType(t) => write!(f, "unknown type `{t}`"),
            TypeError::DuplicateDefinition(x) => write!(f, "duplicate definition of `{x}`"),
            TypeError::CtorArity {
                ctor,
                expected,
                found,
            } => write!(
                f,
                "constructor `{ctor}` expects {expected} argument(s) but was given {found}"
            ),
            TypeError::Mismatch {
                expected,
                found,
                context,
            } => {
                write!(
                    f,
                    "type mismatch in {context}: expected `{expected}`, found `{found}`"
                )
            }
            TypeError::NotAFunction(t) => write!(f, "`{t}` is not a function type"),
            TypeError::NotATuple(t) => write!(f, "`{t}` is not a tuple type"),
            TypeError::ProjectionOutOfBounds { index, arity } => {
                write!(
                    f,
                    "projection index {index} out of bounds for a {arity}-tuple"
                )
            }
            TypeError::NotMatchable(t) => write!(f, "cannot match on a value of type `{t}`"),
            TypeError::PatternMismatch { pattern, scrutinee } => {
                write!(
                    f,
                    "pattern `{pattern}` does not match scrutinee type `{scrutinee}`"
                )
            }
            TypeError::EqualityAtFunctionType(t) => {
                write!(
                    f,
                    "structural equality is not defined at function type `{t}`"
                )
            }
            TypeError::UnexpectedAbstractType(ctx) => {
                write!(f, "the abstract type `t` is not allowed here ({ctx})")
            }
            TypeError::Other(msg) => f.write_str(msg),
        }
    }
}

impl std::error::Error for TypeError {}

/// A runtime error of the fuel-limited interpreter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// Evaluation exceeded its fuel budget (possible divergence).
    OutOfFuel,
    /// A variable was not bound in the runtime environment.
    UnboundVariable(Symbol),
    /// No arm of a `match` matched the scrutinee.
    MatchFailure(String),
    /// A non-function value was applied.
    NotAFunction(String),
    /// A projection was applied to a non-tuple value or out of bounds.
    BadProjection(String),
    /// Structural equality reached a closure.
    EqualityOnClosure,
    /// A branch condition was not a boolean value.
    NotABool(String),
    /// Any other dynamic failure.
    Other(String),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::OutOfFuel => f.write_str("evaluation ran out of fuel"),
            EvalError::UnboundVariable(x) => write!(f, "unbound variable `{x}` at runtime"),
            EvalError::MatchFailure(v) => write!(f, "no match arm applies to value {v}"),
            EvalError::NotAFunction(v) => write!(f, "cannot apply non-function value {v}"),
            EvalError::BadProjection(v) => write!(f, "invalid projection from value {v}"),
            EvalError::EqualityOnClosure => f.write_str("structural equality reached a closure"),
            EvalError::NotABool(v) => write!(f, "expected a boolean, found {v}"),
            EvalError::Other(msg) => f.write_str(msg),
        }
    }
}

impl std::error::Error for EvalError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let e = TypeError::CtorArity {
            ctor: Symbol::new("Cons"),
            expected: 2,
            found: 1,
        };
        assert!(e.to_string().contains("Cons"));
        assert!(e.to_string().contains('2'));

        let p = ParseError::new("unexpected token", 3, 7);
        assert_eq!(p.to_string(), "3:7: unexpected token");

        let l: LangError = p.into();
        assert!(l.to_string().starts_with("parse error"));
    }

    #[test]
    fn eval_error_display() {
        assert_eq!(
            EvalError::OutOfFuel.to_string(),
            "evaluation ran out of fuel"
        );
        assert!(EvalError::UnboundVariable(Symbol::new("x"))
            .to_string()
            .contains('x'));
    }
}
