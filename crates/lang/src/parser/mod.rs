//! A recursive-descent parser for the ML-like surface syntax.
//!
//! The grammar (informally):
//!
//! ```text
//! program    ::= item*
//! item       ::= "type" lident "=" "|"? ctor ("|" ctor)*
//!              | "let" "rec"? lident param* ":" type "=" expr
//!              | "interface" UIdent "=" "sig" ("type" "t")? ("val" lident ":" type)* "end"
//!              | "module" UIdent ":" UIdent "=" "struct" "type" "t" "=" type let* "end"
//!              | "spec" param* "=" expr
//! ctor       ::= UIdent ("of" type)?          -- a product type declares several fields
//! param      ::= "(" lident ":" type ")"
//! type       ::= prodty ("->" type)?
//! prodty     ::= atomty ("*" atomty)*
//! atomty     ::= "t" | lident | "(" type ")"
//! expr       ::= "fun" param+ "->" expr
//!              | "fix" lident param ":" type "=" expr
//!              | "match" expr "with" ("|" pat "->" expr)+ "end"
//!              | "let" lident "=" expr "in" expr
//!              | "if" expr "then" expr "else" expr
//!              | orexpr
//! orexpr     ::= andexpr ("||" orexpr)?
//! andexpr    ::= notexpr ("&&" andexpr)?
//! notexpr    ::= "not" notexpr | eqexpr
//! eqexpr     ::= appexpr ("==" appexpr)?
//! appexpr    ::= ("fst"|"snd") atom
//!              | UIdent ctorargs? atom*          -- constructor application
//!              | atom atom*                       -- function application
//! ctorargs   ::= "(" expr ("," expr)* ")" | atom
//! atom       ::= lident | UIdent | int | "(" ")" | "(" expr ("," expr)* ")"
//! pat        ::= "_" | lident | UIdent ("(" pat ("," pat)* ")" | lident | "_")?
//!              | "(" pat ("," pat)* ")"
//! ```
//!
//! Notes:
//!
//! * `match` expressions are terminated by `end`, which keeps nested matches
//!   unambiguous and lets arm bodies be arbitrary expressions.
//! * The type name `t` always denotes the module's abstract type
//!   ([`Type::Abstract`]); it is substituted by the concrete representation
//!   type when a module is elaborated.
//! * Integer literals are sugar for Peano numerals (`2` parses as `S (S O)`),
//!   so they require a `nat` type with constructors `O`/`S` to be declared.
//! * Constructor applications are written `C`, `C atom` or `C (e1, ..., ek)`;
//!   the parenthesised form supplies the constructor's `k` declared fields.

mod lexer;

pub use lexer::{lex, Tok, Token};

use crate::ast::{
    Expr, InterfaceDecl, Item, MatchArm, ModuleDecl, Pattern, Program, SpecDecl, TopLet,
};
use crate::error::ParseError;
use crate::symbol::Symbol;
use crate::types::{CtorDecl, DataDecl, Type};

/// Parses a whole surface program.
pub fn parse_program(source: &str) -> Result<Program, ParseError> {
    let tokens = lex(source)?;
    let mut parser = Parser::new(tokens);
    parser.program()
}

/// Parses a single expression (useful in tests and examples).
pub fn parse_expr(source: &str) -> Result<Expr, ParseError> {
    let tokens = lex(source)?;
    let mut parser = Parser::new(tokens);
    let e = parser.expr()?;
    parser.expect_eof()?;
    Ok(e)
}

/// Parses a single type.
pub fn parse_type(source: &str) -> Result<Type, ParseError> {
    let tokens = lex(source)?;
    let mut parser = Parser::new(tokens);
    let t = parser.ty()?;
    parser.expect_eof()?;
    Ok(t)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn new(tokens: Vec<Token>) -> Self {
        Parser { tokens, pos: 0 }
    }

    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos).map(|t| &t.tok)
    }

    fn position(&self) -> (usize, usize) {
        self.tokens
            .get(self.pos)
            .or_else(|| self.tokens.last())
            .map(|t| (t.line, t.column))
            .unwrap_or((1, 1))
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        let (line, column) = self.position();
        ParseError::new(message, line, column)
    }

    fn next(&mut self) -> Result<Tok, ParseError> {
        let tok = self
            .tokens
            .get(self.pos)
            .map(|t| t.tok.clone())
            .ok_or_else(|| self.error("unexpected end of input"))?;
        self.pos += 1;
        Ok(tok)
    }

    fn eat(&mut self, tok: &Tok) -> bool {
        if self.peek() == Some(tok) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, tok: Tok) -> Result<(), ParseError> {
        match self.peek() {
            Some(found) if found == &tok => {
                self.pos += 1;
                Ok(())
            }
            Some(found) => Err(self.error(format!("expected {tok}, found {found}"))),
            None => Err(self.error(format!("expected {tok}, found end of input"))),
        }
    }

    fn expect_eof(&self) -> Result<(), ParseError> {
        if self.pos == self.tokens.len() {
            Ok(())
        } else {
            Err(self.error(format!(
                "expected end of input, found {}",
                self.tokens[self.pos].tok
            )))
        }
    }

    fn lident(&mut self) -> Result<String, ParseError> {
        match self.next()? {
            Tok::LIdent(s) => Ok(s),
            other => Err(self.error(format!("expected an identifier, found {other}"))),
        }
    }

    fn uident(&mut self) -> Result<String, ParseError> {
        match self.next()? {
            Tok::UIdent(s) => Ok(s),
            other => Err(self.error(format!("expected a capitalised identifier, found {other}"))),
        }
    }

    // ----- programs -------------------------------------------------------

    fn program(&mut self) -> Result<Program, ParseError> {
        let mut items = Vec::new();
        while let Some(tok) = self.peek() {
            let item = match tok {
                Tok::Type => Item::Data(self.data_decl()?),
                Tok::Let => Item::Let(self.top_let()?),
                Tok::Interface => Item::Interface(self.interface_decl()?),
                Tok::Module => Item::Module(self.module_decl()?),
                Tok::Spec => Item::Spec(self.spec_decl()?),
                other => return Err(self.error(format!("expected a declaration, found {other}"))),
            };
            items.push(item);
        }
        Ok(Program { items })
    }

    fn data_decl(&mut self) -> Result<DataDecl, ParseError> {
        self.expect(Tok::Type)?;
        let name = self.lident()?;
        self.expect(Tok::Eq)?;
        self.eat(&Tok::Bar);
        let mut ctors = vec![self.ctor_decl()?];
        while self.eat(&Tok::Bar) {
            ctors.push(self.ctor_decl()?);
        }
        Ok(DataDecl {
            name: Symbol::new(&name),
            ctors,
        })
    }

    fn ctor_decl(&mut self) -> Result<CtorDecl, ParseError> {
        let name = self.uident()?;
        let args = if self.eat(&Tok::Of) {
            match self.ty()? {
                Type::Tuple(elems) if !elems.is_empty() => elems,
                other => vec![other],
            }
        } else {
            Vec::new()
        };
        Ok(CtorDecl {
            name: Symbol::new(&name),
            args,
        })
    }

    fn param(&mut self) -> Result<(Symbol, Type), ParseError> {
        self.expect(Tok::LParen)?;
        let name = self.lident()?;
        self.expect(Tok::Colon)?;
        let ty = self.ty()?;
        self.expect(Tok::RParen)?;
        Ok((Symbol::new(&name), ty))
    }

    fn top_let(&mut self) -> Result<TopLet, ParseError> {
        self.expect(Tok::Let)?;
        let recursive = self.eat(&Tok::Rec);
        let name = self.lident()?;
        let mut params = Vec::new();
        while self.peek() == Some(&Tok::LParen) {
            params.push(self.param()?);
        }
        self.expect(Tok::Colon)?;
        let ret_ty = self.ty()?;
        self.expect(Tok::Eq)?;
        let body = self.expr()?;
        Ok(TopLet {
            name: Symbol::new(&name),
            recursive,
            params,
            ret_ty,
            body,
        })
    }

    fn interface_decl(&mut self) -> Result<InterfaceDecl, ParseError> {
        self.expect(Tok::Interface)?;
        let name = self.uident()?;
        self.expect(Tok::Eq)?;
        self.expect(Tok::Sig)?;
        let mut vals = Vec::new();
        loop {
            match self.peek() {
                Some(Tok::Type) => {
                    // `type t` inside a signature just (re)declares the
                    // abstract type; it carries no further information.
                    self.expect(Tok::Type)?;
                    let t = self.lident()?;
                    if t != "t" {
                        return Err(
                            self.error("the abstract type in an interface must be named `t`")
                        );
                    }
                }
                Some(Tok::Val) => {
                    self.expect(Tok::Val)?;
                    let vname = self.lident()?;
                    self.expect(Tok::Colon)?;
                    let ty = self.ty()?;
                    vals.push((Symbol::new(&vname), ty));
                }
                Some(Tok::End) => {
                    self.expect(Tok::End)?;
                    break;
                }
                Some(other) => {
                    return Err(self.error(format!(
                        "expected `val`, `type` or `end` in interface, found {other}"
                    )))
                }
                None => return Err(self.error("unterminated interface")),
            }
        }
        Ok(InterfaceDecl {
            name: Symbol::new(&name),
            vals,
        })
    }

    fn module_decl(&mut self) -> Result<ModuleDecl, ParseError> {
        self.expect(Tok::Module)?;
        let name = self.uident()?;
        self.expect(Tok::Colon)?;
        let interface = self.uident()?;
        self.expect(Tok::Eq)?;
        self.expect(Tok::Struct)?;
        self.expect(Tok::Type)?;
        let t = self.lident()?;
        if t != "t" {
            return Err(self.error("the representation type in a module must be named `t`"));
        }
        self.expect(Tok::Eq)?;
        let concrete = self.ty()?;
        let mut lets = Vec::new();
        loop {
            match self.peek() {
                Some(Tok::Let) => lets.push(self.top_let()?),
                Some(Tok::End) => {
                    self.expect(Tok::End)?;
                    break;
                }
                Some(other) => {
                    return Err(self.error(format!(
                        "expected `let` or `end` in module body, found {other}"
                    )))
                }
                None => return Err(self.error("unterminated module")),
            }
        }
        Ok(ModuleDecl {
            name: Symbol::new(&name),
            interface: Symbol::new(&interface),
            concrete,
            lets,
        })
    }

    fn spec_decl(&mut self) -> Result<SpecDecl, ParseError> {
        self.expect(Tok::Spec)?;
        let mut params = Vec::new();
        while self.peek() == Some(&Tok::LParen) {
            params.push(self.param()?);
        }
        self.expect(Tok::Eq)?;
        let body = self.expr()?;
        Ok(SpecDecl { params, body })
    }

    // ----- types ----------------------------------------------------------

    fn ty(&mut self) -> Result<Type, ParseError> {
        let left = self.prod_ty()?;
        if self.eat(&Tok::Arrow) {
            let right = self.ty()?;
            Ok(Type::arrow(left, right))
        } else {
            Ok(left)
        }
    }

    fn prod_ty(&mut self) -> Result<Type, ParseError> {
        let first = self.atom_ty()?;
        if self.peek() == Some(&Tok::Star) {
            let mut elems = vec![first];
            while self.eat(&Tok::Star) {
                elems.push(self.atom_ty()?);
            }
            Ok(Type::Tuple(elems))
        } else {
            Ok(first)
        }
    }

    fn atom_ty(&mut self) -> Result<Type, ParseError> {
        match self.next()? {
            Tok::LIdent(name) if name == "t" => Ok(Type::Abstract),
            Tok::LIdent(name) if name == "unit" => Ok(Type::unit()),
            Tok::LIdent(name) => Ok(Type::named(&name)),
            Tok::LParen => {
                let ty = self.ty()?;
                self.expect(Tok::RParen)?;
                Ok(ty)
            }
            other => Err(self.error(format!("expected a type, found {other}"))),
        }
    }

    // ----- expressions ----------------------------------------------------

    fn expr(&mut self) -> Result<Expr, ParseError> {
        match self.peek() {
            Some(Tok::Fun) => {
                self.expect(Tok::Fun)?;
                let mut params = vec![self.param()?];
                while self.peek() == Some(&Tok::LParen) {
                    params.push(self.param()?);
                }
                self.expect(Tok::Arrow)?;
                let body = self.expr()?;
                Ok(params
                    .into_iter()
                    .rev()
                    .fold(body, |acc, (p, t)| Expr::lambda(p.as_str(), t, acc)))
            }
            Some(Tok::Fix) => {
                self.expect(Tok::Fix)?;
                let name = self.lident()?;
                let (param, param_ty) = self.param()?;
                self.expect(Tok::Colon)?;
                let ret_ty = self.ty()?;
                self.expect(Tok::Eq)?;
                let body = self.expr()?;
                Ok(Expr::fix(&name, param.as_str(), param_ty, ret_ty, body))
            }
            Some(Tok::Match) => {
                self.expect(Tok::Match)?;
                let scrutinee = self.expr()?;
                self.expect(Tok::With)?;
                let mut arms = Vec::new();
                while self.eat(&Tok::Bar) {
                    let pattern = self.pattern()?;
                    self.expect(Tok::Arrow)?;
                    let body = self.expr()?;
                    arms.push(MatchArm { pattern, body });
                }
                self.expect(Tok::End)?;
                if arms.is_empty() {
                    return Err(self.error("a match expression needs at least one arm"));
                }
                Ok(Expr::Match(Box::new(scrutinee), arms))
            }
            Some(Tok::Let) => {
                self.expect(Tok::Let)?;
                let name = self.lident()?;
                self.expect(Tok::Eq)?;
                let bound = self.expr()?;
                self.expect(Tok::In)?;
                let body = self.expr()?;
                Ok(Expr::let_(&name, bound, body))
            }
            Some(Tok::If) => {
                self.expect(Tok::If)?;
                let cond = self.expr()?;
                self.expect(Tok::Then)?;
                let then = self.expr()?;
                self.expect(Tok::Else)?;
                let els = self.expr()?;
                Ok(Expr::if_(cond, then, els))
            }
            _ => self.or_expr(),
        }
    }

    fn or_expr(&mut self) -> Result<Expr, ParseError> {
        let left = self.and_expr()?;
        if self.eat(&Tok::BarBar) {
            let right = self.or_expr()?;
            Ok(Expr::or(left, right))
        } else {
            Ok(left)
        }
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let left = self.not_expr()?;
        if self.eat(&Tok::AmpAmp) {
            let right = self.and_expr()?;
            Ok(Expr::and(left, right))
        } else {
            Ok(left)
        }
    }

    fn not_expr(&mut self) -> Result<Expr, ParseError> {
        if self.eat(&Tok::Not) {
            let inner = self.not_expr()?;
            Ok(Expr::not(inner))
        } else {
            self.eq_expr()
        }
    }

    fn eq_expr(&mut self) -> Result<Expr, ParseError> {
        let left = self.app_expr()?;
        if self.eat(&Tok::EqEq) {
            let right = self.app_expr()?;
            Ok(Expr::eq(left, right))
        } else {
            Ok(left)
        }
    }

    fn starts_atom(&self) -> bool {
        matches!(
            self.peek(),
            Some(Tok::LIdent(_))
                | Some(Tok::UIdent(_))
                | Some(Tok::Int(_))
                | Some(Tok::MachineInt(_))
                | Some(Tok::LParen)
        )
    }

    fn app_expr(&mut self) -> Result<Expr, ParseError> {
        // Projections.
        if self.eat(&Tok::Fst) {
            let inner = self.atom()?;
            return Ok(Expr::Proj(0, Box::new(inner)));
        }
        if self.eat(&Tok::Snd) {
            let inner = self.atom()?;
            return Ok(Expr::Proj(1, Box::new(inner)));
        }
        // Constructor in head position: its arguments are either a
        // parenthesised list or a single atom.
        let mut head = if let Some(Tok::UIdent(_)) = self.peek() {
            let Tok::UIdent(name) = self.next()? else {
                unreachable!()
            };
            if self.peek() == Some(&Tok::LParen) {
                self.expect(Tok::LParen)?;
                if self.eat(&Tok::RParen) {
                    // `C ()`: a constructor applied to the unit value.
                    Expr::Ctor(Symbol::new(&name), vec![Expr::Tuple(Vec::new())])
                } else {
                    let mut args = vec![self.expr()?];
                    while self.eat(&Tok::Comma) {
                        args.push(self.expr()?);
                    }
                    self.expect(Tok::RParen)?;
                    Expr::Ctor(Symbol::new(&name), args)
                }
            } else if self.starts_atom() {
                let arg = self.atom()?;
                Expr::Ctor(Symbol::new(&name), vec![arg])
            } else {
                Expr::Ctor(Symbol::new(&name), Vec::new())
            }
        } else {
            self.atom()?
        };
        while self.starts_atom() {
            let arg = self.atom()?;
            head = Expr::app(head, arg);
        }
        Ok(head)
    }

    fn atom(&mut self) -> Result<Expr, ParseError> {
        match self.next()? {
            Tok::LIdent(name) => Ok(Expr::var(&name)),
            Tok::UIdent(name) => Ok(Expr::Ctor(Symbol::new(&name), Vec::new())),
            Tok::Int(n) => {
                let mut e = Expr::ctor("O", vec![]);
                for _ in 0..n {
                    e = Expr::ctor("S", vec![e]);
                }
                Ok(e)
            }
            Tok::MachineInt(n) => Ok(Expr::Int(n)),
            Tok::LParen => {
                if self.eat(&Tok::RParen) {
                    return Ok(Expr::Tuple(Vec::new()));
                }
                let first = self.expr()?;
                if self.peek() == Some(&Tok::Comma) {
                    let mut elems = vec![first];
                    while self.eat(&Tok::Comma) {
                        elems.push(self.expr()?);
                    }
                    self.expect(Tok::RParen)?;
                    Ok(Expr::Tuple(elems))
                } else {
                    self.expect(Tok::RParen)?;
                    Ok(first)
                }
            }
            other => Err(self.error(format!("expected an expression, found {other}"))),
        }
    }

    // ----- patterns -------------------------------------------------------

    fn pattern(&mut self) -> Result<Pattern, ParseError> {
        match self.next()? {
            Tok::Underscore => Ok(Pattern::Wildcard),
            Tok::LIdent(name) => Ok(Pattern::Var(Symbol::new(&name))),
            Tok::UIdent(name) => {
                if self.peek() == Some(&Tok::LParen) {
                    self.expect(Tok::LParen)?;
                    let mut args = vec![self.pattern()?];
                    while self.eat(&Tok::Comma) {
                        args.push(self.pattern()?);
                    }
                    self.expect(Tok::RParen)?;
                    Ok(Pattern::Ctor(Symbol::new(&name), args))
                } else if matches!(self.peek(), Some(Tok::LIdent(_)) | Some(Tok::Underscore)) {
                    let sub = self.pattern()?;
                    Ok(Pattern::Ctor(Symbol::new(&name), vec![sub]))
                } else {
                    Ok(Pattern::Ctor(Symbol::new(&name), Vec::new()))
                }
            }
            Tok::LParen => {
                let mut elems = vec![self.pattern()?];
                while self.eat(&Tok::Comma) {
                    elems.push(self.pattern()?);
                }
                self.expect(Tok::RParen)?;
                if elems.len() == 1 {
                    Ok(elems.pop().expect("one element"))
                } else {
                    Ok(Pattern::Tuple(elems))
                }
            }
            other => Err(self.error(format!("expected a pattern, found {other}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    #[test]
    fn parses_expressions_with_precedence() {
        let e = parse_expr("a || b && not c").unwrap();
        assert_eq!(
            e,
            Expr::or(
                Expr::var("a"),
                Expr::and(Expr::var("b"), Expr::not(Expr::var("c")))
            )
        );
        let e = parse_expr("lookup l x == True").unwrap();
        assert_eq!(
            e,
            Expr::eq(
                Expr::call("lookup", [Expr::var("l"), Expr::var("x")]),
                Expr::tru()
            )
        );
    }

    #[test]
    fn parses_constructor_applications() {
        assert_eq!(parse_expr("Nil").unwrap(), Expr::ctor("Nil", vec![]));
        assert_eq!(
            parse_expr("S x").unwrap(),
            Expr::ctor("S", vec![Expr::var("x")])
        );
        assert_eq!(
            parse_expr("Cons (x, Nil)").unwrap(),
            Expr::ctor("Cons", vec![Expr::var("x"), Expr::ctor("Nil", vec![])])
        );
        assert_eq!(
            parse_expr("Cons (S x, Cons (y, Nil))").unwrap(),
            Expr::ctor(
                "Cons",
                vec![
                    Expr::ctor("S", vec![Expr::var("x")]),
                    Expr::ctor("Cons", vec![Expr::var("y"), Expr::ctor("Nil", vec![])])
                ]
            )
        );
    }

    #[test]
    fn parses_integer_literals_as_peano() {
        assert_eq!(parse_expr("2").unwrap(), Value::nat(2).to_expr().unwrap());
        assert_eq!(parse_expr("0").unwrap(), Value::nat(0).to_expr().unwrap());
    }

    #[test]
    fn parses_machine_integer_literals() {
        assert_eq!(parse_expr("#5").unwrap(), Expr::Int(5));
        assert_eq!(parse_expr("#-3").unwrap(), Expr::Int(-3));
        assert_eq!(
            parse_expr("iadd #1 #-2").unwrap(),
            Expr::call("iadd", [Expr::Int(1), Expr::Int(-2)])
        );
    }

    #[test]
    fn parses_match_let_if_fun() {
        let e = parse_expr(
            "match l with | Nil -> True | Cons (hd, tl) -> not (lookup tl hd) && inv tl end",
        )
        .unwrap();
        match e {
            Expr::Match(_, arms) => {
                assert_eq!(arms.len(), 2);
                assert_eq!(arms[0].pattern, Pattern::ctor("Nil", vec![]));
            }
            other => panic!("expected match, got {other:?}"),
        }

        let e = parse_expr("let x = S O in plus x x").unwrap();
        assert!(matches!(e, Expr::Let(_, _, _)));

        let e = parse_expr("if leq x y then x else y").unwrap();
        assert!(matches!(e, Expr::If(_, _, _)));

        let e = parse_expr("fun (x : nat) (y : nat) -> plus x y").unwrap();
        assert!(matches!(e, Expr::Lambda(_)));

        let e = parse_expr(
            "fix len (l : list) : nat = match l with | Nil -> O | Cons (h, t) -> S (len t) end",
        )
        .unwrap();
        assert!(matches!(e, Expr::Fix(_)));
    }

    #[test]
    fn parses_projections_and_tuples() {
        let e = parse_expr("fst p").unwrap();
        assert_eq!(e, Expr::Proj(0, Box::new(Expr::var("p"))));
        let e = parse_expr("snd (x, y)").unwrap();
        assert_eq!(
            e,
            Expr::Proj(
                1,
                Box::new(Expr::Tuple(vec![Expr::var("x"), Expr::var("y")]))
            )
        );
        assert_eq!(parse_expr("()").unwrap(), Expr::Tuple(vec![]));
    }

    #[test]
    fn parses_types() {
        assert_eq!(parse_type("nat").unwrap(), Type::named("nat"));
        assert_eq!(parse_type("t").unwrap(), Type::Abstract);
        assert_eq!(
            parse_type("t -> nat -> bool").unwrap(),
            Type::arrows(vec![Type::Abstract, Type::named("nat")], Type::bool())
        );
        assert_eq!(
            parse_type("(nat -> nat) -> t").unwrap(),
            Type::arrow(
                Type::arrow(Type::named("nat"), Type::named("nat")),
                Type::Abstract
            )
        );
        assert_eq!(
            parse_type("nat * bool").unwrap(),
            Type::pair(Type::named("nat"), Type::bool())
        );
    }

    #[test]
    fn parses_data_declarations() {
        let p = parse_program("type list = Nil | Cons of nat * list").unwrap();
        let decls: Vec<_> = p.data_decls().collect();
        assert_eq!(decls.len(), 1);
        assert_eq!(decls[0].ctors.len(), 2);
        assert_eq!(decls[0].ctors[1].args.len(), 2);
    }

    #[test]
    fn parses_top_level_lets() {
        let p = parse_program(
            r#"
            type nat = O | S of nat
            let rec plus (m : nat) (n : nat) : nat =
              match m with
              | O -> n
              | S m2 -> S (plus m2 n)
              end
            let two : nat = S (S O)
            "#,
        )
        .unwrap();
        let lets: Vec<_> = p.top_lets().collect();
        assert_eq!(lets.len(), 2);
        assert!(lets[0].recursive);
        assert_eq!(lets[0].params.len(), 2);
        assert!(!lets[1].recursive);
        assert!(lets[1].params.is_empty());
    }

    #[test]
    fn parses_interface_module_and_spec() {
        let src = r#"
            type nat = O | S of nat
            type list = Nil | Cons of nat * list

            interface SET = sig
              type t
              val empty : t
              val insert : t -> nat -> t
              val lookup : t -> nat -> bool
            end

            module ListSet : SET = struct
              type t = list
              let empty : t = Nil
              let rec lookup (l : t) (x : nat) : bool =
                match l with
                | Nil -> False
                | Cons (hd, tl) -> hd == x || lookup tl x
                end
              let insert (l : t) (x : nat) : t =
                if lookup l x then l else Cons (x, l)
            end

            spec (s : t) (i : nat) = lookup (insert s i) i
        "#;
        let p = parse_program(src).unwrap();
        let iface = p.interface().unwrap();
        assert_eq!(iface.name, Symbol::new("SET"));
        assert_eq!(iface.vals.len(), 3);
        assert_eq!(
            iface.vals[1].1,
            Type::arrows(vec![Type::Abstract, Type::named("nat")], Type::Abstract)
        );
        let m = p.module().unwrap();
        assert_eq!(m.concrete, Type::named("list"));
        assert_eq!(m.lets.len(), 3);
        let spec = p.spec().unwrap();
        assert_eq!(spec.params.len(), 2);
        assert_eq!(spec.params[0].1, Type::Abstract);
    }

    #[test]
    fn pretty_printed_expressions_reparse() {
        let sources = [
            "a || b && not c",
            "lookup (insert s i) i",
            "Cons (S x, Nil)",
            "match l with | Nil -> True | Cons (hd, tl) -> not (lookup tl hd) && inv tl end",
            "if leq x y then x else y",
            "fun (x : nat) -> S x",
            "fst (x, y) == snd (y, x)",
            "let z = plus x y in z == x",
            "ile (iadd (imul #2 x) (imul #-3 y)) #7",
            "imod x #4 == #0",
        ];
        for src in sources {
            let parsed = parse_expr(src).unwrap();
            let printed = parsed.to_string();
            let reparsed = parse_expr(&printed)
                .unwrap_or_else(|e| panic!("failed to reparse `{printed}`: {e}"));
            assert_eq!(parsed, reparsed, "source `{src}` printed as `{printed}`");
        }
    }

    #[test]
    fn error_positions_are_reported() {
        let err = parse_program("type = Nil").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.column > 1);
        let err = parse_expr("match x with").unwrap_err();
        assert!(err.message.contains("end of input") || err.message.contains('|'));
    }

    #[test]
    fn elaborated_program_evaluates_prelude_functions() {
        let src = r#"
            type nat = O | S of nat
            let rec plus (m : nat) (n : nat) : nat =
              match m with
              | O -> n
              | S m2 -> S (plus m2 n)
              end
        "#;
        let program = parse_program(src).unwrap();
        let elaborated = program.elaborate().unwrap();
        let result = elaborated
            .eval_call("plus", &[Value::nat(2), Value::nat(2)])
            .unwrap();
        assert_eq!(result, Value::nat(4));
        assert_eq!(
            elaborated.global_type("plus").unwrap(),
            Type::arrows(
                vec![Type::named("nat"), Type::named("nat")],
                Type::named("nat")
            )
        );
    }
}
