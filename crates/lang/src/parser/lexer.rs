//! The lexer for the ML-like surface syntax.

use crate::error::ParseError;

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// A lowercase identifier (variable, function or type name).
    LIdent(String),
    /// An uppercase identifier (constructor, interface or module name).
    UIdent(String),
    /// A decimal natural-number literal (sugar for Peano numerals).
    Int(u64),
    /// A machine-integer literal `#5` / `#-3` (the builtin `int` type).
    MachineInt(i64),
    /// `type`
    Type,
    /// `of`
    Of,
    /// `let`
    Let,
    /// `rec`
    Rec,
    /// `in`
    In,
    /// `match`
    Match,
    /// `with`
    With,
    /// `end`
    End,
    /// `fun`
    Fun,
    /// `fix`
    Fix,
    /// `if`
    If,
    /// `then`
    Then,
    /// `else`
    Else,
    /// `not`
    Not,
    /// `interface`
    Interface,
    /// `module`
    Module,
    /// `sig`
    Sig,
    /// `struct`
    Struct,
    /// `val`
    Val,
    /// `spec`
    Spec,
    /// `fst`
    Fst,
    /// `snd`
    Snd,
    /// `=`
    Eq,
    /// `==`
    EqEq,
    /// `->`
    Arrow,
    /// `|`
    Bar,
    /// `||`
    BarBar,
    /// `&&`
    AmpAmp,
    /// `*`
    Star,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `:`
    Colon,
    /// `_`
    Underscore,
}

impl std::fmt::Display for Tok {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Tok::LIdent(s) | Tok::UIdent(s) => write!(f, "`{s}`"),
            Tok::Int(n) => write!(f, "`{n}`"),
            Tok::MachineInt(n) => write!(f, "`#{n}`"),
            Tok::Type => f.write_str("`type`"),
            Tok::Of => f.write_str("`of`"),
            Tok::Let => f.write_str("`let`"),
            Tok::Rec => f.write_str("`rec`"),
            Tok::In => f.write_str("`in`"),
            Tok::Match => f.write_str("`match`"),
            Tok::With => f.write_str("`with`"),
            Tok::End => f.write_str("`end`"),
            Tok::Fun => f.write_str("`fun`"),
            Tok::Fix => f.write_str("`fix`"),
            Tok::If => f.write_str("`if`"),
            Tok::Then => f.write_str("`then`"),
            Tok::Else => f.write_str("`else`"),
            Tok::Not => f.write_str("`not`"),
            Tok::Interface => f.write_str("`interface`"),
            Tok::Module => f.write_str("`module`"),
            Tok::Sig => f.write_str("`sig`"),
            Tok::Struct => f.write_str("`struct`"),
            Tok::Val => f.write_str("`val`"),
            Tok::Spec => f.write_str("`spec`"),
            Tok::Fst => f.write_str("`fst`"),
            Tok::Snd => f.write_str("`snd`"),
            Tok::Eq => f.write_str("`=`"),
            Tok::EqEq => f.write_str("`==`"),
            Tok::Arrow => f.write_str("`->`"),
            Tok::Bar => f.write_str("`|`"),
            Tok::BarBar => f.write_str("`||`"),
            Tok::AmpAmp => f.write_str("`&&`"),
            Tok::Star => f.write_str("`*`"),
            Tok::LParen => f.write_str("`(`"),
            Tok::RParen => f.write_str("`)`"),
            Tok::Comma => f.write_str("`,`"),
            Tok::Colon => f.write_str("`:`"),
            Tok::Underscore => f.write_str("`_`"),
        }
    }
}

/// A token together with its 1-based source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token itself.
    pub tok: Tok,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub column: usize,
}

/// Lexes a full source string.
pub fn lex(source: &str) -> Result<Vec<Token>, ParseError> {
    let chars: Vec<char> = source.chars().collect();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    let mut line = 1usize;
    let mut column = 1usize;

    macro_rules! advance {
        () => {{
            if chars[i] == '\n' {
                line += 1;
                column = 1;
            } else {
                column += 1;
            }
            i += 1;
        }};
    }

    while i < chars.len() {
        let c = chars[i];
        let (tok_line, tok_col) = (line, column);
        if c.is_whitespace() {
            advance!();
            continue;
        }
        // Comments: (* ... *), possibly nested.
        if c == '(' && i + 1 < chars.len() && chars[i + 1] == '*' {
            let mut depth = 0usize;
            while i < chars.len() {
                if chars[i] == '(' && i + 1 < chars.len() && chars[i + 1] == '*' {
                    depth += 1;
                    advance!();
                    advance!();
                } else if chars[i] == '*' && i + 1 < chars.len() && chars[i + 1] == ')' {
                    depth -= 1;
                    advance!();
                    advance!();
                    if depth == 0 {
                        break;
                    }
                } else {
                    advance!();
                }
            }
            if depth != 0 {
                return Err(ParseError::new("unterminated comment", tok_line, tok_col));
            }
            continue;
        }
        // Machine-integer literals: `#` then an optional `-` then digits.
        if c == '#' {
            advance!();
            let negative = i < chars.len() && chars[i] == '-';
            if negative {
                advance!();
            }
            if i >= chars.len() || !chars[i].is_ascii_digit() {
                return Err(ParseError::new(
                    "expected digits after `#`",
                    tok_line,
                    tok_col,
                ));
            }
            let mut n: i64 = 0;
            while i < chars.len() && chars[i].is_ascii_digit() {
                let digit = chars[i].to_digit(10).unwrap() as i64;
                n = n
                    .checked_mul(10)
                    .and_then(|n| {
                        if negative {
                            n.checked_sub(digit)
                        } else {
                            n.checked_add(digit)
                        }
                    })
                    .ok_or_else(|| {
                        ParseError::new("machine-integer literal too large", tok_line, tok_col)
                    })?;
                advance!();
            }
            tokens.push(Token {
                tok: Tok::MachineInt(n),
                line: tok_line,
                column: tok_col,
            });
            continue;
        }
        if c.is_ascii_digit() {
            let mut n: u64 = 0;
            while i < chars.len() && chars[i].is_ascii_digit() {
                n = n
                    .checked_mul(10)
                    .and_then(|n| n.checked_add(chars[i].to_digit(10).unwrap() as u64))
                    .ok_or_else(|| {
                        ParseError::new("integer literal too large", tok_line, tok_col)
                    })?;
                advance!();
            }
            tokens.push(Token {
                tok: Tok::Int(n),
                line: tok_line,
                column: tok_col,
            });
            continue;
        }
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < chars.len()
                && (chars[i].is_ascii_alphanumeric() || chars[i] == '_' || chars[i] == '\'')
            {
                advance!();
            }
            let word: String = chars[start..i].iter().collect();
            let tok = match word.as_str() {
                "_" => Tok::Underscore,
                "type" => Tok::Type,
                "of" => Tok::Of,
                "let" => Tok::Let,
                "rec" => Tok::Rec,
                "in" => Tok::In,
                "match" => Tok::Match,
                "with" => Tok::With,
                "end" => Tok::End,
                "fun" => Tok::Fun,
                "fix" => Tok::Fix,
                "if" => Tok::If,
                "then" => Tok::Then,
                "else" => Tok::Else,
                "not" => Tok::Not,
                "interface" => Tok::Interface,
                "module" => Tok::Module,
                "sig" => Tok::Sig,
                "struct" => Tok::Struct,
                "val" => Tok::Val,
                "spec" => Tok::Spec,
                "fst" => Tok::Fst,
                "snd" => Tok::Snd,
                _ => {
                    if word.chars().next().unwrap().is_ascii_uppercase() {
                        Tok::UIdent(word)
                    } else {
                        Tok::LIdent(word)
                    }
                }
            };
            tokens.push(Token {
                tok,
                line: tok_line,
                column: tok_col,
            });
            continue;
        }
        let two: Option<&str> = if i + 1 < chars.len() {
            Some(match (c, chars[i + 1]) {
                ('-', '>') => "->",
                ('|', '|') => "||",
                ('&', '&') => "&&",
                ('=', '=') => "==",
                _ => "",
            })
        } else {
            None
        };
        if let Some(op) = two.filter(|s| !s.is_empty()) {
            let tok = match op {
                "->" => Tok::Arrow,
                "||" => Tok::BarBar,
                "&&" => Tok::AmpAmp,
                "==" => Tok::EqEq,
                _ => unreachable!(),
            };
            advance!();
            advance!();
            tokens.push(Token {
                tok,
                line: tok_line,
                column: tok_col,
            });
            continue;
        }
        let tok = match c {
            '=' => Tok::Eq,
            '|' => Tok::Bar,
            '*' => Tok::Star,
            '(' => Tok::LParen,
            ')' => Tok::RParen,
            ',' => Tok::Comma,
            ':' => Tok::Colon,
            other => {
                return Err(ParseError::new(
                    format!("unexpected character `{other}`"),
                    tok_line,
                    tok_col,
                ))
            }
        };
        advance!();
        tokens.push(Token {
            tok,
            line: tok_line,
            column: tok_col,
        });
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn keywords_and_identifiers() {
        assert_eq!(
            toks("let rec lookup Cons x1"),
            vec![
                Tok::Let,
                Tok::Rec,
                Tok::LIdent("lookup".into()),
                Tok::UIdent("Cons".into()),
                Tok::LIdent("x1".into()),
            ]
        );
    }

    #[test]
    fn operators() {
        assert_eq!(
            toks("= == -> | || && * ( ) , : _"),
            vec![
                Tok::Eq,
                Tok::EqEq,
                Tok::Arrow,
                Tok::Bar,
                Tok::BarBar,
                Tok::AmpAmp,
                Tok::Star,
                Tok::LParen,
                Tok::RParen,
                Tok::Comma,
                Tok::Colon,
                Tok::Underscore,
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(toks("0 42"), vec![Tok::Int(0), Tok::Int(42)]);
    }

    #[test]
    fn machine_integers() {
        assert_eq!(
            toks("#0 #42 #-7"),
            vec![Tok::MachineInt(0), Tok::MachineInt(42), Tok::MachineInt(-7)]
        );
        // i64::MIN has no positive counterpart; the negative accumulator
        // must handle it without overflow.
        assert_eq!(
            toks("#-9223372036854775808"),
            vec![Tok::MachineInt(i64::MIN)]
        );
        assert!(lex("#").is_err());
        assert!(lex("#-").is_err());
        assert!(lex("#9223372036854775808").is_err());
    }

    #[test]
    fn comments_are_skipped_including_nested() {
        assert_eq!(
            toks("x (* hi (* nested *) there *) y"),
            vec![Tok::LIdent("x".into()), Tok::LIdent("y".into())]
        );
    }

    #[test]
    fn unterminated_comment_is_an_error() {
        assert!(lex("x (* oops").is_err());
    }

    #[test]
    fn positions_are_tracked() {
        let tokens = lex("let\n  x = 1").unwrap();
        assert_eq!((tokens[0].line, tokens[0].column), (1, 1));
        assert_eq!((tokens[1].line, tokens[1].column), (2, 3));
        assert_eq!(tokens[1].tok, Tok::LIdent("x".into()));
    }

    #[test]
    fn unexpected_character() {
        let err = lex("a $ b").unwrap_err();
        assert!(err.message.contains('$'));
    }

    #[test]
    fn primes_allowed_in_identifiers() {
        assert_eq!(
            toks("m' tl'"),
            vec![Tok::LIdent("m'".into()), Tok::LIdent("tl'".into())]
        );
    }
}
