//! Slot resolution: rewriting lexically-bound variable references to
//! de-Bruijn-style local-slot indices.
//!
//! The tree-walking interpreter historically looked every variable up by
//! name in a linked-list [`Env`](crate::value::Env), paying a chain walk and
//! an interned-name comparison per node — and global references (prelude
//! functions, module operations) walk past *every* local binding and most of
//! the global chain on every single evaluation.  This pass runs once per
//! compiled expression and rewrites each variable reference that is bound by
//! an enclosing `fun`/`fix`/`let`/`match` binder into
//! [`Expr::Local`]`(slot, name)`, where `slot` counts the values pushed onto
//! the interpreter's [`Locals`](crate::value::Locals) stack between the use
//! and its binder.  The resolved-mode interpreter
//! ([`Evaluator::eval_resolved`](crate::eval::Evaluator::eval_resolved))
//! then services those references with a direct indexed read, while free
//! variables keep their name-based lookup in the captured environment.
//!
//! Slot numbering mirrors the interpreter's binding events exactly:
//!
//! * applying a non-recursive closure pushes one chunk `[argument]`;
//! * applying a recursive closure pushes one chunk `[closure, argument]`
//!   (the same order [`Env`](crate::value::Env)-based application binds the
//!   recursive name and then the parameter);
//! * `let x = e1 in e2` pushes `[value of e1]` around `e2`;
//! * a `match` arm pushes all of its pattern's bound values in
//!   [`Pattern::bound_vars`](crate::ast::Pattern::bound_vars) order.
//!
//! Resolution is purely a renaming: evaluation order, fuel consumption and
//! results are identical to the unresolved expression (pinned by the
//! `env_resolution_equivalence` integration test).

use std::sync::Arc;

use crate::ast::{Expr, FixExpr, LambdaExpr, MatchArm};
use crate::symbol::Symbol;
use crate::value::{Closure, Value};

/// The stack of binder frames in scope, mirroring the chunks the interpreter
/// will push at run time.
#[derive(Debug, Default)]
struct Frames {
    frames: Vec<Vec<Symbol>>,
}

impl Frames {
    /// The slot index of `name`, if lexically bound: the number of values
    /// pushed more recently than its binding.
    fn slot_of(&self, name: &Symbol) -> Option<u32> {
        let mut distance = 0u32;
        for frame in self.frames.iter().rev() {
            for bound in frame.iter().rev() {
                if bound == name {
                    return Some(distance);
                }
                distance += 1;
            }
        }
        None
    }
}

/// Rewrites every lexically-bound variable reference in `expr` (a closed
/// expression, or one whose free variables live in a global environment) to a
/// slot reference.  Free variables are left as [`Expr::Var`].
pub fn resolve(expr: &Expr) -> Expr {
    resolve_in(&mut Frames::default(), expr)
}

fn resolve_in(frames: &mut Frames, expr: &Expr) -> Expr {
    match expr {
        Expr::Var(x) => match frames.slot_of(x) {
            Some(slot) => Expr::Local(slot, x.clone()),
            None => expr.clone(),
        },
        // Already resolved (resolution is idempotent).
        Expr::Local(_, _) => expr.clone(),
        Expr::Int(_) => expr.clone(),
        Expr::Ctor(c, args) => Expr::Ctor(
            c.clone(),
            args.iter().map(|a| resolve_in(frames, a)).collect(),
        ),
        Expr::Tuple(args) => Expr::Tuple(args.iter().map(|a| resolve_in(frames, a)).collect()),
        Expr::Proj(i, e) => Expr::Proj(*i, Box::new(resolve_in(frames, e))),
        Expr::App(f, a) => Expr::app(resolve_in(frames, f), resolve_in(frames, a)),
        Expr::Lambda(l) => {
            frames.frames.push(vec![l.param.clone()]);
            let body = resolve_in(frames, &l.body);
            frames.frames.pop();
            Expr::Lambda(Arc::new(LambdaExpr {
                param: l.param.clone(),
                param_ty: l.param_ty.clone(),
                body,
            }))
        }
        Expr::Fix(fx) => {
            // Application pushes [closure, argument]: the argument is the
            // newer slot, exactly like `env.bind(name).bind(param)`.
            frames.frames.push(vec![fx.name.clone(), fx.param.clone()]);
            let body = resolve_in(frames, &fx.body);
            frames.frames.pop();
            Expr::Fix(Arc::new(FixExpr {
                name: fx.name.clone(),
                param: fx.param.clone(),
                param_ty: fx.param_ty.clone(),
                ret_ty: fx.ret_ty.clone(),
                body,
            }))
        }
        Expr::Match(scrutinee, arms) => {
            let scrutinee = resolve_in(frames, scrutinee);
            let arms = arms
                .iter()
                .map(|arm| {
                    frames.frames.push(arm.pattern.bound_vars());
                    let body = resolve_in(frames, &arm.body);
                    frames.frames.pop();
                    MatchArm::new(arm.pattern.clone(), body)
                })
                .collect();
            Expr::Match(Box::new(scrutinee), arms)
        }
        Expr::Let(x, bound, body) => {
            let bound = resolve_in(frames, bound);
            frames.frames.push(vec![x.clone()]);
            let body = resolve_in(frames, body);
            frames.frames.pop();
            Expr::Let(x.clone(), Box::new(bound), Box::new(body))
        }
        Expr::If(c, t, e) => Expr::if_(
            resolve_in(frames, c),
            resolve_in(frames, t),
            resolve_in(frames, e),
        ),
        Expr::Eq(a, b) => Expr::eq(resolve_in(frames, a), resolve_in(frames, b)),
        Expr::And(a, b) => Expr::and(resolve_in(frames, a), resolve_in(frames, b)),
        Expr::Or(a, b) => Expr::or(resolve_in(frames, a), resolve_in(frames, b)),
        Expr::Not(a) => Expr::not(resolve_in(frames, a)),
    }
}

/// Rewrites a *closure value* onto the fast path: its body is resolved
/// relative to the chunk its application will push, and the result is marked
/// `resolved` so [`Evaluator::apply`](crate::eval::Evaluator::apply)
/// dispatches to slot-mode evaluation.  Non-closure values (constructor
/// trees, tuples, native functions) are returned unchanged; closures that
/// are already resolved are returned unchanged too.
///
/// The captured environment is kept as-is: the resolved body still refers to
/// its free (global) variables by name.
pub fn resolve_closure_value(value: &Value) -> Value {
    match value {
        Value::Closure(clo) if !clo.resolved => {
            let mut frames = Frames::default();
            frames.frames.push(match &clo.rec_name {
                Some(name) => vec![name.clone(), clo.param.clone()],
                None => vec![clo.param.clone()],
            });
            let body = resolve_in(&mut frames, &clo.body);
            Value::Closure(Arc::new(Closure {
                param: clo.param.clone(),
                body,
                env: clo.env.clone(),
                rec_name: clo.rec_name.clone(),
                locals: clo.locals.clone(),
                resolved: true,
            }))
        }
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Pattern;
    use crate::types::Type;

    #[test]
    fn lambda_params_resolve_to_slot_zero() {
        let e = Expr::lambda("x", Type::named("nat"), Expr::var("x"));
        match resolve(&e) {
            Expr::Lambda(l) => assert_eq!(l.body, Expr::Local(0, Symbol::new("x"))),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn fix_binds_name_below_param() {
        // fix f (x : nat) : nat = f x  — application pushes [f, x], so `x`
        // is slot 0 and `f` is slot 1.
        let e = Expr::fix(
            "f",
            "x",
            Type::named("nat"),
            Type::named("nat"),
            Expr::call("f", [Expr::var("x")]),
        );
        match resolve(&e) {
            Expr::Fix(fx) => {
                assert_eq!(
                    fx.body,
                    Expr::app(
                        Expr::Local(1, Symbol::new("f")),
                        Expr::Local(0, Symbol::new("x"))
                    )
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn match_arms_use_bound_var_order_and_shadowing_wins() {
        // fun (l : list) -> match l with Cons (hd, tl) -> hd | Nil -> l end
        let e = Expr::lambda(
            "l",
            Type::named("list"),
            Expr::match_(
                Expr::var("l"),
                vec![
                    MatchArm::new(
                        Pattern::ctor("Cons", vec![Pattern::var("hd"), Pattern::var("tl")]),
                        Expr::Tuple(vec![Expr::var("hd"), Expr::var("tl"), Expr::var("l")]),
                    ),
                    MatchArm::new(Pattern::ctor("Nil", vec![]), Expr::var("l")),
                ],
            ),
        );
        match resolve(&e) {
            Expr::Lambda(l) => match &l.body {
                Expr::Match(scrutinee, arms) => {
                    assert_eq!(**scrutinee, Expr::Local(0, Symbol::new("l")));
                    // Arm 1 pushes [hd, tl]: tl is slot 0, hd is slot 1, and
                    // the lambda's `l` moves out to slot 2.
                    assert_eq!(
                        arms[0].body,
                        Expr::Tuple(vec![
                            Expr::Local(1, Symbol::new("hd")),
                            Expr::Local(0, Symbol::new("tl")),
                            Expr::Local(2, Symbol::new("l")),
                        ])
                    );
                    // Arm 2 binds nothing: `l` stays slot 0.
                    assert_eq!(arms[1].body, Expr::Local(0, Symbol::new("l")));
                }
                other => panic!("unexpected body {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn free_variables_stay_by_name() {
        let e = Expr::lambda(
            "x",
            Type::named("nat"),
            Expr::call("plus", [Expr::var("x"), Expr::var("x")]),
        );
        match resolve(&e) {
            Expr::Lambda(l) => match &l.body {
                Expr::App(inner, arg) => {
                    assert_eq!(**arg, Expr::Local(0, Symbol::new("x")));
                    match &**inner {
                        Expr::App(f, _) => assert_eq!(**f, Expr::var("plus")),
                        other => panic!("unexpected {other:?}"),
                    }
                }
                other => panic!("unexpected body {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn let_binding_shifts_outer_slots() {
        // fun x -> let y = x in (x, y)
        let e = Expr::lambda(
            "x",
            Type::named("nat"),
            Expr::let_(
                "y",
                Expr::var("x"),
                Expr::Tuple(vec![Expr::var("x"), Expr::var("y")]),
            ),
        );
        match resolve(&e) {
            Expr::Lambda(l) => match &l.body {
                Expr::Let(_, bound, body) => {
                    assert_eq!(**bound, Expr::Local(0, Symbol::new("x")));
                    assert_eq!(
                        **body,
                        Expr::Tuple(vec![
                            Expr::Local(1, Symbol::new("x")),
                            Expr::Local(0, Symbol::new("y")),
                        ])
                    );
                }
                other => panic!("unexpected body {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn resolution_is_idempotent_and_display_preserving() {
        let e = Expr::lambda(
            "x",
            Type::named("nat"),
            Expr::let_("y", Expr::var("x"), Expr::var("y")),
        );
        let once = resolve(&e);
        assert_eq!(resolve(&once), once);
        assert_eq!(format!("{e}"), format!("{once}"));
    }
}
