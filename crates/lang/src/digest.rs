//! Stable structural fingerprints of expressions, values and types.
//!
//! Every cache in the pipeline whose contents are worth persisting to disk
//! (the verifier's check-outcome cache, the engine's per-problem warm-start
//! snapshots) needs keys that are valid *across processes*.  Neither of the
//! in-process identities qualifies: [`Symbol`]s hash by content but their
//! intern table is per-process, `std`'s default hasher is randomly seeded,
//! and pretty-printed keys (the previous check-cache representation) are
//! large and name-sensitive.  This module provides [`Digest`] — a 128-bit
//! structural fingerprint with three properties the warm-start store relies
//! on:
//!
//! * **process-stable** — the hash function is a fixed, explicitly seeded
//!   128-bit construction over little-endian bytes: the same structure
//!   digests to the same bits in every process, on every architecture, and
//!   regardless of what else has been interned (pinned by a golden-value
//!   test);
//! * **α-invariant** — [`Digest::of_expr`] digests the *resolved* AST
//!   ([`crate::resolve`]): lexically bound variables participate as slot
//!   indices, not names, so `fun x -> x` and `fun y -> y` share a digest
//!   while free (global) names still distinguish;
//! * **hash-consed** — subtree digests are combined bottom-up, and shared
//!   subtrees (`Arc`-backed lambda/fix bodies, shared `Arc<[Value]>` value
//!   slabs — ubiquitous in enumerated pools) are digested once per distinct
//!   allocation per call.
//!
//! Digests are *fingerprints*, not proofs of identity: two distinct
//! structures collide with probability ≈ 2⁻¹²⁸ per pair.  The caches keyed
//! by digests (see `hanoi_verifier::checkcache`) accept that risk in
//! exchange for compact, serializable, interner-independent keys; the
//! "cache soundness" section of `docs/ARCHITECTURE.md` spells the argument
//! out.

use std::collections::HashMap;
use std::fmt;

use crate::ast::{Expr, MatchArm, Pattern};
use crate::symbol::Symbol;
use crate::types::Type;
use crate::value::Value;

/// A 128-bit structural fingerprint.  Construct one through the
/// [`Digest::of_expr`] / [`Digest::of_value`] / [`Digest::of_values`] /
/// [`Digest::of_type`] entry points or compose one from parts with
/// [`DigestBuilder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Digest(pub u128);

impl Digest {
    /// The digest of an expression, α-invariantly: the expression is run
    /// through the slot-resolution pass first, so bound-variable *names*
    /// never reach the hash — only binding structure does.  Free variables
    /// (globals, spec parameters) participate by name content.
    pub fn of_expr(expr: &Expr) -> Digest {
        let resolved = crate::resolve::resolve(expr);
        Digest::of_resolved_expr(&resolved)
    }

    /// The digest of an expression that is already a resolution fixed point
    /// (skips the resolution pass; same result as [`Digest::of_expr`] for
    /// such expressions).
    pub fn of_resolved_expr(expr: &Expr) -> Digest {
        let mut memo = HashMap::new();
        digest_expr(expr, &mut memo)
    }

    /// The digest of a first-order value (closures and native functions are
    /// digested by their name/parameter structure only, which is fine for
    /// the caches — persisted keys never contain them).
    pub fn of_value(value: &Value) -> Digest {
        let mut memo = HashMap::new();
        digest_value(value, &mut memo)
    }

    /// The digest of an ordered value sequence (order-sensitive: the
    /// verifier's `V+` sweeps enumerate in order).
    pub fn of_values(values: &[Value]) -> Digest {
        let mut memo = HashMap::new();
        let mut h = StableHasher::new(tags::VALUE_SEQ);
        h.write_u64(values.len() as u64);
        for value in values {
            h.write_digest(digest_value(value, &mut memo));
        }
        Digest(h.finish())
    }

    /// The digest of a type.
    pub fn of_type(ty: &Type) -> Digest {
        digest_type(ty)
    }

    /// The digest of a string (by content).
    pub fn of_str(s: &str) -> Digest {
        let mut h = StableHasher::new(tags::STR);
        h.write_str(s);
        Digest(h.finish())
    }

    /// Renders the digest as 32 lowercase hex digits — the form used in
    /// snapshot files and warm-start file names.
    pub fn to_hex(&self) -> String {
        format!("{:032x}", self.0)
    }

    /// Parses the output of [`Digest::to_hex`].
    pub fn from_hex(hex: &str) -> Option<Digest> {
        if hex.len() != 32 {
            return None;
        }
        u128::from_str_radix(hex, 16).ok().map(Digest)
    }
}

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

/// Composes a digest from heterogeneous parts (sub-digests, strings,
/// integers).  Used by higher layers to build compound fingerprints — e.g.
/// a whole problem's fingerprint out of its spec, interface, types and
/// bindings — without exposing the raw hash construction.
#[derive(Debug)]
pub struct DigestBuilder(StableHasher);

impl DigestBuilder {
    /// A builder seeded with a domain-separation label (different labels
    /// never produce colliding digests for the same parts).
    pub fn new(label: &str) -> DigestBuilder {
        let mut h = StableHasher::new(tags::BUILDER);
        h.write_str(label);
        DigestBuilder(h)
    }

    /// Mixes in a sub-digest.
    pub fn add_digest(&mut self, digest: Digest) -> &mut Self {
        self.0.write_digest(digest);
        self
    }

    /// Mixes in a string by content.
    pub fn add_str(&mut self, s: &str) -> &mut Self {
        self.0.write_str(s);
        self
    }

    /// Mixes in an integer.
    pub fn add_u64(&mut self, n: u64) -> &mut Self {
        self.0.write_u64(n);
        self
    }

    /// The finished digest.
    pub fn finish(&self) -> Digest {
        Digest(self.0.clone().finish())
    }
}

/// Node tags: every structural case mixes a distinct constant first, so
/// different shapes with identical children cannot collide by construction
/// (beyond the generic 2⁻¹²⁸ birthday bound).
mod tags {
    pub const STR: u64 = 0x5354_5247;
    pub const BUILDER: u64 = 0x4255_494c;
    pub const VALUE_SEQ: u64 = 0x5653_4551;

    pub const EXPR_VAR: u64 = 1;
    pub const EXPR_LOCAL: u64 = 2;
    pub const EXPR_CTOR: u64 = 3;
    pub const EXPR_TUPLE: u64 = 4;
    pub const EXPR_PROJ: u64 = 5;
    pub const EXPR_APP: u64 = 6;
    pub const EXPR_LAMBDA: u64 = 7;
    pub const EXPR_FIX: u64 = 8;
    pub const EXPR_MATCH: u64 = 9;
    pub const EXPR_LET: u64 = 10;
    pub const EXPR_IF: u64 = 11;
    pub const EXPR_EQ: u64 = 12;
    pub const EXPR_AND: u64 = 13;
    pub const EXPR_OR: u64 = 14;
    pub const EXPR_NOT: u64 = 15;
    pub const EXPR_INT: u64 = 16;

    pub const PAT_WILDCARD: u64 = 20;
    pub const PAT_VAR: u64 = 21;
    pub const PAT_CTOR: u64 = 22;
    pub const PAT_TUPLE: u64 = 23;

    pub const TYPE_NAMED: u64 = 30;
    pub const TYPE_ABSTRACT: u64 = 31;
    pub const TYPE_TUPLE: u64 = 32;
    pub const TYPE_ARROW: u64 = 33;

    pub const VALUE_CTOR: u64 = 40;
    pub const VALUE_TUPLE: u64 = 41;
    pub const VALUE_CLOSURE: u64 = 42;
    pub const VALUE_NATIVE: u64 = 43;
    pub const VALUE_INT: u64 = 44;
}

/// A fixed-seed 128-bit streaming hash: two 64-bit lanes, each mixed with
/// the splitmix64 finalizer under distinct round constants.  Not
/// cryptographic — collision resistance is the generic birthday bound
/// against non-adversarial inputs, which is what a cache fingerprint needs.
/// All state transitions are pure integer arithmetic over explicitly
/// little-endian bytes, so results are identical on every platform.
#[derive(Debug, Clone)]
struct StableHasher {
    a: u64,
    b: u64,
}

#[inline]
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl StableHasher {
    fn new(tag: u64) -> StableHasher {
        let mut h = StableHasher {
            a: 0x243F_6A88_85A3_08D3, // π digits: fixed, nothing-up-my-sleeve
            b: 0x1319_8A2E_0370_7344,
        };
        h.write_u64(tag);
        h
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.a = splitmix(self.a ^ v);
        self.b = splitmix(self.b.rotate_left(23) ^ v ^ 0xA5A5_A5A5_A5A5_A5A5);
    }

    fn write_str(&mut self, s: &str) {
        let bytes = s.as_bytes();
        self.write_u64(bytes.len() as u64);
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.write_u64(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_digest(&mut self, d: Digest) {
        self.write_u64(d.0 as u64);
        self.write_u64((d.0 >> 64) as u64);
    }

    fn finish(self) -> u128 {
        // One final avalanche so the last write diffuses into both halves.
        let a = splitmix(self.a ^ self.b.rotate_left(32));
        let b = splitmix(self.b ^ a);
        ((a as u128) << 64) | b as u128
    }
}

fn digest_symbol(h: &mut StableHasher, s: &Symbol) {
    h.write_str(s.as_str());
}

fn digest_type(ty: &Type) -> Digest {
    let mut h;
    match ty {
        Type::Named(name) => {
            h = StableHasher::new(tags::TYPE_NAMED);
            digest_symbol(&mut h, name);
        }
        Type::Abstract => {
            h = StableHasher::new(tags::TYPE_ABSTRACT);
        }
        Type::Tuple(items) => {
            h = StableHasher::new(tags::TYPE_TUPLE);
            h.write_u64(items.len() as u64);
            for item in items {
                h.write_digest(digest_type(item));
            }
        }
        Type::Arrow(a, b) => {
            h = StableHasher::new(tags::TYPE_ARROW);
            h.write_digest(digest_type(a));
            h.write_digest(digest_type(b));
        }
    }
    Digest(h.finish())
}

fn digest_pattern(h: &mut StableHasher, p: &Pattern) {
    match p {
        // Binders are positional after resolution: the names a pattern
        // introduces are never consulted by resolved bodies, so they stay
        // out of the digest (α-invariance).
        Pattern::Wildcard => h.write_u64(tags::PAT_WILDCARD),
        Pattern::Var(_) => h.write_u64(tags::PAT_VAR),
        Pattern::Ctor(name, args) => {
            h.write_u64(tags::PAT_CTOR);
            digest_symbol(h, name);
            h.write_u64(args.len() as u64);
            for arg in args {
                digest_pattern(h, arg);
            }
        }
        Pattern::Tuple(args) => {
            h.write_u64(tags::PAT_TUPLE);
            h.write_u64(args.len() as u64);
            for arg in args {
                digest_pattern(h, arg);
            }
        }
    }
}

/// Memo key: the address of a shared (`Arc`-backed) subtree.  Only consulted
/// within one digest computation, while every referenced allocation is kept
/// alive by the tree being digested, so addresses cannot be reused.
type Memo = HashMap<usize, Digest>;

fn digest_expr(expr: &Expr, memo: &mut Memo) -> Digest {
    let mut h;
    match expr {
        Expr::Var(name) => {
            h = StableHasher::new(tags::EXPR_VAR);
            digest_symbol(&mut h, name);
        }
        // The display name is diagnostics only; the slot index *is* the
        // variable, which is what makes the digest α-invariant.
        Expr::Local(slot, _name) => {
            h = StableHasher::new(tags::EXPR_LOCAL);
            h.write_u64(*slot as u64);
        }
        Expr::Ctor(name, args) => {
            h = StableHasher::new(tags::EXPR_CTOR);
            digest_symbol(&mut h, name);
            h.write_u64(args.len() as u64);
            for arg in args {
                h.write_digest(digest_expr(arg, memo));
            }
        }
        Expr::Tuple(args) => {
            h = StableHasher::new(tags::EXPR_TUPLE);
            h.write_u64(args.len() as u64);
            for arg in args {
                h.write_digest(digest_expr(arg, memo));
            }
        }
        Expr::Proj(i, inner) => {
            h = StableHasher::new(tags::EXPR_PROJ);
            h.write_u64(*i as u64);
            h.write_digest(digest_expr(inner, memo));
        }
        Expr::App(f, arg) => {
            h = StableHasher::new(tags::EXPR_APP);
            h.write_digest(digest_expr(f, memo));
            h.write_digest(digest_expr(arg, memo));
        }
        Expr::Lambda(l) => {
            let key = std::sync::Arc::as_ptr(l) as usize;
            if let Some(&cached) = memo.get(&key) {
                return cached;
            }
            h = StableHasher::new(tags::EXPR_LAMBDA);
            h.write_digest(digest_type(&l.param_ty));
            h.write_digest(digest_expr(&l.body, memo));
            let digest = Digest(h.finish());
            memo.insert(key, digest);
            return digest;
        }
        Expr::Fix(fx) => {
            let key = std::sync::Arc::as_ptr(fx) as usize;
            if let Some(&cached) = memo.get(&key) {
                return cached;
            }
            h = StableHasher::new(tags::EXPR_FIX);
            h.write_digest(digest_type(&fx.param_ty));
            h.write_digest(digest_type(&fx.ret_ty));
            h.write_digest(digest_expr(&fx.body, memo));
            let digest = Digest(h.finish());
            memo.insert(key, digest);
            return digest;
        }
        Expr::Match(scrutinee, arms) => {
            h = StableHasher::new(tags::EXPR_MATCH);
            h.write_digest(digest_expr(scrutinee, memo));
            h.write_u64(arms.len() as u64);
            for MatchArm { pattern, body } in arms {
                digest_pattern(&mut h, pattern);
                h.write_digest(digest_expr(body, memo));
            }
        }
        // The bound name is a binder: resolved bodies address it by slot.
        Expr::Let(_name, bound, body) => {
            h = StableHasher::new(tags::EXPR_LET);
            h.write_digest(digest_expr(bound, memo));
            h.write_digest(digest_expr(body, memo));
        }
        Expr::If(c, t, e) => {
            h = StableHasher::new(tags::EXPR_IF);
            h.write_digest(digest_expr(c, memo));
            h.write_digest(digest_expr(t, memo));
            h.write_digest(digest_expr(e, memo));
        }
        Expr::Eq(a, b) => {
            h = StableHasher::new(tags::EXPR_EQ);
            h.write_digest(digest_expr(a, memo));
            h.write_digest(digest_expr(b, memo));
        }
        Expr::And(a, b) => {
            h = StableHasher::new(tags::EXPR_AND);
            h.write_digest(digest_expr(a, memo));
            h.write_digest(digest_expr(b, memo));
        }
        Expr::Or(a, b) => {
            h = StableHasher::new(tags::EXPR_OR);
            h.write_digest(digest_expr(a, memo));
            h.write_digest(digest_expr(b, memo));
        }
        Expr::Not(a) => {
            h = StableHasher::new(tags::EXPR_NOT);
            h.write_digest(digest_expr(a, memo));
        }
        Expr::Int(i) => {
            h = StableHasher::new(tags::EXPR_INT);
            h.write_u64(*i as u64);
        }
    }
    Digest(h.finish())
}

fn digest_value(value: &Value, memo: &mut Memo) -> Digest {
    match value {
        Value::Ctor(name, args) => {
            let key = args.as_ptr() as usize;
            let children = match memo.get(&key) {
                Some(&cached) => cached,
                None => {
                    let mut h = StableHasher::new(tags::VALUE_SEQ);
                    h.write_u64(args.len() as u64);
                    for arg in args.iter() {
                        h.write_digest(digest_value(arg, memo));
                    }
                    let digest = Digest(h.finish());
                    memo.insert(key, digest);
                    digest
                }
            };
            let mut h = StableHasher::new(tags::VALUE_CTOR);
            digest_symbol(&mut h, name);
            h.write_digest(children);
            Digest(h.finish())
        }
        Value::Tuple(items) => {
            let key = items.as_ptr() as usize;
            if let Some(&cached) = memo.get(&key) {
                let mut h = StableHasher::new(tags::VALUE_TUPLE);
                h.write_digest(cached);
                return Digest(h.finish());
            }
            let mut seq = StableHasher::new(tags::VALUE_SEQ);
            seq.write_u64(items.len() as u64);
            for item in items.iter() {
                seq.write_digest(digest_value(item, memo));
            }
            let children = Digest(seq.finish());
            memo.insert(key, children);
            let mut h = StableHasher::new(tags::VALUE_TUPLE);
            h.write_digest(children);
            Digest(h.finish())
        }
        // Function values never appear in persisted keys (persisted
        // counterexample values are first-order); digest enough structure to
        // avoid accidental equality within a process.
        Value::Closure(c) => {
            let mut h = StableHasher::new(tags::VALUE_CLOSURE);
            h.write_digest(digest_expr(&c.body, memo));
            Digest(h.finish())
        }
        Value::Native(n) => {
            let mut h = StableHasher::new(tags::VALUE_NATIVE);
            digest_symbol(&mut h, &n.name);
            h.write_u64(n.arity as u64);
            h.write_u64(n.collected.len() as u64);
            for v in &n.collected {
                h.write_digest(digest_value(v, memo));
            }
            Digest(h.finish())
        }
        Value::Int(i) => {
            let mut h = StableHasher::new(tags::VALUE_INT);
            h.write_u64(*i as u64);
            Digest(h.finish())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_expr;

    #[test]
    fn digests_are_alpha_invariant() {
        let a = parse_expr("fun (x : nat) -> x").unwrap();
        let b = parse_expr("fun (y : nat) -> y").unwrap();
        assert_eq!(Digest::of_expr(&a), Digest::of_expr(&b));

        let f = parse_expr(
            "fix inv (l : list) : bool = match l with | Nil -> True | Cons (hd, tl) -> inv tl end",
        )
        .unwrap();
        let g = parse_expr(
            "fix go (zs : list) : bool = match zs with | Nil -> True | Cons (a, b) -> go b end",
        )
        .unwrap();
        assert_eq!(Digest::of_expr(&f), Digest::of_expr(&g));
    }

    #[test]
    fn digests_distinguish_structure_and_free_names() {
        let a = parse_expr("fun (x : nat) -> lookup x").unwrap();
        let b = parse_expr("fun (x : nat) -> insert x").unwrap();
        assert_ne!(Digest::of_expr(&a), Digest::of_expr(&b), "free names count");

        let c = parse_expr("fun (x : nat) -> x").unwrap();
        let d = parse_expr("fun (x : list) -> x").unwrap();
        assert_ne!(Digest::of_expr(&c), Digest::of_expr(&d), "types count");

        let e = parse_expr("fun (x : nat) -> S x").unwrap();
        let f = parse_expr("fun (x : nat) -> S (S x)").unwrap();
        assert_ne!(Digest::of_expr(&e), Digest::of_expr(&f));
    }

    #[test]
    fn resolved_and_unresolved_forms_agree() {
        let expr = parse_expr(
            "fun (l : list) -> match l with | Nil -> True | Cons (hd, tl) -> hd == hd end",
        )
        .unwrap();
        let resolved = crate::resolve::resolve(&expr);
        assert_eq!(
            Digest::of_expr(&expr),
            Digest::of_resolved_expr(&resolved),
            "of_expr must digest through the resolution pass"
        );
        // And digesting the resolved form through `of_expr` is stable too
        // (resolution is a fixed point).
        assert_eq!(Digest::of_expr(&resolved), Digest::of_expr(&expr));
    }

    #[test]
    fn value_digests_are_structural_and_order_sensitive() {
        assert_eq!(
            Digest::of_value(&Value::nat_list(&[1, 2])),
            Digest::of_value(&Value::nat_list(&[1, 2]))
        );
        assert_ne!(
            Digest::of_value(&Value::nat_list(&[1, 2])),
            Digest::of_value(&Value::nat_list(&[2, 1]))
        );
        assert_ne!(
            Digest::of_values(&[Value::nat(1), Value::nat(2)]),
            Digest::of_values(&[Value::nat(2), Value::nat(1)])
        );
        assert_ne!(
            Digest::of_values(&[Value::nat(1)]),
            Digest::of_values(&[Value::nat(1), Value::nat(1)])
        );
        // A tuple of children is not the constructor of the same children.
        assert_ne!(
            Digest::of_value(&Value::tuple_of(vec![Value::nat(0)])),
            Digest::of_value(&Value::ctor_of(Symbol::new("T"), vec![Value::nat(0)]))
        );
    }

    #[test]
    fn digests_are_stable_across_processes_golden_values() {
        // These constants pin the exact bits of the hash construction: if
        // any of them changes, persisted snapshots from earlier builds stop
        // matching and every warm-start file silently goes cold.  Bump the
        // snapshot format version (`hanoi_verifier::checkcache` /
        // `hanoi_synth::bank`) if a change here is ever intentional.
        assert_eq!(
            Digest::of_str("hanoi").to_hex(),
            "c39e233d3f1dc2c8f5eb535be41675a0"
        );
        assert_eq!(
            Digest::of_value(&Value::nat(3)).to_hex(),
            "89dcbb81df9ac20569250b90ad4d72b4"
        );
        let expr = parse_expr("fun (l : list) -> not (lookup l 0)").unwrap();
        assert_eq!(
            Digest::of_expr(&expr).to_hex(),
            "3fdb9b59034e6f9ab2ac9bfda420b099"
        );
    }

    #[test]
    fn digests_ignore_interner_state() {
        // Interning unrelated symbols between two digest computations must
        // not perturb the result: digests depend on string content only.
        let before = Digest::of_value(&Value::nat_list(&[4, 7]));
        for i in 0..512 {
            let _ = Symbol::new(&format!("interner-noise-{i}"));
        }
        let after = Digest::of_value(&Value::nat_list(&[4, 7]));
        assert_eq!(before, after);
        // And a digest computed on a fresh thread (same process-wide
        // interner, but exercises Send/Sync of everything involved) agrees.
        let on_thread = std::thread::spawn(|| Digest::of_value(&Value::nat_list(&[4, 7])))
            .join()
            .unwrap();
        assert_eq!(before, on_thread);
    }

    #[test]
    fn hex_round_trips() {
        let digest = Digest::of_str("round-trip");
        assert_eq!(Digest::from_hex(&digest.to_hex()), Some(digest));
        assert_eq!(Digest::from_hex("xyz"), None);
        assert_eq!(Digest::from_hex(""), None);
        assert_eq!(digest.to_string().len(), 32);
    }

    #[test]
    fn shared_subtrees_are_digested_once() {
        // A value sharing one slab across many parents digests consistently
        // with an structurally equal unshared value.
        let shared = Value::nat_list(&[1, 2, 3]);
        let pair = Value::pair(shared.clone(), shared.clone());
        let unshared = Value::pair(Value::nat_list(&[1, 2, 3]), Value::nat_list(&[1, 2, 3]));
        assert_eq!(Digest::of_value(&pair), Digest::of_value(&unshared));
    }

    #[test]
    fn builder_composes_with_domain_separation() {
        let mut a = DigestBuilder::new("problem");
        a.add_str("x").add_u64(3);
        let mut b = DigestBuilder::new("problem");
        b.add_str("x").add_u64(3);
        assert_eq!(a.finish(), b.finish());
        let mut c = DigestBuilder::new("other");
        c.add_str("x").add_u64(3);
        assert_ne!(a.finish(), c.finish());
        let mut d = DigestBuilder::new("problem");
        d.add_str("x").add_u64(4);
        assert_ne!(a.finish(), d.finish());
        let mut e = DigestBuilder::new("problem");
        e.add_digest(Digest::of_str("x")).add_u64(3);
        assert_ne!(a.finish(), e.finish());
    }
}
