//! A tiny JSON reader/writer (shared by the experiment harness, the
//! run-statistics serializers and the warm-start cache snapshots).
//!
//! The build environment is fully offline, so `serde`/`serde_json` are not
//! available; the consumers only need to round-trip flat result rows and
//! cache snapshots, which this module covers with a plain recursive-descent
//! parser and a pretty printer. The surface is deliberately small: [`Json`]
//! values, [`parse`], [`Json::render`] / [`Json::render_pretty`], typed
//! accessors, and the structural encoding of first-order runtime values
//! ([`value_to_json`] / [`value_from_json`]).

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::symbol::Symbol;
use crate::value::Value;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always carried as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Keys are kept sorted for deterministic output.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Wraps an optional value, mapping `None` to `null`.
    pub fn opt<T>(value: Option<T>, f: impl FnOnce(T) -> Json) -> Json {
        value.map_or(Json::Null, f)
    }

    /// The value as a string slice, when it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number, when it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a `usize`, when it is a non-negative integral number.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as usize),
            _ => None,
        }
    }

    /// The value as a bool, when it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, when it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Looks up a key, when the value is an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// Compact single-line rendering.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Multi-line rendering with two-space indentation.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let (nl, pad, pad_in) = match indent {
            Some(width) => (
                "\n",
                " ".repeat(width * depth),
                " ".repeat(width * (depth + 1)),
            ),
            None => ("", String::new(), String::new()),
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    item.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push(']');
            }
            Json::Obj(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    write_escaped(out, key);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    value.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Serializes a first-order [`Value`] structurally: a constructor
/// application becomes `{"c": name, "a": [children…]}`, a tuple becomes
/// `{"t": [children…]}`.  Closures and native functions have no structural
/// denotation and yield `None` — callers persisting caches skip such entries
/// rather than guessing.
///
/// The encoding is the disk format of the warm-start snapshots, so it must
/// stay stable; [`value_from_json`] is its inverse.
pub fn value_to_json(value: &Value) -> Option<Json> {
    match value {
        Value::Ctor(name, args) => {
            let args: Option<Vec<Json>> = args.iter().map(value_to_json).collect();
            Some(Json::obj([
                ("c", Json::Str(name.as_str().to_string())),
                ("a", Json::Arr(args?)),
            ]))
        }
        Value::Tuple(items) => {
            let items: Option<Vec<Json>> = items.iter().map(value_to_json).collect();
            Some(Json::obj([("t", Json::Arr(items?))]))
        }
        Value::Closure(_) | Value::Native(_) => None,
    }
}

/// Parses the structural value encoding of [`value_to_json`].  Returns
/// `None` on any shape mismatch (snapshot loaders treat that as a corrupt
/// snapshot and fall back to a cold start).
pub fn value_from_json(json: &Json) -> Option<Value> {
    if let Some(name) = json.get("c").and_then(Json::as_str) {
        let args: Option<Vec<Value>> = json
            .get("a")?
            .as_arr()?
            .iter()
            .map(value_from_json)
            .collect();
        return Some(Value::ctor_of(Symbol::new(name), args?));
    }
    if let Some(items) = json.get("t").and_then(Json::as_arr) {
        let items: Option<Vec<Value>> = items.iter().map(value_from_json).collect();
        return Some(Value::tuple_of(items?));
    }
    None
}

/// A JSON parse error with a byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input.
    pub offset: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses a complete JSON document (trailing whitespace allowed).
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not needed by the harness;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_flat_object() {
        let src = r#"{"id":"/coq/x","n":3,"t":1.5,"ok":true,"inv":null,"xs":[1,2]}"#;
        let value = parse(src).unwrap();
        assert_eq!(value.get("id").unwrap().as_str(), Some("/coq/x"));
        assert_eq!(value.get("n").unwrap().as_usize(), Some(3));
        assert_eq!(value.get("t").unwrap().as_f64(), Some(1.5));
        assert_eq!(value.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(value.get("inv"), Some(&Json::Null));
        assert_eq!(value.get("xs").unwrap().as_arr().unwrap().len(), 2);
        let again = parse(&value.render()).unwrap();
        assert_eq!(again, value);
        let pretty = parse(&value.render_pretty()).unwrap();
        assert_eq!(pretty, value);
    }

    #[test]
    fn escapes_round_trip() {
        let value = Json::Str("a\"b\\c\nd\te\u{1}".into());
        assert_eq!(parse(&value.render()).unwrap(), value);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("{} x").is_err());
    }

    #[test]
    fn values_round_trip_structurally() {
        for value in [
            Value::nat(3),
            Value::nat_list(&[1, 0, 2]),
            Value::tru(),
            Value::unit(),
            Value::pair(Value::nat(1), Value::nat_list(&[])),
        ] {
            let encoded = value_to_json(&value).unwrap();
            let text = encoded.render();
            let back = value_from_json(&parse(&text).unwrap()).unwrap();
            assert_eq!(back, value, "{text}");
        }
    }

    #[test]
    fn closures_do_not_serialize_and_bad_shapes_do_not_parse() {
        use crate::ast::Expr;
        use crate::value::{Closure, Env};
        use std::sync::Arc;
        let clo = Value::Closure(Arc::new(Closure::by_name(
            Symbol::new("x"),
            Expr::var("x"),
            Env::empty(),
            None,
        )));
        assert_eq!(value_to_json(&clo), None);
        assert_eq!(value_to_json(&Value::pair(Value::nat(0), clo)), None);
        assert_eq!(value_from_json(&Json::Num(3.0)), None);
        assert_eq!(value_from_json(&Json::obj([("c", Json::Num(1.0))])), None);
        assert_eq!(
            value_from_json(&parse(r#"{"c":"S","a":[{"x":1}]}"#).unwrap()),
            None
        );
    }
}
