//! A tiny JSON reader/writer (shared by the experiment harness, the
//! run-statistics serializers, the warm-start cache snapshots and the
//! network server's wire protocol).
//!
//! The build environment is fully offline, so `serde`/`serde_json` are not
//! available; the consumers only need to round-trip flat result rows and
//! cache snapshots, which this module covers with a plain recursive-descent
//! parser and a pretty printer. The surface is deliberately small: [`Json`]
//! values, [`parse`] / [`parse_with_limits`], [`Json::render`] /
//! [`Json::render_pretty`], typed accessors, the structural encoding of
//! first-order runtime values ([`value_to_json`] / [`value_from_json`]), and
//! the newline-delimited framing layer ([`FrameReader`] / [`write_frame`])
//! the TCP front end and its clients speak.
//!
//! The parser is recursive-descent, so untrusted input could otherwise
//! overflow the stack with a deeply nested document; every entry point
//! therefore enforces a nesting-depth ceiling ([`DEFAULT_MAX_DEPTH`] unless
//! the caller picks a tighter one).

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io::{ErrorKind, Read, Write};

use crate::symbol::Symbol;
use crate::value::Value;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always carried as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Keys are kept sorted for deterministic output.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Wraps an optional value, mapping `None` to `null`.
    pub fn opt<T>(value: Option<T>, f: impl FnOnce(T) -> Json) -> Json {
        value.map_or(Json::Null, f)
    }

    /// The value as a string slice, when it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number, when it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a `usize`, when it is a non-negative integral number.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as usize),
            _ => None,
        }
    }

    /// The value as a bool, when it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, when it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Looks up a key, when the value is an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// Compact single-line rendering.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Multi-line rendering with two-space indentation.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let (nl, pad, pad_in) = match indent {
            Some(width) => (
                "\n",
                " ".repeat(width * depth),
                " ".repeat(width * (depth + 1)),
            ),
            None => ("", String::new(), String::new()),
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    item.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push(']');
            }
            Json::Obj(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    write_escaped(out, key);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    value.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Serializes a first-order [`Value`] structurally: a constructor
/// application becomes `{"c": name, "a": [children…]}`, a tuple becomes
/// `{"t": [children…]}`.  Closures and native functions have no structural
/// denotation and yield `None` — callers persisting caches skip such entries
/// rather than guessing.
///
/// The encoding is the disk format of the warm-start snapshots, so it must
/// stay stable; [`value_from_json`] is its inverse.
pub fn value_to_json(value: &Value) -> Option<Json> {
    match value {
        Value::Ctor(name, args) => {
            let args: Option<Vec<Json>> = args.iter().map(value_to_json).collect();
            Some(Json::obj([
                ("c", Json::Str(name.as_str().to_string())),
                ("a", Json::Arr(args?)),
            ]))
        }
        Value::Tuple(items) => {
            let items: Option<Vec<Json>> = items.iter().map(value_to_json).collect();
            Some(Json::obj([("t", Json::Arr(items?))]))
        }
        // Encoded as a decimal string so the full i64 range survives the
        // f64-backed `Json::Num` representation losslessly.
        Value::Int(i) => Some(Json::obj([("i", Json::Str(i.to_string()))])),
        Value::Closure(_) | Value::Native(_) => None,
    }
}

/// Parses the structural value encoding of [`value_to_json`].  Returns
/// `None` on any shape mismatch (snapshot loaders treat that as a corrupt
/// snapshot and fall back to a cold start).
pub fn value_from_json(json: &Json) -> Option<Value> {
    if let Some(name) = json.get("c").and_then(Json::as_str) {
        let args: Option<Vec<Value>> = json
            .get("a")?
            .as_arr()?
            .iter()
            .map(value_from_json)
            .collect();
        return Some(Value::ctor_of(Symbol::new(name), args?));
    }
    if let Some(items) = json.get("t").and_then(Json::as_arr) {
        let items: Option<Vec<Value>> = items.iter().map(value_from_json).collect();
        return Some(Value::tuple_of(items?));
    }
    if let Some(digits) = json.get("i").and_then(Json::as_str) {
        return digits.parse::<i64>().ok().map(Value::Int);
    }
    None
}

/// A JSON parse error with a byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input.
    pub offset: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// The nesting-depth ceiling of [`parse`].  Deep enough for every snapshot
/// the repo writes (structural value encodings nest two levels per
/// constructor, and verifier bounds keep values small), shallow enough that
/// a crafted `[[[[…` document errors out long before the parser's recursion
/// threatens the stack.
pub const DEFAULT_MAX_DEPTH: usize = 1024;

/// Parses a complete JSON document (trailing whitespace allowed), with the
/// [`DEFAULT_MAX_DEPTH`] nesting ceiling.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    parse_with_limits(input, DEFAULT_MAX_DEPTH)
}

/// [`parse`] with an explicit nesting-depth ceiling — servers decoding
/// untrusted frames pick a much tighter bound than the snapshot loaders.
pub fn parse_with_limits(input: &str, max_depth: usize) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        depth: 0,
        max_depth,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
    max_depth: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn enter(&mut self) -> Result<(), JsonError> {
        self.depth += 1;
        if self.depth > self.max_depth {
            return Err(self.err("nesting too deep"));
        }
        Ok(())
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        self.enter()?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        self.enter()?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not needed by the harness;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

/// The default per-frame byte ceiling of the newline-delimited framing
/// layer (1 MiB — an order of magnitude above any legitimate problem
/// submission, far below what an unbounded line could allocate).
pub const DEFAULT_MAX_FRAME_BYTES: usize = 1 << 20;

/// One step of [`FrameReader::read_frame`].
///
/// `Oversized` and `InvalidUtf8` are *per-frame* defects: the stream's line
/// framing survives them, so a server can reply with a structured error and
/// keep the connection — unlike `Err`, after which the transport is gone.
#[derive(Debug)]
pub enum FrameResult {
    /// One complete newline-terminated line (without the terminator).
    Frame(String),
    /// The read timed out (the socket's read timeout elapsed) with the frame
    /// still incomplete; poll again.  [`FrameReader::partial_len`] tells how
    /// many bytes of the unfinished frame have arrived — the caller's
    /// slow-writer watchdog feeds on it.
    WouldBlock,
    /// End of stream.  Clean when no partial frame was pending
    /// ([`FrameReader::partial_len`] `== 0`), a mid-frame disconnect
    /// otherwise.
    Closed {
        /// `true` when the peer disconnected mid-frame.
        mid_frame: bool,
    },
    /// The current line exceeded the byte ceiling.  The offending line's
    /// remaining bytes are discarded internally; subsequent reads resume at
    /// the next line.
    Oversized {
        /// The configured ceiling that was exceeded.
        limit: usize,
    },
    /// A complete line arrived but was not valid UTF-8; the frame is
    /// discarded, the stream remains framed.
    InvalidUtf8,
    /// A transport error other than a timeout.
    Err(std::io::Error),
}

/// An incremental decoder for newline-delimited frames over any [`Read`].
///
/// The reader owns a bounded buffer: a line longer than `max_bytes` is
/// reported as [`FrameResult::Oversized`] and *discarded as it streams in*,
/// so a hostile peer can make the server hold at most `max_bytes + 8 KiB`,
/// never an unbounded line.  Partial frames persist across calls, which is
/// what lets the transport carry a read timeout: a timeout surfaces as
/// [`FrameResult::WouldBlock`] and the next call resumes exactly where the
/// bytes stopped.
#[derive(Debug)]
pub struct FrameReader {
    buf: Vec<u8>,
    /// Bytes of `buf` already handed out as frames (consumed prefix).
    start: usize,
    max_bytes: usize,
    /// `true` while discarding the tail of an oversized line.
    discarding: bool,
}

impl FrameReader {
    /// A reader enforcing the given per-frame byte ceiling.
    pub fn new(max_bytes: usize) -> FrameReader {
        FrameReader {
            buf: Vec::new(),
            start: 0,
            max_bytes,
            discarding: false,
        }
    }

    /// How many bytes of an unfinished frame are currently buffered.
    pub fn partial_len(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Reads until one frame (or one of the structured defects) is
    /// available.  Blocks only as long as the underlying transport does.
    pub fn read_frame(&mut self, reader: &mut impl Read) -> FrameResult {
        let mut chunk = [0u8; 8192];
        loop {
            // Serve a complete line from the buffer first.
            while let Some(nl) = self.buf[self.start..].iter().position(|b| *b == b'\n') {
                let line_end = self.start + nl;
                let line: Vec<u8> = self.buf[self.start..line_end].to_vec();
                self.start = line_end + 1;
                self.compact();
                if self.discarding {
                    // The tail of an oversized line: swallow it and resume
                    // normal framing with the next line.
                    self.discarding = false;
                    continue;
                }
                if line.len() > self.max_bytes {
                    // The whole line arrived before the cap check ran (one
                    // large read): same defect, nothing left to discard.
                    return FrameResult::Oversized {
                        limit: self.max_bytes,
                    };
                }
                // Tolerate CRLF peers.
                let line = match line.last() {
                    Some(b'\r') => &line[..line.len() - 1],
                    _ => &line[..],
                };
                // Skip blank keep-alive lines rather than erroring on them.
                if line.is_empty() {
                    continue;
                }
                return match String::from_utf8(line.to_vec()) {
                    Ok(text) => FrameResult::Frame(text),
                    Err(_) => FrameResult::InvalidUtf8,
                };
            }
            if self.discarding {
                // Still inside an oversized line: drop everything buffered.
                self.buf.clear();
                self.start = 0;
            } else if self.partial_len() > self.max_bytes {
                self.buf.clear();
                self.start = 0;
                self.discarding = true;
                return FrameResult::Oversized {
                    limit: self.max_bytes,
                };
            }
            match reader.read(&mut chunk) {
                Ok(0) => {
                    return FrameResult::Closed {
                        mid_frame: self.partial_len() > 0 || self.discarding,
                    }
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if matches!(
                        e.kind(),
                        ErrorKind::WouldBlock | ErrorKind::TimedOut | ErrorKind::Interrupted
                    ) =>
                {
                    return FrameResult::WouldBlock
                }
                Err(e) => return FrameResult::Err(e),
            }
        }
    }

    /// Drops the consumed prefix once it dominates the buffer.
    fn compact(&mut self) {
        if self.start > 4096 && self.start * 2 >= self.buf.len() {
            self.buf.drain(..self.start);
            self.start = 0;
        }
    }
}

/// Writes `json` as one newline-terminated frame and flushes, so a frame is
/// either fully on the wire or reported as an error — readers never see a
/// torn line from a well-behaved writer.
pub fn write_frame(writer: &mut impl Write, json: &Json) -> std::io::Result<()> {
    let mut line = json.render();
    line.push('\n');
    writer.write_all(line.as_bytes())?;
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_flat_object() {
        let src = r#"{"id":"/coq/x","n":3,"t":1.5,"ok":true,"inv":null,"xs":[1,2]}"#;
        let value = parse(src).unwrap();
        assert_eq!(value.get("id").unwrap().as_str(), Some("/coq/x"));
        assert_eq!(value.get("n").unwrap().as_usize(), Some(3));
        assert_eq!(value.get("t").unwrap().as_f64(), Some(1.5));
        assert_eq!(value.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(value.get("inv"), Some(&Json::Null));
        assert_eq!(value.get("xs").unwrap().as_arr().unwrap().len(), 2);
        let again = parse(&value.render()).unwrap();
        assert_eq!(again, value);
        let pretty = parse(&value.render_pretty()).unwrap();
        assert_eq!(pretty, value);
    }

    #[test]
    fn escapes_round_trip() {
        let value = Json::Str("a\"b\\c\nd\te\u{1}".into());
        assert_eq!(parse(&value.render()).unwrap(), value);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("{} x").is_err());
    }

    #[test]
    fn nesting_depth_is_bounded() {
        // Within the ceiling: fine (depth counts containers, so 8 nested
        // arrays parse with max_depth 8).
        let ok = format!("{}1{}", "[".repeat(8), "]".repeat(8));
        assert!(parse_with_limits(&ok, 8).is_ok());
        let too_deep = format!("{}1{}", "[".repeat(9), "]".repeat(9));
        let err = parse_with_limits(&too_deep, 8).unwrap_err();
        assert!(err.message.contains("nesting"), "{err}");
        // Mixed containers count too.
        assert!(parse_with_limits(r#"{"a":[{"b":[1]}]}"#, 3).is_err());
        assert!(parse_with_limits(r#"{"a":[{"b":[1]}]}"#, 4).is_ok());
        // The default ceiling refuses a pathological document instead of
        // recursing toward a stack overflow.
        let bomb = "[".repeat(100_000);
        assert!(parse(&bomb).is_err());
        // Siblings do not accumulate depth.
        assert!(parse_with_limits("[[1],[2],[3]]", 2).is_ok());
    }

    #[test]
    fn frames_split_and_survive_defects() {
        let mut reader = FrameReader::new(64);
        // Two frames in one chunk, a CRLF line, a blank keep-alive.
        let mut input = std::io::Cursor::new(b"{\"a\":1}\n\r\n{\"b\":2}\r\n".to_vec());
        match reader.read_frame(&mut input) {
            FrameResult::Frame(s) => assert_eq!(s, "{\"a\":1}"),
            other => panic!("{other:?}"),
        }
        match reader.read_frame(&mut input) {
            FrameResult::Frame(s) => assert_eq!(s, "{\"b\":2}"),
            other => panic!("{other:?}"),
        }
        assert!(matches!(
            reader.read_frame(&mut input),
            FrameResult::Closed { mid_frame: false }
        ));

        // Oversized line in one read, then framing resumes on the next line.
        let mut reader = FrameReader::new(8);
        let mut input = std::io::Cursor::new(b"waaaaaaaaaay too long\nok\n".to_vec());
        assert!(matches!(
            reader.read_frame(&mut input),
            FrameResult::Oversized { limit: 8 }
        ));
        match reader.read_frame(&mut input) {
            FrameResult::Frame(s) => assert_eq!(s, "ok"),
            other => panic!("{other:?}"),
        }

        // Oversized line streamed in small chunks: bounded buffering, then
        // resync.
        struct Trickle(Vec<u8>, usize);
        impl Read for Trickle {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                if self.1 >= self.0.len() {
                    return Ok(0);
                }
                let n = buf.len().min(3).min(self.0.len() - self.1);
                buf[..n].copy_from_slice(&self.0[self.1..self.1 + n]);
                self.1 += n;
                Ok(n)
            }
        }
        let mut reader = FrameReader::new(8);
        let mut input = Trickle(b"0123456789abcdef0123\nnext\n".to_vec(), 0);
        assert!(matches!(
            reader.read_frame(&mut input),
            FrameResult::Oversized { .. }
        ));
        match reader.read_frame(&mut input) {
            FrameResult::Frame(s) => assert_eq!(s, "next"),
            other => panic!("{other:?}"),
        }

        // Non-UTF-8 is a per-frame defect.
        let mut reader = FrameReader::new(64);
        let mut input = std::io::Cursor::new(b"\xff\xfe\xfd\nstill here\n".to_vec());
        assert!(matches!(
            reader.read_frame(&mut input),
            FrameResult::InvalidUtf8
        ));
        match reader.read_frame(&mut input) {
            FrameResult::Frame(s) => assert_eq!(s, "still here"),
            other => panic!("{other:?}"),
        }

        // EOF mid-frame is distinguishable from a clean close.
        let mut reader = FrameReader::new(64);
        let mut input = std::io::Cursor::new(b"{\"half\":".to_vec());
        assert!(matches!(
            reader.read_frame(&mut input),
            FrameResult::Closed { mid_frame: true }
        ));
    }

    #[test]
    fn write_frame_round_trips() {
        let json = Json::obj([("op", Json::Str("ping".into())), ("n", Json::Num(3.0))]);
        let mut wire = Vec::new();
        write_frame(&mut wire, &json).unwrap();
        assert!(wire.ends_with(b"\n"));
        let mut reader = FrameReader::new(DEFAULT_MAX_FRAME_BYTES);
        let mut input = std::io::Cursor::new(wire);
        match reader.read_frame(&mut input) {
            FrameResult::Frame(s) => assert_eq!(parse(&s).unwrap(), json),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn values_round_trip_structurally() {
        for value in [
            Value::nat(3),
            Value::nat_list(&[1, 0, 2]),
            Value::tru(),
            Value::unit(),
            Value::pair(Value::nat(1), Value::nat_list(&[])),
        ] {
            let encoded = value_to_json(&value).unwrap();
            let text = encoded.render();
            let back = value_from_json(&parse(&text).unwrap()).unwrap();
            assert_eq!(back, value, "{text}");
        }
    }

    #[test]
    fn closures_do_not_serialize_and_bad_shapes_do_not_parse() {
        use crate::ast::Expr;
        use crate::value::{Closure, Env};
        use std::sync::Arc;
        let clo = Value::Closure(Arc::new(Closure::by_name(
            Symbol::new("x"),
            Expr::var("x"),
            Env::empty(),
            None,
        )));
        assert_eq!(value_to_json(&clo), None);
        assert_eq!(value_to_json(&Value::pair(Value::nat(0), clo)), None);
        assert_eq!(value_from_json(&Json::Num(3.0)), None);
        assert_eq!(value_from_json(&Json::obj([("c", Json::Num(1.0))])), None);
        assert_eq!(
            value_from_json(&parse(r#"{"c":"S","a":[{"x":1}]}"#).unwrap()),
            None
        );
    }
}
