//! Lightweight interned identifiers.
//!
//! Identifiers (variable names, constructor names, type names) are used and
//! cloned pervasively by the interpreter, the enumerators and the
//! synthesizers.  [`Symbol`] wraps an `Arc<str>` so that cloning is a
//! reference-count bump, while a process-wide intern table makes repeated
//! construction of the same name (e.g. `"Cons"` during enumeration of tens of
//! thousands of values) reuse a single allocation across *all* threads — the
//! parallel verifier hands values and expressions freely between workers, so
//! `Symbol` is `Send + Sync`.
//!
//! Equality, ordering and hashing are all by string *content*, so symbols
//! compare correctly even if an uninterned symbol were ever constructed.

use std::borrow::Borrow;
use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, OnceLock, RwLock};

/// An interned identifier.
#[derive(Clone)]
pub struct Symbol(Arc<str>);

/// The process-wide intern table.  Reads (the overwhelmingly common case once
/// a workload warms up) take the shared lock; a miss upgrades to the
/// exclusive lock with a re-check, so concurrent constructors of the same
/// fresh name still converge on one allocation.
static INTERN: OnceLock<RwLock<HashMap<Box<str>, Arc<str>>>> = OnceLock::new();

fn intern_table() -> &'static RwLock<HashMap<Box<str>, Arc<str>>> {
    INTERN.get_or_init(|| RwLock::new(HashMap::new()))
}

impl Symbol {
    /// Creates (or reuses) a symbol for `name`.
    pub fn new(name: &str) -> Self {
        let table = intern_table();
        if let Some(existing) = table.read().unwrap().get(name) {
            return Symbol(existing.clone());
        }
        let mut table = table.write().unwrap();
        if let Some(existing) = table.get(name) {
            return Symbol(existing.clone());
        }
        let arc: Arc<str> = Arc::from(name);
        table.insert(Box::from(name), arc.clone());
        Symbol(arc)
    }

    /// The textual content of the symbol.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Returns `true` when the symbol starts with an ASCII uppercase letter,
    /// the surface-syntax convention for constructor names.
    pub fn is_ctor_like(&self) -> bool {
        self.0
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_uppercase())
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.as_str())
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl PartialEq for Symbol {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.0, &other.0) || self.0 == other.0
    }
}

impl Eq for Symbol {}

impl PartialOrd for Symbol {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Symbol {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_str().cmp(other.as_str())
    }
}

impl std::hash::Hash for Symbol {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_str().hash(state);
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Self {
        Symbol::new(s)
    }
}

impl From<String> for Symbol {
    fn from(s: String) -> Self {
        Symbol::new(&s)
    }
}

impl Borrow<str> for Symbol {
    fn borrow(&self) -> &str {
        self.as_str()
    }
}

impl AsRef<str> for Symbol {
    fn as_ref(&self) -> &str {
        self.as_str()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn symbols_with_same_content_are_equal() {
        assert_eq!(Symbol::new("Cons"), Symbol::new("Cons"));
        assert_ne!(Symbol::new("Cons"), Symbol::new("Nil"));
    }

    #[test]
    fn interning_reuses_allocations() {
        let a = Symbol::new("hello");
        let b = Symbol::new("hello");
        assert!(Arc::ptr_eq(&a.0, &b.0));
    }

    #[test]
    fn symbols_hash_by_content() {
        let mut set = HashSet::new();
        set.insert(Symbol::new("x"));
        assert!(set.contains(&Symbol::new("x")));
        assert!(set.contains("x"));
        assert!(!set.contains("y"));
    }

    #[test]
    fn interning_is_shared_across_threads() {
        let a = Symbol::new("cross-thread-symbol");
        let b = std::thread::spawn(|| Symbol::new("cross-thread-symbol"))
            .join()
            .unwrap();
        assert!(Arc::ptr_eq(&a.0, &b.0));
        assert_eq!(a, b);
    }

    #[test]
    fn ctor_like_detection() {
        assert!(Symbol::new("Cons").is_ctor_like());
        assert!(!Symbol::new("cons").is_ctor_like());
        assert!(!Symbol::new("_x").is_ctor_like());
    }

    #[test]
    fn ordering_is_lexicographic() {
        assert!(Symbol::new("a") < Symbol::new("b"));
        assert!(Symbol::new("Cons") < Symbol::new("Nil"));
    }

    #[test]
    fn display_and_debug() {
        let s = Symbol::new("insert");
        assert_eq!(s.to_string(), "insert");
        assert_eq!(format!("{s:?}"), "\"insert\"");
    }
}
