//! Size-ordered enumeration of well-typed *terms*.
//!
//! Two consumers need a stream of candidate expressions ordered by size:
//!
//! * the Myth-style synthesizer's "E-guessing" phase, which enumerates
//!   expressions built from in-scope variables, prelude/module functions,
//!   constructors and boolean connectives until one is consistent with the
//!   current examples; and
//! * the higher-order-argument generator of the verifier (§4.2), which must
//!   enumerate *functions* to pass to module operations such as `fold` and
//!   `map` ("there are many ways to build a function, so enumeratively
//!   verifying a higher-order function requires searching through many
//!   possible functions").
//!
//! Terms are enumerated bottom-up and memoised per `(type, size)`.  The
//! generator deliberately produces only saturated applications of named
//! components; lambdas are introduced only at the top level of an arrow goal
//! type, which is all the two consumers above require.

use std::collections::HashMap;
use std::sync::Arc;

use crate::ast::Expr;
use crate::symbol::Symbol;
use crate::types::{Type, TypeEnv};

/// A named, typed component available to term enumeration: an in-scope
/// variable or a global function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Component {
    /// The component's name, referenced by generated terms.
    pub name: Symbol,
    /// Its type.
    pub ty: Type,
}

impl Component {
    /// Creates a component.
    pub fn new(name: impl Into<Symbol>, ty: Type) -> Self {
        Component {
            name: name.into(),
            ty,
        }
    }
}

/// Configuration for [`TermGenerator`].
#[derive(Debug, Clone)]
pub struct TermGenConfig {
    /// Allow constructor applications.
    pub allow_ctors: bool,
    /// Allow `&&`, `||`, `not` at boolean goal types.
    pub allow_bool_ops: bool,
    /// Allow structural equality `a == b`; operands are drawn from the types
    /// listed in `eq_types`.
    pub allow_eq: bool,
    /// Operand types for structural equality.
    pub eq_types: Vec<Type>,
}

impl Default for TermGenConfig {
    fn default() -> Self {
        TermGenConfig {
            allow_ctors: true,
            allow_bool_ops: true,
            allow_eq: true,
            eq_types: Vec::new(),
        }
    }
}

/// A memoising, bottom-up, type-directed term enumerator.
#[derive(Debug, Clone)]
pub struct TermGenerator<'a> {
    tyenv: &'a TypeEnv,
    components: Vec<Component>,
    config: TermGenConfig,
    cache: HashMap<(Type, usize), Arc<Vec<Expr>>>,
}

impl<'a> TermGenerator<'a> {
    /// Creates a generator with the given components in scope.
    pub fn new(tyenv: &'a TypeEnv, components: Vec<Component>, config: TermGenConfig) -> Self {
        TermGenerator {
            tyenv,
            components,
            config,
            cache: HashMap::new(),
        }
    }

    /// The components currently in scope.
    pub fn components(&self) -> &[Component] {
        &self.components
    }

    /// All terms of `ty` whose size is exactly `size`.
    pub fn terms_of_size(&mut self, ty: &Type, size: usize) -> Arc<Vec<Expr>> {
        if size == 0 {
            return Arc::new(Vec::new());
        }
        let key = (ty.clone(), size);
        if let Some(cached) = self.cache.get(&key) {
            return cached.clone();
        }
        let computed = Arc::new(self.compute(ty, size));
        self.cache.insert(key, computed.clone());
        computed
    }

    /// All terms of `ty` of size at most `max_size`, smallest first.
    pub fn terms_up_to(&mut self, ty: &Type, max_size: usize) -> Vec<Expr> {
        let mut out = Vec::new();
        for size in 1..=max_size {
            out.extend(self.terms_of_size(ty, size).iter().cloned());
        }
        out
    }

    /// Enumerates *function* terms of the (possibly multi-argument) arrow
    /// type `ty`, as nested lambdas whose bodies are drawn from this
    /// generator's components extended with the lambda parameters.  Bodies
    /// have size at most `max_body_size`; results are ordered by body size.
    pub fn lambdas_up_to(&mut self, ty: &Type, max_body_size: usize) -> Vec<Expr> {
        let (params, ret) = ty.uncurry();
        if params.is_empty() {
            return self.terms_up_to(ty, max_body_size);
        }
        let param_names: Vec<Symbol> = (0..params.len())
            .map(|i| Symbol::new(&format!("__hof_arg{i}")))
            .collect();
        let mut components = self.components.clone();
        for (name, ty) in param_names.iter().zip(&params) {
            components.push(Component::new(name.clone(), (*ty).clone()));
        }
        let mut inner = TermGenerator::new(self.tyenv, components, self.config.clone());
        inner
            .terms_up_to(ret, max_body_size)
            .into_iter()
            .map(|body| {
                param_names
                    .iter()
                    .zip(&params)
                    .rev()
                    .fold(body, |acc, (name, ty)| {
                        Expr::lambda(name.as_str(), (*ty).clone(), acc)
                    })
            })
            .collect()
    }

    fn compute(&mut self, ty: &Type, size: usize) -> Vec<Expr> {
        let mut out = Vec::new();
        // Variables / nullary components.
        if size == 1 {
            for c in &self.components {
                if &c.ty == ty {
                    out.push(Expr::Var(c.name.clone()));
                }
            }
        }
        // Saturated applications of function-typed components returning `ty`.
        let candidates: Vec<(Symbol, Vec<Type>)> = self
            .components
            .iter()
            .filter_map(|c| {
                let (args, ret) = c.ty.uncurry();
                if ret == ty && !args.is_empty() {
                    Some((c.name.clone(), args.into_iter().cloned().collect()))
                } else {
                    None
                }
            })
            .collect();
        for (name, arg_tys) in candidates {
            // A saturated call `f a1 ... ak` has one Var node, k App nodes and
            // the argument subterms, so the arguments share `size - 1 - k`.
            if size < 1 + 2 * arg_tys.len() {
                continue;
            }
            for split in compositions(size - 1 - arg_tys.len(), arg_tys.len()) {
                let groups: Vec<Arc<Vec<Expr>>> = arg_tys
                    .iter()
                    .zip(&split)
                    .map(|(t, &s)| self.terms_of_size(t, s))
                    .collect();
                cartesian(&groups, |args| {
                    out.push(Expr::apps(Expr::Var(name.clone()), args));
                });
            }
        }
        // Constructor applications.
        if self.config.allow_ctors {
            if let Type::Named(type_name) = ty {
                if let Some(decl) = self.tyenv.lookup(type_name) {
                    let ctors: Vec<(Symbol, Vec<Type>)> = decl
                        .ctors
                        .iter()
                        .map(|c| (c.name.clone(), c.args.clone()))
                        .collect();
                    for (ctor, args) in ctors {
                        if args.is_empty() {
                            if size == 1 {
                                out.push(Expr::Ctor(ctor.clone(), Vec::new()));
                            }
                            continue;
                        }
                        if size < 1 + args.len() {
                            continue;
                        }
                        for split in compositions(size - 1, args.len()) {
                            let groups: Vec<Arc<Vec<Expr>>> = args
                                .iter()
                                .zip(&split)
                                .map(|(t, &s)| self.terms_of_size(t, s))
                                .collect();
                            cartesian(&groups, |items| {
                                out.push(Expr::Ctor(ctor.clone(), items));
                            });
                        }
                    }
                }
            }
        }
        // Tuples.
        if let Type::Tuple(elems) = ty {
            if !elems.is_empty() && size > elems.len() {
                for split in compositions(size - 1, elems.len()) {
                    let groups: Vec<Arc<Vec<Expr>>> = elems
                        .iter()
                        .zip(&split)
                        .map(|(t, &s)| self.terms_of_size(t, s))
                        .collect();
                    cartesian(&groups, |items| out.push(Expr::Tuple(items)));
                }
            }
        }
        // Boolean structure.
        if ty == &Type::bool() {
            if self.config.allow_bool_ops {
                if size >= 2 {
                    for a in self.terms_of_size(&Type::bool(), size - 1).iter() {
                        out.push(Expr::not(a.clone()));
                    }
                }
                if size >= 3 {
                    for split in compositions(size - 1, 2) {
                        let lefts = self.terms_of_size(&Type::bool(), split[0]);
                        let rights = self.terms_of_size(&Type::bool(), split[1]);
                        for l in lefts.iter() {
                            for r in rights.iter() {
                                out.push(Expr::and(l.clone(), r.clone()));
                                out.push(Expr::or(l.clone(), r.clone()));
                            }
                        }
                    }
                }
            }
            if self.config.allow_eq && size >= 3 {
                let eq_types = self.config.eq_types.clone();
                for operand_ty in eq_types {
                    for split in compositions(size - 1, 2) {
                        let lefts = self.terms_of_size(&operand_ty, split[0]);
                        let rights = self.terms_of_size(&operand_ty, split[1]);
                        for l in lefts.iter() {
                            for r in rights.iter() {
                                out.push(Expr::eq(l.clone(), r.clone()));
                            }
                        }
                    }
                }
            }
        }
        out
    }
}

/// All ways to write `total` as an ordered sum of `parts` positive integers.
fn compositions(total: usize, parts: usize) -> Vec<Vec<usize>> {
    fn rec(total: usize, parts: usize, current: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if parts == 1 {
            current.push(total);
            out.push(current.clone());
            current.pop();
            return;
        }
        for first in 1..=(total - (parts - 1)) {
            current.push(first);
            rec(total - first, parts - 1, current, out);
            current.pop();
        }
    }
    let mut out = Vec::new();
    if parts == 0 {
        if total == 0 {
            out.push(Vec::new());
        }
        return out;
    }
    if total >= parts {
        rec(total, parts, &mut Vec::with_capacity(parts), &mut out);
    }
    out
}

/// Calls `emit` with every element of the cartesian product of `groups`.
fn cartesian(groups: &[Arc<Vec<Expr>>], mut emit: impl FnMut(Vec<Expr>)) {
    fn rec(
        groups: &[Arc<Vec<Expr>>],
        index: usize,
        current: &mut Vec<Expr>,
        emit: &mut impl FnMut(Vec<Expr>),
    ) {
        if index == groups.len() {
            emit(current.clone());
            return;
        }
        for item in groups[index].iter() {
            current.push(item.clone());
            rec(groups, index + 1, current, emit);
            current.pop();
        }
    }
    if groups.iter().any(|g| g.is_empty()) {
        return;
    }
    rec(groups, 0, &mut Vec::new(), &mut emit);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::typecheck::{TypeChecker, TypeContext};
    use crate::types::{CtorDecl, DataDecl};

    fn tyenv() -> TypeEnv {
        let mut env = TypeEnv::new();
        env.declare(DataDecl::new(
            "nat",
            vec![
                CtorDecl::new("O", vec![]),
                CtorDecl::new("S", vec![Type::named("nat")]),
            ],
        ))
        .unwrap();
        env.declare(DataDecl::new(
            "list",
            vec![
                CtorDecl::new("Nil", vec![]),
                CtorDecl::new("Cons", vec![Type::named("nat"), Type::named("list")]),
            ],
        ))
        .unwrap();
        env
    }

    fn list_components() -> Vec<Component> {
        vec![
            Component::new("l", Type::named("list")),
            Component::new("x", Type::named("nat")),
            Component::new(
                "lookup",
                Type::arrows(vec![Type::named("list"), Type::named("nat")], Type::bool()),
            ),
        ]
    }

    #[test]
    fn variables_come_first() {
        let env = tyenv();
        let mut gen = TermGenerator::new(&env, list_components(), TermGenConfig::default());
        let terms = gen.terms_of_size(&Type::named("list"), 1);
        assert!(terms.contains(&Expr::var("l")));
        assert!(terms.contains(&Expr::ctor("Nil", vec![])));
        assert!(!terms.contains(&Expr::var("x")));
    }

    #[test]
    fn applications_are_generated() {
        let env = tyenv();
        let mut gen = TermGenerator::new(&env, list_components(), TermGenConfig::default());
        let terms = gen.terms_up_to(&Type::bool(), 5);
        assert!(terms.contains(&Expr::call("lookup", [Expr::var("l"), Expr::var("x")])));
    }

    #[test]
    fn all_generated_terms_are_well_typed() {
        let env = tyenv();
        let mut checker = TypeChecker::new(&env);
        for c in list_components() {
            checker.declare_global(c.name.clone(), c.ty.clone());
        }
        let config = TermGenConfig {
            eq_types: vec![Type::named("nat")],
            ..TermGenConfig::default()
        };
        let mut gen = TermGenerator::new(&env, list_components(), config);
        for ty in [Type::bool(), Type::named("nat"), Type::named("list")] {
            for term in gen.terms_up_to(&ty, 5) {
                let inferred = checker
                    .infer(&TypeContext::new(), &term)
                    .unwrap_or_else(|e| panic!("ill-typed term {term}: {e}"));
                assert_eq!(inferred, ty, "term {term}");
            }
        }
    }

    #[test]
    fn generated_terms_have_the_requested_size() {
        let env = tyenv();
        let mut gen = TermGenerator::new(&env, list_components(), TermGenConfig::default());
        for size in 1..=5 {
            for term in gen.terms_of_size(&Type::bool(), size).iter() {
                assert_eq!(crate::size::expr_size(term), size, "term {term}");
            }
        }
    }

    #[test]
    fn equality_terms_respect_configuration() {
        let env = tyenv();
        let config = TermGenConfig {
            eq_types: vec![Type::named("nat")],
            ..TermGenConfig::default()
        };
        let mut gen = TermGenerator::new(&env, list_components(), config);
        let with_eq = gen.terms_up_to(&Type::bool(), 3);
        // `x == x` has size 3 (one Eq node, two variables).
        assert!(with_eq.iter().any(|t| matches!(t, Expr::Eq(_, _))));

        let config = TermGenConfig {
            allow_eq: false,
            ..TermGenConfig::default()
        };
        let mut gen = TermGenerator::new(&env, list_components(), config);
        let without_eq = gen.terms_up_to(&Type::bool(), 3);
        assert!(!without_eq.iter().any(|t| matches!(t, Expr::Eq(_, _))));
    }

    #[test]
    fn lambda_enumeration_for_higher_order_arguments() {
        let env = tyenv();
        let mut gen = TermGenerator::new(&env, Vec::new(), TermGenConfig::default());
        // Functions of type nat -> nat, with bodies up to size 2:
        // candidates include the identity, constants and S applied to the arg.
        let ty = Type::arrow(Type::named("nat"), Type::named("nat"));
        let funcs = gen.lambdas_up_to(&ty, 2);
        assert!(!funcs.is_empty());
        assert!(funcs.iter().all(|f| matches!(f, Expr::Lambda(_))));
        let checker = TypeChecker::new(&env);
        for f in &funcs {
            assert_eq!(checker.infer(&TypeContext::new(), f).unwrap(), ty);
        }
    }

    #[test]
    fn no_duplicate_terms() {
        use std::collections::HashSet;
        let env = tyenv();
        let mut gen = TermGenerator::new(&env, list_components(), TermGenConfig::default());
        let terms = gen.terms_up_to(&Type::bool(), 4);
        let set: HashSet<String> = terms.iter().map(|t| t.to_string()).collect();
        assert_eq!(set.len(), terms.len());
    }
}
