//! Builtin machine-integer operations for the numeric/trace workload.
//!
//! The surface language has no integer syntax beyond `#5` / `#-3` literals;
//! arithmetic is provided by these host natives, pre-bound in every
//! elaborated program's global environment (beneath the prelude, so user
//! bindings may shadow them).  All operations are **total**: addition,
//! subtraction, multiplication and negation wrap on overflow, and `imod x 0`
//! is defined as `0`, so synthesized predicates can never crash the
//! verifier's enumeration sweep.

use crate::error::EvalError;
use crate::symbol::Symbol;
use crate::types::Type;
use crate::value::Value;

fn want_int(v: &Value, op: &str) -> Result<i64, EvalError> {
    v.as_int()
        .ok_or_else(|| EvalError::Other(format!("builtin `{op}` expects an int, found {v}")))
}

fn binop(
    name: &'static str,
    f: impl Fn(i64, i64) -> Value + Send + Sync + 'static,
) -> (Symbol, Type, Value) {
    let value = Value::native(name, 2, move |args| {
        let a = want_int(&args[0], name)?;
        let b = want_int(&args[1], name)?;
        Ok(f(a, b))
    });
    (
        Symbol::new(name),
        Type::arrow(Type::int(), Type::arrow(Type::int(), ret_ty_of(name))),
        value,
    )
}

fn ret_ty_of(name: &str) -> Type {
    match name {
        "ile" | "ilt" => Type::bool(),
        _ => Type::int(),
    }
}

/// The full roster of integer builtins as `(name, type, value)` triples, in a
/// fixed deterministic order.
pub fn builtins() -> Vec<(Symbol, Type, Value)> {
    let mut out = vec![
        binop("iadd", |a, b| Value::int(a.wrapping_add(b))),
        binop("isub", |a, b| Value::int(a.wrapping_sub(b))),
        binop("imul", |a, b| Value::int(a.wrapping_mul(b))),
        // Euclidean-style total modulus: result has the sign of the divisor's
        // magnitude (`rem_euclid`), and dividing by zero yields 0.
        binop("imod", |a, b| {
            Value::int(if b == 0 { 0 } else { a.rem_euclid(b) })
        }),
        binop("ile", |a, b| Value::bool(a <= b)),
        binop("ilt", |a, b| Value::bool(a < b)),
    ];
    out.push((
        Symbol::new("ineg"),
        Type::arrow(Type::int(), Type::int()),
        Value::native("ineg", 1, |args| {
            Ok(Value::int(want_int(&args[0], "ineg")?.wrapping_neg()))
        }),
    ));
    out
}

#[cfg(test)]
mod tests {
    use crate::ast::Program;
    use crate::value::Value;

    fn elaborated() -> crate::ast::Elaborated {
        Program::default().elaborate().unwrap()
    }

    #[test]
    fn arithmetic_builtins_compute() {
        let e = elaborated();
        let call = |name: &str, args: &[Value]| e.eval_call(name, args).unwrap();
        assert_eq!(call("iadd", &[Value::int(2), Value::int(3)]), Value::int(5));
        assert_eq!(
            call("isub", &[Value::int(2), Value::int(5)]),
            Value::int(-3)
        );
        assert_eq!(
            call("imul", &[Value::int(-4), Value::int(3)]),
            Value::int(-12)
        );
        assert_eq!(call("ineg", &[Value::int(7)]), Value::int(-7));
        assert_eq!(call("ile", &[Value::int(3), Value::int(3)]), Value::tru());
        assert_eq!(call("ilt", &[Value::int(3), Value::int(3)]), Value::fls());
    }

    #[test]
    fn builtins_are_total() {
        let e = elaborated();
        let call = |name: &str, args: &[Value]| e.eval_call(name, args).unwrap();
        // Division by zero is defined, not a crash.
        assert_eq!(
            call("imod", &[Value::int(17), Value::int(0)]),
            Value::int(0)
        );
        // Euclidean modulus is non-negative for positive divisors.
        assert_eq!(
            call("imod", &[Value::int(-7), Value::int(3)]),
            Value::int(2)
        );
        // Overflow wraps instead of panicking.
        assert_eq!(
            call("iadd", &[Value::int(i64::MAX), Value::int(1)]),
            Value::int(i64::MIN)
        );
        assert_eq!(call("ineg", &[Value::int(i64::MIN)]), Value::int(i64::MIN));
    }

    #[test]
    fn builtins_reject_non_ints() {
        let e = elaborated();
        assert!(e.eval_call("iadd", &[Value::tru(), Value::int(1)]).is_err());
    }

    #[test]
    fn surface_programs_can_use_int_builtins() {
        let src = "let double (x : int) : int = iadd x x\n\
                   let is_small (x : int) : bool = ile x #10";
        let program = crate::parser::parse_program(src).unwrap();
        let e = program.elaborate().unwrap();
        assert_eq!(
            e.eval_call("double", &[Value::int(21)]).unwrap(),
            Value::int(42)
        );
        assert_eq!(
            e.eval_call("is_small", &[Value::int(11)]).unwrap(),
            Value::fls()
        );
    }
}
