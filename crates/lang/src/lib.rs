//! A pure, simply-typed, call-by-value functional language with recursive
//! data types — the substrate on which representation-invariant inference
//! operates.
//!
//! The language mirrors §4.1 of *Data-Driven Inference of Representation
//! Invariants* (Miltner et al., PLDI 2020): programs consist of monomorphic
//! algebraic data type declarations, (recursive) function definitions over
//! those types, a single module declaring an abstract type together with
//! operations over it, and a universally quantified specification.  Numbers
//! are Peano naturals, i.e. just another recursive data type; the numeric
//! workload additionally gets a builtin machine-integer type `int` with
//! `#5` / `#-3` literals and total host-native arithmetic ([`ints`]).
//!
//! The crate provides:
//!
//! * [`ast`] — the surface and core abstract syntax (expressions, patterns,
//!   declarations, whole programs);
//! * [`types`] — types and algebraic data type environments;
//! * [`parser`] — a lexer and recursive-descent parser for the ML-like
//!   surface syntax;
//! * [`typecheck`] — a bidirectional-ish type checker for core expressions;
//! * [`value`] / [`eval`] — runtime values, environments and a fuel-limited
//!   call-by-value interpreter;
//! * [`resolve`] — the slot-resolution pass that rewrites lexically-bound
//!   variable references to indexed local slots, enabling the interpreter's
//!   O(1)-per-binder fast path;
//! * [`enumerate`] — size-ordered enumeration of first-order values, the
//!   workhorse of the bounded enumerative verifier;
//! * [`termgen`] — size-ordered enumeration of well-typed *terms*, used both
//!   by the synthesizers and by the higher-order-argument generator;
//! * [`pretty`] / [`size`] — pretty-printing and AST-size metrics (the
//!   paper's "Size" column measures invariants in AST nodes);
//! * [`digest`] — stable, interner-independent structural fingerprints of
//!   expressions, values and types, the keys of every disk-persistable cache;
//! * [`json`] — a dependency-free JSON reader/writer (the build environment
//!   is offline, so `serde` is unavailable), including the structural
//!   encoding of first-order [`value::Value`]s that cache snapshots use.
//!
//! # Example
//!
//! ```
//! use hanoi_lang::parser::parse_program;
//! use hanoi_lang::eval::Evaluator;
//! use hanoi_lang::value::Value;
//!
//! let src = r#"
//!     type nat = O | S of nat
//!     let rec plus (m : nat) (n : nat) : nat =
//!       match m with
//!       | O -> n
//!       | S m2 -> S (plus m2 n)
//!       end
//! "#;
//! let program = parse_program(src).unwrap();
//! let env = program.elaborate().unwrap();
//! let two_plus_one = env.eval_call("plus", &[Value::nat(2), Value::nat(1)]).unwrap();
//! assert_eq!(two_plus_one, Value::nat(3));
//! ```

pub mod ast;
pub mod digest;
pub mod enumerate;
pub mod error;
pub mod eval;
pub mod ints;
pub mod json;
pub mod parser;
pub mod prelude;
pub mod pretty;
pub mod resolve;
pub mod size;
pub mod symbol;
pub mod termgen;
pub mod typecheck;
pub mod types;
pub mod util;
pub mod value;

pub use ast::{Expr, MatchArm, Pattern, Program, TopLet};
pub use error::{EvalError, LangError, ParseError, TypeError};
pub use eval::{Evaluator, Fuel};
pub use symbol::Symbol;
pub use types::{CtorDecl, DataDecl, Type, TypeEnv};
pub use value::{Env, Locals, Value};
