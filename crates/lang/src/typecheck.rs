//! A type checker for core expressions.
//!
//! Because every binder in the core language carries a type annotation, type
//! inference is fully syntax-directed; "checking" an expression against an
//! expected type is inference followed by an equality test.  The checker
//! maintains a mutable table of *global* bindings (prelude functions, module
//! operations) alongside an immutable local [`TypeContext`].

use std::collections::HashMap;

use crate::ast::{Expr, Pattern};
use crate::error::TypeError;
use crate::symbol::Symbol;
use crate::types::{Type, TypeEnv};

/// An immutable local typing context (lambda/match/let binders).
#[derive(Debug, Clone, Default)]
pub struct TypeContext {
    vars: Vec<(Symbol, Type)>,
}

impl TypeContext {
    /// The empty context.
    pub fn new() -> Self {
        TypeContext::default()
    }

    /// A context extended with one binding (shadowing earlier ones).
    pub fn bind(&self, name: Symbol, ty: Type) -> TypeContext {
        let mut vars = self.vars.clone();
        vars.push((name, ty));
        TypeContext { vars }
    }

    /// A context extended with several bindings.
    pub fn bind_all(&self, bindings: impl IntoIterator<Item = (Symbol, Type)>) -> TypeContext {
        let mut vars = self.vars.clone();
        vars.extend(bindings);
        TypeContext { vars }
    }

    /// Looks up the most recent binding of `name`.
    pub fn lookup(&self, name: &Symbol) -> Option<&Type> {
        self.vars
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, t)| t)
    }

    /// All bindings, oldest first (shadowed bindings included).
    pub fn bindings(&self) -> &[(Symbol, Type)] {
        &self.vars
    }
}

/// The type checker.
#[derive(Debug, Clone)]
pub struct TypeChecker<'a> {
    tyenv: &'a TypeEnv,
    globals: HashMap<Symbol, Type>,
}

impl<'a> TypeChecker<'a> {
    /// Creates a checker over the given data type environment.  The integer
    /// builtins ([`crate::ints::builtins`]) are pre-declared — they are bound
    /// in every elaborated program's global environment, so every checking
    /// context (program elaboration, spec checking, invariant re-checking)
    /// must agree that they exist.  User bindings may shadow them.
    pub fn new(tyenv: &'a TypeEnv) -> Self {
        let mut checker = TypeChecker {
            tyenv,
            globals: HashMap::new(),
        };
        for (name, ty, _) in crate::ints::builtins() {
            checker.declare_global(name, ty);
        }
        checker
    }

    /// Declares a global binding (a prelude function or module operation).
    pub fn declare_global(&mut self, name: Symbol, ty: Type) {
        self.globals.insert(name, ty);
    }

    /// The type of a declared global, if any.
    pub fn global(&self, name: &Symbol) -> Option<&Type> {
        self.globals.get(name)
    }

    /// All declared globals.
    pub fn globals(&self) -> impl Iterator<Item = (&Symbol, &Type)> {
        self.globals.iter()
    }

    /// The data type environment.
    pub fn tyenv(&self) -> &'a TypeEnv {
        self.tyenv
    }

    /// Infers the type of a closed expression (only globals in scope).
    pub fn infer_closed(&self, expr: &Expr) -> Result<Type, TypeError> {
        self.infer(&TypeContext::new(), expr)
    }

    /// Checks a closed expression against an expected type.
    pub fn check_closed(&self, expr: &Expr, expected: &Type) -> Result<(), TypeError> {
        self.check(&TypeContext::new(), expr, expected)
    }

    /// Checks `expr` against `expected` in the local context `ctx`.
    pub fn check(&self, ctx: &TypeContext, expr: &Expr, expected: &Type) -> Result<(), TypeError> {
        let found = self.infer(ctx, expr)?;
        if &found == expected {
            Ok(())
        } else {
            Err(TypeError::Mismatch {
                expected: expected.clone(),
                found,
                context: format!("expression `{expr}`"),
            })
        }
    }

    /// Infers the type of `expr` in the local context `ctx`.
    pub fn infer(&self, ctx: &TypeContext, expr: &Expr) -> Result<Type, TypeError> {
        match expr {
            Expr::Var(x) => ctx
                .lookup(x)
                .or_else(|| self.globals.get(x))
                .cloned()
                .ok_or_else(|| TypeError::UnboundVariable(x.clone())),
            // Slot references only exist in already-checked code that went
            // through the resolution pass; they are not re-checkable because
            // the context is name-keyed.
            Expr::Local(_, x) => Err(TypeError::Other(format!(
                "resolved slot reference `{x}` cannot be type-checked; \
                 check the unresolved expression instead"
            ))),
            Expr::Int(_) => Ok(Type::int()),
            Expr::Ctor(c, args) => {
                let info = self
                    .tyenv
                    .ctor(c)
                    .ok_or_else(|| TypeError::UnknownConstructor(c.clone()))?;
                if info.args.len() != args.len() {
                    return Err(TypeError::CtorArity {
                        ctor: c.clone(),
                        expected: info.args.len(),
                        found: args.len(),
                    });
                }
                for (arg, expected) in args.iter().zip(&info.args) {
                    self.check(ctx, arg, expected)?;
                }
                Ok(Type::Named(info.data_type.clone()))
            }
            Expr::Tuple(args) => {
                let tys: Result<Vec<Type>, TypeError> =
                    args.iter().map(|a| self.infer(ctx, a)).collect();
                Ok(Type::Tuple(tys?))
            }
            Expr::Proj(i, e) => {
                let ty = self.infer(ctx, e)?;
                match ty {
                    Type::Tuple(ts) if *i < ts.len() => Ok(ts[*i].clone()),
                    Type::Tuple(ts) => Err(TypeError::ProjectionOutOfBounds {
                        index: *i,
                        arity: ts.len(),
                    }),
                    other => Err(TypeError::NotATuple(other)),
                }
            }
            Expr::App(f, arg) => {
                let fty = self.infer(ctx, f)?;
                match fty {
                    Type::Arrow(param, ret) => {
                        self.check(ctx, arg, &param)?;
                        Ok(*ret)
                    }
                    other => Err(TypeError::NotAFunction(other)),
                }
            }
            Expr::Lambda(l) => {
                self.tyenv.check_wellformed(&l.param_ty)?;
                let body_ctx = ctx.bind(l.param.clone(), l.param_ty.clone());
                let body_ty = self.infer(&body_ctx, &l.body)?;
                Ok(Type::arrow(l.param_ty.clone(), body_ty))
            }
            Expr::Fix(fx) => {
                self.tyenv.check_wellformed(&fx.param_ty)?;
                self.tyenv.check_wellformed(&fx.ret_ty)?;
                let self_ty = Type::arrow(fx.param_ty.clone(), fx.ret_ty.clone());
                let body_ctx = ctx
                    .bind(fx.name.clone(), self_ty.clone())
                    .bind(fx.param.clone(), fx.param_ty.clone());
                self.check(&body_ctx, &fx.body, &fx.ret_ty)
                    .map_err(|e| TypeError::Other(format!("in the body of `{}`: {e}", fx.name)))?;
                Ok(self_ty)
            }
            Expr::Match(scrutinee, arms) => {
                let scrutinee_ty = self.infer(ctx, scrutinee)?;
                if arms.is_empty() {
                    return Err(TypeError::Other(format!(
                        "match on `{scrutinee}` has no arms"
                    )));
                }
                let mut result: Option<Type> = None;
                for arm in arms {
                    let bindings = self.check_pattern(&arm.pattern, &scrutinee_ty)?;
                    let arm_ctx = ctx.bind_all(bindings);
                    let body_ty = self.infer(&arm_ctx, &arm.body)?;
                    match &result {
                        None => result = Some(body_ty),
                        Some(prev) if prev == &body_ty => {}
                        Some(prev) => {
                            return Err(TypeError::Mismatch {
                                expected: prev.clone(),
                                found: body_ty,
                                context: "match arms".to_string(),
                            })
                        }
                    }
                }
                Ok(result.expect("at least one arm"))
            }
            Expr::Let(x, bound, body) => {
                let bound_ty = self.infer(ctx, bound)?;
                let body_ctx = ctx.bind(x.clone(), bound_ty);
                self.infer(&body_ctx, body)
            }
            Expr::If(cond, then, els) => {
                self.check(ctx, cond, &Type::bool())?;
                let then_ty = self.infer(ctx, then)?;
                self.check(ctx, els, &then_ty)?;
                Ok(then_ty)
            }
            Expr::Eq(a, b) => {
                let aty = self.infer(ctx, a)?;
                if !aty.is_zero_order() {
                    return Err(TypeError::EqualityAtFunctionType(aty));
                }
                self.check(ctx, b, &aty)?;
                Ok(Type::bool())
            }
            Expr::And(a, b) | Expr::Or(a, b) => {
                self.check(ctx, a, &Type::bool())?;
                self.check(ctx, b, &Type::bool())?;
                Ok(Type::bool())
            }
            Expr::Not(a) => {
                self.check(ctx, a, &Type::bool())?;
                Ok(Type::bool())
            }
        }
    }

    /// Checks a pattern against the scrutinee type, returning the bindings it
    /// introduces.
    pub fn check_pattern(
        &self,
        pattern: &Pattern,
        scrutinee: &Type,
    ) -> Result<Vec<(Symbol, Type)>, TypeError> {
        match pattern {
            Pattern::Wildcard => Ok(Vec::new()),
            Pattern::Var(x) => Ok(vec![(x.clone(), scrutinee.clone())]),
            Pattern::Ctor(c, subpatterns) => {
                let info = self
                    .tyenv
                    .ctor(c)
                    .ok_or_else(|| TypeError::UnknownConstructor(c.clone()))?;
                let Type::Named(data) = scrutinee else {
                    return Err(TypeError::PatternMismatch {
                        pattern: pattern.to_string(),
                        scrutinee: scrutinee.clone(),
                    });
                };
                if &info.data_type != data {
                    return Err(TypeError::PatternMismatch {
                        pattern: pattern.to_string(),
                        scrutinee: scrutinee.clone(),
                    });
                }
                if info.args.len() != subpatterns.len() {
                    return Err(TypeError::CtorArity {
                        ctor: c.clone(),
                        expected: info.args.len(),
                        found: subpatterns.len(),
                    });
                }
                let mut bindings = Vec::new();
                for (sub, ty) in subpatterns.iter().zip(&info.args) {
                    bindings.extend(self.check_pattern(sub, ty)?);
                }
                Ok(bindings)
            }
            Pattern::Tuple(subpatterns) => {
                let Type::Tuple(tys) = scrutinee else {
                    return Err(TypeError::PatternMismatch {
                        pattern: pattern.to_string(),
                        scrutinee: scrutinee.clone(),
                    });
                };
                if tys.len() != subpatterns.len() {
                    return Err(TypeError::PatternMismatch {
                        pattern: pattern.to_string(),
                        scrutinee: scrutinee.clone(),
                    });
                }
                let mut bindings = Vec::new();
                for (sub, ty) in subpatterns.iter().zip(tys) {
                    bindings.extend(self.check_pattern(sub, ty)?);
                }
                Ok(bindings)
            }
        }
    }

    /// Checks that every arm of a match over `data_ty` is reachable and that
    /// together the arms cover every constructor.  Returns the list of
    /// uncovered constructor names (empty when exhaustive).
    ///
    /// This is a shallow analysis (it does not reason about nested patterns),
    /// which is all the synthesizers need to guarantee the matches they
    /// generate cannot fail at runtime.
    pub fn uncovered_ctors(&self, data_ty: &Type, patterns: &[Pattern]) -> Vec<Symbol> {
        let Type::Named(name) = data_ty else {
            return Vec::new();
        };
        let Some(decl) = self.tyenv.lookup(name) else {
            return Vec::new();
        };
        if patterns
            .iter()
            .any(|p| matches!(p, Pattern::Wildcard | Pattern::Var(_)))
        {
            return Vec::new();
        }
        decl.ctors
            .iter()
            .filter(|c| {
                !patterns
                    .iter()
                    .any(|p| matches!(p, Pattern::Ctor(pc, _) if pc == &c.name))
            })
            .map(|c| c.name.clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::MatchArm;
    use crate::types::{CtorDecl, DataDecl};

    fn tyenv() -> TypeEnv {
        let mut env = TypeEnv::new();
        env.declare(DataDecl::new(
            "nat",
            vec![
                CtorDecl::new("O", vec![]),
                CtorDecl::new("S", vec![Type::named("nat")]),
            ],
        ))
        .unwrap();
        env.declare(DataDecl::new(
            "list",
            vec![
                CtorDecl::new("Nil", vec![]),
                CtorDecl::new("Cons", vec![Type::named("nat"), Type::named("list")]),
            ],
        ))
        .unwrap();
        env
    }

    #[test]
    fn infers_constructor_applications() {
        let env = tyenv();
        let checker = TypeChecker::new(&env);
        let e = Expr::ctor(
            "Cons",
            vec![Expr::ctor("O", vec![]), Expr::ctor("Nil", vec![])],
        );
        assert_eq!(checker.infer_closed(&e).unwrap(), Type::named("list"));
    }

    #[test]
    fn rejects_wrong_arity_and_unknown_ctor() {
        let env = tyenv();
        let checker = TypeChecker::new(&env);
        let e = Expr::ctor("S", vec![]);
        assert!(matches!(
            checker.infer_closed(&e),
            Err(TypeError::CtorArity { .. })
        ));
        let e = Expr::ctor("Snoc", vec![]);
        assert!(matches!(
            checker.infer_closed(&e),
            Err(TypeError::UnknownConstructor(_))
        ));
    }

    #[test]
    fn infers_recursive_functions() {
        let env = tyenv();
        let checker = TypeChecker::new(&env);
        // fix len (l : list) : nat = match l with Nil -> O | Cons (h, t) -> S (len t)
        let e = Expr::fix(
            "len",
            "l",
            Type::named("list"),
            Type::named("nat"),
            Expr::match_(
                Expr::var("l"),
                vec![
                    MatchArm::new(Pattern::ctor("Nil", vec![]), Expr::ctor("O", vec![])),
                    MatchArm::new(
                        Pattern::ctor("Cons", vec![Pattern::var("h"), Pattern::var("t")]),
                        Expr::ctor("S", vec![Expr::call("len", [Expr::var("t")])]),
                    ),
                ],
            ),
        );
        assert_eq!(
            checker.infer_closed(&e).unwrap(),
            Type::arrow(Type::named("list"), Type::named("nat"))
        );
    }

    #[test]
    fn match_arms_must_agree() {
        let env = tyenv();
        let checker = TypeChecker::new(&env);
        let e = Expr::match_(
            Expr::ctor("O", vec![]),
            vec![
                MatchArm::new(Pattern::ctor("O", vec![]), Expr::tru()),
                MatchArm::new(
                    Pattern::ctor("S", vec![Pattern::Wildcard]),
                    Expr::ctor("O", vec![]),
                ),
            ],
        );
        assert!(matches!(
            checker.infer_closed(&e),
            Err(TypeError::Mismatch { .. })
        ));
    }

    #[test]
    fn equality_rejected_at_function_type() {
        let env = tyenv();
        let checker = TypeChecker::new(&env);
        let id = Expr::lambda("x", Type::named("nat"), Expr::var("x"));
        let e = Expr::eq(id.clone(), id);
        assert!(matches!(
            checker.infer_closed(&e),
            Err(TypeError::EqualityAtFunctionType(_))
        ));
    }

    #[test]
    fn globals_are_visible() {
        let env = tyenv();
        let mut checker = TypeChecker::new(&env);
        checker.declare_global(
            Symbol::new("lookup"),
            Type::arrows(vec![Type::named("list"), Type::named("nat")], Type::bool()),
        );
        let e = Expr::call(
            "lookup",
            [Expr::ctor("Nil", vec![]), Expr::ctor("O", vec![])],
        );
        assert_eq!(checker.infer_closed(&e).unwrap(), Type::bool());
    }

    #[test]
    fn local_bindings_shadow_globals() {
        let env = tyenv();
        let mut checker = TypeChecker::new(&env);
        checker.declare_global(Symbol::new("x"), Type::bool());
        let ctx = TypeContext::new().bind(Symbol::new("x"), Type::named("nat"));
        assert_eq!(
            checker.infer(&ctx, &Expr::var("x")).unwrap(),
            Type::named("nat")
        );
    }

    #[test]
    fn pattern_checking_produces_bindings() {
        let env = tyenv();
        let checker = TypeChecker::new(&env);
        let p = Pattern::ctor("Cons", vec![Pattern::var("h"), Pattern::var("t")]);
        let bindings = checker.check_pattern(&p, &Type::named("list")).unwrap();
        assert_eq!(bindings.len(), 2);
        assert_eq!(bindings[0].1, Type::named("nat"));
        assert_eq!(bindings[1].1, Type::named("list"));
        assert!(checker.check_pattern(&p, &Type::named("nat")).is_err());
    }

    #[test]
    fn exhaustiveness_analysis() {
        let env = tyenv();
        let checker = TypeChecker::new(&env);
        let pats = vec![Pattern::ctor("Nil", vec![])];
        let missing = checker.uncovered_ctors(&Type::named("list"), &pats);
        assert_eq!(missing, vec![Symbol::new("Cons")]);
        let pats = vec![Pattern::ctor("Nil", vec![]), Pattern::Wildcard];
        assert!(checker
            .uncovered_ctors(&Type::named("list"), &pats)
            .is_empty());
    }

    #[test]
    fn if_requires_bool_condition() {
        let env = tyenv();
        let checker = TypeChecker::new(&env);
        let e = Expr::if_(Expr::ctor("O", vec![]), Expr::tru(), Expr::fls());
        assert!(checker.infer_closed(&e).is_err());
    }

    #[test]
    fn projection_types() {
        let env = tyenv();
        let checker = TypeChecker::new(&env);
        let pair = Expr::Tuple(vec![Expr::ctor("O", vec![]), Expr::tru()]);
        let e = Expr::Proj(1, Box::new(pair.clone()));
        assert_eq!(checker.infer_closed(&e).unwrap(), Type::bool());
        let e = Expr::Proj(5, Box::new(pair));
        assert!(matches!(
            checker.infer_closed(&e),
            Err(TypeError::ProjectionOutOfBounds { .. })
        ));
    }
}
