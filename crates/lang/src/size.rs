//! AST-size metrics.
//!
//! The paper reports invariant sizes "in terms of their abstract syntax
//! trees" (Figure 7, column *Size*) and bounds enumeration by the number of
//! AST nodes of a value.  This module centralises those counts so every
//! component measures the same way.

use crate::ast::{Expr, Pattern};
use crate::value::Value;

/// Number of AST nodes of an expression.
pub fn expr_size(e: &Expr) -> usize {
    match e {
        Expr::Var(_) | Expr::Local(_, _) | Expr::Int(_) => 1,
        Expr::Ctor(_, args) | Expr::Tuple(args) => 1 + args.iter().map(expr_size).sum::<usize>(),
        Expr::Proj(_, e) | Expr::Not(e) => 1 + expr_size(e),
        Expr::App(a, b) | Expr::Eq(a, b) | Expr::And(a, b) | Expr::Or(a, b) => {
            1 + expr_size(a) + expr_size(b)
        }
        Expr::Lambda(l) => 1 + expr_size(&l.body),
        Expr::Fix(fx) => 1 + expr_size(&fx.body),
        Expr::Match(scrutinee, arms) => {
            1 + expr_size(scrutinee)
                + arms
                    .iter()
                    .map(|arm| pattern_size(&arm.pattern) + expr_size(&arm.body))
                    .sum::<usize>()
        }
        Expr::Let(_, bound, body) => 1 + expr_size(bound) + expr_size(body),
        Expr::If(c, t, e2) => 1 + expr_size(c) + expr_size(t) + expr_size(e2),
    }
}

/// Number of AST nodes of a pattern.
pub fn pattern_size(p: &Pattern) -> usize {
    match p {
        Pattern::Wildcard | Pattern::Var(_) => 1,
        Pattern::Ctor(_, ps) | Pattern::Tuple(ps) => 1 + ps.iter().map(pattern_size).sum::<usize>(),
    }
}

/// Number of constructor/tuple nodes of a first-order value; identical to
/// [`Value::size`], re-exported here for symmetry with [`expr_size`].
pub fn value_size(v: &Value) -> usize {
    v.size()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::MatchArm;
    use crate::types::Type;

    #[test]
    fn expr_sizes() {
        assert_eq!(expr_size(&Expr::var("x")), 1);
        assert_eq!(expr_size(&Expr::tru()), 1);
        assert_eq!(expr_size(&Expr::and(Expr::tru(), Expr::fls())), 3);
        assert_eq!(expr_size(&Expr::call("f", [Expr::var("x")])), 3);
    }

    #[test]
    fn invariant_sized_like_the_paper() {
        // The §2 invariant:
        //   fix inv (l : list) : bool =
        //     match l with
        //     | Nil -> True
        //     | Cons (hd, tl) -> not (lookup tl hd) && inv tl
        let inv = Expr::fix(
            "inv",
            "l",
            Type::named("list"),
            Type::bool(),
            Expr::match_(
                Expr::var("l"),
                vec![
                    MatchArm::new(Pattern::ctor("Nil", vec![]), Expr::tru()),
                    MatchArm::new(
                        Pattern::ctor("Cons", vec![Pattern::var("hd"), Pattern::var("tl")]),
                        Expr::and(
                            Expr::not(Expr::call("lookup", [Expr::var("tl"), Expr::var("hd")])),
                            Expr::call("inv", [Expr::var("tl")]),
                        ),
                    ),
                ],
            ),
        );
        // A stable, deterministic size in the same ballpark as the paper's
        // "35" for the unique-list invariant (exact node-counting conventions
        // differ between implementations).
        assert_eq!(expr_size(&inv), 18);
    }

    #[test]
    fn pattern_sizes() {
        assert_eq!(pattern_size(&Pattern::Wildcard), 1);
        assert_eq!(
            pattern_size(&Pattern::ctor(
                "Cons",
                vec![Pattern::var("h"), Pattern::var("t")]
            )),
            3
        );
    }

    #[test]
    fn value_size_matches_value_method() {
        let v = Value::nat_list(&[1, 2, 3]);
        assert_eq!(value_size(&v), v.size());
    }
}
