//! Small shared utilities.

use std::collections::HashSet;
use std::hash::Hash;
use std::time::{Duration, Instant};

/// A wall-clock deadline shared by long-running components (the verifier, the
/// synthesizers and the inference driver), checked cooperatively.
#[derive(Debug, Clone, Copy, Default)]
pub struct Deadline {
    at: Option<Instant>,
}

impl Deadline {
    /// No deadline: run to completion.
    pub fn none() -> Self {
        Deadline { at: None }
    }

    /// A deadline `duration` from now.
    pub fn after(duration: Duration) -> Self {
        Deadline {
            at: Some(Instant::now() + duration),
        }
    }

    /// A deadline at an absolute instant.
    pub fn at(instant: Instant) -> Self {
        Deadline { at: Some(instant) }
    }

    /// `true` once the deadline has passed.
    pub fn expired(&self) -> bool {
        self.at.is_some_and(|at| Instant::now() >= at)
    }

    /// Time remaining, if a deadline is set (zero once expired).
    pub fn remaining(&self) -> Option<Duration> {
        self.at
            .map(|at| at.saturating_duration_since(Instant::now()))
    }
}

/// A set that remembers insertion order.
///
/// The inference algorithm's example sets (`V+`, `V−`) must behave as sets —
/// membership checks drive the weakening/strengthening decisions — but the
/// order in which examples were discovered matters for reproducibility of
/// synthesis results, so a plain `HashSet` (iteration order unstable across
/// runs) is not appropriate.
#[derive(Debug, Clone)]
pub struct OrderedSet<T> {
    items: Vec<T>,
    index: HashSet<T>,
}

impl<T> Default for OrderedSet<T> {
    fn default() -> Self {
        OrderedSet {
            items: Vec::new(),
            index: HashSet::new(),
        }
    }
}

impl<T: Eq + Hash + Clone> OrderedSet<T> {
    /// An empty set.
    pub fn new() -> Self {
        OrderedSet {
            items: Vec::new(),
            index: HashSet::new(),
        }
    }

    /// Inserts an item; returns `true` if it was not already present.
    pub fn insert(&mut self, item: T) -> bool {
        if self.index.contains(&item) {
            false
        } else {
            self.index.insert(item.clone());
            self.items.push(item);
            true
        }
    }

    /// Inserts every item from the iterator; returns how many were new.
    pub fn extend(&mut self, items: impl IntoIterator<Item = T>) -> usize {
        items
            .into_iter()
            .filter(|item| self.insert(item.clone()))
            .count()
    }

    /// Membership test.
    pub fn contains(&self, item: &T) -> bool {
        self.index.contains(item)
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Iterates in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.items.iter()
    }

    /// The elements as a slice, in insertion order.
    pub fn as_slice(&self) -> &[T] {
        &self.items
    }

    /// Removes every element.
    pub fn clear(&mut self) {
        self.items.clear();
        self.index.clear();
    }

    /// Removes an item if present; returns `true` if it was present.
    /// Preserves the order of the remaining items.
    pub fn remove(&mut self, item: &T) -> bool {
        if self.index.remove(item) {
            self.items.retain(|x| x != item);
            true
        } else {
            false
        }
    }
}

impl<T: Eq + Hash + Clone> FromIterator<T> for OrderedSet<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut set = Self::new();
        for item in iter {
            set.insert(item);
        }
        set
    }
}

impl<T: Eq + Hash + Clone> IntoIterator for OrderedSet<T> {
    type Item = T;
    type IntoIter = std::vec::IntoIter<T>;

    fn into_iter(self) -> Self::IntoIter {
        self.items.into_iter()
    }
}

impl<'a, T: Eq + Hash + Clone> IntoIterator for &'a OrderedSet<T> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;

    fn into_iter(self) -> Self::IntoIter {
        self.items.iter()
    }
}

impl<T: Eq + Hash + Clone> PartialEq for OrderedSet<T> {
    fn eq(&self, other: &Self) -> bool {
        self.index == other.index
    }
}

impl<T: Eq + Hash + Clone> Eq for OrderedSet<T> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deadlines_expire() {
        assert!(!Deadline::none().expired());
        assert!(Deadline::none().remaining().is_none());
        assert!(!Deadline::after(Duration::from_secs(3600)).expired());
        let past = Deadline::at(Instant::now() - Duration::from_millis(1));
        assert!(past.expired());
        assert_eq!(past.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn insertion_order_is_preserved() {
        let mut set = OrderedSet::new();
        assert!(set.insert(3));
        assert!(set.insert(1));
        assert!(!set.insert(3));
        assert!(set.insert(2));
        let items: Vec<i32> = set.iter().copied().collect();
        assert_eq!(items, vec![3, 1, 2]);
        assert_eq!(set.len(), 3);
    }

    #[test]
    fn membership_and_removal() {
        let mut set: OrderedSet<&str> = ["a", "b", "c"].into_iter().collect();
        assert!(set.contains(&"b"));
        assert!(set.remove(&"b"));
        assert!(!set.contains(&"b"));
        assert!(!set.remove(&"b"));
        assert_eq!(set.as_slice(), &["a", "c"]);
    }

    #[test]
    fn equality_ignores_order() {
        let a: OrderedSet<i32> = [1, 2, 3].into_iter().collect();
        let b: OrderedSet<i32> = [3, 2, 1].into_iter().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn extend_counts_new_items() {
        let mut set: OrderedSet<i32> = [1, 2].into_iter().collect();
        assert_eq!(set.extend([2, 3, 4]), 2);
        assert_eq!(set.len(), 4);
    }

    #[test]
    fn clear_empties() {
        let mut set: OrderedSet<i32> = [1].into_iter().collect();
        set.clear();
        assert!(set.is_empty());
    }
}
