//! Small shared utilities.

use std::collections::HashSet;
use std::hash::Hash;
use std::io::Write as _;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Writes `bytes` to `path` atomically and durably: the bytes land in a
/// temporary sibling (`<file name>.tmp`), are **fsynced**, and only then
/// atomically renamed into place.  Neither a crash mid-write nor a concurrent
/// reader can ever observe a torn file — without the fsync, the rename could
/// be durable before the data, and a power loss would leave a correctly-named
/// file with truncated contents.
///
/// This is the one shared implementation of the pattern every persistent
/// artifact in the workspace uses: the engine's warm-start snapshots, the
/// chunk store's chunks, manifests and index (`hanoi_store`), and anything
/// the server checkpoints at drain.  Callers that write several files and
/// then need the *renames* durable should follow up with [`sync_dir`] on the
/// containing directory.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let mut file_name = path
        .file_name()
        .ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidInput, "path has no file name")
        })?
        .to_os_string();
    file_name.push(".tmp");
    let tmp = path.with_file_name(file_name);
    let mut file = std::fs::File::create(&tmp)?;
    file.write_all(bytes)?;
    // Durability point: the bytes must hit stable storage before the rename
    // makes them reachable under the real name.
    file.sync_all()?;
    drop(file);
    std::fs::rename(&tmp, path)
}

/// Best-effort fsync of a directory, making previously performed renames in
/// it durable (directory metadata).  Not every platform lets a directory be
/// fsynced, so failures are swallowed — this is an additional guarantee on
/// top of the per-file one from [`write_atomic`], never a required one.
pub fn sync_dir(dir: &Path) {
    let _ = std::fs::File::open(dir).and_then(|d| d.sync_all());
}

/// A shared, thread-safe cooperative-cancellation flag.
///
/// A token is cheap to clone (`Arc` of one atomic); every clone observes the
/// same flag.  Long-running components never poll tokens directly — they poll
/// the [`Deadline`] the token is attached to via [`Deadline::with_cancel`],
/// so the verifier's and the synthesizer's existing per-tuple deadline checks
/// double as cancellation points.  Cancellation is level-triggered and
/// permanent: once [`CancelToken::cancel`] has been called every in-flight
/// and future check against the flag aborts.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    cancelled: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation.  Idempotent; safe to call from any thread.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Release);
    }

    /// `true` once [`CancelToken::cancel`] has been called on any clone.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Acquire)
    }
}

/// A wall-clock deadline shared by long-running components (the verifier, the
/// synthesizers and the inference driver), checked cooperatively.
///
/// A deadline can additionally carry a [`CancelToken`]; [`Deadline::expired`]
/// then reports `true` as soon as *either* the wall clock runs out or the
/// token is cancelled, so every existing deadline poll is also a cancellation
/// point.
#[derive(Debug, Clone, Default)]
pub struct Deadline {
    at: Option<Instant>,
    cancel: Option<CancelToken>,
}

impl Deadline {
    /// No deadline: run to completion.
    pub fn none() -> Self {
        Deadline {
            at: None,
            cancel: None,
        }
    }

    /// A deadline `duration` from now.
    pub fn after(duration: Duration) -> Self {
        Deadline {
            at: Some(Instant::now() + duration),
            cancel: None,
        }
    }

    /// A deadline at an absolute instant.
    pub fn at(instant: Instant) -> Self {
        Deadline {
            at: Some(instant),
            cancel: None,
        }
    }

    /// Attaches a cancellation token: the deadline also counts as expired
    /// once the token is cancelled.
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// `true` once the deadline has passed or the attached cancellation
    /// token (if any) has been cancelled.
    pub fn expired(&self) -> bool {
        self.cancelled() || self.at.is_some_and(|at| Instant::now() >= at)
    }

    /// `true` when an attached cancellation token has been cancelled
    /// (independent of the wall clock).
    pub fn cancelled(&self) -> bool {
        self.cancel.as_ref().is_some_and(CancelToken::is_cancelled)
    }

    /// Time remaining, if a deadline is set (zero once expired or cancelled).
    pub fn remaining(&self) -> Option<Duration> {
        if self.cancelled() {
            return Some(Duration::ZERO);
        }
        self.at
            .map(|at| at.saturating_duration_since(Instant::now()))
    }
}

/// A set that remembers insertion order.
///
/// The inference algorithm's example sets (`V+`, `V−`) must behave as sets —
/// membership checks drive the weakening/strengthening decisions — but the
/// order in which examples were discovered matters for reproducibility of
/// synthesis results, so a plain `HashSet` (iteration order unstable across
/// runs) is not appropriate.
#[derive(Debug, Clone)]
pub struct OrderedSet<T> {
    items: Vec<T>,
    index: HashSet<T>,
}

impl<T> Default for OrderedSet<T> {
    fn default() -> Self {
        OrderedSet {
            items: Vec::new(),
            index: HashSet::new(),
        }
    }
}

impl<T: Eq + Hash + Clone> OrderedSet<T> {
    /// An empty set.
    pub fn new() -> Self {
        OrderedSet {
            items: Vec::new(),
            index: HashSet::new(),
        }
    }

    /// Inserts an item; returns `true` if it was not already present.
    pub fn insert(&mut self, item: T) -> bool {
        if self.index.contains(&item) {
            false
        } else {
            self.index.insert(item.clone());
            self.items.push(item);
            true
        }
    }

    /// Inserts every item from the iterator; returns how many were new.
    pub fn extend(&mut self, items: impl IntoIterator<Item = T>) -> usize {
        items
            .into_iter()
            .filter(|item| self.insert(item.clone()))
            .count()
    }

    /// Membership test.
    pub fn contains(&self, item: &T) -> bool {
        self.index.contains(item)
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Iterates in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.items.iter()
    }

    /// The elements as a slice, in insertion order.
    pub fn as_slice(&self) -> &[T] {
        &self.items
    }

    /// Removes every element.
    pub fn clear(&mut self) {
        self.items.clear();
        self.index.clear();
    }

    /// Removes an item if present; returns `true` if it was present.
    /// Preserves the order of the remaining items.
    pub fn remove(&mut self, item: &T) -> bool {
        if self.index.remove(item) {
            self.items.retain(|x| x != item);
            true
        } else {
            false
        }
    }
}

impl<T: Eq + Hash + Clone> FromIterator<T> for OrderedSet<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut set = Self::new();
        for item in iter {
            set.insert(item);
        }
        set
    }
}

impl<T: Eq + Hash + Clone> IntoIterator for OrderedSet<T> {
    type Item = T;
    type IntoIter = std::vec::IntoIter<T>;

    fn into_iter(self) -> Self::IntoIter {
        self.items.into_iter()
    }
}

impl<'a, T: Eq + Hash + Clone> IntoIterator for &'a OrderedSet<T> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;

    fn into_iter(self) -> Self::IntoIter {
        self.items.iter()
    }
}

impl<T: Eq + Hash + Clone> PartialEq for OrderedSet<T> {
    fn eq(&self, other: &Self) -> bool {
        self.index == other.index
    }
}

impl<T: Eq + Hash + Clone> Eq for OrderedSet<T> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_atomic_replaces_files_and_leaves_no_temp() {
        let dir = std::env::temp_dir().join(format!(
            "hanoi-util-atomic-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("artifact.json");
        write_atomic(&path, b"first").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        // Overwrites are atomic replacements of the whole content.
        write_atomic(&path, b"second, longer content").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second, longer content");
        // The temporary sibling never survives a successful write.
        assert!(!dir.join("artifact.json.tmp").exists());
        // A path without a file name is rejected, not panicked on.
        assert!(write_atomic(Path::new("/"), b"x").is_err());
        sync_dir(&dir); // must not panic, even if the platform refuses
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn deadlines_expire() {
        assert!(!Deadline::none().expired());
        assert!(Deadline::none().remaining().is_none());
        assert!(!Deadline::after(Duration::from_secs(3600)).expired());
        let past = Deadline::at(Instant::now() - Duration::from_millis(1));
        assert!(past.expired());
        assert_eq!(past.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn cancellation_expires_deadlines() {
        let token = CancelToken::new();
        let unlimited = Deadline::none().with_cancel(token.clone());
        let timed = Deadline::after(Duration::from_secs(3600)).with_cancel(token.clone());
        assert!(!unlimited.expired());
        assert!(!timed.expired());
        assert!(!unlimited.cancelled());

        // Cancelling any clone flips every deadline holding the token.
        token.clone().cancel();
        assert!(token.is_cancelled());
        assert!(unlimited.expired() && unlimited.cancelled());
        assert!(timed.expired() && timed.cancelled());
        assert_eq!(timed.remaining(), Some(Duration::ZERO));
        // A deadline without the token is unaffected.
        assert!(!Deadline::none().expired());
    }

    #[test]
    fn insertion_order_is_preserved() {
        let mut set = OrderedSet::new();
        assert!(set.insert(3));
        assert!(set.insert(1));
        assert!(!set.insert(3));
        assert!(set.insert(2));
        let items: Vec<i32> = set.iter().copied().collect();
        assert_eq!(items, vec![3, 1, 2]);
        assert_eq!(set.len(), 3);
    }

    #[test]
    fn membership_and_removal() {
        let mut set: OrderedSet<&str> = ["a", "b", "c"].into_iter().collect();
        assert!(set.contains(&"b"));
        assert!(set.remove(&"b"));
        assert!(!set.contains(&"b"));
        assert!(!set.remove(&"b"));
        assert_eq!(set.as_slice(), &["a", "c"]);
    }

    #[test]
    fn equality_ignores_order() {
        let a: OrderedSet<i32> = [1, 2, 3].into_iter().collect();
        let b: OrderedSet<i32> = [3, 2, 1].into_iter().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn extend_counts_new_items() {
        let mut set: OrderedSet<i32> = [1, 2].into_iter().collect();
        assert_eq!(set.extend([2, 3, 4]), 2);
        assert_eq!(set.len(), 4);
    }

    #[test]
    fn clear_empties() {
        let mut set: OrderedSet<i32> = [1].into_iter().collect();
        set.clear();
        assert!(set.is_empty());
    }
}
