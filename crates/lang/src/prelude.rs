//! The standard prelude shared by examples and benchmarks: Peano naturals,
//! lists of naturals, options, and comparison/arithmetic helpers.
//!
//! Benchmark programs that need these declarations simply prepend
//! [`STD_PRELUDE`] to their own source (the paper's benchmarks likewise each
//! carry a prelude of data type declarations and helper functions, §4.1).

use crate::ast::Program;
use crate::error::ParseError;
use crate::parser::parse_program;

/// The standard prelude source text.
pub const STD_PRELUDE: &str = r#"
(* ---- standard prelude ---------------------------------------------- *)

type nat = O | S of nat
type list = Nil | Cons of nat * list
type natoption = NoneN | SomeN of nat

let rec plus (m : nat) (n : nat) : nat =
  match m with
  | O -> n
  | S m2 -> S (plus m2 n)
  end

let rec leq (m : nat) (n : nat) : bool =
  match m with
  | O -> True
  | S m2 ->
      match n with
      | O -> False
      | S n2 -> leq m2 n2
      end
  end

let lt (m : nat) (n : nat) : bool = leq (S m) n

let geq (m : nat) (n : nat) : bool = leq n m

let gt (m : nat) (n : nat) : bool = lt n m

let natmax (m : nat) (n : nat) : nat = if leq m n then n else m

let natmin (m : nat) (n : nat) : nat = if leq m n then m else n

let rec len (l : list) : nat =
  match l with
  | Nil -> O
  | Cons (hd, tl) -> S (len tl)
  end

let rec append (a : list) (b : list) : list =
  match a with
  | Nil -> b
  | Cons (hd, tl) -> Cons (hd, append tl b)
  end

let rec mem (l : list) (x : nat) : bool =
  match l with
  | Nil -> False
  | Cons (hd, tl) -> hd == x || mem tl x
  end

let rec all_leq (x : nat) (l : list) : bool =
  match l with
  | Nil -> True
  | Cons (hd, tl) -> leq x hd && all_leq x tl
  end

let rec all_geq (x : nat) (l : list) : bool =
  match l with
  | Nil -> True
  | Cons (hd, tl) -> leq hd x && all_geq x tl
  end

(* ---- end of standard prelude ---------------------------------------- *)
"#;

/// Parses the standard prelude into a [`Program`].
pub fn std_prelude_program() -> Result<Program, ParseError> {
    parse_program(STD_PRELUDE)
}

/// Prepends the standard prelude to a benchmark/module source.
pub fn with_std_prelude(source: &str) -> String {
    format!("{STD_PRELUDE}\n{source}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    #[test]
    fn prelude_parses_and_elaborates() {
        let program = std_prelude_program().unwrap();
        let elaborated = program.elaborate().unwrap();
        assert_eq!(
            elaborated
                .eval_call("plus", &[Value::nat(3), Value::nat(4)])
                .unwrap(),
            Value::nat(7)
        );
        assert_eq!(
            elaborated
                .eval_call("leq", &[Value::nat(3), Value::nat(4)])
                .unwrap(),
            Value::tru()
        );
        assert_eq!(
            elaborated
                .eval_call("leq", &[Value::nat(5), Value::nat(4)])
                .unwrap(),
            Value::fls()
        );
        assert_eq!(
            elaborated
                .eval_call("lt", &[Value::nat(4), Value::nat(4)])
                .unwrap(),
            Value::fls()
        );
        assert_eq!(
            elaborated
                .eval_call("natmax", &[Value::nat(2), Value::nat(9)])
                .unwrap(),
            Value::nat(9)
        );
        assert_eq!(
            elaborated
                .eval_call("len", &[Value::nat_list(&[5, 6, 7])])
                .unwrap(),
            Value::nat(3)
        );
        assert_eq!(
            elaborated
                .eval_call("append", &[Value::nat_list(&[1]), Value::nat_list(&[2])])
                .unwrap(),
            Value::nat_list(&[1, 2])
        );
        assert_eq!(
            elaborated
                .eval_call("mem", &[Value::nat_list(&[1, 2, 3]), Value::nat(2)])
                .unwrap(),
            Value::tru()
        );
        assert_eq!(
            elaborated
                .eval_call("all_leq", &[Value::nat(2), Value::nat_list(&[3, 4])])
                .unwrap(),
            Value::tru()
        );
        assert_eq!(
            elaborated
                .eval_call("all_geq", &[Value::nat(2), Value::nat_list(&[3, 1])])
                .unwrap(),
            Value::fls()
        );
    }

    #[test]
    fn with_std_prelude_composes() {
        let src = with_std_prelude("let three : nat = plus 1 2");
        let program = parse_program(&src).unwrap();
        let elaborated = program.elaborate().unwrap();
        assert_eq!(elaborated.eval_call("three", &[]).unwrap(), Value::nat(3));
    }
}
