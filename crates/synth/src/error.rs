//! Synthesizer errors.

use std::fmt;

/// Why a synthesis call failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SynthError {
    /// The positive and negative example sets overlap, so no predicate can
    /// separate them (the paper's `Synth` fails in this case).
    InconsistentExamples(String),
    /// The search space was exhausted (up to the configured limits) without
    /// finding a separating predicate.
    NoCandidate,
    /// The shared deadline expired.
    Timeout,
    /// Anything else (an internal evaluation failure, a malformed problem…).
    Other(String),
}

impl fmt::Display for SynthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthError::InconsistentExamples(value) => {
                write!(f, "example sets overlap on {value}")
            }
            SynthError::NoCandidate => f.write_str("no separating predicate found within limits"),
            SynthError::Timeout => f.write_str("synthesis timed out"),
            SynthError::Other(msg) => f.write_str(msg),
        }
    }
}

impl std::error::Error for SynthError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(SynthError::NoCandidate
            .to_string()
            .contains("no separating"));
        assert!(SynthError::InconsistentExamples("[1]".into())
            .to_string()
            .contains("[1]"));
        assert!(SynthError::Timeout.to_string().contains("timed out"));
    }
}
