//! Positive/negative example sets and the trace-completeness closure.

use hanoi_lang::types::{Type, TypeEnv};
use hanoi_lang::util::OrderedSet;
use hanoi_lang::value::Value;

use crate::error::SynthError;

/// The `V+` / `V−` example pair handed to a synthesizer.
///
/// Positives are values known (or required) to satisfy the invariant;
/// negatives are values the invariant must reject.  The two sets must stay
/// disjoint — an overlap means the caller's bookkeeping is broken and the
/// synthesizer cannot possibly succeed.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExampleSet {
    positives: OrderedSet<Value>,
    negatives: OrderedSet<Value>,
}

impl ExampleSet {
    /// An empty example set.
    pub fn new() -> Self {
        ExampleSet::default()
    }

    /// Builds an example set from two collections (first occurrence wins).
    pub fn from_sets(
        positives: impl IntoIterator<Item = Value>,
        negatives: impl IntoIterator<Item = Value>,
    ) -> Result<Self, SynthError> {
        let mut set = ExampleSet::new();
        for v in positives {
            set.add_positive(v)?;
        }
        for v in negatives {
            set.add_negative(v)?;
        }
        Ok(set)
    }

    /// Adds a positive example; fails if it is already negative.
    pub fn add_positive(&mut self, value: Value) -> Result<bool, SynthError> {
        if self.negatives.contains(&value) {
            return Err(SynthError::InconsistentExamples(value.to_string()));
        }
        Ok(self.positives.insert(value))
    }

    /// Adds a negative example; fails if it is already positive.
    pub fn add_negative(&mut self, value: Value) -> Result<bool, SynthError> {
        if self.positives.contains(&value) {
            return Err(SynthError::InconsistentExamples(value.to_string()));
        }
        Ok(self.negatives.insert(value))
    }

    /// The positive examples, in insertion order.
    pub fn positives(&self) -> &[Value] {
        self.positives.as_slice()
    }

    /// The negative examples, in insertion order.
    pub fn negatives(&self) -> &[Value] {
        self.negatives.as_slice()
    }

    /// Total number of examples.
    pub fn len(&self) -> usize {
        self.positives.len() + self.negatives.len()
    }

    /// `true` when there are no examples at all.
    pub fn is_empty(&self) -> bool {
        self.positives.is_empty() && self.negatives.is_empty()
    }

    /// `true` if `value` appears in either set.
    pub fn contains(&self, value: &Value) -> bool {
        self.positives.contains(value) || self.negatives.contains(value)
    }

    /// The label of `value`, if it is classified.
    pub fn label(&self, value: &Value) -> Option<bool> {
        if self.positives.contains(value) {
            Some(true)
        } else if self.negatives.contains(value) {
            Some(false)
        } else {
            None
        }
    }

    /// All examples with their labels, positives first.
    pub fn labeled(&self) -> Vec<(Value, bool)> {
        self.positives
            .iter()
            .map(|v| (v.clone(), true))
            .chain(self.negatives.iter().map(|v| (v.clone(), false)))
            .collect()
    }

    /// The trace-completeness closure of §4.3: every strict subvalue of an
    /// example that itself has the concrete type and is not yet classified is
    /// added as a *negative* example.  (If such a value is in fact
    /// constructible, a later visible-inductiveness check will move it to the
    /// positives.)
    ///
    /// Returns the closed example set and the number of values added.
    pub fn trace_completed(&self, tyenv: &TypeEnv, concrete: &Type) -> (ExampleSet, usize) {
        let mut closed = self.clone();
        let mut added = 0usize;
        let seeds: Vec<Value> = self
            .positives
            .iter()
            .chain(self.negatives.iter())
            .cloned()
            .collect();
        for seed in seeds {
            for sub in seed.strict_subvalues() {
                if sub.has_type(tyenv, concrete) && !closed.contains(&sub) {
                    closed
                        .add_negative(sub)
                        .expect("unclassified value cannot conflict");
                    added += 1;
                }
            }
        }
        (closed, added)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hanoi_lang::types::{CtorDecl, DataDecl};

    fn tyenv() -> TypeEnv {
        let mut env = TypeEnv::new();
        env.declare(DataDecl::new(
            "nat",
            vec![
                CtorDecl::new("O", vec![]),
                CtorDecl::new("S", vec![Type::named("nat")]),
            ],
        ))
        .unwrap();
        env.declare(DataDecl::new(
            "list",
            vec![
                CtorDecl::new("Nil", vec![]),
                CtorDecl::new("Cons", vec![Type::named("nat"), Type::named("list")]),
            ],
        ))
        .unwrap();
        env
    }

    #[test]
    fn insertion_and_labels() {
        let mut ex = ExampleSet::new();
        assert!(ex.is_empty());
        assert!(ex.add_positive(Value::nat_list(&[])).unwrap());
        assert!(!ex.add_positive(Value::nat_list(&[])).unwrap());
        assert!(ex.add_negative(Value::nat_list(&[1, 1])).unwrap());
        assert_eq!(ex.len(), 2);
        assert_eq!(ex.label(&Value::nat_list(&[])), Some(true));
        assert_eq!(ex.label(&Value::nat_list(&[1, 1])), Some(false));
        assert_eq!(ex.label(&Value::nat_list(&[7])), None);
        assert_eq!(ex.labeled().len(), 2);
    }

    #[test]
    fn conflicts_are_rejected() {
        let mut ex = ExampleSet::new();
        ex.add_positive(Value::nat_list(&[1])).unwrap();
        let err = ex.add_negative(Value::nat_list(&[1])).unwrap_err();
        assert!(matches!(err, SynthError::InconsistentExamples(_)));
        assert!(ExampleSet::from_sets([Value::nat_list(&[1])], [Value::nat_list(&[1])]).is_err());
    }

    #[test]
    fn trace_completion_adds_subvalues_of_the_concrete_type_as_negatives() {
        let env = tyenv();
        let mut ex = ExampleSet::new();
        // [2; 1] has strict subvalues 2, 1, [1], [] of which only the lists
        // have the concrete type `list`.
        ex.add_positive(Value::nat_list(&[2, 1])).unwrap();
        let (closed, added) = ex.trace_completed(&env, &Type::named("list"));
        assert_eq!(added, 2);
        assert_eq!(closed.label(&Value::nat_list(&[1])), Some(false));
        assert_eq!(closed.label(&Value::nat_list(&[])), Some(false));
        assert_eq!(closed.label(&Value::nat_list(&[2, 1])), Some(true));
        // The nat subvalues must not have been added.
        assert_eq!(closed.label(&Value::nat(1)), None);
    }

    #[test]
    fn trace_completion_is_idempotent_and_respects_existing_labels() {
        let env = tyenv();
        let mut ex = ExampleSet::new();
        ex.add_positive(Value::nat_list(&[2, 1])).unwrap();
        ex.add_positive(Value::nat_list(&[1])).unwrap();
        let (closed, added) = ex.trace_completed(&env, &Type::named("list"));
        assert_eq!(added, 1); // only [] is new; [1] was already positive
        assert_eq!(closed.label(&Value::nat_list(&[1])), Some(true));
        let (again, added_again) = closed.trace_completed(&env, &Type::named("list"));
        assert_eq!(added_again, 0);
        assert_eq!(again, closed);
    }
}
