//! The synthesizer interface the inference driver is parameterized by.

use std::sync::Arc;

use hanoi_abstraction::Problem;
use hanoi_lang::ast::Expr;
use hanoi_lang::util::Deadline;
use hanoi_lang::value::Env;

use crate::bank::{TermBank, TermBankStats};
use crate::error::SynthError;
use crate::examples::ExampleSet;

/// A black-box example-directed synthesizer (`Synth` in Figure 4).
///
/// Implementations must be *sound*: a returned predicate evaluates to `true`
/// on every positive example and `false` on every negative example.  They
/// need not be complete — [`SynthError::NoCandidate`] is an acceptable answer
/// — although the completeness theorem of §3.4 only applies when they are.
pub trait Synthesizer {
    /// A short name used in experiment reports (e.g. `"myth"`, `"fold"`).
    fn name(&self) -> &'static str;

    /// Synthesizes a predicate of type `τc -> bool` separating the example
    /// sets, closed over the problem's prelude and module operations.
    fn synthesize(
        &mut self,
        problem: &Problem,
        examples: &ExampleSet,
        deadline: &Deadline,
    ) -> Result<Expr, SynthError>;

    /// Counter snapshot of the synthesizer's persistent term bank, when it
    /// keeps one (the engine-backed synthesizers do; the default is an empty
    /// snapshot for synthesizers without incremental state).
    fn term_bank_stats(&self) -> TermBankStats {
        TermBankStats::default()
    }

    /// Hands the synthesizer an externally owned term bank to evaluate
    /// signatures through, together with the globals environment of the
    /// problem the bank's memoized evaluations belong to.
    ///
    /// This is how a long-lived inference engine keeps signature evaluations
    /// warm *across* runs: the bank outlives any one synthesizer instance,
    /// and every synthesizer adopted into it appends to (and is served from)
    /// the same memoized store.  Callers must only adopt a bank into
    /// synthesizers working on the problem whose globals are given —
    /// bank-backed synthesizers still guard against mismatches and will swap
    /// in a fresh bank rather than serve stale evaluations.
    ///
    /// The default is a no-op for synthesizers without incremental state.
    fn adopt_bank(&mut self, _bank: Arc<TermBank>, _globals: &Env) {}

    /// The synthesizer's shareable term bank, when it keeps one.  A caller
    /// that wants the bank to survive this synthesizer (cross-run reuse)
    /// clones the `Arc` and [`Synthesizer::adopt_bank`]s it into the next
    /// instance.
    fn shared_bank(&self) -> Option<Arc<TermBank>> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivial synthesizer used to exercise the trait object interface.
    struct ConstTrue;

    impl Synthesizer for ConstTrue {
        fn name(&self) -> &'static str {
            "const-true"
        }

        fn synthesize(
            &mut self,
            problem: &Problem,
            examples: &ExampleSet,
            _deadline: &Deadline,
        ) -> Result<Expr, SynthError> {
            if !examples.negatives().is_empty() {
                return Err(SynthError::NoCandidate);
            }
            let concrete = problem.concrete_type().clone();
            Ok(Expr::lambda("x", concrete, Expr::tru()))
        }
    }

    #[test]
    fn trait_objects_work() {
        let problem = Problem::from_source(
            r#"
            type nat = O | S of nat
            interface I = sig
              type t
              val make : t
            end
            module M : I = struct
              type t = nat
              let make : t = O
            end
            spec (s : t) = s == s
        "#,
        )
        .unwrap();
        let mut synth: Box<dyn Synthesizer> = Box::new(ConstTrue);
        assert_eq!(synth.name(), "const-true");
        let result = synth
            .synthesize(&problem, &ExampleSet::new(), &Deadline::none())
            .unwrap();
        problem.typecheck_invariant(&result).unwrap();
    }
}
