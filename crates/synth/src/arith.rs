//! Bounded linear-arithmetic atoms for the numeric invariant workload.
//!
//! The base grammar of [`crate::engine::Engine`] knows nothing about
//! integers: its atoms are the problem's own components plus structural
//! equality.  For modules whose representation carries machine integers
//! (counters, ranges, trace-derived state), this module widens the grammar
//! with a small, *bounded* family of arithmetic components in the style of
//! linear integer arithmetic templates:
//!
//! * the integer builtins themselves (`iadd`, `isub`, `imul`, `imod`,
//!   `ile`, `ilt`) as passthrough components;
//! * combination atoms `lin{a}_{b} x y = a*x + b*y` for small coprime
//!   coefficient pairs (negative coefficients spell `n`, e.g. `lin1_n1` for
//!   `x - y`), so inequalities such as `x - y <= c` fit inside the guess
//!   size budget;
//! * residue atoms `imod{m} x = x mod m` for a fixed set of small moduli,
//!   covering parity/congruence invariants.
//!
//! Every component is tagged [`crate::engine::ExtraComponent::arith`], so
//! enumeration of the numeric grammar is observable as
//! [`crate::bank::TermBankStats::arith_atoms`].  Alongside the components,
//! [`literal_pool`] supplies the integer constants the search may use as
//! size-1 terms ([`crate::engine::SearchConfig::int_literals`]).
//!
//! All coefficient and constant ranges are deliberately small — the paper's
//! synthesizer succeeds by keeping the per-size term layers tractable, and
//! each extra component multiplies the application frontier.

use hanoi_lang::ast::Expr;
use hanoi_lang::error::EvalError;
use hanoi_lang::ints;
use hanoi_lang::symbol::Symbol;
use hanoi_lang::types::Type;
use hanoi_lang::value::Value;

use crate::engine::ExtraComponent;

/// Bounds of the numeric grammar: how far the coefficient, constant and
/// modulus families reach.  The defaults keep the component roster at a
/// dozen-odd entries, which the benchmark suite's guess sizes tolerate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArithBounds {
    /// Largest absolute coefficient in a `lin{a}_{b}` combination atom.
    pub coeff_bound: i64,
    /// Largest absolute integer literal seeded into the term pool.
    pub const_bound: i64,
    /// Moduli of the residue atoms `imod{m}`.
    pub moduli: Vec<i64>,
}

impl Default for ArithBounds {
    fn default() -> Self {
        ArithBounds {
            coeff_bound: 2,
            const_bound: 4,
            moduli: vec![2, 3],
        }
    }
}

fn want_int(v: &Value, op: &str) -> Result<i64, EvalError> {
    v.as_int()
        .ok_or_else(|| EvalError::Other(format!("arith atom `{op}` expects an int, found {v}")))
}

/// Spells a coefficient inside a component name: identifiers cannot contain
/// `-`, so negative coefficients get an `n` prefix (`-1` → `n1`).
fn coeff_name(c: i64) -> String {
    if c < 0 {
        format!("n{}", -c)
    } else {
        c.to_string()
    }
}

fn gcd(a: i64, b: i64) -> i64 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

/// The definition `fun (x : int) -> fun (y : int) -> iadd (imul #a x)
/// (imul #b y)` — what the synthesized invariant closes over, so it stays a
/// self-contained expression of the core language.
fn lin_definition(a: i64, b: i64) -> Expr {
    let term = |c: i64, var: &str| Expr::call("imul", [Expr::Int(c), Expr::var(var)]);
    Expr::lambda(
        "x",
        Type::int(),
        Expr::lambda(
            "y",
            Type::int(),
            Expr::call("iadd", [term(a, "x"), term(b, "y")]),
        ),
    )
}

/// The linear-arithmetic component roster for `bounds`, in a fixed
/// deterministic order.  Each component's native value computes exactly what
/// its definition evaluates to (wrapping arithmetic, total modulus), so
/// signature rows built from the value agree with the verifier's evaluation
/// of the assembled invariant.
pub fn components(bounds: &ArithBounds) -> Vec<ExtraComponent> {
    let mut out = Vec::new();

    // The integer builtins as passthrough components: the definition is just
    // the global name, so `let iadd = iadd in …` wrappers in assembled
    // invariants re-bind the builtin that every elaborated program provides.
    for (name, ty, value) in ints::builtins() {
        if !matches!(
            name.as_str(),
            "iadd" | "isub" | "imul" | "imod" | "ile" | "ilt"
        ) {
            continue;
        }
        out.push(ExtraComponent {
            definition: Expr::Var(name.clone()),
            name,
            ty,
            value,
            arith: true,
        });
    }

    // Combination atoms `a*x + b*y` for canonical coefficient pairs: a
    // positive, b nonzero, the pair coprime, and the plain sum/difference
    // skipped (those are `iadd`/`isub` verbatim).
    let k = bounds.coeff_bound;
    for a in 1..=k {
        for b in -k..=k {
            if b == 0 || gcd(a, b) != 1 || (a == 1 && (b == 1 || b == -1)) {
                continue;
            }
            let name = format!("lin{}_{}", coeff_name(a), coeff_name(b));
            let value = Value::native(&name, 2, move |args| {
                let x = want_int(&args[0], "lin")?;
                let y = want_int(&args[1], "lin")?;
                Ok(Value::int(
                    a.wrapping_mul(x).wrapping_add(b.wrapping_mul(y)),
                ))
            });
            out.push(ExtraComponent {
                name: Symbol::new(&name),
                ty: Type::arrow(Type::int(), Type::arrow(Type::int(), Type::int())),
                value,
                definition: lin_definition(a, b),
                arith: true,
            });
        }
    }

    // Residue atoms `x mod m` (same total `rem_euclid` semantics as the
    // `imod` builtin).
    for &m in &bounds.moduli {
        let name = format!("imod{m}");
        let value = Value::native(&name, 1, move |args| {
            let x = want_int(&args[0], "imod")?;
            Ok(Value::int(if m == 0 { 0 } else { x.rem_euclid(m) }))
        });
        out.push(ExtraComponent {
            name: Symbol::new(&name),
            ty: Type::arrow(Type::int(), Type::int()),
            value,
            definition: Expr::lambda(
                "x",
                Type::int(),
                Expr::call("imod", [Expr::var("x"), Expr::Int(m)]),
            ),
            arith: true,
        });
    }

    out
}

/// The integer literals seeded as size-1 terms under `bounds`:
/// `-const_bound ..= const_bound`, in ascending order.
pub fn literal_pool(bounds: &ArithBounds) -> Vec<i64> {
    (-bounds.const_bound..=bounds.const_bound).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hanoi_lang::ast::Program;
    use hanoi_lang::eval::{Evaluator, Fuel};
    use hanoi_lang::types::TypeEnv;

    #[test]
    fn roster_is_deterministic_and_canonical() {
        let bounds = ArithBounds::default();
        let a = components(&bounds);
        let b = components(&bounds);
        let names: Vec<&str> = a.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, b.iter().map(|c| c.name.as_str()).collect::<Vec<_>>());
        // Builtins, four canonical coefficient pairs at bound 2, two moduli.
        assert_eq!(
            names,
            [
                "iadd", "isub", "imul", "imod", "ile", "ilt", "lin1_n2", "lin1_2", "lin2_n1",
                "lin2_1", "imod2", "imod3",
            ]
        );
        assert!(a.iter().all(|c| c.arith));
        assert_eq!(literal_pool(&bounds), vec![-4, -3, -2, -1, 0, 1, 2, 3, 4]);
    }

    #[test]
    fn native_values_agree_with_definitions() {
        // The engine evaluates the *value*; the verifier evaluates the
        // *definition* inside the assembled invariant.  They must agree on
        // every input, including the wrapping and total-modulus edge cases.
        let elaborated = Program::default().elaborate().unwrap();
        let tyenv = TypeEnv::new();
        let evaluator = Evaluator::new(&tyenv);
        let probes = [-7i64, -2, -1, 0, 1, 2, 3, 64, i64::MAX, i64::MIN];
        for component in components(&ArithBounds::default()) {
            let arity = component.ty.uncurry().0.len();
            let definition_value = evaluator
                .eval(
                    &elaborated.globals,
                    &component.definition,
                    &mut Fuel::new(10_000),
                )
                .expect("definition evaluates");
            for &x in &probes {
                let args: Vec<Value> = match arity {
                    1 => vec![Value::int(x)],
                    _ => vec![Value::int(x), Value::int(x.wrapping_add(3))],
                };
                let via_value = evaluator
                    .apply_many(component.value.clone(), &args, &mut Fuel::new(10_000))
                    .ok();
                let via_definition = evaluator
                    .apply_many(definition_value.clone(), &args, &mut Fuel::new(10_000))
                    .ok();
                assert_eq!(
                    via_value, via_definition,
                    "component {} disagrees on {args:?}",
                    component.name
                );
            }
        }
    }

    #[test]
    fn definitions_typecheck_against_the_builtin_globals() {
        use hanoi_lang::typecheck::TypeChecker;
        let tyenv = TypeEnv::new();
        let checker = TypeChecker::new(&tyenv);
        for component in components(&ArithBounds::default()) {
            checker
                .check_closed(&component.definition, &component.ty)
                .unwrap_or_else(|e| panic!("component {} fails typecheck: {e}", component.name));
        }
    }
}
