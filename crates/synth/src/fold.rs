//! The prototype fold-capable synthesizer of §5.4.
//!
//! The paper reports that Myth "can only synthesize simple recursive
//! functions", which forces some benchmarks (the binary-heap priority queue,
//! BSTs, red-black trees) to be given hand-written helper functions such as
//! `true_maximum`.  Their prototype synthesizer removes that restriction by
//! being able to synthesize *folds* — functions that accumulate a value while
//! walking the structure.
//!
//! Our version takes the same shape: before the main example-directed search
//! it synthesizes a small library of auxiliary catamorphisms over the
//! representation type (candidate "measures" of type `τc -> nat`, such as the
//! length, the maximum element or the sum), deduplicated behaviourally, and
//! exposes them to the search engine as extra components.  The final
//! invariant closes over whichever helpers it uses with `let` bindings, so it
//! remains a self-contained expression.

use std::collections::HashSet;

use hanoi_abstraction::Problem;
use hanoi_lang::ast::{Expr, MatchArm, Pattern};
use hanoi_lang::enumerate::ValueEnumerator;
use hanoi_lang::eval::Fuel;
use hanoi_lang::symbol::Symbol;
use hanoi_lang::termgen::{Component, TermGenConfig, TermGenerator};
use hanoi_lang::types::Type;
use hanoi_lang::util::Deadline;
use hanoi_lang::value::Value;

use crate::bank::{TermBank, TermBankStats};
use crate::engine::{Engine, ExtraComponent, SearchConfig};
use crate::error::SynthError;
use crate::examples::ExampleSet;
use crate::traits::Synthesizer;

/// Limits for the auxiliary-fold synthesis pass.
#[derive(Debug, Clone, Copy)]
pub struct FoldConfig {
    /// Maximum AST size of each match-arm body of a helper fold.
    pub max_arm_size: usize,
    /// Maximum number of arm-body candidates considered per constructor.
    pub max_arm_candidates: usize,
    /// Maximum number of helper folds exposed to the main search.
    pub max_helpers: usize,
    /// Number of sample values used to deduplicate helpers behaviourally.
    pub sample_values: usize,
    /// Maximum size of those sample values.
    pub sample_size: usize,
}

impl Default for FoldConfig {
    fn default() -> Self {
        FoldConfig {
            max_arm_size: 5,
            max_arm_candidates: 12,
            max_helpers: 8,
            sample_values: 25,
            sample_size: 9,
        }
    }
}

/// The fold-capable synthesizer.
///
/// Like [`crate::MythSynth`], it owns a persistent [`TermBank`] for its
/// lifetime; the helper-fold library is regenerated deterministically per
/// call, so the bank's memoized `fold*` signature evaluations stay valid
/// across CEGIS iterations.
#[derive(Debug, Clone, Default)]
pub struct FoldSynth {
    config: SearchConfig,
    fold_config: FoldConfig,
    bank: std::sync::Arc<TermBank>,
    /// The globals environment of the problem the bank's evaluations belong
    /// to, pinned so the identity comparison cannot suffer address reuse (a
    /// different problem swaps in a fresh bank, like [`crate::MythSynth`]).
    problem_globals: Option<hanoi_lang::value::Env>,
}

impl FoldSynth {
    /// A fold synthesizer with default settings.
    pub fn new() -> Self {
        FoldSynth::default()
    }

    /// Overrides the main search configuration.
    pub fn with_config(mut self, config: SearchConfig) -> Self {
        self.config = config;
        self
    }

    /// Overrides the helper-fold limits.
    pub fn with_fold_config(mut self, fold_config: FoldConfig) -> Self {
        self.fold_config = fold_config;
        self
    }

    /// Synthesizes the auxiliary catamorphism library for `problem`.
    ///
    /// Exposed for tests and the experiment harness; normally called
    /// internally by [`Synthesizer::synthesize`].
    pub fn helper_folds(&self, problem: &Problem) -> Vec<ExtraComponent> {
        let concrete = problem.concrete_type().clone();
        let Type::Named(type_name) = &concrete else {
            return Vec::new();
        };
        let Some(decl) = problem.tyenv.lookup(type_name) else {
            return Vec::new();
        };
        let decl = decl.clone();
        let nat = Type::named("nat");
        if !problem.tyenv.is_declared(&Symbol::new("nat")) {
            return Vec::new();
        }

        // nat-valued combinators available to arm bodies: any global whose
        // arguments and result are all `nat`.
        let nat_funcs: Vec<Component> = problem
            .synthesis_components()
            .into_iter()
            .filter(|(_, ty)| {
                let (args, ret) = ty.uncurry();
                !args.is_empty() && ret == &nat && args.iter().all(|a| **a == nat)
            })
            .map(|(name, ty)| Component::new(name, ty))
            .collect();

        // Candidate bodies per constructor.
        let helper_name = Symbol::new("__fold");
        let mut per_ctor: Vec<Vec<Expr>> = Vec::new();
        for ctor in &decl.ctors {
            let mut components = nat_funcs.clone();
            let mut field_names = Vec::new();
            for (i, arg_ty) in ctor.args.iter().enumerate() {
                let field = Symbol::new(&format!("f{i}"));
                field_names.push((field.clone(), arg_ty.clone()));
                if arg_ty == &nat {
                    components.push(Component::new(field, nat.clone()));
                } else if arg_ty == &concrete {
                    // The recursive result of the fold on this field.
                    components.push(Component::new(Symbol::new(&format!("__r{i}")), nat.clone()));
                }
            }
            let config = TermGenConfig {
                allow_eq: false,
                allow_bool_ops: false,
                ..TermGenConfig::default()
            };
            let mut generator = TermGenerator::new(&problem.tyenv, components, config);
            let mut bodies: Vec<Expr> = generator.terms_up_to(&nat, self.fold_config.max_arm_size);
            bodies.truncate(self.fold_config.max_arm_candidates);
            // Replace the placeholder recursive-result variables with actual
            // recursive calls.
            let bodies = bodies
                .into_iter()
                .map(|body| {
                    let mut rewritten = body;
                    for (i, arg_ty) in ctor.args.iter().enumerate() {
                        if arg_ty == &concrete {
                            rewritten = substitute_var(
                                &rewritten,
                                &Symbol::new(&format!("__r{i}")),
                                &Expr::call(helper_name.as_str(), [Expr::var(&format!("f{i}"))]),
                            );
                        }
                    }
                    rewritten
                })
                .collect();
            per_ctor.push(bodies);
        }

        // Assemble full folds from one body per constructor, deduplicating by
        // behaviour on a sample of values.
        let mut enumerator = ValueEnumerator::new(&problem.tyenv);
        let samples = enumerator.first_values(
            &concrete,
            self.fold_config.sample_values,
            self.fold_config.sample_size,
        );
        let evaluator = problem.evaluator();
        let mut seen_signatures: HashSet<Vec<Option<Value>>> = HashSet::new();
        let mut helpers = Vec::new();
        let assemble = |arm_bodies: &[Expr]| -> Expr {
            let arms: Vec<MatchArm> = decl
                .ctors
                .iter()
                .zip(arm_bodies)
                .map(|(ctor, body)| {
                    let pattern = Pattern::Ctor(
                        ctor.name.clone(),
                        (0..ctor.args.len())
                            .map(|i| Pattern::Var(Symbol::new(&format!("f{i}"))))
                            .collect(),
                    );
                    MatchArm::new(pattern, body.clone())
                })
                .collect();
            Expr::fix(
                helper_name.as_str(),
                "x",
                concrete.clone(),
                nat.clone(),
                Expr::Match(Box::new(Expr::var("x")), arms),
            )
        };

        let mut indices = vec![0usize; per_ctor.len()];
        if per_ctor.iter().any(|bodies| bodies.is_empty()) {
            return Vec::new();
        }
        'outer: loop {
            if helpers.len() >= self.fold_config.max_helpers {
                break;
            }
            let arm_bodies: Vec<Expr> = indices
                .iter()
                .zip(&per_ctor)
                .map(|(&i, bodies)| bodies[i].clone())
                .collect();
            let definition = assemble(&arm_bodies);
            if let Ok(value) = evaluator
                .eval(&problem.globals, &definition, &mut Fuel::standard())
                .map(|v| hanoi_lang::resolve::resolve_closure_value(&v))
            {
                let signature: Vec<Option<Value>> = samples
                    .iter()
                    .map(|sample| {
                        evaluator
                            .apply(value.clone(), sample.clone(), &mut Fuel::standard())
                            .ok()
                    })
                    .collect();
                let informative = signature.iter().any(|v| v.is_some());
                if informative && seen_signatures.insert(signature) {
                    let index = helpers.len();
                    let name = Symbol::new(&format!("fold{index}"));
                    let renamed_definition =
                        substitute_var(&definition, &helper_name, &Expr::Var(name.clone()));
                    // The fix's own binder is `__fold`; rename the fix itself
                    // so recursive calls resolve, by rebuilding it under the
                    // public name.
                    let renamed_definition = match renamed_definition {
                        Expr::Fix(fx) => Expr::fix(
                            name.as_str(),
                            fx.param.as_str(),
                            fx.param_ty.clone(),
                            fx.ret_ty.clone(),
                            fx.body.clone(),
                        ),
                        other => other,
                    };
                    helpers.push(ExtraComponent {
                        name,
                        ty: Type::arrow(concrete.clone(), nat.clone()),
                        value,
                        definition: renamed_definition,
                        arith: false,
                    });
                }
            }
            // Advance the odometer over arm-body combinations.
            let mut position = per_ctor.len();
            loop {
                if position == 0 {
                    break 'outer;
                }
                position -= 1;
                indices[position] += 1;
                if indices[position] < per_ctor[position].len() {
                    break;
                }
                indices[position] = 0;
            }
        }
        helpers
    }
}

/// Capture-naive substitution of a free variable by an expression (adequate
/// here: the replaced names are compiler-generated and never shadowed).
fn substitute_var(expr: &Expr, var: &Symbol, replacement: &Expr) -> Expr {
    use std::sync::Arc;
    match expr {
        Expr::Var(x) if x == var => replacement.clone(),
        Expr::Var(_) | Expr::Local(_, _) | Expr::Int(_) => expr.clone(),
        Expr::Ctor(c, args) => Expr::Ctor(
            c.clone(),
            args.iter()
                .map(|a| substitute_var(a, var, replacement))
                .collect(),
        ),
        Expr::Tuple(args) => Expr::Tuple(
            args.iter()
                .map(|a| substitute_var(a, var, replacement))
                .collect(),
        ),
        Expr::Proj(i, e) => Expr::Proj(*i, Box::new(substitute_var(e, var, replacement))),
        Expr::App(f, a) => Expr::app(
            substitute_var(f, var, replacement),
            substitute_var(a, var, replacement),
        ),
        Expr::Lambda(l) => Expr::Lambda(Arc::new(hanoi_lang::ast::LambdaExpr {
            param: l.param.clone(),
            param_ty: l.param_ty.clone(),
            body: substitute_var(&l.body, var, replacement),
        })),
        Expr::Fix(fx) => Expr::Fix(Arc::new(hanoi_lang::ast::FixExpr {
            name: fx.name.clone(),
            param: fx.param.clone(),
            param_ty: fx.param_ty.clone(),
            ret_ty: fx.ret_ty.clone(),
            body: substitute_var(&fx.body, var, replacement),
        })),
        Expr::Match(s, arms) => Expr::Match(
            Box::new(substitute_var(s, var, replacement)),
            arms.iter()
                .map(|arm| {
                    MatchArm::new(
                        arm.pattern.clone(),
                        substitute_var(&arm.body, var, replacement),
                    )
                })
                .collect(),
        ),
        Expr::Let(x, bound, body) => Expr::Let(
            x.clone(),
            Box::new(substitute_var(bound, var, replacement)),
            Box::new(substitute_var(body, var, replacement)),
        ),
        Expr::If(c, t, e) => Expr::if_(
            substitute_var(c, var, replacement),
            substitute_var(t, var, replacement),
            substitute_var(e, var, replacement),
        ),
        Expr::Eq(a, b) => Expr::eq(
            substitute_var(a, var, replacement),
            substitute_var(b, var, replacement),
        ),
        Expr::And(a, b) => Expr::and(
            substitute_var(a, var, replacement),
            substitute_var(b, var, replacement),
        ),
        Expr::Or(a, b) => Expr::or(
            substitute_var(a, var, replacement),
            substitute_var(b, var, replacement),
        ),
        Expr::Not(a) => Expr::not(substitute_var(a, var, replacement)),
    }
}

impl Synthesizer for FoldSynth {
    fn name(&self) -> &'static str {
        "fold"
    }

    fn synthesize(
        &mut self,
        problem: &Problem,
        examples: &ExampleSet,
        deadline: &Deadline,
    ) -> Result<Expr, SynthError> {
        let identity = problem.globals.identity();
        if self.problem_globals.as_ref().map(|env| env.identity()) != Some(identity) {
            if self.problem_globals.is_some() {
                self.bank = std::sync::Arc::new(TermBank::new());
            }
            self.problem_globals = Some(problem.globals.clone());
        }
        let mut config = self.config.clone();
        config.extra_components = self.helper_folds(problem);
        let engine = Engine::new(problem, config);
        engine.synthesize_with_bank(&self.bank, examples, deadline)
    }

    fn term_bank_stats(&self) -> TermBankStats {
        self.bank.stats()
    }

    fn adopt_bank(&mut self, bank: std::sync::Arc<TermBank>, globals: &hanoi_lang::value::Env) {
        self.bank = bank;
        self.problem_globals = Some(globals.clone());
    }

    fn shared_bank(&self) -> Option<std::sync::Arc<TermBank>> {
        Some(std::sync::Arc::clone(&self.bank))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MAX_FIRST: &str = r#"
        type nat = O | S of nat
        type list = Nil | Cons of nat * list

        let rec leq (m : nat) (n : nat) : bool =
          match m with
          | O -> True
          | S m2 ->
              match n with
              | O -> False
              | S n2 -> leq m2 n2
              end
          end

        let natmax (m : nat) (n : nat) : nat = if leq m n then n else m

        interface HEAP = sig
          type t
          val empty : t
          val push : t -> nat -> t
          val max_elt : t -> nat
        end

        module MaxFirstList : HEAP = struct
          type t = list
          let empty : t = Nil
          let max_elt (h : t) : nat =
            match h with
            | Nil -> O
            | Cons (hd, tl) -> hd
            end
          let push (h : t) (x : nat) : t =
            match h with
            | Nil -> Cons (x, Nil)
            | Cons (hd, tl) ->
                if leq hd x then Cons (x, Cons (hd, tl)) else Cons (hd, Cons (x, tl))
            end
        end

        spec (h : t) (i : nat) = leq i (max_elt (push h i))
    "#;

    #[test]
    fn helper_folds_include_a_maximum_like_measure() {
        let problem = Problem::from_source(MAX_FIRST).unwrap();
        let synth = FoldSynth::new();
        let helpers = synth.helper_folds(&problem);
        assert!(!helpers.is_empty());
        assert!(helpers.len() <= FoldConfig::default().max_helpers);
        // Each helper must evaluate on sample lists, and at least one must
        // behave like a "maximum element" style measure: distinguish [2;0]
        // from [0] (length does too, so just require some helper separates
        // lists that plain structural equality on heads would not).
        let evaluator = problem.evaluator();
        for helper in &helpers {
            let out = evaluator.apply(
                helper.value.clone(),
                Value::nat_list(&[2, 1]),
                &mut Fuel::standard(),
            );
            assert!(out.is_ok(), "helper {} failed to run", helper.name);
        }
    }

    #[test]
    fn fold_synthesizer_separates_using_helpers() {
        let problem = Problem::from_source(MAX_FIRST).unwrap();
        let mut synth = FoldSynth::new().with_config(SearchConfig::default());
        assert_eq!(synth.name(), "fold");
        // Positives: max-first lists; negatives: lists whose head is not the
        // maximum.  Separating these requires some fold-like measure of the
        // tail (e.g. "head >= maximum of tail").
        let examples = ExampleSet::from_sets(
            [
                Value::nat_list(&[]),
                Value::nat_list(&[1]),
                Value::nat_list(&[2, 1]),
                Value::nat_list(&[2, 0, 1]),
                Value::nat_list(&[3, 1, 2]),
            ],
            [
                Value::nat_list(&[0, 1]),
                Value::nat_list(&[1, 2]),
                Value::nat_list(&[1, 0, 2]),
            ],
        )
        .unwrap();
        let (examples, _) = examples.trace_completed(&problem.tyenv, problem.concrete_type());
        let result = synth.synthesize(&problem, &examples, &Deadline::none());
        // The helper library is behaviour-dependent; we require that *if* a
        // candidate is produced it is consistent, and that the common case
        // succeeds.
        match result {
            Ok(candidate) => {
                problem.typecheck_invariant(&candidate).unwrap();
                for (value, expected) in examples.labeled() {
                    assert_eq!(
                        problem.eval_predicate(&candidate, &value).unwrap(),
                        expected,
                        "on {value} with candidate {candidate}"
                    );
                }
            }
            Err(err) => panic!("fold synthesizer failed: {err}"),
        }
    }
}
