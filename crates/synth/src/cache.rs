//! Synthesis-result caching (§4.4).
//!
//! Myth-style synthesis often (re)discovers the same candidate invariants
//! across CEGIS iterations.  The paper's optimization stores every candidate
//! ever synthesized; before calling the synthesizer again, the driver first
//! checks whether a cached candidate is already consistent with the current
//! example sets and reuses it if so, skipping the synthesis call entirely.

use hanoi_abstraction::Problem;
use hanoi_lang::ast::Expr;
use hanoi_lang::eval::Fuel;

use crate::examples::ExampleSet;

/// A store of previously synthesized candidate invariants.
///
/// Candidates are slot-resolved once at insertion, so every consistency probe
/// against the growing example sets runs on the interpreter's indexed fast
/// path (fuel-identical to the name-based walk, so lookup outcomes are
/// unchanged).
#[derive(Debug, Clone, Default)]
pub struct SynthesisCache {
    candidates: Vec<Expr>,
    /// Slot-resolved twin of each candidate, index-parallel to `candidates`.
    resolved: Vec<Expr>,
    hits: usize,
    misses: usize,
}

impl SynthesisCache {
    /// An empty cache.
    pub fn new() -> Self {
        SynthesisCache::default()
    }

    /// Records a candidate (deduplicated syntactically).
    pub fn insert(&mut self, candidate: Expr) {
        if !self.candidates.contains(&candidate) {
            self.resolved.push(hanoi_lang::resolve::resolve(&candidate));
            self.candidates.push(candidate);
        }
    }

    /// Returns the first cached candidate consistent with `examples`, if any,
    /// and updates the hit/miss counters.
    pub fn find_consistent(&mut self, problem: &Problem, examples: &ExampleSet) -> Option<Expr> {
        let labeled = examples.labeled();
        let found = self
            .candidates
            .iter()
            .zip(&self.resolved)
            .find(|(_, resolved)| {
                labeled.iter().all(|(value, expected)| {
                    problem
                        .eval_predicate_resolved_with_fuel(resolved, value, &mut Fuel::standard())
                        .map(|actual| actual == *expected)
                        .unwrap_or(false)
                })
            })
            .map(|(candidate, _)| candidate.clone());
        if found.is_some() {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
        found
    }

    /// Number of stored candidates.
    pub fn len(&self) -> usize {
        self.candidates.len()
    }

    /// `true` when no candidate is stored.
    pub fn is_empty(&self) -> bool {
        self.candidates.is_empty()
    }

    /// Number of successful lookups so far.
    pub fn hits(&self) -> usize {
        self.hits
    }

    /// Number of failed lookups so far.
    pub fn misses(&self) -> usize {
        self.misses
    }

    /// The stored candidates, oldest first.
    pub fn candidates(&self) -> &[Expr] {
        &self.candidates
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hanoi_lang::parser::parse_expr;
    use hanoi_lang::value::Value;

    const SIMPLE: &str = r#"
        type nat = O | S of nat
        type list = Nil | Cons of nat * list
        interface SET = sig
          type t
          val empty : t
          val lookup : t -> nat -> bool
        end
        module ListSet : SET = struct
          type t = list
          let empty : t = Nil
          let rec lookup (l : t) (x : nat) : bool =
            match l with
            | Nil -> False
            | Cons (hd, tl) -> hd == x || lookup tl x
            end
        end
        spec (s : t) (i : nat) = not (lookup empty i)
    "#;

    #[test]
    fn caches_and_reuses_consistent_candidates() {
        let problem = Problem::from_source(SIMPLE).unwrap();
        let mut cache = SynthesisCache::new();
        assert!(cache.is_empty());

        let trivially_true = parse_expr("fun (l : list) -> True").unwrap();
        let no_zero = parse_expr("fun (l : list) -> not (lookup l 0)").unwrap();
        cache.insert(trivially_true.clone());
        cache.insert(no_zero.clone());
        cache.insert(no_zero.clone());
        assert_eq!(cache.len(), 2);

        // With no examples, the first cached candidate works.
        let found = cache.find_consistent(&problem, &ExampleSet::new()).unwrap();
        assert_eq!(found, trivially_true);

        // With [0] as a negative example, only `no_zero` is consistent.
        let examples =
            ExampleSet::from_sets([Value::nat_list(&[1])], [Value::nat_list(&[0])]).unwrap();
        let found = cache.find_consistent(&problem, &examples).unwrap();
        assert_eq!(found, no_zero);

        // With [1] negative too, nothing in the cache works.
        let examples =
            ExampleSet::from_sets([], [Value::nat_list(&[0]), Value::nat_list(&[1])]).unwrap();
        assert!(cache.find_consistent(&problem, &examples).is_none());
        assert_eq!(cache.hits(), 2);
        assert_eq!(cache.misses(), 1);
    }
}
