//! Example-directed synthesis of candidate representation invariants.
//!
//! The inference algorithm treats its synthesizer as a black box satisfying a
//! simple contract (§3.3): given disjoint sets `V+` / `V−` of positive and
//! negative example values of the concrete representation type, return a
//! predicate `τc -> bool` that is `true` on every positive and `false` on
//! every negative example.  The paper instantiates this with Myth [Osera &
//! Zdancewic 2015], a type- and example-directed enumerative synthesizer,
//! lightly adapted (§4.3): results are cached and the example set is closed
//! under subvalues ("trace completeness") before every call.
//!
//! This crate provides:
//!
//! * [`examples::ExampleSet`] — the `V+`/`V−` pair with the trace-completeness
//!   closure;
//! * [`engine`] — the shared search machinery: observational-equivalence
//!   pruned bottom-up term guessing, match refinement and structural
//!   recursion over the concrete data type;
//! * [`myth::MythSynth`] — the Myth-style synthesizer used by default;
//! * [`fold::FoldSynth`] — the prototype synthesizer of §5.4, which first
//!   synthesizes auxiliary catamorphisms (folds) over the representation type
//!   and then reuses the same search, letting it find invariants that need
//!   accumulating helper functions;
//! * [`cache::SynthesisCache`] — synthesis-result caching (§4.4);
//! * [`bank::TermBank`] — the persistent, session-scoped store backing
//!   incremental guessing: memoized signature evaluation keyed by
//!   `(component, argument values)`, signature-column bookkeeping per
//!   example world, and equivalence-class split accounting.

#![warn(missing_docs)]

pub mod arith;
pub mod bank;
pub mod cache;
pub mod engine;
pub mod error;
pub mod examples;
pub mod fold;
pub mod myth;
pub mod traits;

pub use bank::{TermBank, TermBankStats};
pub use cache::SynthesisCache;
pub use engine::SearchConfig;
pub use error::SynthError;
pub use examples::ExampleSet;
pub use fold::FoldSynth;
pub use myth::MythSynth;
pub use traits::Synthesizer;
