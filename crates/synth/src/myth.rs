//! The default, Myth-style synthesizer.

use hanoi_abstraction::Problem;
use hanoi_lang::ast::Expr;
use hanoi_lang::util::Deadline;

use crate::engine::{Engine, SearchConfig};
use crate::error::SynthError;
use crate::examples::ExampleSet;
use crate::traits::Synthesizer;

/// A type- and example-directed enumerative synthesizer in the style of Myth
/// [Osera & Zdancewic 2015]: match refinement plus bottom-up guessing with
/// observational-equivalence pruning and structural recursion.
#[derive(Debug, Clone, Default)]
pub struct MythSynth {
    config: SearchConfig,
}

impl MythSynth {
    /// A synthesizer with the default search schedule.
    pub fn new() -> Self {
        MythSynth {
            config: SearchConfig::default(),
        }
    }

    /// A synthesizer with a custom search configuration.
    pub fn with_config(config: SearchConfig) -> Self {
        MythSynth { config }
    }

    /// The search configuration in use.
    pub fn config(&self) -> &SearchConfig {
        &self.config
    }
}

impl Synthesizer for MythSynth {
    fn name(&self) -> &'static str {
        "myth"
    }

    fn synthesize(
        &mut self,
        problem: &Problem,
        examples: &ExampleSet,
        deadline: &Deadline,
    ) -> Result<Expr, SynthError> {
        let engine = Engine::new(problem, self.config.clone());
        engine.synthesize(examples, deadline)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hanoi_lang::value::Value;

    const NAT_COUNTER: &str = r#"
        type nat = O | S of nat

        let rec even (n : nat) : bool =
          match n with
          | O -> True
          | S m ->
              match m with
              | O -> False
              | S k -> even k
              end
          end

        interface COUNTER = sig
          type t
          val zero : t
          val incr2 : t -> t
          val is_zero : t -> bool
        end

        module EvenCounter : COUNTER = struct
          type t = nat
          let zero : t = O
          let incr2 (c : t) : t = S (S c)
          let is_zero (c : t) : bool =
            match c with
            | O -> True
            | S m -> False
            end
        end

        spec (c : t) = not (is_zero (incr2 c))
    "#;

    #[test]
    fn synthesizes_an_evenness_style_separator() {
        let problem = Problem::from_source(NAT_COUNTER).unwrap();
        let mut synth = MythSynth::new();
        assert_eq!(synth.name(), "myth");
        // Positives: even naturals (constructible); negatives: odd ones.
        let examples = ExampleSet::from_sets(
            [Value::nat(0), Value::nat(2), Value::nat(4)],
            [Value::nat(1), Value::nat(3), Value::nat(5)],
        )
        .unwrap();
        let (examples, _) = examples.trace_completed(&problem.tyenv, problem.concrete_type());
        let result = synth
            .synthesize(&problem, &examples, &Deadline::none())
            .unwrap();
        problem.typecheck_invariant(&result).unwrap();
        for (value, expected) in examples.labeled() {
            assert_eq!(
                problem.eval_predicate(&result, &value).unwrap(),
                expected,
                "on {value} with candidate {result}"
            );
        }
    }

    #[test]
    fn respects_the_synth_contract_on_empty_examples() {
        let problem = Problem::from_source(NAT_COUNTER).unwrap();
        let mut synth = MythSynth::with_config(SearchConfig::quick());
        let result = synth
            .synthesize(&problem, &ExampleSet::new(), &Deadline::none())
            .unwrap();
        problem.typecheck_invariant(&result).unwrap();
    }
}
