//! The default, Myth-style synthesizer.

use std::sync::Arc;

use hanoi_abstraction::Problem;
use hanoi_lang::ast::Expr;
use hanoi_lang::util::Deadline;
use hanoi_lang::value::Env;

use crate::bank::{TermBank, TermBankStats};
use crate::engine::{Engine, SearchConfig};
use crate::error::SynthError;
use crate::examples::ExampleSet;
use crate::traits::Synthesizer;

/// A type- and example-directed enumerative synthesizer in the style of Myth
/// [Osera & Zdancewic 2015]: match refinement plus bottom-up guessing with
/// observational-equivalence pruning and structural recursion.
///
/// The synthesizer owns a persistent [`TermBank`] for its lifetime (one CEGIS
/// session): signature evaluations paid for in one `synthesize` call are
/// reused by every later call, so an iteration triggered by a single new
/// counterexample only evaluates that example's signature column.  The bank
/// is scoped to one problem (its cached evaluations capture the problem's
/// globals); calling `synthesize` with a different problem swaps in a fresh
/// bank automatically.
#[derive(Debug, Clone, Default)]
pub struct MythSynth {
    config: SearchConfig,
    bank: Arc<TermBank>,
    /// The globals environment of the problem the bank's evaluations belong
    /// to.  Holding the `Env` (not just its address) pins the allocation,
    /// so the identity comparison can never suffer address reuse.
    problem_globals: Option<Env>,
}

impl MythSynth {
    /// A synthesizer with the default search schedule.
    pub fn new() -> Self {
        MythSynth::default()
    }

    /// A synthesizer with a custom search configuration.
    pub fn with_config(config: SearchConfig) -> Self {
        MythSynth {
            config,
            bank: Arc::new(TermBank::new()),
            problem_globals: None,
        }
    }

    /// The search configuration in use.
    pub fn config(&self) -> &SearchConfig {
        &self.config
    }

    /// The session's persistent term bank.
    pub fn bank(&self) -> &TermBank {
        &self.bank
    }
}

impl Synthesizer for MythSynth {
    fn name(&self) -> &'static str {
        "myth"
    }

    fn synthesize(
        &mut self,
        problem: &Problem,
        examples: &ExampleSet,
        deadline: &Deadline,
    ) -> Result<Expr, SynthError> {
        // The bank's memoized evaluations capture this problem's globals; a
        // different problem (same component names, different semantics)
        // must not be served from them.
        let identity = problem.globals.identity();
        if self.problem_globals.as_ref().map(Env::identity) != Some(identity) {
            if self.problem_globals.is_some() {
                self.bank = Arc::new(TermBank::new());
            }
            self.problem_globals = Some(problem.globals.clone());
        }
        let engine = Engine::new(problem, self.config.clone());
        engine.synthesize_with_bank(&self.bank, examples, deadline)
    }

    fn term_bank_stats(&self) -> TermBankStats {
        self.bank.stats()
    }

    fn adopt_bank(&mut self, bank: Arc<TermBank>, globals: &Env) {
        self.bank = bank;
        self.problem_globals = Some(globals.clone());
    }

    fn shared_bank(&self) -> Option<Arc<TermBank>> {
        Some(Arc::clone(&self.bank))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hanoi_lang::value::Value;

    const NAT_COUNTER: &str = r#"
        type nat = O | S of nat

        let rec even (n : nat) : bool =
          match n with
          | O -> True
          | S m ->
              match m with
              | O -> False
              | S k -> even k
              end
          end

        interface COUNTER = sig
          type t
          val zero : t
          val incr2 : t -> t
          val is_zero : t -> bool
        end

        module EvenCounter : COUNTER = struct
          type t = nat
          let zero : t = O
          let incr2 (c : t) : t = S (S c)
          let is_zero (c : t) : bool =
            match c with
            | O -> True
            | S m -> False
            end
        end

        spec (c : t) = not (is_zero (incr2 c))
    "#;

    #[test]
    fn synthesizes_an_evenness_style_separator() {
        let problem = Problem::from_source(NAT_COUNTER).unwrap();
        let mut synth = MythSynth::new();
        assert_eq!(synth.name(), "myth");
        // Positives: even naturals (constructible); negatives: odd ones.
        let examples = ExampleSet::from_sets(
            [Value::nat(0), Value::nat(2), Value::nat(4)],
            [Value::nat(1), Value::nat(3), Value::nat(5)],
        )
        .unwrap();
        let (examples, _) = examples.trace_completed(&problem.tyenv, problem.concrete_type());
        let result = synth
            .synthesize(&problem, &examples, &Deadline::none())
            .unwrap();
        problem.typecheck_invariant(&result).unwrap();
        for (value, expected) in examples.labeled() {
            assert_eq!(
                problem.eval_predicate(&result, &value).unwrap(),
                expected,
                "on {value} with candidate {result}"
            );
        }
    }

    #[test]
    fn the_bank_is_scoped_to_one_problem() {
        // Two problems with the SAME operation name but opposite semantics:
        // a synthesizer reused across them must not serve the first
        // problem's memoized `is_zero` evaluations to the second.
        let problem_a = Problem::from_source(NAT_COUNTER).unwrap();
        let inverted = NAT_COUNTER.replace(
            "| O -> True\n            | S m -> False",
            "| O -> False\n            | S m -> True",
        );
        assert_ne!(inverted, NAT_COUNTER, "replacement must apply");
        let problem_b = Problem::from_source(&inverted).unwrap();

        let examples = ExampleSet::from_sets([Value::nat(0), Value::nat(2)], [Value::nat(1)])
            .unwrap()
            .trace_completed(&problem_a.tyenv, problem_a.concrete_type())
            .0;

        let mut reused = MythSynth::with_config(SearchConfig::quick());
        let _ = reused
            .synthesize(&problem_a, &examples, &Deadline::none())
            .unwrap();
        let stale_stats = reused.term_bank_stats();
        assert!(stale_stats.sessions > 0);
        let crossed = reused
            .synthesize(&problem_b, &examples, &Deadline::none())
            .unwrap();
        // The bank was swapped for a fresh one, so the result matches a
        // synthesizer that only ever saw problem B.
        let mut fresh = MythSynth::with_config(SearchConfig::quick());
        let expected = fresh
            .synthesize(&problem_b, &examples, &Deadline::none())
            .unwrap();
        assert_eq!(crossed, expected);
        assert_eq!(reused.term_bank_stats().sessions, 1);
    }

    #[test]
    fn respects_the_synth_contract_on_empty_examples() {
        let problem = Problem::from_source(NAT_COUNTER).unwrap();
        let mut synth = MythSynth::with_config(SearchConfig::quick());
        let result = synth
            .synthesize(&problem, &ExampleSet::new(), &Deadline::none())
            .unwrap();
        problem.typecheck_invariant(&result).unwrap();
    }
}
