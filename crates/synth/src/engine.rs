//! The shared type- and example-directed search engine.
//!
//! Both synthesizers ([`crate::MythSynth`] and [`crate::FoldSynth`]) are thin
//! wrappers around this engine, which mirrors the structure of Myth \[19\]:
//!
//! 1. **E-guessing** — enumerate expressions bottom-up by size, pruning by
//!    *observational equivalence* (two terms that evaluate identically on
//!    every example world are interchangeable, so only the first is kept),
//!    and return the first boolean term whose behaviour matches the examples;
//! 2. **match refinement** — if guessing fails, split on a scrutinee variable
//!    of algebraic type, partition the example worlds by head constructor and
//!    recurse into each arm with the constructor fields in scope;
//! 3. **structural recursion** — inside an arm, the predicate being
//!    synthesized may be applied to pattern-bound variables of the
//!    representation type (which are strict subvalues of the argument); its
//!    behaviour during search is given by the example table itself, which is
//!    why the caller closes the examples under subvalues first
//!    ("trace completeness", §4.3).
//!
//! The engine finishes by assembling a recursive function, re-checking it
//! against the examples with *real* recursion, and returning it only if it
//! still separates them — this preserves the `Synth` soundness contract even
//! where trace completeness was imperfect.
//!
//! # Incremental, parallel guessing
//!
//! Guessing is backed by a persistent [`TermBank`] (see [`crate::bank`]):
//!
//! * the expensive signature cells — interpreter runs of component
//!   applications — are memoized in the bank by `(component, argument
//!   values)`, so a CEGIS iteration that adds one counterexample only pays
//!   for that example's *column* of the signature matrix;
//! * component-application batches (one `compositions` split × cartesian
//!   product of argument layers) are evaluated through
//!   [`TermBank::apply_batch`] — one bank-lock round-trip per batch — and
//!   chunked across [`hanoi_verifier::parallel::par_map`] workers, with
//!   results merged back in enumeration order: a parallel guess returns
//!   byte-identical predicates to a serial one;
//! * boolean signature rows are packed `u64` bitset lanes
//!   ([`crate::bank::SigMatrix`]), so deduplication, target matching and the
//!   boolean connectives are word-parallel integer operations; rows over
//!   non-boolean types remain interned-id rows, and the old-column
//!   projection (either form) detects equivalence classes that a freshly
//!   appended column has split;
//! * whole guess outcomes are memoized in the bank per `(problem, search
//!   limits, context, worlds, size)` digest — see `Engine::guess` for the
//!   exact key — so repeated guesses across schedule entries and CEGIS
//!   iterations (e.g. match arms whose worlds a new counterexample did not
//!   reach) replay instantly and report identical counters;
//! * component closures, candidate predicates and the examples-consistency
//!   re-check all run on the interpreter's slot-resolved fast path
//!   ([`hanoi_lang::resolve`]).

use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Mutex, OnceLock};

use hanoi_abstraction::Problem;
use hanoi_lang::ast::{Expr, MatchArm, Pattern};
use hanoi_lang::digest::{Digest, DigestBuilder};
use hanoi_lang::eval::Fuel;
use hanoi_lang::resolve::{resolve, resolve_closure_value};
use hanoi_lang::symbol::Symbol;
use hanoi_lang::types::{Type, TypeEnv};
use hanoi_lang::util::Deadline;
use hanoi_lang::value::Value;
use hanoi_verifier::parallel::{effective_workers, par_map};

use crate::bank::{bool_id, GuessMemo, IdHashBuilder, OldSig, Sig, SigMatrix, TermBank};
use crate::error::SynthError;
use crate::examples::ExampleSet;

/// The name bound to the predicate being synthesized inside its own body.
pub const REC_NAME: &str = "inv";
/// The name of the predicate's argument.
pub const ARG_NAME: &str = "x";

/// Minimum component-application batch size worth fanning out to the scoped
/// thread pool.  `par_map` spawns and joins fresh OS threads per call (tens
/// of microseconds), and a warm-bank batch cell costs ~0.1µs, so small
/// batches — the overwhelmingly common case at small term sizes — are
/// evaluated inline.
const PAR_BATCH_MIN: usize = 64;

/// An additional component made available to the search (used by
/// [`crate::FoldSynth`] for the auxiliary catamorphisms it synthesizes
/// up front).
#[derive(Debug, Clone)]
pub struct ExtraComponent {
    /// Name the generated terms refer to.
    pub name: Symbol,
    /// The component's (first-order) type.
    pub ty: Type,
    /// Its evaluated closure, used to compute term signatures.
    pub value: Value,
    /// Its definition, used to close over the component in the final result
    /// (`let name = definition in …`).
    pub definition: Expr,
    /// Whether the component is a linear-arithmetic atom
    /// ([`crate::arith::components`]) — its applications count toward the
    /// [`crate::bank::TermBankStats::arith_atoms`] statistic.
    pub arith: bool,
}

/// Search limits and schedule.
#[derive(Debug, Clone)]
pub struct SearchConfig {
    /// Successive `(match depth, maximum guess size)` attempts, cheapest
    /// first.  The search restarts with the next entry whenever the current
    /// one fails.
    pub schedule: Vec<(usize, usize)>,
    /// Cap on the number of observationally distinct terms kept per type and
    /// size (guards against pathological blow-up).
    pub max_terms_per_layer: usize,
    /// Fuel per signature evaluation.
    pub fuel: u64,
    /// Whether the predicate may call itself on pattern-bound subvalues.
    pub allow_recursion: bool,
    /// Extra components (beyond the problem's prelude and module operations).
    pub extra_components: Vec<ExtraComponent>,
    /// Worker threads for per-size layer construction.  `None` (the default)
    /// *inherits* the engine-wide knob when the search is driver-constructed
    /// (`hanoi::InferenceContext::make_synthesizer` fills it in) and is
    /// serial otherwise; `Some(n)` takes precedence over the engine-wide
    /// knob — `Some(1)` forces serial, `Some(0)` uses one worker per
    /// available core, any other value is taken literally.  The full
    /// contract (and the outcome-identity guarantee) is documented once, on
    /// `EngineConfig::parallelism` in the `hanoi` core crate.
    pub parallelism: Option<usize>,
    /// Whether boolean signature rows use the packed `u64` bitset lanes
    /// ([`crate::bank::SigMatrix`]).  `false` keeps every row in the
    /// per-cell interned-id representation — a strictly slower path kept as
    /// a test oracle: outcomes and enumeration counters are identical either
    /// way, pinned by `tests/synth_incremental_equivalence.rs`.
    pub use_bitset_rows: bool,
    /// Machine-integer literals seeded as size-1 terms (the numeric
    /// workload's constant pool, usually [`crate::arith::literal_pool`]).
    /// Empty (the default) leaves the search exactly as it was before the
    /// numeric family existed; literals only enter a guess at all when `int`
    /// is among its types of interest.
    pub int_literals: Vec<i64>,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            schedule: vec![(0, 5), (1, 7), (1, 9), (2, 9), (2, 11), (3, 11)],
            max_terms_per_layer: 3000,
            fuel: 20_000,
            allow_recursion: true,
            extra_components: Vec::new(),
            parallelism: None,
            use_bitset_rows: true,
            int_literals: Vec::new(),
        }
    }
}

impl SearchConfig {
    /// A cheaper schedule for unit tests and quick runs.
    pub fn quick() -> Self {
        SearchConfig {
            schedule: vec![(0, 5), (1, 7), (1, 9), (2, 9)],
            max_terms_per_layer: 1500,
            ..SearchConfig::default()
        }
    }
}

/// One function-like producer available to term generation.
#[derive(Debug, Clone)]
struct FuncComponent {
    name: Symbol,
    /// The name interned in the session bank (evaluation-cache key).
    bank_id: u32,
    arg_tys: Vec<Type>,
    ret_ty: Type,
    value: Value,
    /// Applications count as arithmetic atoms (see [`ExtraComponent::arith`]).
    arith: bool,
}

/// A term kept in the enumeration pool: its syntax and its evaluation
/// signature across the example worlds (packed bitset lanes for boolean
/// rows, interned-id rows otherwise — see [`Sig`]).
#[derive(Debug, Clone)]
struct PoolTerm {
    expr: Expr,
    sig: Sig,
}

/// The example worlds for one search node: per world, the values of every
/// in-scope variable (parallel to the context) with their interned ids, the
/// expected output, and whether this world's signature column is new to the
/// session's term bank.
#[derive(Debug, Clone)]
struct WorldRow {
    values: Vec<Value>,
    /// `values` interned in the session bank, index-parallel.
    ids: Vec<u32>,
    expected: bool,
    is_new: bool,
}

/// The search engine.
#[derive(Debug, Clone)]
pub struct Engine<'p> {
    problem: &'p Problem,
    config: SearchConfig,
}

impl<'p> Engine<'p> {
    /// Creates an engine for `problem` with the given configuration.
    pub fn new(problem: &'p Problem, config: SearchConfig) -> Self {
        Engine { problem, config }
    }

    /// The configuration in effect.
    pub fn config(&self) -> &SearchConfig {
        &self.config
    }

    /// Synthesizes a predicate of type `τc -> bool` consistent with
    /// `examples` (which the caller should already have trace-completed),
    /// with a throwaway term bank — the rebuild-per-call baseline.
    pub fn synthesize(
        &self,
        examples: &ExampleSet,
        deadline: &Deadline,
    ) -> Result<Expr, SynthError> {
        self.synthesize_with_bank(&TermBank::new(), examples, deadline)
    }

    /// [`Engine::synthesize`] against a persistent [`TermBank`]: signature
    /// evaluations already paid for by earlier calls (previous CEGIS
    /// iterations) are reused, so only the new examples' signature columns
    /// reach the interpreter.  Results are identical to a fresh-bank call.
    pub fn synthesize_with_bank(
        &self,
        bank: &TermBank,
        examples: &ExampleSet,
        deadline: &Deadline,
    ) -> Result<Expr, SynthError> {
        let concrete = self.problem.concrete_type().clone();
        let labeled = examples.labeled();
        let columns = bank.begin_session(&labeled);
        // Labels keyed by interned id: recursive-call signatures probe this
        // once per world without rehashing the value.
        let example_table: HashMap<u32, bool> = columns
            .iter()
            .zip(&labeled)
            .map(|((id, _), (_, expected))| (*id, *expected))
            .collect();

        let ctx = vec![(Symbol::new(ARG_NAME), concrete.clone())];
        let worlds: Vec<WorldRow> = labeled
            .iter()
            .zip(&columns)
            .map(|((v, expected), (id, is_new))| WorldRow {
                values: vec![v.clone()],
                ids: vec![*id],
                expected: *expected,
                is_new: *is_new,
            })
            .collect();

        let components = self.function_components(bank);
        let session = self.session_digest(&concrete, &components);
        let mut counter = 0usize;

        for &(match_depth, guess_size) in &self.config.schedule {
            if deadline.expired() {
                return Err(SynthError::Timeout);
            }
            let body = self.synth_node(
                bank,
                &ctx,
                &worlds,
                match_depth,
                guess_size,
                &components,
                &example_table,
                &session,
                &mut counter,
                deadline,
                &mut HashSet::new(),
            )?;
            if let Some(body) = body {
                let assembled = self.assemble(&concrete, body);
                if self.consistent_with_examples(&assembled, examples) {
                    return Ok(assembled);
                }
            }
        }
        Err(SynthError::NoCandidate)
    }

    /// Wraps a synthesized body into a full predicate, using recursion only
    /// when the body mentions it, and closing over any extra components it
    /// uses.
    fn assemble(&self, concrete: &Type, body: Expr) -> Expr {
        let free = body.free_vars();
        let core = if free.contains(&Symbol::new(REC_NAME)) {
            Expr::fix(REC_NAME, ARG_NAME, concrete.clone(), Type::bool(), body)
        } else {
            Expr::lambda(ARG_NAME, concrete.clone(), body)
        };
        // Close over extra components (innermost last so earlier helpers are
        // visible to later ones).
        let mut wrapped = core;
        for extra in self.config.extra_components.iter().rev() {
            if wrapped.free_vars().contains(&extra.name) {
                wrapped = Expr::Let(
                    extra.name.clone(),
                    Box::new(extra.definition.clone()),
                    Box::new(wrapped),
                );
            }
        }
        wrapped
    }

    /// Checks an assembled predicate against the examples using real
    /// recursion, on the slot-resolved fast path (fuel-identical to the
    /// name-based walk).
    fn consistent_with_examples(&self, predicate: &Expr, examples: &ExampleSet) -> bool {
        let resolved = resolve(predicate);
        examples.labeled().iter().all(|(value, expected)| {
            self.problem
                .eval_predicate_resolved_with_fuel(
                    &resolved,
                    value,
                    &mut Fuel::new(self.config.fuel * 10),
                )
                .map(|actual| actual == *expected)
                .unwrap_or(false)
        })
    }

    /// The function-like components visible to term generation, with their
    /// closures slot-resolved so signature evaluation runs on the
    /// interpreter's indexed fast path, and their names interned in the
    /// session bank.
    fn function_components(&self, bank: &TermBank) -> Vec<FuncComponent> {
        let mut out = Vec::new();
        for (name, ty) in self.problem.synthesis_components() {
            let (args, ret) = ty.uncurry();
            if args.is_empty()
                || !ty.is_first_order()
                || !ret.is_zero_order()
                || args.iter().any(|a| !a.is_zero_order())
            {
                continue;
            }
            let Some(value) = self.problem.globals.lookup(&name) else {
                continue;
            };
            out.push(FuncComponent {
                bank_id: bank.name_id(&name),
                name,
                arg_tys: args.into_iter().cloned().collect(),
                ret_ty: ret.clone(),
                value: resolve_closure_value(value),
                arith: false,
            });
        }
        for extra in &self.config.extra_components {
            let (args, ret) = extra.ty.uncurry();
            if args.is_empty() {
                continue;
            }
            out.push(FuncComponent {
                name: extra.name.clone(),
                bank_id: bank.name_id(&extra.name),
                arg_tys: args.into_iter().cloned().collect(),
                ret_ty: ret.clone(),
                value: resolve_closure_value(&extra.value),
                arith: extra.arith,
            });
        }
        out
    }

    /// The session-constant half of the guess-memo key: everything a guess
    /// outcome depends on that does not vary between guesses of one
    /// `synthesize` call — the problem (structural fingerprint, which covers
    /// component semantics and the type environment), the search limits that
    /// shape enumeration, and the component roster with its types.
    fn session_digest(&self, concrete: &Type, components: &[FuncComponent]) -> Digest {
        let mut b = DigestBuilder::new("guess-session");
        b.add_digest(self.problem.fingerprint());
        b.add_digest(Digest::of_type(concrete));
        b.add_u64(self.config.fuel);
        b.add_u64(self.config.max_terms_per_layer as u64);
        b.add_u64(self.config.allow_recursion as u64);
        b.add_u64(components.len() as u64);
        for component in components {
            b.add_str(component.name.as_str());
            b.add_u64(component.arg_tys.len() as u64);
            for ty in &component.arg_tys {
                b.add_digest(Digest::of_type(ty));
            }
            b.add_digest(Digest::of_type(&component.ret_ty));
        }
        b.add_u64(self.config.extra_components.len() as u64);
        for extra in &self.config.extra_components {
            b.add_str(extra.name.as_str());
            b.add_digest(Digest::of_expr(&extra.definition));
        }
        b.add_u64(self.config.int_literals.len() as u64);
        for &n in &self.config.int_literals {
            b.add_u64(n as u64);
        }
        b.finish()
    }

    /// The full guess-memo key for one guess: the session digest plus the
    /// per-node inputs — context (variable names matter: the memoized
    /// expression refers to them; the deterministic `x{counter}` naming
    /// reproduces them), worlds (expected label and the interned id of every
    /// in-scope value — ids are bank-local and reproduced positionally by a
    /// snapshot restore, so persisted keys stay valid), the example-table
    /// labels recursion reads for concrete-typed non-root slots, and the
    /// size budget.  The `is_new` world flags are deliberately *not* keyed:
    /// they steer only the split statistics, not the outcome or term count.
    fn guess_key(
        &self,
        session: &Digest,
        ctx: &[(Symbol, Type)],
        worlds: &[WorldRow],
        max_size: usize,
        example_table: &HashMap<u32, bool>,
    ) -> Digest {
        let concrete = self.problem.concrete_type();
        let mut b = DigestBuilder::new("guess-memo");
        b.add_digest(*session);
        b.add_u64(max_size as u64);
        b.add_u64(ctx.len() as u64);
        for (name, ty) in ctx {
            b.add_str(name.as_str());
            b.add_digest(Digest::of_type(ty));
        }
        b.add_u64(worlds.len() as u64);
        for world in worlds {
            b.add_u64(world.expected as u64);
            for &id in &world.ids {
                b.add_u64(id as u64);
            }
            // The labels recursive-call signatures would read (`inv v` on
            // non-root concrete-typed slots).
            for (index, (_, ty)) in ctx.iter().enumerate().skip(1) {
                if ty == concrete {
                    b.add_u64(match example_table.get(&world.ids[index]) {
                        None => 0,
                        Some(false) => 1,
                        Some(true) => 2,
                    });
                }
            }
        }
        b.finish()
    }

    /// The 0-order types the term pool is stratified by.
    fn types_of_interest(&self, ctx: &[(Symbol, Type)], components: &[FuncComponent]) -> Vec<Type> {
        let mut types = vec![Type::bool(), self.problem.concrete_type().clone()];
        for (_, ty) in ctx {
            types.push(ty.clone());
        }
        for c in components {
            types.push(c.ret_ty.clone());
            types.extend(c.arg_tys.iter().cloned());
        }
        let mut seen = HashSet::new();
        types.retain(|t| t.is_zero_order() && seen.insert(t.clone()));
        types
    }

    /// One node of the refinement search: guess, then (if allowed) match.
    #[allow(clippy::too_many_arguments)]
    fn synth_node(
        &self,
        bank: &TermBank,
        ctx: &[(Symbol, Type)],
        worlds: &[WorldRow],
        match_depth: usize,
        guess_size: usize,
        components: &[FuncComponent],
        example_table: &HashMap<u32, bool>,
        session: &Digest,
        counter: &mut usize,
        deadline: &Deadline,
        matched_vars: &mut HashSet<Symbol>,
    ) -> Result<Option<Expr>, SynthError> {
        if deadline.expired() {
            return Err(SynthError::Timeout);
        }
        if worlds.is_empty() {
            return Ok(Some(Expr::tru()));
        }
        if let Some(found) = self.guess(
            bank,
            ctx,
            worlds,
            guess_size,
            components,
            example_table,
            session,
            deadline,
        )? {
            return Ok(Some(found));
        }
        if match_depth == 0 {
            return Ok(None);
        }

        // Try splitting on each in-scope variable of algebraic type, most
        // recently bound first.
        let tyenv: &TypeEnv = &self.problem.tyenv;
        for index in (0..ctx.len()).rev() {
            let (var, var_ty) = &ctx[index];
            if matched_vars.contains(var) {
                continue;
            }
            let Type::Named(type_name) = var_ty else {
                continue;
            };
            let Some(decl) = tyenv.lookup(type_name) else {
                continue;
            };
            if decl.ctors.len() < 2 && decl.ctors.iter().all(|c| c.args.is_empty()) {
                continue;
            }
            matched_vars.insert(var.clone());
            let mut arms = Vec::new();
            let mut all_ok = true;
            for ctor in &decl.ctors {
                // Fresh names for the constructor fields.
                let fields: Vec<(Symbol, Type)> = ctor
                    .args
                    .iter()
                    .map(|ty| {
                        *counter += 1;
                        (Symbol::new(&format!("x{counter}")), ty.clone())
                    })
                    .collect();
                let mut arm_ctx = ctx.to_vec();
                arm_ctx.extend(fields.clone());
                let arm_worlds: Vec<WorldRow> = worlds
                    .iter()
                    .filter_map(|row| match &row.values[index] {
                        Value::Ctor(c, args) if c == &ctor.name => {
                            let mut values = row.values.clone();
                            let mut ids = row.ids.clone();
                            for arg in args.iter() {
                                ids.push(bank.intern(arg));
                                values.push(arg.clone());
                            }
                            Some(WorldRow {
                                values,
                                ids,
                                expected: row.expected,
                                is_new: row.is_new,
                            })
                        }
                        _ => None,
                    })
                    .collect();
                let body = self.synth_node(
                    bank,
                    &arm_ctx,
                    &arm_worlds,
                    match_depth - 1,
                    guess_size,
                    components,
                    example_table,
                    session,
                    counter,
                    deadline,
                    matched_vars,
                )?;
                match body {
                    Some(body) => {
                        let pattern = Pattern::Ctor(
                            ctor.name.clone(),
                            fields
                                .iter()
                                .map(|(name, _)| Pattern::Var(name.clone()))
                                .collect(),
                        );
                        arms.push(MatchArm::new(pattern, body));
                    }
                    None => {
                        all_ok = false;
                        break;
                    }
                }
            }
            matched_vars.remove(var);
            if all_ok {
                return Ok(Some(Expr::Match(Box::new(Expr::Var(var.clone())), arms)));
            }
        }
        Ok(None)
    }

    /// Bottom-up, observational-equivalence-pruned term guessing, with
    /// whole-outcome memoization, bank-memoized signature evaluation and
    /// parallel per-size layer construction.
    ///
    /// The memo is sound because a guess outcome (and its term/split
    /// counters) is a deterministic function of exactly what
    /// [`Engine::guess_key`] digests: enumeration order is fixed, signature
    /// cells are pure functions of `(component, argument ids, fuel)`, and
    /// the bank's evaluation memo is semantically transparent.  Replaying
    /// the stored counters on a hit therefore reports the numbers a
    /// recomputation would have produced.  Timeouts are never memoized.
    #[allow(clippy::too_many_arguments)]
    fn guess(
        &self,
        bank: &TermBank,
        ctx: &[(Symbol, Type)],
        worlds: &[WorldRow],
        max_size: usize,
        components: &[FuncComponent],
        example_table: &HashMap<u32, bool>,
        session: &Digest,
        deadline: &Deadline,
    ) -> Result<Option<Expr>, SynthError> {
        let key = self.guess_key(session, ctx, worlds, max_size, example_table);
        if let Some(memo) = bank.guess_memo_get(key) {
            bank.record_guess(memo.terms, memo.splits, 0, memo.arith);
            return Ok(memo.result);
        }
        let types = self.types_of_interest(ctx, components);
        let matrix = SigMatrix::new(worlds.len(), self.config.use_bitset_rows);
        let target = matrix.pack(
            true,
            worlds.iter().map(|w| Some(bool_id(w.expected))).collect(),
        );
        let old_mask: Vec<bool> = worlds.iter().map(|w| !w.is_new).collect();
        let mut pool = Pool::new(&types, max_size);
        let mut sieve = Sieve::new(
            &types,
            &matrix,
            target,
            old_mask,
            self.config.max_terms_per_layer,
        );
        let result = self.guess_into(
            bank,
            ctx,
            worlds,
            max_size,
            components,
            example_table,
            deadline,
            &matrix,
            &mut pool,
            &mut sieve,
        );
        bank.record_guess(sieve.terms, sieve.splits, matrix.ops(), sieve.arith);
        result.map(|()| {
            bank.guess_memo_put(
                key,
                GuessMemo {
                    result: sieve.matched.clone(),
                    terms: sieve.terms,
                    splits: sieve.splits,
                    arith: sieve.arith,
                },
            );
            sieve.matched
        })
    }

    /// The generation loop of [`Engine::guess`], writing into `pool`/`sieve`.
    #[allow(clippy::too_many_arguments)]
    fn guess_into(
        &self,
        bank: &TermBank,
        ctx: &[(Symbol, Type)],
        worlds: &[WorldRow],
        max_size: usize,
        components: &[FuncComponent],
        example_table: &HashMap<u32, bool>,
        deadline: &Deadline,
        matrix: &SigMatrix,
        pool: &mut Pool,
        sieve: &mut Sieve,
    ) -> Result<(), SynthError> {
        let concrete = self.problem.concrete_type();
        let tyenv = &self.problem.tyenv;
        let evaluator = self.problem.evaluator();
        let bool_ty = Type::bool();
        let workers = effective_workers(self.config.parallelism.unwrap_or(1));
        // Iterate types in stratification order (HashMap iteration order is
        // nondeterministic; generation must not be).
        let types = sieve.type_order.clone();

        // Size 1: variables and nullary constructors.
        for (index, (name, ty)) in ctx.iter().enumerate() {
            let sig = matrix.pack(
                ty == &bool_ty,
                worlds.iter().map(|w| Some(w.ids[index])).collect(),
            );
            sieve.add(matrix, ty, sig, || Expr::Var(name.clone()));
        }
        for ty in &types {
            let Type::Named(type_name) = ty else { continue };
            let Some(decl) = tyenv.lookup(type_name) else {
                continue;
            };
            for ctor in &decl.ctors {
                if !ctor.args.is_empty() {
                    continue;
                }
                let id = bank.make_ctor(bank.name_id(&ctor.name), &ctor.name, &[]);
                let sig = matrix.pack(ty == &bool_ty, worlds.iter().map(|_| Some(id)).collect());
                sieve.add(matrix, ty, sig, || {
                    Expr::Ctor(ctor.name.clone(), Vec::new())
                });
            }
        }
        // Machine-integer literals (the numeric grammar's constant pool).
        // `Sieve::add_tagged` drops them silently — without touching any
        // counter — when `int` is not a type of interest to this guess.
        {
            let int_ty = Type::int();
            for &n in &self.config.int_literals {
                let id = bank.intern(&Value::int(n));
                let sig = matrix.pack(false, worlds.iter().map(|_| Some(id)).collect());
                sieve.add_tagged(matrix, &int_ty, sig, true, || Expr::Int(n));
            }
        }
        pool.freeze(sieve, 1);
        if sieve.matched.is_some() {
            return Ok(());
        }

        // Larger sizes.
        for size in 2..=max_size {
            if deadline.expired() {
                return Err(SynthError::Timeout);
            }

            // Recursive calls `inv v` on non-root context variables of the
            // concrete type (application of a unary function costs 3 nodes).
            if self.config.allow_recursion && size == 3 {
                for (index, (name, ty)) in ctx.iter().enumerate().skip(1) {
                    if ty != concrete {
                        continue;
                    }
                    let sig = matrix.pack(
                        true,
                        worlds
                            .iter()
                            .map(|w| example_table.get(&w.ids[index]).map(|b| bool_id(*b)))
                            .collect(),
                    );
                    sieve.add(matrix, &bool_ty, sig, || {
                        Expr::call(REC_NAME, [Expr::Var(name.clone())])
                    });
                }
            }

            // Saturated applications of function components: the one place
            // signature evaluation runs the interpreter.  Each
            // (component, size split) batch is answered by one
            // `TermBank::apply_batch` call — one lock round-trip per bank
            // table for the whole batch.  Parallel workers take contiguous
            // chunks of the choice list (one batch each, flattened back in
            // enumeration order), so parallel guessing stays deterministic
            // and workers stay off each other's locks.
            for component in components {
                let k = component.arg_tys.len();
                if size < 1 + 2 * k || !pool.has_type(&component.ret_ty) {
                    continue;
                }
                let boolean_ret = component.ret_ty == bool_ty;
                for split in compositions(size - 1 - k, k).iter() {
                    let Some(arg_layers) = pool.gather(&component.arg_tys, split) else {
                        continue;
                    };
                    let choices = cartesian_choices(&arg_layers);
                    let eval_chunk = |chunk: &[Vec<&PoolTerm>]| -> Vec<Sig> {
                        let width = worlds.len();
                        let mut probes = vec![0u32; chunk.len() * width * k];
                        let mut valid = vec![true; chunk.len() * width];
                        for (c, choice) in chunk.iter().enumerate() {
                            for w in 0..width {
                                let p = c * width + w;
                                for (slot, term) in choice.iter().enumerate() {
                                    match term.sig.cell(w) {
                                        Some(id) => probes[p * k + slot] = id,
                                        None => {
                                            valid[p] = false;
                                            break;
                                        }
                                    }
                                }
                            }
                        }
                        let results = bank.apply_batch(
                            &evaluator,
                            component.bank_id,
                            &component.value,
                            self.config.fuel,
                            k,
                            &probes,
                            &valid,
                        );
                        (0..chunk.len())
                            .map(|c| {
                                matrix
                                    .pack(boolean_ret, results[c * width..(c + 1) * width].to_vec())
                            })
                            .collect()
                    };
                    let rows: Vec<Sig> = if workers > 1 && choices.len() >= PAR_BATCH_MIN {
                        let chunk_len = choices.len().div_ceil(workers);
                        let chunks: Vec<&[Vec<&PoolTerm>]> = choices.chunks(chunk_len).collect();
                        par_map(&chunks, workers, |chunk| eval_chunk(chunk))
                            .into_iter()
                            .flatten()
                            .collect()
                    } else {
                        eval_chunk(&choices)
                    };
                    for (choice, sig) in choices.iter().zip(rows) {
                        sieve.add_tagged(matrix, &component.ret_ty, sig, component.arith, || {
                            Expr::apps(
                                Expr::Var(component.name.clone()),
                                choice.iter().map(|t| t.expr.clone()),
                            )
                        });
                    }
                    if sieve.matched.is_some() {
                        return Ok(());
                    }
                }
            }

            // Constructor applications at non-representation types (building
            // constants such as `S (S O)`), so numeric literals are reachable.
            for ty in &types {
                if ty == concrete {
                    continue;
                }
                let Type::Named(type_name) = ty else { continue };
                let Some(decl) = tyenv.lookup(type_name) else {
                    continue;
                };
                let ctors: Vec<(Symbol, Vec<Type>)> = decl
                    .ctors
                    .iter()
                    .map(|c| (c.name.clone(), c.args.clone()))
                    .collect();
                for (ctor_name, ctor_args) in ctors {
                    let k = ctor_args.len();
                    if k == 0 || size < 1 + k {
                        continue;
                    }
                    let ctor_id = bank.name_id(&ctor_name);
                    for split in compositions(size - 1, k).iter() {
                        let Some(arg_layers) = pool.gather(&ctor_args, split) else {
                            continue;
                        };
                        cartesian(&arg_layers, &mut |choice: &[&PoolTerm]| {
                            let mut arg_ids = vec![0u32; choice.len()];
                            let cells: Vec<Option<u32>> = (0..worlds.len())
                                .map(|w| {
                                    for (slot, term) in choice.iter().enumerate() {
                                        arg_ids[slot] = term.sig.cell(w)?;
                                    }
                                    Some(bank.make_ctor(ctor_id, &ctor_name, &arg_ids))
                                })
                                .collect();
                            let sig = matrix.pack(ty == &bool_ty, cells);
                            sieve.add(matrix, ty, sig, || {
                                Expr::Ctor(
                                    ctor_name.clone(),
                                    choice.iter().map(|t| t.expr.clone()).collect(),
                                )
                            });
                        });
                        if sieve.matched.is_some() {
                            return Ok(());
                        }
                    }
                }
            }

            // Structural equality between same-type terms.
            if size >= 3 {
                for ty in &types {
                    if ty == &bool_ty {
                        continue;
                    }
                    for split in compositions(size - 1, 2).iter() {
                        let lhs = pool.layer(ty, split[0]);
                        let rhs = pool.layer(ty, split[1]);
                        if lhs.is_empty() || rhs.is_empty() {
                            continue;
                        }
                        for a in lhs {
                            for b in rhs {
                                let sig = matrix.equality(&a.sig, &b.sig);
                                sieve.add(matrix, &bool_ty, sig, || {
                                    Expr::eq(a.expr.clone(), b.expr.clone())
                                });
                            }
                        }
                        if sieve.matched.is_some() {
                            return Ok(());
                        }
                    }
                }
            }

            // Boolean connectives: word-parallel on packed rows.
            if size >= 2 {
                for term in pool.layer(&bool_ty, size - 1) {
                    let sig = matrix.not(&term.sig);
                    sieve.add(matrix, &bool_ty, sig, || Expr::not(term.expr.clone()));
                }
            }
            if size >= 3 {
                for split in compositions(size - 1, 2).iter() {
                    let lhs = pool.layer(&bool_ty, split[0]);
                    let rhs = pool.layer(&bool_ty, split[1]);
                    for a in lhs {
                        for b in rhs {
                            for conj in [true, false] {
                                let sig = matrix.connective(&a.sig, &b.sig, conj);
                                sieve.add(matrix, &bool_ty, sig, || {
                                    if conj {
                                        Expr::and(a.expr.clone(), b.expr.clone())
                                    } else {
                                        Expr::or(a.expr.clone(), b.expr.clone())
                                    }
                                });
                            }
                        }
                    }
                    if sieve.matched.is_some() {
                        return Ok(());
                    }
                }
            }
            pool.freeze(sieve, size);
            if sieve.matched.is_some() {
                return Ok(());
            }
        }
        Ok(())
    }
}

/// The frozen layers of one guessing pass, stratified by type and size.
/// Layers below the size currently being generated are immutable, so reads
/// hand out slices (no snapshot clones) while the current size accumulates
/// in the [`Sieve`]'s staging area.
struct Pool {
    layers: HashMap<Type, Vec<Vec<PoolTerm>>>,
}

impl Pool {
    fn new(types: &[Type], max_size: usize) -> Pool {
        Pool {
            layers: types
                .iter()
                .map(|t| (t.clone(), vec![Vec::new(); max_size]))
                .collect(),
        }
    }

    fn has_type(&self, ty: &Type) -> bool {
        self.layers.contains_key(ty)
    }

    /// The terms of `ty` with exactly `size` nodes (empty slice if the type
    /// is not tracked).
    fn layer(&self, ty: &Type, size: usize) -> &[PoolTerm] {
        self.layers
            .get(ty)
            .and_then(|layers| layers.get(size - 1))
            .map_or(&[], Vec::as_slice)
    }

    /// The layer slices for an argument-type/size split, or `None` when a
    /// type is untracked or a layer is empty.
    fn gather<'a>(&'a self, tys: &[Type], split: &[usize]) -> Option<Vec<&'a [PoolTerm]>> {
        let mut out = Vec::with_capacity(tys.len());
        for (ty, &size) in tys.iter().zip(split) {
            let layer = self.layer(ty, size);
            if layer.is_empty() {
                return None;
            }
            out.push(layer);
        }
        Some(out)
    }

    /// Moves the sieve's staged terms into this pool as the (now immutable)
    /// layer for `size`.
    fn freeze(&mut self, sieve: &mut Sieve, size: usize) {
        for (ty, staged) in sieve.staging.iter_mut() {
            if let Some(layers) = self.layers.get_mut(ty) {
                if let Some(layer) = layers.get_mut(size - 1) {
                    *layer = std::mem::take(staged);
                }
            }
        }
    }
}

/// The deduplication and match-detection state of one guessing pass.
///
/// Signature rows arrive in canonical [`Sig`] form: packed `u64` bitset
/// lanes for boolean rows (dedup hashing and target matching are then a few
/// word operations per row), interned-id rows otherwise.  When the pass has
/// both old and new signature columns (an incremental CEGIS iteration),
/// each kept term's row is also projected onto the old columns alone: a
/// projection collision with full-row distinctness means a
/// previously-merged equivalence class has been split by the new columns,
/// which is counted for the session statistics.
struct Sieve {
    /// Insertion-ordered stratification types (generation must not depend on
    /// `HashMap` iteration order).
    type_order: Vec<Type>,
    /// Terms kept at the size currently being generated.
    staging: HashMap<Type, Vec<PoolTerm>>,
    /// Signature rows of every kept term, per type.
    seen: HashMap<Type, HashSet<Sig, IdHashBuilder>>,
    /// Old-column projections of kept rows (only tracked incrementally).
    seen_old: HashMap<Type, HashSet<OldSig, IdHashBuilder>>,
    /// Per world: `true` when the column was already known to the bank.
    old_mask: Vec<bool>,
    /// `old_mask` as bitset lane words (the packed projection mask).
    old_mask_words: Box<[u64]>,
    /// Whether this pass mixes old and new columns.
    track_splits: bool,
    target: Sig,
    bool_ty: Type,
    matched: Option<Expr>,
    max_per_layer: usize,
    terms: u64,
    splits: u64,
    /// Arithmetic atoms considered (integer literals and applications of
    /// arith-tagged components).
    arith: u64,
}

impl Sieve {
    fn new(
        types: &[Type],
        matrix: &SigMatrix,
        target: Sig,
        old_mask: Vec<bool>,
        max_per_layer: usize,
    ) -> Sieve {
        let track_splits = old_mask.iter().any(|&o| o) && old_mask.iter().any(|&o| !o);
        Sieve {
            type_order: types.to_vec(),
            staging: types.iter().map(|t| (t.clone(), Vec::new())).collect(),
            seen: types
                .iter()
                .map(|t| (t.clone(), HashSet::default()))
                .collect(),
            seen_old: types
                .iter()
                .map(|t| (t.clone(), HashSet::default()))
                .collect(),
            old_mask_words: matrix.mask_words(&old_mask),
            old_mask,
            track_splits,
            target,
            bool_ty: Type::bool(),
            matched: None,
            max_per_layer,
            terms: 0,
            splits: 0,
            arith: 0,
        }
    }

    /// Considers one candidate term: deduplicates by signature, records a
    /// match when a boolean term hits the target, stages the term otherwise.
    /// `make_expr` is only invoked for terms that survive deduplication, so
    /// pruned duplicates never pay for syntax construction.
    fn add(&mut self, matrix: &SigMatrix, ty: &Type, sig: Sig, make_expr: impl FnOnce() -> Expr) {
        self.add_tagged(matrix, ty, sig, false, make_expr);
    }

    /// [`Sieve::add`] with an arithmetic-atom tag: `arith` terms that count
    /// toward enumeration also bump the arith counter (integer literals and
    /// applications of arith-tagged components).
    fn add_tagged(
        &mut self,
        matrix: &SigMatrix,
        ty: &Type,
        sig: Sig,
        arith: bool,
        make_expr: impl FnOnce() -> Expr,
    ) {
        if self.matched.is_some() {
            return;
        }
        let Some(staged) = self.staging.get(ty) else {
            return;
        };
        self.terms += 1;
        if arith {
            self.arith += 1;
        }
        if staged.len() >= self.max_per_layer {
            return;
        }
        if !self
            .seen
            .get_mut(ty)
            .expect("seen table mirrors staging table")
            .insert(sig.clone())
        {
            return;
        }
        if self.track_splits {
            let projection = matrix.project(&sig, &self.old_mask_words, &self.old_mask);
            if !self
                .seen_old
                .get_mut(ty)
                .expect("seen_old table mirrors staging table")
                .insert(projection)
            {
                self.splits += 1;
            }
        }
        if ty == &self.bool_ty && matrix.matches(&sig, &self.target) {
            self.matched = Some(make_expr());
            return;
        }
        self.staging
            .get_mut(ty)
            .expect("staging entry checked above")
            .push(PoolTerm {
                expr: make_expr(),
                sig,
            });
    }
}

/// All ways to write `total` as an ordered sum of `parts` positive integers,
/// memoized process-wide (the same handful of `(total, parts)` keys is
/// requested for every component × size pair of every guess).
fn compositions(total: usize, parts: usize) -> Arc<Vec<Vec<usize>>> {
    fn rec(total: usize, parts: usize, current: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if parts == 1 {
            current.push(total);
            out.push(current.clone());
            current.pop();
            return;
        }
        for first in 1..=(total - (parts - 1)) {
            current.push(first);
            rec(total - first, parts - 1, current, out);
            current.pop();
        }
    }
    type Memo = Mutex<HashMap<(usize, usize), Arc<Vec<Vec<usize>>>>>;
    static MEMO: OnceLock<Memo> = OnceLock::new();
    let memo = MEMO.get_or_init(Memo::default);
    if let Some(cached) = memo.lock().unwrap().get(&(total, parts)) {
        return Arc::clone(cached);
    }
    let mut out = Vec::new();
    if parts > 0 && total >= parts {
        rec(total, parts, &mut Vec::with_capacity(parts), &mut out);
    }
    let computed = Arc::new(out);
    memo.lock()
        .unwrap()
        .insert((total, parts), Arc::clone(&computed));
    computed
}

/// Visits the cartesian product of term slices.
fn cartesian<'a>(groups: &[&'a [PoolTerm]], visit: &mut impl FnMut(&[&'a PoolTerm])) {
    fn rec<'a>(
        groups: &[&'a [PoolTerm]],
        index: usize,
        current: &mut Vec<&'a PoolTerm>,
        visit: &mut impl FnMut(&[&'a PoolTerm]),
    ) {
        if index == groups.len() {
            visit(current);
            return;
        }
        for term in groups[index] {
            current.push(term);
            rec(groups, index + 1, current, visit);
            current.pop();
        }
    }
    if groups.iter().any(|g| g.is_empty()) {
        return;
    }
    rec(groups, 0, &mut Vec::new(), visit);
}

/// Materializes the cartesian product of term slices in visitation order
/// (the shape `par_map` batches over).
fn cartesian_choices<'a>(groups: &[&'a [PoolTerm]]) -> Vec<Vec<&'a PoolTerm>> {
    let mut out = Vec::new();
    cartesian(groups, &mut |choice| out.push(choice.to_vec()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const LIST_SET: &str = r#"
        type nat = O | S of nat
        type list = Nil | Cons of nat * list

        interface SET = sig
          type t
          val empty : t
          val insert : t -> nat -> t
          val delete : t -> nat -> t
          val lookup : t -> nat -> bool
        end

        module ListSet : SET = struct
          type t = list
          let empty : t = Nil
          let rec lookup (l : t) (x : nat) : bool =
            match l with
            | Nil -> False
            | Cons (hd, tl) -> hd == x || lookup tl x
            end
          let insert (l : t) (x : nat) : t =
            if lookup l x then l else Cons (x, l)
          let rec delete (l : t) (x : nat) : t =
            match l with
            | Nil -> Nil
            | Cons (hd, tl) -> if hd == x then tl else Cons (hd, delete tl x)
            end
        end

        spec (s : t) (i : nat) =
          not (lookup empty i) && lookup (insert s i) i && not (lookup (delete s i) i)
    "#;

    fn problem() -> Problem {
        Problem::from_source(LIST_SET).unwrap()
    }

    fn trace_completed(problem: &Problem, examples: ExampleSet) -> ExampleSet {
        examples
            .trace_completed(&problem.tyenv, problem.concrete_type())
            .0
    }

    #[test]
    fn empty_examples_give_the_trivial_predicate() {
        let problem = problem();
        let engine = Engine::new(&problem, SearchConfig::quick());
        let result = engine
            .synthesize(&ExampleSet::new(), &Deadline::none())
            .unwrap();
        assert!(problem
            .eval_predicate(&result, &Value::nat_list(&[1, 1]))
            .unwrap());
        assert!(problem
            .eval_predicate(&result, &Value::nat_list(&[]))
            .unwrap());
    }

    #[test]
    fn simple_separations_are_found_without_recursion() {
        let problem = problem();
        let engine = Engine::new(&problem, SearchConfig::quick());
        // Positives: [] and [2]; negative: [0].  A simple non-recursive
        // predicate such as `not (lookup x 0)` separates these.
        let examples = ExampleSet::from_sets(
            [Value::nat_list(&[]), Value::nat_list(&[2])],
            [Value::nat_list(&[0])],
        )
        .unwrap();
        let examples = trace_completed(&problem, examples);
        let result = engine.synthesize(&examples, &Deadline::none()).unwrap();
        for (value, expected) in examples.labeled() {
            assert_eq!(
                problem.eval_predicate(&result, &value).unwrap(),
                expected,
                "on {value} (candidate {result})"
            );
        }
    }

    #[test]
    fn the_no_duplicates_invariant_is_synthesizable() {
        let problem = problem();
        let engine = Engine::new(&problem, SearchConfig::default());
        // Examples in the spirit of a mid-run Hanoi state: several
        // constructible (duplicate-free) lists and several duplicate lists.
        let examples = ExampleSet::from_sets(
            [
                Value::nat_list(&[]),
                Value::nat_list(&[0]),
                Value::nat_list(&[1]),
                Value::nat_list(&[1, 0]),
                Value::nat_list(&[2, 1]),
                Value::nat_list(&[2, 1, 0]),
            ],
            [
                Value::nat_list(&[0, 0]),
                Value::nat_list(&[1, 1]),
                Value::nat_list(&[0, 1, 0]),
                Value::nat_list(&[2, 2, 1]),
            ],
        )
        .unwrap();
        let examples = trace_completed(&problem, examples);
        let result = engine.synthesize(&examples, &Deadline::none()).unwrap();
        for (value, expected) in examples.labeled() {
            assert_eq!(
                problem.eval_predicate(&result, &value).unwrap(),
                expected,
                "on {value} (candidate {result})"
            );
        }
        // The synthesized predicate should generalise like the paper's
        // invariant: it must reject unseen duplicate lists and accept unseen
        // duplicate-free ones.
        assert!(!problem
            .eval_predicate(&result, &Value::nat_list(&[3, 3]))
            .unwrap());
        assert!(problem
            .eval_predicate(&result, &Value::nat_list(&[5, 3, 1]))
            .unwrap());
    }

    #[test]
    fn parallel_guessing_matches_serial_guessing() {
        let problem = problem();
        let examples = ExampleSet::from_sets(
            [
                Value::nat_list(&[]),
                Value::nat_list(&[0]),
                Value::nat_list(&[1]),
                Value::nat_list(&[1, 0]),
                Value::nat_list(&[2, 1]),
            ],
            [
                Value::nat_list(&[0, 0]),
                Value::nat_list(&[1, 1]),
                Value::nat_list(&[0, 1, 0]),
            ],
        )
        .unwrap();
        let examples = trace_completed(&problem, examples);
        let serial = Engine::new(&problem, SearchConfig::default())
            .synthesize(&examples, &Deadline::none())
            .unwrap();
        for parallelism in [2usize, 0] {
            let config = SearchConfig {
                parallelism: Some(parallelism),
                ..SearchConfig::default()
            };
            let parallel = Engine::new(&problem, config)
                .synthesize(&examples, &Deadline::none())
                .unwrap();
            assert_eq!(parallel, serial, "parallelism={parallelism}");
        }
    }

    #[test]
    fn a_persistent_bank_reproduces_fresh_results_incrementally() {
        let problem = problem();
        let engine = Engine::new(&problem, SearchConfig::quick());
        let bank = TermBank::new();
        // A CEGIS-like sequence: the positives stay, negatives accumulate.
        let negatives_by_iteration: [&[&[u64]]; 3] = [
            &[&[0, 0]],
            &[&[0, 0], &[1, 1]],
            &[&[0, 0], &[1, 1], &[0, 1, 0]],
        ];
        for negatives in negatives_by_iteration {
            let examples = ExampleSet::from_sets(
                [
                    Value::nat_list(&[]),
                    Value::nat_list(&[0]),
                    Value::nat_list(&[1, 0]),
                ],
                negatives.iter().map(|items| Value::nat_list(items)),
            )
            .unwrap();
            let examples = trace_completed(&problem, examples);
            let fresh = engine.synthesize(&examples, &Deadline::none());
            let banked = engine.synthesize_with_bank(&bank, &examples, &Deadline::none());
            assert_eq!(banked, fresh);
        }
        let stats = bank.stats();
        assert!(stats.bank_hits > 0, "later iterations reuse evaluations");
        assert!(
            stats.column_appends > 0,
            "new counterexamples append columns"
        );
        assert_eq!(stats.sessions, 3);
    }

    #[test]
    fn inconsistent_examples_cannot_be_separated() {
        let problem = problem();
        let engine = Engine::new(&problem, SearchConfig::quick());
        // Directly conflicting example sets cannot even be constructed; what
        // the engine can see is a semantically impossible labeling, e.g. two
        // observationally identical values labelled differently is impossible
        // for values, so instead check the trivial "no candidate" path by
        // asking for a separation with an exhausted schedule.
        let mut config = SearchConfig::quick();
        config.schedule = vec![(0, 1)];
        let engine_small = Engine::new(&problem, config);
        let examples =
            ExampleSet::from_sets([Value::nat_list(&[1, 0])], [Value::nat_list(&[0, 1])]).unwrap();
        let result = engine_small.synthesize(&examples, &Deadline::none());
        assert_eq!(result, Err(SynthError::NoCandidate));
        // The full engine, however, can separate them (e.g. via lookup of the
        // head in the tail or an equality involving constants).
        let _ = engine;
    }

    #[test]
    fn expired_deadline_times_out() {
        let problem = problem();
        let engine = Engine::new(&problem, SearchConfig::quick());
        let deadline = Deadline::at(std::time::Instant::now() - std::time::Duration::from_secs(1));
        let examples =
            ExampleSet::from_sets([Value::nat_list(&[1, 0])], [Value::nat_list(&[1, 1])]).unwrap();
        assert_eq!(
            engine.synthesize(&examples, &deadline),
            Err(SynthError::Timeout)
        );
    }

    #[test]
    fn compositions_helper() {
        assert_eq!(
            *compositions(4, 2),
            vec![vec![1, 3], vec![2, 2], vec![3, 1]]
        );
        assert!(compositions(1, 2).is_empty());
        // The memo serves repeated requests from the same allocation.
        assert!(Arc::ptr_eq(&compositions(4, 2), &compositions(4, 2)));
    }
}
