//! The shared type- and example-directed search engine.
//!
//! Both synthesizers ([`crate::MythSynth`] and [`crate::FoldSynth`]) are thin
//! wrappers around this engine, which mirrors the structure of Myth [19]:
//!
//! 1. **E-guessing** — enumerate expressions bottom-up by size, pruning by
//!    *observational equivalence* (two terms that evaluate identically on
//!    every example world are interchangeable, so only the first is kept),
//!    and return the first boolean term whose behaviour matches the examples;
//! 2. **match refinement** — if guessing fails, split on a scrutinee variable
//!    of algebraic type, partition the example worlds by head constructor and
//!    recurse into each arm with the constructor fields in scope;
//! 3. **structural recursion** — inside an arm, the predicate being
//!    synthesized may be applied to pattern-bound variables of the
//!    representation type (which are strict subvalues of the argument); its
//!    behaviour during search is given by the example table itself, which is
//!    why the caller closes the examples under subvalues first
//!    ("trace completeness", §4.3).
//!
//! The engine finishes by assembling a recursive function, re-checking it
//! against the examples with *real* recursion, and returning it only if it
//! still separates them — this preserves the `Synth` soundness contract even
//! where trace completeness was imperfect.

use std::collections::{HashMap, HashSet};

use hanoi_abstraction::Problem;
use hanoi_lang::ast::{Expr, MatchArm, Pattern};
use hanoi_lang::eval::Fuel;
use hanoi_lang::symbol::Symbol;
use hanoi_lang::types::{Type, TypeEnv};
use hanoi_lang::util::Deadline;
use hanoi_lang::value::Value;

use crate::error::SynthError;
use crate::examples::ExampleSet;

/// The name bound to the predicate being synthesized inside its own body.
pub const REC_NAME: &str = "inv";
/// The name of the predicate's argument.
pub const ARG_NAME: &str = "x";

/// An additional component made available to the search (used by
/// [`crate::FoldSynth`] for the auxiliary catamorphisms it synthesizes
/// up front).
#[derive(Debug, Clone)]
pub struct ExtraComponent {
    /// Name the generated terms refer to.
    pub name: Symbol,
    /// The component's (first-order) type.
    pub ty: Type,
    /// Its evaluated closure, used to compute term signatures.
    pub value: Value,
    /// Its definition, used to close over the component in the final result
    /// (`let name = definition in …`).
    pub definition: Expr,
}

/// Search limits and schedule.
#[derive(Debug, Clone)]
pub struct SearchConfig {
    /// Successive `(match depth, maximum guess size)` attempts, cheapest
    /// first.  The search restarts with the next entry whenever the current
    /// one fails.
    pub schedule: Vec<(usize, usize)>,
    /// Cap on the number of observationally distinct terms kept per type and
    /// size (guards against pathological blow-up).
    pub max_terms_per_layer: usize,
    /// Fuel per signature evaluation.
    pub fuel: u64,
    /// Whether the predicate may call itself on pattern-bound subvalues.
    pub allow_recursion: bool,
    /// Extra components (beyond the problem's prelude and module operations).
    pub extra_components: Vec<ExtraComponent>,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            schedule: vec![(0, 5), (1, 7), (1, 9), (2, 9), (2, 11), (3, 11)],
            max_terms_per_layer: 3000,
            fuel: 20_000,
            allow_recursion: true,
            extra_components: Vec::new(),
        }
    }
}

impl SearchConfig {
    /// A cheaper schedule for unit tests and quick runs.
    pub fn quick() -> Self {
        SearchConfig {
            schedule: vec![(0, 5), (1, 7), (1, 9), (2, 9)],
            max_terms_per_layer: 1500,
            ..SearchConfig::default()
        }
    }
}

/// One function-like producer available to term generation.
#[derive(Debug, Clone)]
struct FuncComponent {
    name: Symbol,
    arg_tys: Vec<Type>,
    ret_ty: Type,
    value: Value,
}

/// A term kept in the enumeration pool: its syntax and its evaluation
/// signature across the example worlds.
#[derive(Debug, Clone)]
struct PoolTerm {
    expr: Expr,
    sig: Vec<Option<Value>>,
}

/// The example worlds for one search node: per world, the values of every
/// in-scope variable (parallel to the context) and the expected output.
#[derive(Debug, Clone)]
struct WorldRow {
    values: Vec<Value>,
    expected: bool,
}

/// The search engine.
#[derive(Debug, Clone)]
pub struct Engine<'p> {
    problem: &'p Problem,
    config: SearchConfig,
}

impl<'p> Engine<'p> {
    /// Creates an engine for `problem` with the given configuration.
    pub fn new(problem: &'p Problem, config: SearchConfig) -> Self {
        Engine { problem, config }
    }

    /// The configuration in effect.
    pub fn config(&self) -> &SearchConfig {
        &self.config
    }

    /// Synthesizes a predicate of type `τc -> bool` consistent with
    /// `examples` (which the caller should already have trace-completed).
    pub fn synthesize(
        &self,
        examples: &ExampleSet,
        deadline: &Deadline,
    ) -> Result<Expr, SynthError> {
        let concrete = self.problem.concrete_type().clone();
        let labeled = examples.labeled();
        let example_table: HashMap<Value, bool> = labeled.iter().cloned().collect();

        let ctx = vec![(Symbol::new(ARG_NAME), concrete.clone())];
        let worlds: Vec<WorldRow> = labeled
            .iter()
            .map(|(v, expected)| WorldRow {
                values: vec![v.clone()],
                expected: *expected,
            })
            .collect();

        let components = self.function_components();
        let mut counter = 0usize;

        for &(match_depth, guess_size) in &self.config.schedule {
            if deadline.expired() {
                return Err(SynthError::Timeout);
            }
            let body = self.synth_node(
                &ctx,
                &worlds,
                match_depth,
                guess_size,
                &components,
                &example_table,
                &mut counter,
                deadline,
                &mut HashSet::new(),
            )?;
            if let Some(body) = body {
                let assembled = self.assemble(&concrete, body);
                if self.consistent_with_examples(&assembled, examples) {
                    return Ok(assembled);
                }
            }
        }
        Err(SynthError::NoCandidate)
    }

    /// Wraps a synthesized body into a full predicate, using recursion only
    /// when the body mentions it, and closing over any extra components it
    /// uses.
    fn assemble(&self, concrete: &Type, body: Expr) -> Expr {
        let free = body.free_vars();
        let core = if free.contains(&Symbol::new(REC_NAME)) {
            Expr::fix(REC_NAME, ARG_NAME, concrete.clone(), Type::bool(), body)
        } else {
            Expr::lambda(ARG_NAME, concrete.clone(), body)
        };
        // Close over extra components (innermost last so earlier helpers are
        // visible to later ones).
        let mut wrapped = core;
        for extra in self.config.extra_components.iter().rev() {
            if wrapped.free_vars().contains(&extra.name) {
                wrapped = Expr::Let(
                    extra.name.clone(),
                    Box::new(extra.definition.clone()),
                    Box::new(wrapped),
                );
            }
        }
        wrapped
    }

    /// Checks an assembled predicate against the examples using real
    /// recursion.
    fn consistent_with_examples(&self, predicate: &Expr, examples: &ExampleSet) -> bool {
        examples.labeled().iter().all(|(value, expected)| {
            self.problem
                .eval_predicate_with_fuel(predicate, value, &mut Fuel::new(self.config.fuel * 10))
                .map(|actual| actual == *expected)
                .unwrap_or(false)
        })
    }

    /// The function-like components visible to term generation.
    fn function_components(&self) -> Vec<FuncComponent> {
        let mut out = Vec::new();
        for (name, ty) in self.problem.synthesis_components() {
            let (args, ret) = ty.uncurry();
            if args.is_empty()
                || !ty.is_first_order()
                || !ret.is_zero_order()
                || args.iter().any(|a| !a.is_zero_order())
            {
                continue;
            }
            let Some(value) = self.problem.globals.lookup(&name).cloned() else {
                continue;
            };
            out.push(FuncComponent {
                name,
                arg_tys: args.into_iter().cloned().collect(),
                ret_ty: ret.clone(),
                value,
            });
        }
        for extra in &self.config.extra_components {
            let (args, ret) = extra.ty.uncurry();
            if args.is_empty() {
                continue;
            }
            out.push(FuncComponent {
                name: extra.name.clone(),
                arg_tys: args.into_iter().cloned().collect(),
                ret_ty: ret.clone(),
                value: extra.value.clone(),
            });
        }
        out
    }

    /// The 0-order types the term pool is stratified by.
    fn types_of_interest(&self, ctx: &[(Symbol, Type)], components: &[FuncComponent]) -> Vec<Type> {
        let mut types = vec![Type::bool(), self.problem.concrete_type().clone()];
        for (_, ty) in ctx {
            types.push(ty.clone());
        }
        for c in components {
            types.push(c.ret_ty.clone());
            types.extend(c.arg_tys.iter().cloned());
        }
        let mut seen = HashSet::new();
        types.retain(|t| t.is_zero_order() && seen.insert(t.clone()));
        types
    }

    /// One node of the refinement search: guess, then (if allowed) match.
    #[allow(clippy::too_many_arguments)]
    fn synth_node(
        &self,
        ctx: &[(Symbol, Type)],
        worlds: &[WorldRow],
        match_depth: usize,
        guess_size: usize,
        components: &[FuncComponent],
        example_table: &HashMap<Value, bool>,
        counter: &mut usize,
        deadline: &Deadline,
        matched_vars: &mut HashSet<Symbol>,
    ) -> Result<Option<Expr>, SynthError> {
        if deadline.expired() {
            return Err(SynthError::Timeout);
        }
        if worlds.is_empty() {
            return Ok(Some(Expr::tru()));
        }
        if let Some(found) =
            self.guess(ctx, worlds, guess_size, components, example_table, deadline)?
        {
            return Ok(Some(found));
        }
        if match_depth == 0 {
            return Ok(None);
        }

        // Try splitting on each in-scope variable of algebraic type, most
        // recently bound first.
        let tyenv: &TypeEnv = &self.problem.tyenv;
        for index in (0..ctx.len()).rev() {
            let (var, var_ty) = &ctx[index];
            if matched_vars.contains(var) {
                continue;
            }
            let Type::Named(type_name) = var_ty else {
                continue;
            };
            let Some(decl) = tyenv.lookup(type_name) else {
                continue;
            };
            if decl.ctors.len() < 2 && decl.ctors.iter().all(|c| c.args.is_empty()) {
                continue;
            }
            matched_vars.insert(var.clone());
            let mut arms = Vec::new();
            let mut all_ok = true;
            for ctor in &decl.ctors {
                // Fresh names for the constructor fields.
                let fields: Vec<(Symbol, Type)> = ctor
                    .args
                    .iter()
                    .map(|ty| {
                        *counter += 1;
                        (Symbol::new(&format!("x{counter}")), ty.clone())
                    })
                    .collect();
                let mut arm_ctx = ctx.to_vec();
                arm_ctx.extend(fields.clone());
                let arm_worlds: Vec<WorldRow> = worlds
                    .iter()
                    .filter_map(|row| match &row.values[index] {
                        Value::Ctor(c, args) if c == &ctor.name => {
                            let mut values = row.values.clone();
                            values.extend(args.iter().cloned());
                            Some(WorldRow {
                                values,
                                expected: row.expected,
                            })
                        }
                        _ => None,
                    })
                    .collect();
                let body = self.synth_node(
                    &arm_ctx,
                    &arm_worlds,
                    match_depth - 1,
                    guess_size,
                    components,
                    example_table,
                    counter,
                    deadline,
                    matched_vars,
                )?;
                match body {
                    Some(body) => {
                        let pattern = Pattern::Ctor(
                            ctor.name.clone(),
                            fields
                                .iter()
                                .map(|(name, _)| Pattern::Var(name.clone()))
                                .collect(),
                        );
                        arms.push(MatchArm::new(pattern, body));
                    }
                    None => {
                        all_ok = false;
                        break;
                    }
                }
            }
            matched_vars.remove(var);
            if all_ok {
                return Ok(Some(Expr::Match(Box::new(Expr::Var(var.clone())), arms)));
            }
        }
        Ok(None)
    }

    /// Bottom-up, observational-equivalence-pruned term guessing.
    fn guess(
        &self,
        ctx: &[(Symbol, Type)],
        worlds: &[WorldRow],
        max_size: usize,
        components: &[FuncComponent],
        example_table: &HashMap<Value, bool>,
        deadline: &Deadline,
    ) -> Result<Option<Expr>, SynthError> {
        let target: Vec<Option<Value>> = worlds
            .iter()
            .map(|w| Some(Value::bool(w.expected)))
            .collect();
        let types = self.types_of_interest(ctx, components);
        let concrete = self.problem.concrete_type();
        let tyenv = &self.problem.tyenv;
        let evaluator = self.problem.evaluator();

        let mut state = GuessState::new(&types, target, max_size, self.config.max_terms_per_layer);

        // Size 1: variables and nullary constructors.
        for (index, (name, ty)) in ctx.iter().enumerate() {
            let sig: Vec<Option<Value>> = worlds
                .iter()
                .map(|w| Some(w.values[index].clone()))
                .collect();
            state.add(ty, 1, Expr::Var(name.clone()), sig);
        }
        for ty in &types {
            let Type::Named(type_name) = ty else { continue };
            let Some(decl) = tyenv.lookup(type_name) else {
                continue;
            };
            for ctor in &decl.ctors {
                if !ctor.args.is_empty() {
                    continue;
                }
                let value = Value::Ctor(ctor.name.clone(), std::sync::Arc::from([]));
                let sig: Vec<Option<Value>> = worlds.iter().map(|_| Some(value.clone())).collect();
                state.add(ty, 1, Expr::Ctor(ctor.name.clone(), Vec::new()), sig);
            }
        }
        if state.matched.is_some() {
            return Ok(state.matched);
        }

        // Larger sizes.
        for size in 2..=max_size {
            if deadline.expired() {
                return Err(SynthError::Timeout);
            }

            // Recursive calls `inv v` on non-root context variables of the
            // concrete type (application of a unary function costs 3 nodes).
            if self.config.allow_recursion && size == 3 {
                for (index, (name, ty)) in ctx.iter().enumerate().skip(1) {
                    if ty != concrete {
                        continue;
                    }
                    let sig: Vec<Option<Value>> = worlds
                        .iter()
                        .map(|w| example_table.get(&w.values[index]).map(|b| Value::bool(*b)))
                        .collect();
                    let expr = Expr::call(REC_NAME, [Expr::Var(name.clone())]);
                    state.add(&Type::bool(), size, expr, sig);
                }
            }

            // Saturated applications of function components.
            for component in components {
                let k = component.arg_tys.len();
                if size < 1 + 2 * k || !state.has_type(&component.ret_ty) {
                    continue;
                }
                for split in compositions(size - 1 - k, k) {
                    let Some(arg_layers) = state.layers(&component.arg_tys, &split) else {
                        continue;
                    };
                    let slices: Vec<&[PoolTerm]> = arg_layers.iter().map(Vec::as_slice).collect();
                    let mut new_terms = Vec::new();
                    cartesian(&slices, &mut |choice: &[&PoolTerm]| {
                        let sig: Vec<Option<Value>> = (0..worlds.len())
                            .map(|w| {
                                let args: Option<Vec<Value>> =
                                    choice.iter().map(|t| t.sig[w].clone()).collect();
                                let args = args?;
                                let mut fuel = Fuel::new(self.config.fuel);
                                evaluator
                                    .apply_many(component.value.clone(), &args, &mut fuel)
                                    .ok()
                            })
                            .collect();
                        let expr = Expr::apps(
                            Expr::Var(component.name.clone()),
                            choice.iter().map(|t| t.expr.clone()),
                        );
                        new_terms.push((expr, sig));
                    });
                    for (expr, sig) in new_terms {
                        state.add(&component.ret_ty, size, expr, sig);
                    }
                    if state.matched.is_some() {
                        return Ok(state.matched);
                    }
                }
            }

            // Constructor applications at non-representation types (building
            // constants such as `S (S O)`), so numeric literals are reachable.
            for ty in &types {
                if ty == concrete {
                    continue;
                }
                let Type::Named(type_name) = ty else { continue };
                let Some(decl) = tyenv.lookup(type_name) else {
                    continue;
                };
                let ctors: Vec<(Symbol, Vec<Type>)> = decl
                    .ctors
                    .iter()
                    .map(|c| (c.name.clone(), c.args.clone()))
                    .collect();
                for (ctor_name, ctor_args) in ctors {
                    let k = ctor_args.len();
                    if k == 0 || size < 1 + k {
                        continue;
                    }
                    for split in compositions(size - 1, k) {
                        let Some(arg_layers) = state.layers(&ctor_args, &split) else {
                            continue;
                        };
                        let slices: Vec<&[PoolTerm]> =
                            arg_layers.iter().map(Vec::as_slice).collect();
                        let mut new_terms = Vec::new();
                        cartesian(&slices, &mut |choice: &[&PoolTerm]| {
                            let sig: Vec<Option<Value>> = (0..worlds.len())
                                .map(|w| {
                                    let args: Option<Vec<Value>> =
                                        choice.iter().map(|t| t.sig[w].clone()).collect();
                                    args.map(|args| Value::Ctor(ctor_name.clone(), args.into()))
                                })
                                .collect();
                            let expr = Expr::Ctor(
                                ctor_name.clone(),
                                choice.iter().map(|t| t.expr.clone()).collect(),
                            );
                            new_terms.push((expr, sig));
                        });
                        for (expr, sig) in new_terms {
                            state.add(ty, size, expr, sig);
                        }
                        if state.matched.is_some() {
                            return Ok(state.matched);
                        }
                    }
                }
            }

            // Structural equality between same-type terms.
            if size >= 3 {
                for ty in &types {
                    if ty == &Type::bool() {
                        continue;
                    }
                    for split in compositions(size - 1, 2) {
                        let Some(arg_layers) = state.layers(&[ty.clone(), ty.clone()], &split)
                        else {
                            continue;
                        };
                        for a in &arg_layers[0] {
                            for b in &arg_layers[1] {
                                let sig: Vec<Option<Value>> = (0..worlds.len())
                                    .map(|w| match (&a.sig[w], &b.sig[w]) {
                                        (Some(x), Some(y)) => Some(Value::bool(x == y)),
                                        _ => None,
                                    })
                                    .collect();
                                state.add(
                                    &Type::bool(),
                                    size,
                                    Expr::eq(a.expr.clone(), b.expr.clone()),
                                    sig,
                                );
                            }
                        }
                        if state.matched.is_some() {
                            return Ok(state.matched);
                        }
                    }
                }
            }

            // Boolean connectives.
            if size >= 2 {
                let nots: Vec<PoolTerm> = state.layer(&Type::bool(), size - 1).to_vec();
                for term in nots {
                    let sig: Vec<Option<Value>> = term
                        .sig
                        .iter()
                        .map(|v| v.as_ref().and_then(Value::as_bool).map(|b| Value::bool(!b)))
                        .collect();
                    state.add(&Type::bool(), size, Expr::not(term.expr.clone()), sig);
                }
            }
            if size >= 3 {
                for split in compositions(size - 1, 2) {
                    let lhs = state.layer(&Type::bool(), split[0]).to_vec();
                    let rhs = state.layer(&Type::bool(), split[1]).to_vec();
                    for a in &lhs {
                        for b in &rhs {
                            for conj in [true, false] {
                                let sig: Vec<Option<Value>> = (0..worlds.len())
                                    .map(|w| {
                                        let x = a.sig[w].as_ref().and_then(Value::as_bool)?;
                                        let y = b.sig[w].as_ref().and_then(Value::as_bool)?;
                                        Some(Value::bool(if conj { x && y } else { x || y }))
                                    })
                                    .collect();
                                let expr = if conj {
                                    Expr::and(a.expr.clone(), b.expr.clone())
                                } else {
                                    Expr::or(a.expr.clone(), b.expr.clone())
                                };
                                state.add(&Type::bool(), size, expr, sig);
                            }
                        }
                    }
                    if state.matched.is_some() {
                        return Ok(state.matched);
                    }
                }
            }
            if state.matched.is_some() {
                return Ok(state.matched);
            }
        }
        Ok(state.matched)
    }
}

/// The term pool of one guessing pass, stratified by type and size and pruned
/// by observational equivalence.
struct GuessState {
    pool: HashMap<Type, Vec<Vec<PoolTerm>>>,
    seen: HashMap<Type, HashSet<Vec<Option<Value>>>>,
    target: Vec<Option<Value>>,
    matched: Option<Expr>,
    max_per_layer: usize,
}

impl GuessState {
    fn new(
        types: &[Type],
        target: Vec<Option<Value>>,
        max_size: usize,
        max_per_layer: usize,
    ) -> Self {
        GuessState {
            pool: types
                .iter()
                .map(|t| (t.clone(), vec![Vec::new(); max_size]))
                .collect(),
            seen: types.iter().map(|t| (t.clone(), HashSet::new())).collect(),
            target,
            matched: None,
            max_per_layer,
        }
    }

    fn has_type(&self, ty: &Type) -> bool {
        self.pool.contains_key(ty)
    }

    /// The terms of `ty` with exactly `size` nodes (empty slice if the type
    /// is not tracked).
    fn layer(&self, ty: &Type, size: usize) -> &[PoolTerm] {
        self.pool
            .get(ty)
            .and_then(|layers| layers.get(size - 1))
            .map_or(&[], Vec::as_slice)
    }

    /// Clones the layers for an argument-type/size split, or `None` when a
    /// type is untracked or a layer is empty.
    fn layers(&self, tys: &[Type], split: &[usize]) -> Option<Vec<Vec<PoolTerm>>> {
        let mut out = Vec::with_capacity(tys.len());
        for (ty, &size) in tys.iter().zip(split) {
            let layer = self.layer(ty, size);
            if layer.is_empty() {
                return None;
            }
            out.push(layer.to_vec());
        }
        Some(out)
    }

    /// Adds a term unless an observationally equivalent one is present;
    /// records a match when a boolean term hits the target signature.
    fn add(&mut self, ty: &Type, size: usize, expr: Expr, sig: Vec<Option<Value>>) {
        if self.matched.is_some() {
            return;
        }
        let Some(layers) = self.pool.get_mut(ty) else {
            return;
        };
        let Some(layer) = layers.get_mut(size - 1) else {
            return;
        };
        if layer.len() >= self.max_per_layer {
            return;
        }
        let seen = self
            .seen
            .get_mut(ty)
            .expect("seen table mirrors pool table");
        if !seen.insert(sig.clone()) {
            return;
        }
        if ty == &Type::bool() && sig == self.target {
            self.matched = Some(expr);
            return;
        }
        layer.push(PoolTerm { expr, sig });
    }
}

/// All ways to write `total` as an ordered sum of `parts` positive integers.
fn compositions(total: usize, parts: usize) -> Vec<Vec<usize>> {
    fn rec(total: usize, parts: usize, current: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if parts == 1 {
            current.push(total);
            out.push(current.clone());
            current.pop();
            return;
        }
        for first in 1..=(total - (parts - 1)) {
            current.push(first);
            rec(total - first, parts - 1, current, out);
            current.pop();
        }
    }
    let mut out = Vec::new();
    if parts > 0 && total >= parts {
        rec(total, parts, &mut Vec::with_capacity(parts), &mut out);
    }
    out
}

/// Visits the cartesian product of term slices.
fn cartesian<'a>(groups: &[&'a [PoolTerm]], visit: &mut impl FnMut(&[&'a PoolTerm])) {
    fn rec<'a>(
        groups: &[&'a [PoolTerm]],
        index: usize,
        current: &mut Vec<&'a PoolTerm>,
        visit: &mut impl FnMut(&[&'a PoolTerm]),
    ) {
        if index == groups.len() {
            visit(current);
            return;
        }
        for term in groups[index] {
            current.push(term);
            rec(groups, index + 1, current, visit);
            current.pop();
        }
    }
    if groups.iter().any(|g| g.is_empty()) {
        return;
    }
    rec(groups, 0, &mut Vec::new(), visit);
}

#[cfg(test)]
mod tests {
    use super::*;

    const LIST_SET: &str = r#"
        type nat = O | S of nat
        type list = Nil | Cons of nat * list

        interface SET = sig
          type t
          val empty : t
          val insert : t -> nat -> t
          val delete : t -> nat -> t
          val lookup : t -> nat -> bool
        end

        module ListSet : SET = struct
          type t = list
          let empty : t = Nil
          let rec lookup (l : t) (x : nat) : bool =
            match l with
            | Nil -> False
            | Cons (hd, tl) -> hd == x || lookup tl x
            end
          let insert (l : t) (x : nat) : t =
            if lookup l x then l else Cons (x, l)
          let rec delete (l : t) (x : nat) : t =
            match l with
            | Nil -> Nil
            | Cons (hd, tl) -> if hd == x then tl else Cons (hd, delete tl x)
            end
        end

        spec (s : t) (i : nat) =
          not (lookup empty i) && lookup (insert s i) i && not (lookup (delete s i) i)
    "#;

    fn problem() -> Problem {
        Problem::from_source(LIST_SET).unwrap()
    }

    fn trace_completed(problem: &Problem, examples: ExampleSet) -> ExampleSet {
        examples
            .trace_completed(&problem.tyenv, problem.concrete_type())
            .0
    }

    #[test]
    fn empty_examples_give_the_trivial_predicate() {
        let problem = problem();
        let engine = Engine::new(&problem, SearchConfig::quick());
        let result = engine
            .synthesize(&ExampleSet::new(), &Deadline::none())
            .unwrap();
        assert!(problem
            .eval_predicate(&result, &Value::nat_list(&[1, 1]))
            .unwrap());
        assert!(problem
            .eval_predicate(&result, &Value::nat_list(&[]))
            .unwrap());
    }

    #[test]
    fn simple_separations_are_found_without_recursion() {
        let problem = problem();
        let engine = Engine::new(&problem, SearchConfig::quick());
        // Positives: [] and [2]; negative: [0].  A simple non-recursive
        // predicate such as `not (lookup x 0)` separates these.
        let examples = ExampleSet::from_sets(
            [Value::nat_list(&[]), Value::nat_list(&[2])],
            [Value::nat_list(&[0])],
        )
        .unwrap();
        let examples = trace_completed(&problem, examples);
        let result = engine.synthesize(&examples, &Deadline::none()).unwrap();
        for (value, expected) in examples.labeled() {
            assert_eq!(
                problem.eval_predicate(&result, &value).unwrap(),
                expected,
                "on {value} (candidate {result})"
            );
        }
    }

    #[test]
    fn the_no_duplicates_invariant_is_synthesizable() {
        let problem = problem();
        let engine = Engine::new(&problem, SearchConfig::default());
        // Examples in the spirit of a mid-run Hanoi state: several
        // constructible (duplicate-free) lists and several duplicate lists.
        let examples = ExampleSet::from_sets(
            [
                Value::nat_list(&[]),
                Value::nat_list(&[0]),
                Value::nat_list(&[1]),
                Value::nat_list(&[1, 0]),
                Value::nat_list(&[2, 1]),
                Value::nat_list(&[2, 1, 0]),
            ],
            [
                Value::nat_list(&[0, 0]),
                Value::nat_list(&[1, 1]),
                Value::nat_list(&[0, 1, 0]),
                Value::nat_list(&[2, 2, 1]),
            ],
        )
        .unwrap();
        let examples = trace_completed(&problem, examples);
        let result = engine.synthesize(&examples, &Deadline::none()).unwrap();
        for (value, expected) in examples.labeled() {
            assert_eq!(
                problem.eval_predicate(&result, &value).unwrap(),
                expected,
                "on {value} (candidate {result})"
            );
        }
        // The synthesized predicate should generalise like the paper's
        // invariant: it must reject unseen duplicate lists and accept unseen
        // duplicate-free ones.
        assert!(!problem
            .eval_predicate(&result, &Value::nat_list(&[3, 3]))
            .unwrap());
        assert!(problem
            .eval_predicate(&result, &Value::nat_list(&[5, 3, 1]))
            .unwrap());
    }

    #[test]
    fn inconsistent_examples_cannot_be_separated() {
        let problem = problem();
        let engine = Engine::new(&problem, SearchConfig::quick());
        // Directly conflicting example sets cannot even be constructed; what
        // the engine can see is a semantically impossible labeling, e.g. two
        // observationally identical values labelled differently is impossible
        // for values, so instead check the trivial "no candidate" path by
        // asking for a separation with an exhausted schedule.
        let mut config = SearchConfig::quick();
        config.schedule = vec![(0, 1)];
        let engine_small = Engine::new(&problem, config);
        let examples =
            ExampleSet::from_sets([Value::nat_list(&[1, 0])], [Value::nat_list(&[0, 1])]).unwrap();
        let result = engine_small.synthesize(&examples, &Deadline::none());
        assert_eq!(result, Err(SynthError::NoCandidate));
        // The full engine, however, can separate them (e.g. via lookup of the
        // head in the tail or an equality involving constants).
        let _ = engine;
    }

    #[test]
    fn expired_deadline_times_out() {
        let problem = problem();
        let engine = Engine::new(&problem, SearchConfig::quick());
        let deadline = Deadline::at(std::time::Instant::now() - std::time::Duration::from_secs(1));
        let examples =
            ExampleSet::from_sets([Value::nat_list(&[1, 0])], [Value::nat_list(&[1, 1])]).unwrap();
        assert_eq!(
            engine.synthesize(&examples, &deadline),
            Err(SynthError::Timeout)
        );
    }

    #[test]
    fn compositions_helper() {
        assert_eq!(compositions(4, 2), vec![vec![1, 3], vec![2, 2], vec![3, 1]]);
        assert!(compositions(1, 2).is_empty());
    }
}
