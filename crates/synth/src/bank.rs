//! The persistent term bank: incremental, memoized signature evaluation for
//! the synthesis engine.
//!
//! `Engine::guess` historically rebuilt its observational-equivalence term
//! pool from zero on every call: each CEGIS iteration — often triggered by a
//! *single* new counterexample — re-enumerated every term and re-ran the
//! interpreter on every `(term, example world)` pair, even though all but one
//! column of the signature matrix had already been computed in the previous
//! iteration.  [`TermBank`] makes the expensive parts of that matrix a
//! once-per-session cost, the same way the verifier's
//! `hanoi_verifier::poolcache::PoolCache` made quantifier pools a
//! once-per-session cost:
//!
//! * **value interner** — every value that ever appears in a signature cell
//!   is interned to a dense `u32` id ([`TermBank::intern`]), once per
//!   distinct value per session.  Signature rows, deduplication and the
//!   evaluation store all operate on ids, so the hot path hashes and
//!   compares machine integers instead of walking constructor trees; the
//!   booleans get the fixed ids [`TRUE_ID`]/[`FALSE_ID`], making boolean
//!   cells (equality tests, connectives) entirely allocation- and hash-free;
//! * **column-keyed evaluation store** — a signature cell for a
//!   component-application term `f t₁ … tₖ` on world `w` depends only on the
//!   component and the argument value ids `(sig(t₁)[w], …, sig(tₖ)[w])`,
//!   never on the world index.  The bank memoizes
//!   `(component, argument ids) → result id`, so when a new counterexample
//!   appends a column to the signature matrix, every cell of every *old*
//!   column is a cache hit and only the new column's genuinely new argument
//!   rows reach the interpreter.  The memoization is semantically
//!   transparent (each evaluation runs under a fresh fuel budget of the
//!   same size, which is part of the key), which is what makes a
//!   bank-backed engine return byte-identical predicates to a
//!   rebuild-per-iteration engine — pinned by
//!   `tests/synth_incremental_equivalence.rs`;
//! * **constructor store** — structural cells (`S (S O)`-style constants)
//!   are memoized by `(constructor, argument ids)` too, so repeated worlds
//!   share one construction;
//! * **world registry** — the root example values the bank has seen, used to
//!   tag each guess's worlds as *old columns* (already paid for) or *new
//!   columns* (this iteration's counterexamples) and to count column
//!   appends;
//! * **instrumentation hub** — terms enumerated, signature-column appends,
//!   equivalence-class splits (previously-merged terms distinguished by a
//!   new column) and bank hit/miss counters, surfaced through `RunStats`
//!   and the `cegis_hot_path` bench's `synthesis_multi_cex` workload.
//!
//! The bank is owned by the CEGIS session (each synthesizer instance holds
//! one across all of its `synthesize` calls) and is safe to share with the
//! engine's parallel per-size layer construction: the stores sit behind
//! mutexes with short critical sections, and concurrent misses for the same
//! key simply evaluate the same pure function twice.  Which `u32` a value
//! interns to may differ between runs, but every engine decision depends
//! only on id *equality* within one bank, so outcomes are identical across
//! worker counts.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use hanoi_lang::eval::{Evaluator, Fuel};
use hanoi_lang::json::{value_from_json, value_to_json, Json, JsonError};
use hanoi_lang::symbol::Symbol;
use hanoi_lang::value::Value;

/// A fast, non-cryptographic hasher (splitmix64 finalization per write) for
/// the bank's integer-keyed tables and the engine's signature-row sets.
/// Lookup keys here are dense ids and id rows, where SipHash's per-hash
/// overhead dominated the actual probe cost.
#[derive(Debug, Default, Clone)]
pub struct IdHasher(u64);

impl IdHasher {
    #[inline]
    fn mix(&mut self, v: u64) {
        let mut z = (self.0 ^ v).wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        self.0 = z ^ (z >> 31);
    }
}

impl Hasher for IdHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.mix(u64::from_le_bytes(buf) ^ (chunk.len() as u64));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.mix(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.mix(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.mix(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.mix(n as u64);
    }
}

/// The [`std::hash::BuildHasher`] for [`IdHasher`]-backed tables.
pub type IdHashBuilder = BuildHasherDefault<IdHasher>;

/// The interned id of `True` (pre-interned by every bank).
pub const TRUE_ID: u32 = 0;
/// The interned id of `False` (pre-interned by every bank).
pub const FALSE_ID: u32 = 1;

/// The id of a boolean value.
pub fn bool_id(b: bool) -> u32 {
    if b {
        TRUE_ID
    } else {
        FALSE_ID
    }
}

/// The boolean denoted by an interned id, if it is one.  Because the two
/// booleans are pre-interned at fixed ids, this never needs the interner.
pub fn bool_of(id: u32) -> Option<bool> {
    match id {
        TRUE_ID => Some(true),
        FALSE_ID => Some(false),
        _ => None,
    }
}

/// Counter snapshot of one synthesis session's term-bank activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TermBankStats {
    /// Candidate terms enumerated (pre-deduplication) across all guesses.
    pub terms_enumerated: u64,
    /// Signature columns appended after the first synthesize call: one per
    /// new example world (counterexamples plus their trace-completion
    /// subvalues).
    pub column_appends: u64,
    /// Observational-equivalence classes re-split because a freshly appended
    /// column distinguished previously-merged terms.
    pub eq_class_splits: u64,
    /// Component-application evaluations served from the bank without
    /// touching the interpreter.
    pub bank_hits: u64,
    /// Component-application evaluations that reached the interpreter (each
    /// becomes a cached row for every later iteration).
    pub bank_misses: u64,
    /// Number of `synthesize` calls the bank has served.
    pub sessions: u64,
    /// Distinct values interned by the session.
    pub interned_values: u64,
}

impl TermBankStats {
    /// Total component-application signature evaluations requested.
    pub fn requests(&self) -> u64 {
        self.bank_hits + self.bank_misses
    }
}

/// The session-wide value interner: structural value ↔ dense id.
#[derive(Debug)]
struct Interner {
    ids: HashMap<Value, u32, IdHashBuilder>,
    values: Vec<Value>,
}

impl Interner {
    fn new() -> Interner {
        let mut interner = Interner {
            ids: HashMap::default(),
            values: Vec::new(),
        };
        // Fixed boolean ids (see `TRUE_ID`/`FALSE_ID`).
        interner.intern(&Value::tru());
        interner.intern(&Value::fls());
        interner
    }

    fn intern(&mut self, value: &Value) -> u32 {
        if let Some(&id) = self.ids.get(value) {
            return id;
        }
        let id = self.values.len() as u32;
        self.values.push(value.clone());
        self.ids.insert(value.clone(), id);
        id
    }

    fn value_of(&self, id: u32) -> &Value {
        &self.values[id as usize]
    }
}

/// The interned argument-id tuple of an application or construction key.
/// Tuples of up to four arguments (every benchmark component) are stored
/// inline, so a cache probe allocates nothing.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum ArgsKey {
    Inline([u32; 4], u8),
    Heap(Box<[u32]>),
}

impl ArgsKey {
    fn new(args: &[u32]) -> ArgsKey {
        if args.len() <= 4 {
            let mut inline = [u32::MAX; 4];
            inline[..args.len()].copy_from_slice(args);
            ArgsKey::Inline(inline, args.len() as u8)
        } else {
            ArgsKey::Heap(args.into())
        }
    }

    fn as_slice(&self) -> &[u32] {
        match self {
            ArgsKey::Inline(inline, len) => &inline[..*len as usize],
            ArgsKey::Heap(args) => args,
        }
    }
}

/// Key of one memoized application or construction: the interned name id of
/// the component (or constructor), the interned argument ids, and — for
/// applications — the fuel budget the evaluation ran under.
type AppKey = (u32, ArgsKey, u64);
type CtorKey = (u32, ArgsKey);

/// The persistent term bank of one CEGIS session.
#[derive(Debug)]
pub struct TermBank {
    interner: Mutex<Interner>,
    /// Component/constructor names interned to dense ids, so cache keys hash
    /// integers instead of strings.
    names: Mutex<HashMap<Symbol, u32, IdHashBuilder>>,
    /// `(component, argument ids, fuel) → result id` (`None` = the
    /// application failed or ran out of fuel; failures are memoized too).
    apps: Mutex<HashMap<AppKey, Option<u32>, IdHashBuilder>>,
    /// `(constructor, argument ids) → constructed value id`.
    ctors: Mutex<HashMap<CtorKey, u32, IdHashBuilder>>,
    /// Ids of root example values whose signature columns have been paid
    /// for.
    worlds: Mutex<HashSet<u32, IdHashBuilder>>,
    sessions: AtomicU64,
    terms: AtomicU64,
    appends: AtomicU64,
    splits: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for TermBank {
    fn default() -> Self {
        TermBank {
            interner: Mutex::new(Interner::new()),
            names: Mutex::new(HashMap::default()),
            apps: Mutex::new(HashMap::default()),
            ctors: Mutex::new(HashMap::default()),
            worlds: Mutex::new(HashSet::default()),
            sessions: AtomicU64::new(0),
            terms: AtomicU64::new(0),
            appends: AtomicU64::new(0),
            splits: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }
}

impl TermBank {
    /// An empty bank.
    pub fn new() -> TermBank {
        TermBank::default()
    }

    /// Interns a value (idempotent; one tree walk per distinct value per
    /// session).
    pub fn intern(&self, value: &Value) -> u32 {
        self.interner.lock().unwrap().intern(value)
    }

    /// The value denoted by an interned id.
    pub fn value_of(&self, id: u32) -> Value {
        self.interner.lock().unwrap().value_of(id).clone()
    }

    /// Interns a component or constructor *name* to a dense id (distinct
    /// from the value-id space), so evaluation-cache keys hash integers.
    pub fn name_id(&self, name: &Symbol) -> u32 {
        let mut names = self.names.lock().unwrap();
        let next = names.len() as u32;
        *names.entry(name.clone()).or_insert(next)
    }

    /// Begins one `synthesize` call: registers the root example values and
    /// returns, per example, its interned id and whether its signature
    /// column is *new* to the bank.  Columns arriving after the first call
    /// are counted as appends — the incremental cost of one CEGIS iteration.
    pub fn begin_session(&self, examples: &[(Value, bool)]) -> Vec<(u32, bool)> {
        let first = self.sessions.fetch_add(1, Ordering::Relaxed) == 0;
        let columns: Vec<(u32, bool)> = examples
            .iter()
            .map(|(value, _)| {
                let id = self.intern(value);
                let is_new = self.worlds.lock().unwrap().insert(id);
                (id, is_new)
            })
            .collect();
        if !first {
            let appended = columns.iter().filter(|(_, new)| *new).count() as u64;
            self.appends.fetch_add(appended, Ordering::Relaxed);
        }
        columns
    }

    /// Evaluates `component` (with interned name id `name`) on the values
    /// denoted by `arg_ids`, memoized.  Every actual evaluation runs under a
    /// fresh `fuel`-step budget (part of the key), so the cached result is
    /// exactly what an unmemoized engine would have computed.
    pub fn apply_component(
        &self,
        evaluator: &Evaluator<'_>,
        name: u32,
        component: &Value,
        arg_ids: &[u32],
        fuel: u64,
    ) -> Option<u32> {
        let key: AppKey = (name, ArgsKey::new(arg_ids), fuel);
        if let Some(cached) = self.apps.lock().unwrap().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return *cached;
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let args: Vec<Value> = {
            let interner = self.interner.lock().unwrap();
            arg_ids
                .iter()
                .map(|&id| interner.value_of(id).clone())
                .collect()
        };
        let result = evaluator
            .apply_many(component.clone(), &args, &mut Fuel::new(fuel))
            .ok()
            .map(|value| self.intern(&value));
        self.apps.lock().unwrap().insert(key, result);
        result
    }

    /// Builds (and interns) the constructor application `ctor(args…)`,
    /// memoized by argument ids so repeated worlds share one construction.
    /// `name` is the interned name id, `ctor` the constructor symbol.
    pub fn make_ctor(&self, name: u32, ctor: &Symbol, arg_ids: &[u32]) -> u32 {
        let key: CtorKey = (name, ArgsKey::new(arg_ids));
        if let Some(&cached) = self.ctors.lock().unwrap().get(&key) {
            return cached;
        }
        let value = {
            let interner = self.interner.lock().unwrap();
            let args: Vec<Value> = arg_ids
                .iter()
                .map(|&id| interner.value_of(id).clone())
                .collect();
            Value::Ctor(ctor.clone(), args.into())
        };
        let id = self.intern(&value);
        self.ctors.lock().unwrap().insert(key, id);
        id
    }

    /// Records one guess's enumeration counters.
    pub fn record_guess(&self, terms: u64, splits: u64) {
        self.terms.fetch_add(terms, Ordering::Relaxed);
        self.splits.fetch_add(splits, Ordering::Relaxed);
    }

    /// The snapshot format version written by [`TermBank::to_json`].  Bump
    /// it whenever the value encoding or the table layout changes shape;
    /// loaders reject mismatching versions cleanly.
    pub const SNAPSHOT_VERSION: u64 = 1;

    /// Hard ceiling on the size of any one snapshot table — a corrupt or
    /// hostile snapshot cannot make [`TermBank::from_json`] allocate
    /// unboundedly, and [`TermBank::to_json`] refuses to write a bank that
    /// has outgrown it (`None`).
    pub const MAX_SNAPSHOT_ENTRIES: usize = 1 << 20;

    /// Serializes the bank to a versioned snapshot: the interned values in
    /// id order (so a restore reproduces the same dense ids), the name
    /// table, and the memoized application/constructor/world tables.
    /// Returns `None` when the bank cannot be snapshot faithfully — an
    /// interned value has no structural encoding (never the case for
    /// signature cells, which are first-order by construction) or a table
    /// exceeds [`TermBank::MAX_SNAPSHOT_ENTRIES`].
    ///
    /// Counters are *not* persisted (except the session count, which decides
    /// whether future columns count as appends): a restored bank reports
    /// only the activity of its own process.
    pub fn to_json(&self) -> Option<Json> {
        // Copy all five tables out under their locks — held together so the
        // snapshot is *consistent* (no app row can reference a value id
        // interned after the value table was copied) — and do the expensive
        // part (sorting, JSON construction) after releasing them, so
        // concurrent synthesis on the same bank stalls only for the copies.
        let (values, names, mut app_rows, mut ctor_rows, mut world_ids) = {
            let interner = self.interner.lock().unwrap();
            let names = self.names.lock().unwrap();
            let apps = self.apps.lock().unwrap();
            let ctors = self.ctors.lock().unwrap();
            let worlds = self.worlds.lock().unwrap();
            if interner.values.len() > Self::MAX_SNAPSHOT_ENTRIES
                || apps.len() > Self::MAX_SNAPSHOT_ENTRIES
                || ctors.len() > Self::MAX_SNAPSHOT_ENTRIES
            {
                return None;
            }
            let app_rows: Vec<(u32, Vec<u32>, u64, Option<u32>)> = apps
                .iter()
                .map(|((name, args, fuel), result)| {
                    (*name, args.as_slice().to_vec(), *fuel, *result)
                })
                .collect();
            let ctor_rows: Vec<(u32, Vec<u32>, u32)> = ctors
                .iter()
                .map(|((name, args), result)| (*name, args.as_slice().to_vec(), *result))
                .collect();
            (
                interner.values.clone(),
                names.clone(),
                app_rows,
                ctor_rows,
                worlds.iter().copied().collect::<Vec<u32>>(),
            )
        };

        let values: Option<Vec<Json>> = values.iter().map(value_to_json).collect();

        // Invert the name table into id order.
        let mut names_by_id: Vec<Option<&Symbol>> = vec![None; names.len()];
        for (name, &id) in names.iter() {
            *names_by_id.get_mut(id as usize)? = Some(name);
        }
        let names_json: Option<Vec<Json>> = names_by_id
            .iter()
            .map(|n| n.map(|s| Json::Str(s.as_str().to_string())))
            .collect();

        // Deterministic table order keeps snapshots byte-stable for a given
        // bank state.
        app_rows.sort();
        let apps_json: Vec<Json> = app_rows
            .into_iter()
            .map(|(name, args, fuel, result)| {
                Json::obj([
                    ("n", Json::Num(name as f64)),
                    (
                        "a",
                        Json::Arr(args.into_iter().map(|a| Json::Num(a as f64)).collect()),
                    ),
                    ("f", Json::Num(fuel as f64)),
                    ("r", Json::opt(result, |r| Json::Num(r as f64))),
                ])
            })
            .collect();
        ctor_rows.sort();
        let ctors_json: Vec<Json> = ctor_rows
            .into_iter()
            .map(|(name, args, result)| {
                Json::obj([
                    ("n", Json::Num(name as f64)),
                    (
                        "a",
                        Json::Arr(args.into_iter().map(|a| Json::Num(a as f64)).collect()),
                    ),
                    ("r", Json::Num(result as f64)),
                ])
            })
            .collect();
        world_ids.sort_unstable();

        Some(Json::obj([
            ("version", Json::Num(Self::SNAPSHOT_VERSION as f64)),
            ("kind", Json::Str("term-bank".to_string())),
            (
                "sessions",
                Json::Num(self.sessions.load(Ordering::Relaxed) as f64),
            ),
            ("values", Json::Arr(values?)),
            ("names", Json::Arr(names_json?)),
            ("apps", Json::Arr(apps_json)),
            ("ctors", Json::Arr(ctors_json)),
            (
                "worlds",
                Json::Arr(world_ids.into_iter().map(|w| Json::Num(w as f64)).collect()),
            ),
        ]))
    }

    /// Rebuilds a bank from the output of [`TermBank::to_json`].  Rejects
    /// version mismatches, structural corruption, dangling ids and oversized
    /// tables — a rejected snapshot leaves the caller exactly where a cold
    /// start would.
    pub fn from_json(json: &Json) -> Result<TermBank, JsonError> {
        let corrupt = |message: &str| JsonError {
            message: format!("term-bank snapshot: {message}"),
            offset: 0,
        };
        let version = json
            .get("version")
            .and_then(Json::as_usize)
            .ok_or_else(|| corrupt("missing version"))?;
        if version as u64 != Self::SNAPSHOT_VERSION {
            return Err(corrupt(&format!(
                "version {version} does not match supported version {}",
                Self::SNAPSHOT_VERSION
            )));
        }
        if json.get("kind").and_then(Json::as_str) != Some("term-bank") {
            return Err(corrupt("wrong snapshot kind"));
        }
        let table = |field: &'static str| -> Result<&[Json], JsonError> {
            let items = json
                .get(field)
                .and_then(Json::as_arr)
                .ok_or_else(|| corrupt(&format!("missing `{field}` table")))?;
            if items.len() > Self::MAX_SNAPSHOT_ENTRIES {
                return Err(corrupt(&format!("`{field}` exceeds the entry ceiling")));
            }
            Ok(items)
        };

        let bank = TermBank::new();
        let values = table("values")?;
        {
            let mut interner = bank.interner.lock().unwrap();
            for (index, encoded) in values.iter().enumerate() {
                let value = value_from_json(encoded).ok_or_else(|| corrupt("unparseable value"))?;
                let id = interner.intern(&value);
                // Ids are positional: interning snapshot values in order must
                // reproduce index = id (values[0] = True, values[1] = False,
                // no duplicates).  Anything else is a corrupt snapshot.
                if id as usize != index {
                    return Err(corrupt("value table is not a dense id ordering"));
                }
            }
        }
        let value_count = values.len() as u32;
        let check_id = |id: u32| -> Result<u32, JsonError> {
            if id < value_count {
                Ok(id)
            } else {
                Err(corrupt("dangling value id"))
            }
        };

        let names = table("names")?;
        {
            let mut name_table = bank.names.lock().unwrap();
            for (index, name) in names.iter().enumerate() {
                let name = name.as_str().ok_or_else(|| corrupt("non-string name"))?;
                name_table.insert(Symbol::new(name), index as u32);
            }
            if name_table.len() != names.len() {
                return Err(corrupt("duplicate names in the name table"));
            }
        }
        let name_count = names.len() as u32;
        let check_name = |id: u32| -> Result<u32, JsonError> {
            if id < name_count {
                Ok(id)
            } else {
                Err(corrupt("dangling name id"))
            }
        };
        let parse_args = |row: &Json| -> Result<Vec<u32>, JsonError> {
            row.get("a")
                .and_then(Json::as_arr)
                .ok_or_else(|| corrupt("row without args"))?
                .iter()
                .map(|a| {
                    a.as_usize()
                        .map(|a| a as u32)
                        .ok_or_else(|| corrupt("non-numeric arg id"))
                        .and_then(check_id)
                })
                .collect()
        };

        {
            let mut apps = bank.apps.lock().unwrap();
            for row in table("apps")? {
                let name = check_name(
                    row.get("n")
                        .and_then(Json::as_usize)
                        .ok_or_else(|| corrupt("app row without name id"))?
                        as u32,
                )?;
                let args = parse_args(row)?;
                let fuel =
                    row.get("f")
                        .and_then(Json::as_usize)
                        .ok_or_else(|| corrupt("app row without fuel"))? as u64;
                let result = match row.get("r") {
                    Some(Json::Null) | None => None,
                    Some(r) => Some(check_id(
                        r.as_usize().ok_or_else(|| corrupt("non-numeric result"))? as u32,
                    )?),
                };
                apps.insert((name, ArgsKey::new(&args), fuel), result);
            }
        }
        {
            let mut ctors = bank.ctors.lock().unwrap();
            for row in table("ctors")? {
                let name = check_name(
                    row.get("n")
                        .and_then(Json::as_usize)
                        .ok_or_else(|| corrupt("ctor row without name id"))?
                        as u32,
                )?;
                let args = parse_args(row)?;
                let result = check_id(
                    row.get("r")
                        .and_then(Json::as_usize)
                        .ok_or_else(|| corrupt("ctor row without result"))?
                        as u32,
                )?;
                ctors.insert((name, ArgsKey::new(&args)), result);
            }
        }
        {
            let mut worlds = bank.worlds.lock().unwrap();
            for id in table("worlds")? {
                let id = check_id(
                    id.as_usize()
                        .ok_or_else(|| corrupt("non-numeric world id"))? as u32,
                )?;
                worlds.insert(id);
            }
        }
        let sessions = json
            .get("sessions")
            .and_then(Json::as_usize)
            .ok_or_else(|| corrupt("missing session count"))? as u64;
        bank.sessions.store(sessions, Ordering::Relaxed);
        Ok(bank)
    }

    /// A snapshot of the session counters.
    pub fn stats(&self) -> TermBankStats {
        TermBankStats {
            terms_enumerated: self.terms.load(Ordering::Relaxed),
            column_appends: self.appends.load(Ordering::Relaxed),
            eq_class_splits: self.splits.load(Ordering::Relaxed),
            bank_hits: self.hits.load(Ordering::Relaxed),
            bank_misses: self.misses.load(Ordering::Relaxed),
            sessions: self.sessions.load(Ordering::Relaxed),
            interned_values: self.interner.lock().unwrap().values.len() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hanoi_lang::types::TypeEnv;

    fn nat_succ() -> Value {
        Value::native("succ", 1, |args| {
            Ok(Value::nat(args[0].as_nat().unwrap_or(0) + 1))
        })
    }

    #[test]
    fn booleans_have_fixed_ids() {
        let bank = TermBank::new();
        assert_eq!(bank.intern(&Value::tru()), TRUE_ID);
        assert_eq!(bank.intern(&Value::fls()), FALSE_ID);
        assert_eq!(bool_id(true), TRUE_ID);
        assert_eq!(bool_of(FALSE_ID), Some(false));
        // A freshly built structural boolean interns to the same id.
        assert_eq!(bank.intern(&Value::bool(true)), TRUE_ID);
        // Non-boolean ids are never booleans.
        let nat = bank.intern(&Value::nat(3));
        assert_eq!(bool_of(nat), None);
        assert_eq!(bank.value_of(nat), Value::nat(3));
    }

    #[test]
    fn application_results_are_memoized_including_failures() {
        let tyenv = TypeEnv::new();
        let evaluator = Evaluator::new(&tyenv);
        let bank = TermBank::new();
        let succ = nat_succ();
        let name = bank.name_id(&Symbol::new("succ"));
        assert_eq!(name, bank.name_id(&Symbol::new("succ")));
        let one = bank.intern(&Value::nat(1));

        let first = bank.apply_component(&evaluator, name, &succ, &[one], 100);
        assert_eq!(first.map(|id| bank.value_of(id)), Some(Value::nat(2)));
        let second = bank.apply_component(&evaluator, name, &succ, &[one], 100);
        assert_eq!(second, first);
        let stats = bank.stats();
        assert_eq!(stats.bank_hits, 1);
        assert_eq!(stats.bank_misses, 1);

        // A non-function "component" fails to apply; the failure is memoized
        // too.
        let broken = Value::nat(0);
        let broken_name = bank.name_id(&Symbol::new("broken"));
        assert_ne!(broken_name, name);
        assert_eq!(
            bank.apply_component(&evaluator, broken_name, &broken, &[one], 100),
            None
        );
        assert_eq!(
            bank.apply_component(&evaluator, broken_name, &broken, &[one], 100),
            None
        );
        assert_eq!(bank.stats().bank_hits, 2);
    }

    #[test]
    fn constructor_cells_are_shared() {
        let bank = TermBank::new();
        let zero = bank.intern(&Value::nat(0));
        let s = Symbol::new("S");
        let s_id = bank.name_id(&s);
        let one_a = bank.make_ctor(s_id, &s, &[zero]);
        let one_b = bank.make_ctor(s_id, &s, &[zero]);
        assert_eq!(one_a, one_b);
        assert_eq!(bank.value_of(one_a), Value::nat(1));
        // And the constructed value coincides with independent interning.
        assert_eq!(bank.intern(&Value::nat(1)), one_a);
    }

    #[test]
    fn inline_and_heap_argument_keys_roundtrip() {
        let bank = TermBank::new();
        let ids: Vec<u32> = (0..6).map(|n| bank.intern(&Value::nat(n))).collect();
        let tuple = Symbol::new("Wide");
        let wide = bank.name_id(&tuple);
        // Six arguments exceed the inline capacity and fall back to the heap
        // key; memoization must still hit.
        let a = bank.make_ctor(wide, &tuple, &ids);
        let b = bank.make_ctor(wide, &tuple, &ids);
        assert_eq!(a, b);
        assert_ne!(ArgsKey::new(&ids[..2]), ArgsKey::new(&ids[..3]));
    }

    #[test]
    fn snapshots_round_trip_every_table() {
        let tyenv = TypeEnv::new();
        let evaluator = Evaluator::new(&tyenv);
        let bank = TermBank::new();
        let succ = nat_succ();
        let succ_name = bank.name_id(&Symbol::new("succ"));
        let one = bank.intern(&Value::nat(1));
        let two = bank
            .apply_component(&evaluator, succ_name, &succ, &[one], 100)
            .unwrap();
        // A memoized failure too.
        let broken_name = bank.name_id(&Symbol::new("broken"));
        assert_eq!(
            bank.apply_component(&evaluator, broken_name, &Value::nat(0), &[one], 100),
            None
        );
        let s = Symbol::new("S");
        let s_id = bank.name_id(&s);
        let three = bank.make_ctor(s_id, &s, &[two]);
        bank.begin_session(&[(Value::nat(1), true)]);

        let snapshot = bank.to_json().expect("first-order bank snapshots");
        let text = snapshot.render_pretty();
        let restored = TermBank::from_json(&hanoi_lang::json::parse(&text).unwrap()).unwrap();

        // Ids are reproduced positionally.
        assert_eq!(restored.intern(&Value::tru()), TRUE_ID);
        assert_eq!(restored.intern(&Value::nat(1)), one);
        assert_eq!(restored.value_of(two), Value::nat(2));
        assert_eq!(restored.value_of(three), Value::nat(3));
        // Memoized applications (including the failure) answer without the
        // interpreter: a broken component would error if re-evaluated, and
        // the hit counter proves the store was consulted.
        assert_eq!(
            restored.apply_component(&evaluator, succ_name, &succ, &[one], 100),
            Some(two)
        );
        assert_eq!(
            restored.apply_component(&evaluator, broken_name, &Value::nat(0), &[one], 100),
            None
        );
        assert_eq!(restored.stats().bank_hits, 2);
        assert_eq!(restored.stats().bank_misses, 0);
        // The name table survived (same ids for the same names).
        assert_eq!(restored.name_id(&Symbol::new("succ")), succ_name);
        assert_eq!(restored.name_id(&s), s_id);
        // Worlds survived: re-registering the same example is not an append.
        let columns = restored.begin_session(&[(Value::nat(1), true)]);
        assert_eq!(columns, vec![(one, false)]);
        assert_eq!(restored.stats().column_appends, 0);
        // …but a genuinely new world still counts as one.
        restored.begin_session(&[(Value::nat(9), true)]);
        assert_eq!(restored.stats().column_appends, 1);
    }

    #[test]
    fn corrupt_and_mismatched_bank_snapshots_are_rejected() {
        let bank = TermBank::new();
        let one = bank.intern(&Value::nat(1));
        let s = Symbol::new("S");
        let s_id = bank.name_id(&s);
        bank.make_ctor(s_id, &s, &[one]);
        let good = bank.to_json().unwrap();

        let mutate = |field: &str, value: Json| -> Json {
            let mut copy = good.clone();
            if let Json::Obj(map) = &mut copy {
                map.insert(field.to_string(), value);
            }
            copy
        };
        assert!(TermBank::from_json(&mutate("version", Json::Num(99.0))).is_err());
        assert!(TermBank::from_json(&mutate("kind", Json::Str("check-cache".into()))).is_err());
        // A value table not headed by True/False cannot reproduce the fixed
        // boolean ids.
        assert!(TermBank::from_json(&mutate(
            "values",
            Json::Arr(vec![
                hanoi_lang::json::value_to_json(&Value::nat(1)).unwrap()
            ])
        ))
        .is_err());
        // Dangling ids are rejected.
        assert!(
            TermBank::from_json(&mutate("worlds", Json::Arr(vec![Json::Num(10_000.0)]))).is_err()
        );
        assert!(TermBank::from_json(&Json::Num(1.0)).is_err());
    }

    #[test]
    fn sessions_tag_new_columns_and_count_appends() {
        let bank = TermBank::new();
        let first = bank.begin_session(&[(Value::nat(0), true), (Value::nat(1), false)]);
        // The initial population is not an append.
        assert_eq!(
            first.iter().map(|(_, new)| *new).collect::<Vec<_>>(),
            vec![true, true]
        );
        assert_eq!(bank.stats().column_appends, 0);

        // One counterexample arrives: exactly one new column.
        let second = bank.begin_session(&[
            (Value::nat(0), true),
            (Value::nat(1), false),
            (Value::nat(2), false),
        ]);
        assert_eq!(
            second.iter().map(|(_, new)| *new).collect::<Vec<_>>(),
            vec![false, false, true]
        );
        // Ids are stable across sessions.
        assert_eq!(first[0].0, second[0].0);
        assert_eq!(first[1].0, second[1].0);
        let stats = bank.stats();
        assert_eq!(stats.column_appends, 1);
        assert_eq!(stats.sessions, 2);

        // Re-running with the same examples appends nothing.
        let third = bank.begin_session(&[(Value::nat(2), false)]);
        assert_eq!(third, vec![(second[2].0, false)]);
        assert_eq!(bank.stats().column_appends, 1);
    }
}
