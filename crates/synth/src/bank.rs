//! The persistent term bank: incremental, memoized signature evaluation for
//! the synthesis engine.
//!
//! `Engine::guess` historically rebuilt its observational-equivalence term
//! pool from zero on every call: each CEGIS iteration — often triggered by a
//! *single* new counterexample — re-enumerated every term and re-ran the
//! interpreter on every `(term, example world)` pair, even though all but one
//! column of the signature matrix had already been computed in the previous
//! iteration.  [`TermBank`] makes the expensive parts of that matrix a
//! once-per-session cost, the same way the verifier's
//! `hanoi_verifier::poolcache::PoolCache` made quantifier pools a
//! once-per-session cost:
//!
//! * **value interner** — every value that ever appears in a signature cell
//!   is interned to a dense `u32` id ([`TermBank::intern`]), once per
//!   distinct value per session.  Signature rows, deduplication and the
//!   evaluation store all operate on ids, so the hot path hashes and
//!   compares machine integers instead of walking constructor trees; the
//!   booleans get the fixed ids [`TRUE_ID`]/[`FALSE_ID`], making boolean
//!   cells (equality tests, connectives) entirely allocation- and hash-free;
//! * **column-keyed evaluation store** — a signature cell for a
//!   component-application term `f t₁ … tₖ` on world `w` depends only on the
//!   component and the argument value ids `(sig(t₁)[w], …, sig(tₖ)[w])`,
//!   never on the world index.  The bank memoizes
//!   `(component, argument ids) → result id`, so when a new counterexample
//!   appends a column to the signature matrix, every cell of every *old*
//!   column is a cache hit and only the new column's genuinely new argument
//!   rows reach the interpreter.  The memoization is semantically
//!   transparent (each evaluation runs under a fresh fuel budget of the
//!   same size, which is part of the key), which is what makes a
//!   bank-backed engine return byte-identical predicates to a
//!   rebuild-per-iteration engine — pinned by
//!   `tests/synth_incremental_equivalence.rs`;
//! * **constructor store** — structural cells (`S (S O)`-style constants)
//!   are memoized by `(constructor, argument ids)` too, so repeated worlds
//!   share one construction;
//! * **world registry** — the root example values the bank has seen, used to
//!   tag each guess's worlds as *old columns* (already paid for) or *new
//!   columns* (this iteration's counterexamples) and to count column
//!   appends;
//! * **signature matrix** ([`SigMatrix`]) — boolean signature rows are packed
//!   into `u64` bitset words (one bit lane plus one validity-mask lane per
//!   row; see [`BitRow`]), so row deduplication, target matching and the
//!   boolean connectives of the guess loop are word-parallel integer
//!   operations; rows over non-boolean types keep the dense-id
//!   representation as a fallback lane ([`Sig::Ids`]);
//! * **guess memo** — whole guess outcomes, keyed by a structural digest of
//!   everything a guess reads (see `Engine::guess`), are memoized across
//!   schedule entries, CEGIS iterations and — via the snapshot — processes;
//! * **batched probes** — [`TermBank::apply_batch`] answers a whole
//!   component×split batch of signature probes with one lock round-trip per
//!   table instead of one per probe, which is what keeps parallel guess
//!   workers off each other's locks;
//! * **instrumentation hub** — terms enumerated, signature-column appends,
//!   equivalence-class splits (previously-merged terms distinguished by a
//!   new column), bank hit/miss, bitset-op, memo-hit and probe-batch
//!   counters, surfaced through `RunStats` and the `cegis_hot_path` bench's
//!   `synthesis_multi_cex` workload.
//!
//! The bank is owned by the CEGIS session (each synthesizer instance holds
//! one across all of its `synthesize` calls) and is safe to share with the
//! engine's parallel per-size layer construction: the stores sit behind
//! mutexes with short critical sections, and concurrent misses for the same
//! key simply evaluate the same pure function twice.  Which `u32` a value
//! interns to may differ between runs, but every engine decision depends
//! only on id *equality* within one bank, so outcomes are identical across
//! worker counts.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use hanoi_lang::ast::Expr;
use hanoi_lang::digest::Digest;
use hanoi_lang::eval::{Evaluator, Fuel};
use hanoi_lang::json::{value_from_json, value_to_json, Json, JsonError};
use hanoi_lang::parser::parse_expr;
use hanoi_lang::symbol::Symbol;
use hanoi_lang::value::Value;

/// A fast, non-cryptographic hasher (splitmix64 finalization per write) for
/// the bank's integer-keyed tables and the engine's signature-row sets.
/// Lookup keys here are dense ids and id rows, where SipHash's per-hash
/// overhead dominated the actual probe cost.
#[derive(Debug, Default, Clone)]
pub struct IdHasher(u64);

impl IdHasher {
    #[inline]
    fn mix(&mut self, v: u64) {
        let mut z = (self.0 ^ v).wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        self.0 = z ^ (z >> 31);
    }
}

impl Hasher for IdHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.mix(u64::from_le_bytes(buf) ^ (chunk.len() as u64));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.mix(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.mix(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.mix(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.mix(n as u64);
    }
}

/// The [`std::hash::BuildHasher`] for [`IdHasher`]-backed tables.
pub type IdHashBuilder = BuildHasherDefault<IdHasher>;

/// The interned id of `True` (pre-interned by every bank).
pub const TRUE_ID: u32 = 0;
/// The interned id of `False` (pre-interned by every bank).
pub const FALSE_ID: u32 = 1;

/// The id of a boolean value.
pub fn bool_id(b: bool) -> u32 {
    if b {
        TRUE_ID
    } else {
        FALSE_ID
    }
}

/// The boolean denoted by an interned id, if it is one.  Because the two
/// booleans are pre-interned at fixed ids, this never needs the interner.
pub fn bool_of(id: u32) -> Option<bool> {
    match id {
        TRUE_ID => Some(true),
        FALSE_ID => Some(false),
        _ => None,
    }
}

/// A boolean signature row packed into `u64` bitset words: one *bit lane*
/// holding the boolean cell values and one *validity lane* marking which
/// cells hold a boolean at all (a zero validity bit is an error/absent
/// cell).  Two invariants make word-wise equality exactly cell-wise
/// equality: `bits ⊆ valid` (invalid cells carry a zero bit), and bits past
/// the row length are zero in both lanes.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BitRow {
    len: u32,
    bits: Box<[u64]>,
    valid: Box<[u64]>,
}

impl BitRow {
    /// The cell at world `w` as an interned id ([`TRUE_ID`]/[`FALSE_ID`], or
    /// `None` for an invalid cell).
    pub fn cell(&self, w: usize) -> Option<u32> {
        let (word, bit) = (w / 64, w % 64);
        if self.valid[word] >> bit & 1 == 1 {
            Some(bool_id(self.bits[word] >> bit & 1 == 1))
        } else {
            None
        }
    }

    /// Number of worlds (columns) in the row.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the row has zero columns.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// One term signature across the example worlds, in *canonical* form: a row
/// of a boolean-typed term whose cells are all booleans-or-errors packs to
/// [`Sig::Bits`]; every other row (non-boolean types, or a boolean-typed row
/// holding a non-boolean id) keeps the dense-id fallback lane [`Sig::Ids`].
/// Because the representation is a pure function of the cell contents, equal
/// logical rows always share a variant, so derived equality/hashing is
/// exactly cell-wise row equality — pinned by
/// `tests/synth_incremental_equivalence.rs`, which runs the id-row fallback
/// path against the packed path on the whole benchmark suite.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Sig {
    /// A packed boolean row (shared by reference; rows are immutable).
    Bits(Arc<BitRow>),
    /// One interned value id per world (`None` = evaluation failed there).
    Ids(Arc<[Option<u32>]>),
}

impl Sig {
    /// The cell at world `w`.
    pub fn cell(&self, w: usize) -> Option<u32> {
        match self {
            Sig::Bits(row) => row.cell(w),
            Sig::Ids(cells) => cells[w],
        }
    }

    /// Number of worlds (columns) in the row.
    pub fn len(&self) -> usize {
        match self {
            Sig::Bits(row) => row.len(),
            Sig::Ids(cells) => cells.len(),
        }
    }

    /// Whether the row has zero columns.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The old-column projection of a signature row (equivalence-class split
/// detection).  Canonical exactly like [`Sig`]: if every *old* cell is a
/// boolean-or-error the projection is the masked word lanes (new columns
/// zeroed in both lanes, so word equality is old-cell equality); otherwise
/// it is the compacted old-cell id row.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum OldSig {
    /// Masked lanes of a packed (or packable-on-old-columns) row.
    Bits {
        /// The bit lane with new columns zeroed.
        bits: Box<[u64]>,
        /// The validity lane with new columns zeroed.
        valid: Box<[u64]>,
    },
    /// The old-column cells of an unpackable row, compacted.
    Ids(Box<[Option<u32>]>),
}

/// The signature-matrix factory of one guess: builds canonical [`Sig`] rows
/// of a fixed width, applies the boolean connectives and old-column
/// projections word-parallel where rows are packed, and counts the `u64`
/// word operations it performs (surfaced as
/// [`TermBankStats::bitset_row_ops`]).  With `enabled = false` every row
/// stays in the id-row fallback lane — the pre-bitset representation, kept
/// as a test oracle.
///
/// The matrix is shared by reference with parallel guess workers; the op
/// counter is atomic and all methods take `&self`.
#[derive(Debug)]
pub struct SigMatrix {
    width: usize,
    enabled: bool,
    ops: AtomicU64,
}

impl SigMatrix {
    /// A matrix factory for rows of `width` worlds.
    pub fn new(width: usize, enabled: bool) -> SigMatrix {
        SigMatrix {
            width,
            enabled,
            ops: AtomicU64::new(0),
        }
    }

    /// The row width (number of example worlds).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Words per packed lane.
    fn words(&self) -> usize {
        self.width.div_ceil(64)
    }

    fn count_ops(&self) {
        self.ops.fetch_add(self.words() as u64, Ordering::Relaxed);
    }

    /// Word operations performed so far.
    pub fn ops(&self) -> u64 {
        self.ops.load(Ordering::Relaxed)
    }

    /// Packs boolean-or-error cells into lanes.  `cells` yielding ids other
    /// than [`TRUE_ID`]/[`FALSE_ID`] is a caller bug (checked by `pack`).
    fn pack_lanes(&self, cells: impl Iterator<Item = Option<u32>>) -> BitRow {
        let words = self.words();
        let mut bits = vec![0u64; words];
        let mut valid = vec![0u64; words];
        for (w, cell) in cells.enumerate() {
            if let Some(id) = cell {
                valid[w / 64] |= 1 << (w % 64);
                if id == TRUE_ID {
                    bits[w / 64] |= 1 << (w % 64);
                }
            }
        }
        self.count_ops();
        BitRow {
            len: self.width as u32,
            bits: bits.into(),
            valid: valid.into(),
        }
    }

    /// The canonical row for `cells`: packed when `boolean` (the term's type
    /// is `bool`), the matrix is enabled, and every cell is a
    /// boolean-or-error; the id row otherwise.
    pub fn pack(&self, boolean: bool, cells: Vec<Option<u32>>) -> Sig {
        debug_assert_eq!(cells.len(), self.width);
        if self.enabled
            && boolean
            && cells
                .iter()
                .all(|cell| cell.is_none_or(|id| bool_of(id).is_some()))
        {
            Sig::Bits(Arc::new(self.pack_lanes(cells.into_iter())))
        } else {
            Sig::Ids(cells.into())
        }
    }

    /// Strict boolean negation of a row: non-boolean and error cells stay
    /// invalid.  Word-parallel on packed rows.
    pub fn not(&self, sig: &Sig) -> Sig {
        match sig {
            Sig::Bits(row) => {
                let bits: Box<[u64]> = row
                    .bits
                    .iter()
                    .zip(row.valid.iter())
                    .map(|(b, v)| !b & v)
                    .collect();
                self.count_ops();
                Sig::Bits(Arc::new(BitRow {
                    len: row.len,
                    bits,
                    valid: row.valid.clone(),
                }))
            }
            Sig::Ids(cells) => self.pack(
                true,
                cells
                    .iter()
                    .map(|v| v.and_then(bool_of).map(|b| bool_id(!b)))
                    .collect(),
            ),
        }
    }

    /// Strict conjunction (`conj`) or disjunction of two rows: a cell is
    /// valid only where both operand cells are booleans.  Word-parallel when
    /// both rows are packed.
    pub fn connective(&self, a: &Sig, b: &Sig, conj: bool) -> Sig {
        if let (Sig::Bits(x), Sig::Bits(y)) = (a, b) {
            let valid: Box<[u64]> = x
                .valid
                .iter()
                .zip(y.valid.iter())
                .map(|(p, q)| p & q)
                .collect();
            let bits: Box<[u64]> = if conj {
                x.bits
                    .iter()
                    .zip(y.bits.iter())
                    .map(|(p, q)| p & q)
                    .collect()
            } else {
                x.bits
                    .iter()
                    .zip(y.bits.iter())
                    .zip(valid.iter())
                    .map(|((p, q), v)| (p | q) & v)
                    .collect()
            };
            self.count_ops();
            return Sig::Bits(Arc::new(BitRow {
                len: x.len,
                bits,
                valid,
            }));
        }
        self.pack(
            true,
            (0..self.width)
                .map(|w| {
                    let x = a.cell(w).and_then(bool_of)?;
                    let y = b.cell(w).and_then(bool_of)?;
                    Some(bool_id(if conj { x && y } else { x || y }))
                })
                .collect(),
        )
    }

    /// The structural-equality row of two same-type rows: `bool_id(x == y)`
    /// where both cells are present, invalid elsewhere.  The result is a
    /// boolean row and packs.
    pub fn equality(&self, a: &Sig, b: &Sig) -> Sig {
        self.pack(
            true,
            (0..self.width)
                .map(|w| match (a.cell(w), b.cell(w)) {
                    (Some(x), Some(y)) => Some(bool_id(x == y)),
                    _ => None,
                })
                .collect(),
        )
    }

    /// Whether a candidate row hits the target row (both are canonical, so
    /// plain equality is cell-wise equality; the packed/packed case is one
    /// word compare per lane word).
    pub fn matches(&self, sig: &Sig, target: &Sig) -> bool {
        if let (Sig::Bits(_), Sig::Bits(_)) = (sig, target) {
            self.count_ops();
        }
        sig == target
    }

    /// The old-column mask as lane words (for [`SigMatrix::project`]).
    pub fn mask_words(&self, mask: &[bool]) -> Box<[u64]> {
        let mut words = vec![0u64; self.words()];
        for (w, &old) in mask.iter().enumerate() {
            if old {
                words[w / 64] |= 1 << (w % 64);
            }
        }
        words.into()
    }

    /// Projects a row onto the old columns (`mask[w]`/`mask_words` flag the
    /// old worlds), in canonical [`OldSig`] form: masked word lanes whenever
    /// every old cell is a boolean-or-error, the compacted id row otherwise.
    pub fn project(&self, sig: &Sig, mask_words: &[u64], mask: &[bool]) -> OldSig {
        match sig {
            Sig::Bits(row) => {
                self.count_ops();
                OldSig::Bits {
                    bits: row
                        .bits
                        .iter()
                        .zip(mask_words)
                        .map(|(b, m)| b & m)
                        .collect(),
                    valid: row
                        .valid
                        .iter()
                        .zip(mask_words)
                        .map(|(v, m)| v & m)
                        .collect(),
                }
            }
            Sig::Ids(cells) => {
                let old_cells = || cells.iter().zip(mask).filter(|(_, &old)| old);
                if self.enabled
                    && old_cells().all(|(cell, _)| cell.is_none_or(|id| bool_of(id).is_some()))
                {
                    let words = self.words();
                    let mut bits = vec![0u64; words];
                    let mut valid = vec![0u64; words];
                    for (w, cell) in cells.iter().enumerate() {
                        if !mask[w] {
                            continue;
                        }
                        if let Some(b) = cell.and_then(bool_of) {
                            valid[w / 64] |= 1 << (w % 64);
                            if b {
                                bits[w / 64] |= 1 << (w % 64);
                            }
                        }
                    }
                    self.count_ops();
                    OldSig::Bits {
                        bits: bits.into(),
                        valid: valid.into(),
                    }
                } else {
                    OldSig::Ids(old_cells().map(|(cell, _)| *cell).collect())
                }
            }
        }
    }
}

/// One memoized whole-guess outcome (see `Engine::guess`): the result plus
/// the enumeration counters to *replay* on a hit, so a memo-served guess
/// reports exactly the terms/splits a recomputation would have — which is
/// what keeps the persistent-bank ≡ fresh-bank counter equivalences exact.
#[derive(Debug, Clone, PartialEq)]
pub struct GuessMemo {
    /// The guess outcome: a matching boolean term, or `None` when the guess
    /// exhausted its size budget without a match (failures are memoized too
    /// — they are the expensive case).
    pub result: Option<Expr>,
    /// Terms the original enumeration counted.
    pub terms: u64,
    /// Equivalence-class splits the original enumeration counted.
    pub splits: u64,
    /// Arithmetic atoms (integer literals and linear-arithmetic component
    /// applications) the original enumeration counted.
    pub arith: u64,
}

/// Counter snapshot of one synthesis session's term-bank activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TermBankStats {
    /// Candidate terms enumerated (pre-deduplication) across all guesses.
    pub terms_enumerated: u64,
    /// Signature columns appended after the first synthesize call: one per
    /// new example world (counterexamples plus their trace-completion
    /// subvalues).
    pub column_appends: u64,
    /// Observational-equivalence classes re-split because a freshly appended
    /// column distinguished previously-merged terms.
    pub eq_class_splits: u64,
    /// Component-application evaluations served from the bank without
    /// touching the interpreter.
    pub bank_hits: u64,
    /// Component-application evaluations that reached the interpreter (each
    /// becomes a cached row for every later iteration).
    pub bank_misses: u64,
    /// Number of `synthesize` calls the bank has served.
    pub sessions: u64,
    /// Distinct values interned by the session.
    pub interned_values: u64,
    /// Word-parallel `u64` operations performed on packed signature rows
    /// (packing, connectives, target matches, old-column projections).
    pub bitset_row_ops: u64,
    /// Whole-guess outcomes served from the guess memo instead of being
    /// re-enumerated.
    pub guess_memo_hits: u64,
    /// Batched signature-probe calls ([`TermBank::apply_batch`]): each is one
    /// lock round-trip per bank table for a whole component×split batch.
    pub probe_batches: u64,
    /// Arithmetic atoms enumerated: integer literals seeded into guesses plus
    /// applications of linear-arithmetic components
    /// ([`crate::arith::components`]).  Zero unless the numeric grammar is
    /// enabled.
    pub arith_atoms: u64,
}

impl TermBankStats {
    /// Total component-application signature evaluations requested.
    pub fn requests(&self) -> u64 {
        self.bank_hits + self.bank_misses
    }
}

/// The session-wide value interner: structural value ↔ dense id.
#[derive(Debug)]
struct Interner {
    ids: HashMap<Value, u32, IdHashBuilder>,
    values: Vec<Value>,
}

impl Interner {
    fn new() -> Interner {
        let mut interner = Interner {
            ids: HashMap::default(),
            values: Vec::new(),
        };
        // Fixed boolean ids (see `TRUE_ID`/`FALSE_ID`).
        interner.intern(&Value::tru());
        interner.intern(&Value::fls());
        interner
    }

    fn intern(&mut self, value: &Value) -> u32 {
        if let Some(&id) = self.ids.get(value) {
            return id;
        }
        let id = self.values.len() as u32;
        self.values.push(value.clone());
        self.ids.insert(value.clone(), id);
        id
    }

    fn value_of(&self, id: u32) -> &Value {
        &self.values[id as usize]
    }
}

/// The interned argument-id tuple of an application or construction key.
/// Tuples of up to four arguments (every benchmark component) are stored
/// inline, so a cache probe allocates nothing.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum ArgsKey {
    Inline([u32; 4], u8),
    Heap(Box<[u32]>),
}

impl ArgsKey {
    fn new(args: &[u32]) -> ArgsKey {
        if args.len() <= 4 {
            let mut inline = [u32::MAX; 4];
            inline[..args.len()].copy_from_slice(args);
            ArgsKey::Inline(inline, args.len() as u8)
        } else {
            ArgsKey::Heap(args.into())
        }
    }

    fn as_slice(&self) -> &[u32] {
        match self {
            ArgsKey::Inline(inline, len) => &inline[..*len as usize],
            ArgsKey::Heap(args) => args,
        }
    }
}

/// Key of one memoized application or construction: the interned name id of
/// the component (or constructor), the interned argument ids, and — for
/// applications — the fuel budget the evaluation ran under.
type AppKey = (u32, ArgsKey, u64);
type CtorKey = (u32, ArgsKey);

/// The persistent term bank of one CEGIS session.
#[derive(Debug)]
pub struct TermBank {
    interner: Mutex<Interner>,
    /// Component/constructor names interned to dense ids, so cache keys hash
    /// integers instead of strings.
    names: Mutex<HashMap<Symbol, u32, IdHashBuilder>>,
    /// `(component, argument ids, fuel) → result id` (`None` = the
    /// application failed or ran out of fuel; failures are memoized too).
    apps: Mutex<HashMap<AppKey, Option<u32>, IdHashBuilder>>,
    /// `(constructor, argument ids) → constructed value id`.
    ctors: Mutex<HashMap<CtorKey, u32, IdHashBuilder>>,
    /// Ids of root example values whose signature columns have been paid
    /// for.
    worlds: Mutex<HashSet<u32, IdHashBuilder>>,
    /// Whole-guess outcomes keyed by the guess digest (see `Engine::guess`
    /// for the key derivation and the soundness argument).
    guesses: Mutex<HashMap<u128, GuessMemo, IdHashBuilder>>,
    sessions: AtomicU64,
    terms: AtomicU64,
    appends: AtomicU64,
    splits: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    bit_ops: AtomicU64,
    memo_hits: AtomicU64,
    batches: AtomicU64,
    arith: AtomicU64,
}

impl Default for TermBank {
    fn default() -> Self {
        TermBank {
            interner: Mutex::new(Interner::new()),
            names: Mutex::new(HashMap::default()),
            apps: Mutex::new(HashMap::default()),
            ctors: Mutex::new(HashMap::default()),
            worlds: Mutex::new(HashSet::default()),
            guesses: Mutex::new(HashMap::default()),
            sessions: AtomicU64::new(0),
            terms: AtomicU64::new(0),
            appends: AtomicU64::new(0),
            splits: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            bit_ops: AtomicU64::new(0),
            memo_hits: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            arith: AtomicU64::new(0),
        }
    }
}

impl TermBank {
    /// An empty bank.
    pub fn new() -> TermBank {
        TermBank::default()
    }

    /// Interns a value (idempotent; one tree walk per distinct value per
    /// session).
    pub fn intern(&self, value: &Value) -> u32 {
        self.interner.lock().unwrap().intern(value)
    }

    /// The value denoted by an interned id.
    pub fn value_of(&self, id: u32) -> Value {
        self.interner.lock().unwrap().value_of(id).clone()
    }

    /// Interns a component or constructor *name* to a dense id (distinct
    /// from the value-id space), so evaluation-cache keys hash integers.
    pub fn name_id(&self, name: &Symbol) -> u32 {
        let mut names = self.names.lock().unwrap();
        let next = names.len() as u32;
        *names.entry(name.clone()).or_insert(next)
    }

    /// Begins one `synthesize` call: registers the root example values and
    /// returns, per example, its interned id and whether its signature
    /// column is *new* to the bank.  Columns arriving after the first call
    /// are counted as appends — the incremental cost of one CEGIS iteration.
    pub fn begin_session(&self, examples: &[(Value, bool)]) -> Vec<(u32, bool)> {
        let first = self.sessions.fetch_add(1, Ordering::Relaxed) == 0;
        let columns: Vec<(u32, bool)> = examples
            .iter()
            .map(|(value, _)| {
                let id = self.intern(value);
                let is_new = self.worlds.lock().unwrap().insert(id);
                (id, is_new)
            })
            .collect();
        if !first {
            let appended = columns.iter().filter(|(_, new)| *new).count() as u64;
            self.appends.fetch_add(appended, Ordering::Relaxed);
        }
        columns
    }

    /// Evaluates `component` (with interned name id `name`) on the values
    /// denoted by `arg_ids`, memoized.  Every actual evaluation runs under a
    /// fresh `fuel`-step budget (part of the key), so the cached result is
    /// exactly what an unmemoized engine would have computed.
    pub fn apply_component(
        &self,
        evaluator: &Evaluator<'_>,
        name: u32,
        component: &Value,
        arg_ids: &[u32],
        fuel: u64,
    ) -> Option<u32> {
        let key: AppKey = (name, ArgsKey::new(arg_ids), fuel);
        if let Some(cached) = self.apps.lock().unwrap().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return *cached;
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let args: Vec<Value> = {
            let interner = self.interner.lock().unwrap();
            arg_ids
                .iter()
                .map(|&id| interner.value_of(id).clone())
                .collect()
        };
        let result = evaluator
            .apply_many(component.clone(), &args, &mut Fuel::new(fuel))
            .ok()
            .map(|value| self.intern(&value));
        self.apps.lock().unwrap().insert(key, result);
        result
    }

    /// Evaluates a whole batch of component-application probes with one lock
    /// round-trip per bank table, instead of one per probe as
    /// [`TermBank::apply_component`] does.  `probes` is `valid.len()` probes
    /// of `arity` argument ids each, flattened; a probe with `valid[p] ==
    /// false` (an argument failed to evaluate) answers `None` without
    /// touching the bank — exactly the per-probe short-circuit of the
    /// unbatched path.
    ///
    /// Hit/miss accounting matches a sequential probe-by-probe run: the
    /// first occurrence of a missing key in the batch is a miss, duplicate
    /// occurrences are hits.  All misses are evaluated outside any lock and
    /// inserted together.
    #[allow(clippy::too_many_arguments)]
    pub fn apply_batch(
        &self,
        evaluator: &Evaluator<'_>,
        name: u32,
        component: &Value,
        fuel: u64,
        arity: usize,
        probes: &[u32],
        valid: &[bool],
    ) -> Vec<Option<u32>> {
        debug_assert_eq!(probes.len(), valid.len() * arity);
        self.batches.fetch_add(1, Ordering::Relaxed);
        let mut results: Vec<Option<u32>> = vec![None; valid.len()];
        // Pass 1 — one probe of the application store for the whole batch.
        // `pending` holds the genuinely new keys in first-occurrence order;
        // `targets[j]` lists the result slots pending key `j` must fill.
        let mut pending: Vec<AppKey> = Vec::new();
        let mut targets: Vec<Vec<usize>> = Vec::new();
        {
            let mut first_seen: HashMap<AppKey, usize, IdHashBuilder> = HashMap::default();
            let apps = self.apps.lock().unwrap();
            let mut hits = 0u64;
            for (p, &ok) in valid.iter().enumerate() {
                if !ok {
                    continue;
                }
                let key: AppKey = (
                    name,
                    ArgsKey::new(&probes[p * arity..(p + 1) * arity]),
                    fuel,
                );
                if let Some(cached) = apps.get(&key) {
                    hits += 1;
                    results[p] = *cached;
                    continue;
                }
                match first_seen.get(&key) {
                    Some(&j) => {
                        // A duplicate of an in-batch miss: a sequential run
                        // would have found it cached by now.
                        hits += 1;
                        targets[j].push(p);
                    }
                    None => {
                        first_seen.insert(key.clone(), pending.len());
                        targets.push(vec![p]);
                        pending.push(key);
                    }
                }
            }
            self.hits.fetch_add(hits, Ordering::Relaxed);
            self.misses
                .fetch_add(pending.len() as u64, Ordering::Relaxed);
        }
        if pending.is_empty() {
            return results;
        }
        // Pass 2 — materialize every distinct argument tuple under one
        // interner lock, then evaluate lock-free.
        let arg_values: Vec<Vec<Value>> = {
            let interner = self.interner.lock().unwrap();
            pending
                .iter()
                .map(|(_, args, _)| {
                    args.as_slice()
                        .iter()
                        .map(|&id| interner.value_of(id).clone())
                        .collect()
                })
                .collect()
        };
        let outcomes: Vec<Option<Value>> = arg_values
            .iter()
            .map(|args| {
                evaluator
                    .apply_many(component.clone(), args, &mut Fuel::new(fuel))
                    .ok()
            })
            .collect();
        // Pass 3 — intern all results under one interner lock, then publish
        // them to the application store under one store lock.
        let ids: Vec<Option<u32>> = {
            let mut interner = self.interner.lock().unwrap();
            outcomes
                .iter()
                .map(|value| value.as_ref().map(|v| interner.intern(v)))
                .collect()
        };
        {
            let mut apps = self.apps.lock().unwrap();
            for (key, &id) in pending.into_iter().zip(&ids) {
                apps.insert(key, id);
            }
        }
        for (j, slots) in targets.iter().enumerate() {
            for &p in slots {
                results[p] = ids[j];
            }
        }
        results
    }

    /// Looks up a memoized whole-guess outcome.  A hit bumps the
    /// [`TermBankStats::guess_memo_hits`] counter.
    pub fn guess_memo_get(&self, key: Digest) -> Option<GuessMemo> {
        let memo = self.guesses.lock().unwrap().get(&key.0).cloned();
        if memo.is_some() {
            self.memo_hits.fetch_add(1, Ordering::Relaxed);
        }
        memo
    }

    /// Stores a whole-guess outcome under its digest key.
    pub fn guess_memo_put(&self, key: Digest, memo: GuessMemo) {
        self.guesses.lock().unwrap().insert(key.0, memo);
    }

    /// Builds (and interns) the constructor application `ctor(args…)`,
    /// memoized by argument ids so repeated worlds share one construction.
    /// `name` is the interned name id, `ctor` the constructor symbol.
    pub fn make_ctor(&self, name: u32, ctor: &Symbol, arg_ids: &[u32]) -> u32 {
        let key: CtorKey = (name, ArgsKey::new(arg_ids));
        if let Some(&cached) = self.ctors.lock().unwrap().get(&key) {
            return cached;
        }
        let value = {
            let interner = self.interner.lock().unwrap();
            let args: Vec<Value> = arg_ids
                .iter()
                .map(|&id| interner.value_of(id).clone())
                .collect();
            Value::Ctor(ctor.clone(), args.into())
        };
        let id = self.intern(&value);
        self.ctors.lock().unwrap().insert(key, id);
        id
    }

    /// Records one guess's enumeration counters (terms, equivalence-class
    /// splits, arithmetic atoms, and word operations on packed signature
    /// rows).  A memo-served guess replays its stored terms/splits/arith
    /// here with `bit_ops = 0`.
    pub fn record_guess(&self, terms: u64, splits: u64, bit_ops: u64, arith: u64) {
        self.terms.fetch_add(terms, Ordering::Relaxed);
        self.splits.fetch_add(splits, Ordering::Relaxed);
        self.bit_ops.fetch_add(bit_ops, Ordering::Relaxed);
        self.arith.fetch_add(arith, Ordering::Relaxed);
    }

    /// The snapshot format version written by [`TermBank::to_json`].  Bump
    /// it whenever the value encoding or the table layout changes shape;
    /// loaders reject mismatching versions cleanly.  Version 2 added the
    /// guess-memo table.
    pub const SNAPSHOT_VERSION: u64 = 2;

    /// Hard ceiling on the size of any one snapshot table — a corrupt or
    /// hostile snapshot cannot make [`TermBank::from_json`] allocate
    /// unboundedly, and [`TermBank::to_json`] refuses to write a bank that
    /// has outgrown it (`None`).
    pub const MAX_SNAPSHOT_ENTRIES: usize = 1 << 20;

    /// Serializes the bank to a versioned snapshot: the interned values in
    /// id order (so a restore reproduces the same dense ids), the name
    /// table, and the memoized application/constructor/world tables.
    /// Returns `None` when the bank cannot be snapshot faithfully — an
    /// interned value has no structural encoding (never the case for
    /// signature cells, which are first-order by construction) or a table
    /// exceeds [`TermBank::MAX_SNAPSHOT_ENTRIES`].
    ///
    /// Counters are *not* persisted (except the session count, which decides
    /// whether future columns count as appends): a restored bank reports
    /// only the activity of its own process.
    pub fn to_json(&self) -> Option<Json> {
        // Copy all six tables out under their locks — held together so the
        // snapshot is *consistent* (no app row can reference a value id
        // interned after the value table was copied) — and do the expensive
        // part (sorting, JSON construction) after releasing them, so
        // concurrent synthesis on the same bank stalls only for the copies.
        let (values, names, mut app_rows, mut ctor_rows, mut world_ids, mut guess_rows) = {
            let interner = self.interner.lock().unwrap();
            let names = self.names.lock().unwrap();
            let apps = self.apps.lock().unwrap();
            let ctors = self.ctors.lock().unwrap();
            let worlds = self.worlds.lock().unwrap();
            let guesses = self.guesses.lock().unwrap();
            if interner.values.len() > Self::MAX_SNAPSHOT_ENTRIES
                || apps.len() > Self::MAX_SNAPSHOT_ENTRIES
                || ctors.len() > Self::MAX_SNAPSHOT_ENTRIES
                || guesses.len() > Self::MAX_SNAPSHOT_ENTRIES
            {
                return None;
            }
            let app_rows: Vec<(u32, Vec<u32>, u64, Option<u32>)> = apps
                .iter()
                .map(|((name, args, fuel), result)| {
                    (*name, args.as_slice().to_vec(), *fuel, *result)
                })
                .collect();
            let ctor_rows: Vec<(u32, Vec<u32>, u32)> = ctors
                .iter()
                .map(|((name, args), result)| (*name, args.as_slice().to_vec(), *result))
                .collect();
            let guess_rows: Vec<(String, GuessMemo)> = guesses
                .iter()
                .map(|(key, memo)| (Digest(*key).to_hex(), memo.clone()))
                .collect();
            (
                interner.values.clone(),
                names.clone(),
                app_rows,
                ctor_rows,
                worlds.iter().copied().collect::<Vec<u32>>(),
                guess_rows,
            )
        };

        let values: Option<Vec<Json>> = values.iter().map(value_to_json).collect();

        // Invert the name table into id order.
        let mut names_by_id: Vec<Option<&Symbol>> = vec![None; names.len()];
        for (name, &id) in names.iter() {
            *names_by_id.get_mut(id as usize)? = Some(name);
        }
        let names_json: Option<Vec<Json>> = names_by_id
            .iter()
            .map(|n| n.map(|s| Json::Str(s.as_str().to_string())))
            .collect();

        // Deterministic table order keeps snapshots byte-stable for a given
        // bank state.
        app_rows.sort();
        let apps_json: Vec<Json> = app_rows
            .into_iter()
            .map(|(name, args, fuel, result)| {
                Json::obj([
                    ("n", Json::Num(name as f64)),
                    (
                        "a",
                        Json::Arr(args.into_iter().map(|a| Json::Num(a as f64)).collect()),
                    ),
                    ("f", Json::Num(fuel as f64)),
                    ("r", Json::opt(result, |r| Json::Num(r as f64))),
                ])
            })
            .collect();
        ctor_rows.sort();
        let ctors_json: Vec<Json> = ctor_rows
            .into_iter()
            .map(|(name, args, result)| {
                Json::obj([
                    ("n", Json::Num(name as f64)),
                    (
                        "a",
                        Json::Arr(args.into_iter().map(|a| Json::Num(a as f64)).collect()),
                    ),
                    ("r", Json::Num(result as f64)),
                ])
            })
            .collect();
        world_ids.sort_unstable();

        // Guess outcomes persist as pretty-printed expressions.  An entry is
        // written only if its rendering parses back to the identical
        // expression — a self-check that makes persistence *advisory*: a
        // non-round-tripping expression costs a warm hit, never correctness.
        guess_rows.sort_by(|(a, _), (b, _)| a.cmp(b));
        let guesses_json: Vec<Json> = guess_rows
            .into_iter()
            .filter_map(|(key, memo)| {
                let rendered = match &memo.result {
                    None => Json::Null,
                    Some(expr) => {
                        let text = expr.to_string();
                        if parse_expr(&text).ok().as_ref() != Some(expr) {
                            return None;
                        }
                        Json::Str(text)
                    }
                };
                Some(Json::obj([
                    ("k", Json::Str(key)),
                    ("e", rendered),
                    ("t", Json::Num(memo.terms as f64)),
                    ("s", Json::Num(memo.splits as f64)),
                    ("i", Json::Num(memo.arith as f64)),
                ]))
            })
            .collect();

        Some(Json::obj([
            ("version", Json::Num(Self::SNAPSHOT_VERSION as f64)),
            ("kind", Json::Str("term-bank".to_string())),
            (
                "sessions",
                Json::Num(self.sessions.load(Ordering::Relaxed) as f64),
            ),
            ("values", Json::Arr(values?)),
            ("names", Json::Arr(names_json?)),
            ("apps", Json::Arr(apps_json)),
            ("ctors", Json::Arr(ctors_json)),
            (
                "worlds",
                Json::Arr(world_ids.into_iter().map(|w| Json::Num(w as f64)).collect()),
            ),
            ("guesses", Json::Arr(guesses_json)),
        ]))
    }

    /// Rebuilds a bank from the output of [`TermBank::to_json`].  Rejects
    /// version mismatches, structural corruption, dangling ids and oversized
    /// tables — a rejected snapshot leaves the caller exactly where a cold
    /// start would.
    pub fn from_json(json: &Json) -> Result<TermBank, JsonError> {
        let corrupt = |message: &str| JsonError {
            message: format!("term-bank snapshot: {message}"),
            offset: 0,
        };
        let version = json
            .get("version")
            .and_then(Json::as_usize)
            .ok_or_else(|| corrupt("missing version"))?;
        if version as u64 != Self::SNAPSHOT_VERSION {
            return Err(corrupt(&format!(
                "version {version} does not match supported version {}",
                Self::SNAPSHOT_VERSION
            )));
        }
        if json.get("kind").and_then(Json::as_str) != Some("term-bank") {
            return Err(corrupt("wrong snapshot kind"));
        }
        let table = |field: &'static str| -> Result<&[Json], JsonError> {
            let items = json
                .get(field)
                .and_then(Json::as_arr)
                .ok_or_else(|| corrupt(&format!("missing `{field}` table")))?;
            if items.len() > Self::MAX_SNAPSHOT_ENTRIES {
                return Err(corrupt(&format!("`{field}` exceeds the entry ceiling")));
            }
            Ok(items)
        };

        let bank = TermBank::new();
        let values = table("values")?;
        {
            let mut interner = bank.interner.lock().unwrap();
            for (index, encoded) in values.iter().enumerate() {
                let value = value_from_json(encoded).ok_or_else(|| corrupt("unparseable value"))?;
                let id = interner.intern(&value);
                // Ids are positional: interning snapshot values in order must
                // reproduce index = id (values[0] = True, values[1] = False,
                // no duplicates).  Anything else is a corrupt snapshot.
                if id as usize != index {
                    return Err(corrupt("value table is not a dense id ordering"));
                }
            }
        }
        let value_count = values.len() as u32;
        let check_id = |id: u32| -> Result<u32, JsonError> {
            if id < value_count {
                Ok(id)
            } else {
                Err(corrupt("dangling value id"))
            }
        };

        let names = table("names")?;
        {
            let mut name_table = bank.names.lock().unwrap();
            for (index, name) in names.iter().enumerate() {
                let name = name.as_str().ok_or_else(|| corrupt("non-string name"))?;
                name_table.insert(Symbol::new(name), index as u32);
            }
            if name_table.len() != names.len() {
                return Err(corrupt("duplicate names in the name table"));
            }
        }
        let name_count = names.len() as u32;
        let check_name = |id: u32| -> Result<u32, JsonError> {
            if id < name_count {
                Ok(id)
            } else {
                Err(corrupt("dangling name id"))
            }
        };
        let parse_args = |row: &Json| -> Result<Vec<u32>, JsonError> {
            row.get("a")
                .and_then(Json::as_arr)
                .ok_or_else(|| corrupt("row without args"))?
                .iter()
                .map(|a| {
                    a.as_usize()
                        .map(|a| a as u32)
                        .ok_or_else(|| corrupt("non-numeric arg id"))
                        .and_then(check_id)
                })
                .collect()
        };

        {
            let mut apps = bank.apps.lock().unwrap();
            for row in table("apps")? {
                let name = check_name(
                    row.get("n")
                        .and_then(Json::as_usize)
                        .ok_or_else(|| corrupt("app row without name id"))?
                        as u32,
                )?;
                let args = parse_args(row)?;
                let fuel =
                    row.get("f")
                        .and_then(Json::as_usize)
                        .ok_or_else(|| corrupt("app row without fuel"))? as u64;
                let result = match row.get("r") {
                    Some(Json::Null) | None => None,
                    Some(r) => Some(check_id(
                        r.as_usize().ok_or_else(|| corrupt("non-numeric result"))? as u32,
                    )?),
                };
                apps.insert((name, ArgsKey::new(&args), fuel), result);
            }
        }
        {
            let mut ctors = bank.ctors.lock().unwrap();
            for row in table("ctors")? {
                let name = check_name(
                    row.get("n")
                        .and_then(Json::as_usize)
                        .ok_or_else(|| corrupt("ctor row without name id"))?
                        as u32,
                )?;
                let args = parse_args(row)?;
                let result = check_id(
                    row.get("r")
                        .and_then(Json::as_usize)
                        .ok_or_else(|| corrupt("ctor row without result"))?
                        as u32,
                )?;
                ctors.insert((name, ArgsKey::new(&args)), result);
            }
        }
        {
            let mut worlds = bank.worlds.lock().unwrap();
            for id in table("worlds")? {
                let id = check_id(
                    id.as_usize()
                        .ok_or_else(|| corrupt("non-numeric world id"))? as u32,
                )?;
                worlds.insert(id);
            }
        }
        {
            let mut guesses = bank.guesses.lock().unwrap();
            for row in table("guesses")? {
                let key = row
                    .get("k")
                    .and_then(Json::as_str)
                    .and_then(Digest::from_hex)
                    .ok_or_else(|| corrupt("guess row without digest key"))?;
                let result = match row.get("e") {
                    Some(Json::Null) => None,
                    Some(Json::Str(text)) => Some(
                        parse_expr(text).map_err(|_| corrupt("unparseable guess expression"))?,
                    ),
                    _ => return Err(corrupt("guess row without expression")),
                };
                let terms = row
                    .get("t")
                    .and_then(Json::as_usize)
                    .ok_or_else(|| corrupt("guess row without term count"))?
                    as u64;
                let splits = row
                    .get("s")
                    .and_then(Json::as_usize)
                    .ok_or_else(|| corrupt("guess row without split count"))?
                    as u64;
                // Absent in pre-arith snapshots — whose memos were written by
                // sessions without arithmetic components (the session digest
                // keys them apart), so their true arith count is zero.
                let arith = row.get("i").and_then(Json::as_usize).unwrap_or(0) as u64;
                guesses.insert(
                    key.0,
                    GuessMemo {
                        result,
                        terms,
                        splits,
                        arith,
                    },
                );
            }
        }
        let sessions = json
            .get("sessions")
            .and_then(Json::as_usize)
            .ok_or_else(|| corrupt("missing session count"))? as u64;
        bank.sessions.store(sessions, Ordering::Relaxed);
        Ok(bank)
    }

    /// The `kind` tag of the core chunk produced by
    /// [`TermBank::split_snapshot`]: the value interner (in dense-id order),
    /// the name table, the world registry and the session count — the tables
    /// every other chunk's ids resolve against.
    pub const CORE_KIND: &'static str = "term-bank-core";

    /// The `kind` tag of a part chunk: a slice of one memo table (`apps`,
    /// `ctors` or `guesses`), independently restorable against the core.
    pub const PART_KIND: &'static str = "term-bank-part";

    /// Splits the output of [`TermBank::to_json`] into one **core** chunk
    /// plus zero or more **part** chunks of at most `rows_per_part` rows
    /// each.  This is the chunk granularity of the content-addressed
    /// warm-start store (`hanoi_store`): the memo tables are serialized in
    /// deterministic (sorted) order, so a bank that only *grew* keeps most
    /// of its old part chunks byte-identical — a fleet sync transfers only
    /// the parts that changed.  Every id in a part resolves against the core
    /// tables, so dropping a corrupt part can never dangle a reference: the
    /// restore just knows fewer memoized rows.  Returns `None` when
    /// `snapshot` is not a valid term-bank snapshot.
    pub fn split_snapshot(snapshot: &Json, rows_per_part: usize) -> Option<Vec<Json>> {
        if snapshot.get("version").and_then(Json::as_usize)? as u64 != Self::SNAPSHOT_VERSION
            || snapshot.get("kind").and_then(Json::as_str)? != "term-bank"
        {
            return None;
        }
        let rows_per_part = rows_per_part.max(1);
        let mut chunks = vec![Json::obj([
            ("version", Json::Num(Self::SNAPSHOT_VERSION as f64)),
            ("kind", Json::Str(Self::CORE_KIND.to_string())),
            ("sessions", snapshot.get("sessions")?.clone()),
            (
                "values",
                Json::Arr(snapshot.get("values").and_then(Json::as_arr)?.to_vec()),
            ),
            (
                "names",
                Json::Arr(snapshot.get("names").and_then(Json::as_arr)?.to_vec()),
            ),
            (
                "worlds",
                Json::Arr(snapshot.get("worlds").and_then(Json::as_arr)?.to_vec()),
            ),
        ])];
        for table in ["apps", "ctors", "guesses"] {
            let rows = snapshot.get(table).and_then(Json::as_arr)?;
            for slice in rows.chunks(rows_per_part) {
                chunks.push(Json::obj([
                    ("version", Json::Num(Self::SNAPSHOT_VERSION as f64)),
                    ("kind", Json::Str(Self::PART_KIND.to_string())),
                    ("table", Json::Str(table.to_string())),
                    ("rows", Json::Arr(slice.to_vec())),
                ]));
            }
        }
        Some(chunks)
    }

    /// Reassembles a core chunk and its surviving part chunks into one
    /// snapshot consumable by [`TermBank::from_json`].  Parts that are not
    /// well-formed part objects are *skipped* rather than failing the whole
    /// join — chunk-level corruption isolation: a quarantined part costs its
    /// own memo rows, never the bank.  Returns `None` when the core chunk
    /// itself is invalid (without the id-resolution tables nothing else is
    /// restorable), otherwise the joined snapshot and how many parts were
    /// skipped.
    pub fn join_chunks<'a>(
        core: &Json,
        parts: impl IntoIterator<Item = &'a Json>,
    ) -> Option<(Json, usize)> {
        if core.get("version").and_then(Json::as_usize)? as u64 != Self::SNAPSHOT_VERSION
            || core.get("kind").and_then(Json::as_str)? != Self::CORE_KIND
        {
            return None;
        }
        let mut tables: std::collections::HashMap<&str, Vec<Json>> = [
            ("apps", Vec::new()),
            ("ctors", Vec::new()),
            ("guesses", Vec::new()),
        ]
        .into_iter()
        .collect();
        let mut skipped = 0;
        for part in parts {
            let valid = part
                .get("version")
                .and_then(Json::as_usize)
                .map(|v| v as u64)
                == Some(Self::SNAPSHOT_VERSION)
                && part.get("kind").and_then(Json::as_str) == Some(Self::PART_KIND);
            let table = part.get("table").and_then(Json::as_str);
            let rows = part.get("rows").and_then(Json::as_arr);
            match (table.and_then(|t| tables.get_mut(t)), rows) {
                (Some(into), Some(rows)) if valid => into.extend(rows.iter().cloned()),
                _ => skipped += 1,
            }
        }
        let joined = Json::obj([
            ("version", Json::Num(Self::SNAPSHOT_VERSION as f64)),
            ("kind", Json::Str("term-bank".to_string())),
            ("sessions", core.get("sessions")?.clone()),
            ("values", core.get("values")?.clone()),
            ("names", core.get("names")?.clone()),
            ("worlds", core.get("worlds")?.clone()),
            (
                "apps",
                Json::Arr(tables.remove("apps").expect("apps table")),
            ),
            (
                "ctors",
                Json::Arr(tables.remove("ctors").expect("ctors table")),
            ),
            (
                "guesses",
                Json::Arr(tables.remove("guesses").expect("guesses table")),
            ),
        ]);
        Some((joined, skipped))
    }

    /// A snapshot of the session counters.
    pub fn stats(&self) -> TermBankStats {
        TermBankStats {
            terms_enumerated: self.terms.load(Ordering::Relaxed),
            column_appends: self.appends.load(Ordering::Relaxed),
            eq_class_splits: self.splits.load(Ordering::Relaxed),
            bank_hits: self.hits.load(Ordering::Relaxed),
            bank_misses: self.misses.load(Ordering::Relaxed),
            sessions: self.sessions.load(Ordering::Relaxed),
            interned_values: self.interner.lock().unwrap().values.len() as u64,
            bitset_row_ops: self.bit_ops.load(Ordering::Relaxed),
            guess_memo_hits: self.memo_hits.load(Ordering::Relaxed),
            probe_batches: self.batches.load(Ordering::Relaxed),
            arith_atoms: self.arith.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hanoi_lang::types::TypeEnv;

    fn nat_succ() -> Value {
        Value::native("succ", 1, |args| {
            Ok(Value::nat(args[0].as_nat().unwrap_or(0) + 1))
        })
    }

    #[test]
    fn booleans_have_fixed_ids() {
        let bank = TermBank::new();
        assert_eq!(bank.intern(&Value::tru()), TRUE_ID);
        assert_eq!(bank.intern(&Value::fls()), FALSE_ID);
        assert_eq!(bool_id(true), TRUE_ID);
        assert_eq!(bool_of(FALSE_ID), Some(false));
        // A freshly built structural boolean interns to the same id.
        assert_eq!(bank.intern(&Value::bool(true)), TRUE_ID);
        // Non-boolean ids are never booleans.
        let nat = bank.intern(&Value::nat(3));
        assert_eq!(bool_of(nat), None);
        assert_eq!(bank.value_of(nat), Value::nat(3));
    }

    #[test]
    fn application_results_are_memoized_including_failures() {
        let tyenv = TypeEnv::new();
        let evaluator = Evaluator::new(&tyenv);
        let bank = TermBank::new();
        let succ = nat_succ();
        let name = bank.name_id(&Symbol::new("succ"));
        assert_eq!(name, bank.name_id(&Symbol::new("succ")));
        let one = bank.intern(&Value::nat(1));

        let first = bank.apply_component(&evaluator, name, &succ, &[one], 100);
        assert_eq!(first.map(|id| bank.value_of(id)), Some(Value::nat(2)));
        let second = bank.apply_component(&evaluator, name, &succ, &[one], 100);
        assert_eq!(second, first);
        let stats = bank.stats();
        assert_eq!(stats.bank_hits, 1);
        assert_eq!(stats.bank_misses, 1);

        // A non-function "component" fails to apply; the failure is memoized
        // too.
        let broken = Value::nat(0);
        let broken_name = bank.name_id(&Symbol::new("broken"));
        assert_ne!(broken_name, name);
        assert_eq!(
            bank.apply_component(&evaluator, broken_name, &broken, &[one], 100),
            None
        );
        assert_eq!(
            bank.apply_component(&evaluator, broken_name, &broken, &[one], 100),
            None
        );
        assert_eq!(bank.stats().bank_hits, 2);
    }

    #[test]
    fn constructor_cells_are_shared() {
        let bank = TermBank::new();
        let zero = bank.intern(&Value::nat(0));
        let s = Symbol::new("S");
        let s_id = bank.name_id(&s);
        let one_a = bank.make_ctor(s_id, &s, &[zero]);
        let one_b = bank.make_ctor(s_id, &s, &[zero]);
        assert_eq!(one_a, one_b);
        assert_eq!(bank.value_of(one_a), Value::nat(1));
        // And the constructed value coincides with independent interning.
        assert_eq!(bank.intern(&Value::nat(1)), one_a);
    }

    #[test]
    fn inline_and_heap_argument_keys_roundtrip() {
        let bank = TermBank::new();
        let ids: Vec<u32> = (0..6).map(|n| bank.intern(&Value::nat(n))).collect();
        let tuple = Symbol::new("Wide");
        let wide = bank.name_id(&tuple);
        // Six arguments exceed the inline capacity and fall back to the heap
        // key; memoization must still hit.
        let a = bank.make_ctor(wide, &tuple, &ids);
        let b = bank.make_ctor(wide, &tuple, &ids);
        assert_eq!(a, b);
        assert_ne!(ArgsKey::new(&ids[..2]), ArgsKey::new(&ids[..3]));
    }

    #[test]
    fn snapshots_round_trip_every_table() {
        let tyenv = TypeEnv::new();
        let evaluator = Evaluator::new(&tyenv);
        let bank = TermBank::new();
        let succ = nat_succ();
        let succ_name = bank.name_id(&Symbol::new("succ"));
        let one = bank.intern(&Value::nat(1));
        let two = bank
            .apply_component(&evaluator, succ_name, &succ, &[one], 100)
            .unwrap();
        // A memoized failure too.
        let broken_name = bank.name_id(&Symbol::new("broken"));
        assert_eq!(
            bank.apply_component(&evaluator, broken_name, &Value::nat(0), &[one], 100),
            None
        );
        let s = Symbol::new("S");
        let s_id = bank.name_id(&s);
        let three = bank.make_ctor(s_id, &s, &[two]);
        bank.begin_session(&[(Value::nat(1), true)]);

        let snapshot = bank.to_json().expect("first-order bank snapshots");
        let text = snapshot.render_pretty();
        let restored = TermBank::from_json(&hanoi_lang::json::parse(&text).unwrap()).unwrap();

        // Ids are reproduced positionally.
        assert_eq!(restored.intern(&Value::tru()), TRUE_ID);
        assert_eq!(restored.intern(&Value::nat(1)), one);
        assert_eq!(restored.value_of(two), Value::nat(2));
        assert_eq!(restored.value_of(three), Value::nat(3));
        // Memoized applications (including the failure) answer without the
        // interpreter: a broken component would error if re-evaluated, and
        // the hit counter proves the store was consulted.
        assert_eq!(
            restored.apply_component(&evaluator, succ_name, &succ, &[one], 100),
            Some(two)
        );
        assert_eq!(
            restored.apply_component(&evaluator, broken_name, &Value::nat(0), &[one], 100),
            None
        );
        assert_eq!(restored.stats().bank_hits, 2);
        assert_eq!(restored.stats().bank_misses, 0);
        // The name table survived (same ids for the same names).
        assert_eq!(restored.name_id(&Symbol::new("succ")), succ_name);
        assert_eq!(restored.name_id(&s), s_id);
        // Worlds survived: re-registering the same example is not an append.
        let columns = restored.begin_session(&[(Value::nat(1), true)]);
        assert_eq!(columns, vec![(one, false)]);
        assert_eq!(restored.stats().column_appends, 0);
        // …but a genuinely new world still counts as one.
        restored.begin_session(&[(Value::nat(9), true)]);
        assert_eq!(restored.stats().column_appends, 1);
    }

    #[test]
    fn chunked_snapshots_round_trip_and_isolate_corruption() {
        let tyenv = TypeEnv::new();
        let evaluator = Evaluator::new(&tyenv);
        let bank = TermBank::new();
        let succ = nat_succ();
        let succ_name = bank.name_id(&Symbol::new("succ"));
        for n in 0..5 {
            let arg = bank.intern(&Value::nat(n));
            bank.apply_component(&evaluator, succ_name, &succ, &[arg], 100)
                .unwrap();
        }
        let s = Symbol::new("S");
        let s_id = bank.name_id(&s);
        let zero = bank.intern(&Value::nat(0));
        bank.make_ctor(s_id, &s, &[zero]);
        bank.guess_memo_put(
            Digest(11),
            GuessMemo {
                result: None,
                terms: 9,
                splits: 1,
                arith: 0,
            },
        );
        bank.begin_session(&[(Value::nat(1), true)]);
        let snapshot = bank.to_json().unwrap();

        // Split and rejoin reproduce the snapshot byte for byte.
        let chunks = TermBank::split_snapshot(&snapshot, 2).unwrap();
        assert!(
            chunks.len() > 2,
            "five app rows at two per part multi-chunk"
        );
        let (core, parts) = chunks.split_first().unwrap();
        let (joined, skipped) = TermBank::join_chunks(core, parts).unwrap();
        assert_eq!(skipped, 0);
        assert_eq!(joined.render_pretty(), snapshot.render_pretty());

        // A corrupt part is skipped, not fatal: the join still produces a
        // loadable snapshot, just with that part's memo rows missing.
        let mut tampered: Vec<Json> = parts.to_vec();
        tampered[0] = Json::Str("garbage".into());
        let (joined, skipped) = TermBank::join_chunks(core, &tampered).unwrap();
        assert_eq!(skipped, 1);
        let restored = TermBank::from_json(&joined).unwrap();
        assert_eq!(restored.name_id(&Symbol::new("succ")), succ_name);
        assert!(restored.guess_memo_get(Digest(11)).is_some());

        // A corrupt core sinks the whole bank — ids in parts resolve against
        // its tables, so there is nothing sound to salvage.
        assert!(TermBank::join_chunks(&Json::Str("garbage".into()), parts).is_none());
        assert!(TermBank::join_chunks(parts.first().unwrap(), parts).is_none());
        // And a non-bank snapshot refuses to split.
        assert!(TermBank::split_snapshot(&Json::Num(1.0), 2).is_none());
        assert!(TermBank::split_snapshot(&Json::obj([("version", Json::Num(2.0))]), 2).is_none());
    }

    #[test]
    fn unchanged_tables_keep_byte_identical_chunks_as_banks_grow() {
        let tyenv = TypeEnv::new();
        let evaluator = Evaluator::new(&tyenv);
        let bank = TermBank::new();
        let succ = nat_succ();
        let succ_name = bank.name_id(&Symbol::new("succ"));
        let s = Symbol::new("S");
        let s_id = bank.name_id(&s);
        let zero = bank.intern(&Value::nat(0));
        bank.make_ctor(s_id, &s, &[zero]);
        bank.guess_memo_put(
            Digest(5),
            GuessMemo {
                result: None,
                terms: 1,
                splits: 0,
                arith: 0,
            },
        );
        let one = bank.intern(&Value::nat(1));
        bank.apply_component(&evaluator, succ_name, &succ, &[one], 100)
            .unwrap();
        let before = TermBank::split_snapshot(&bank.to_json().unwrap(), usize::MAX).unwrap();

        // Grow only the application memo table.
        let two = bank.intern(&Value::nat(2));
        bank.apply_component(&evaluator, succ_name, &succ, &[two], 100)
            .unwrap();
        let after = TermBank::split_snapshot(&bank.to_json().unwrap(), usize::MAX).unwrap();

        let rendered =
            |chunks: &[Json]| -> Vec<String> { chunks.iter().map(Json::render_pretty).collect() };
        let (before, after) = (rendered(&before), rendered(&after));
        // The ctor and guess parts did not change, so their chunk bytes (and
        // therefore their content addresses in the store) are identical —
        // this is what makes fleet sync a delta transfer.
        let shared: Vec<&String> = before.iter().filter(|c| after.contains(c)).collect();
        assert!(
            shared.len() >= 2,
            "unchanged tables must re-chunk identically, shared: {}",
            shared.len()
        );
        assert_ne!(before, after, "the apps part did change");
    }

    #[test]
    fn batched_probes_match_sequential_semantics() {
        let tyenv = TypeEnv::new();
        let evaluator = Evaluator::new(&tyenv);
        let succ = nat_succ();

        let batched = TermBank::new();
        let name = batched.name_id(&Symbol::new("succ"));
        let ids: Vec<u32> = (0..4).map(|n| batched.intern(&Value::nat(n))).collect();
        // Rows: fresh, fresh, in-batch duplicate, invalid, fresh.
        let probes = vec![ids[0], ids[1], ids[1], ids[2], ids[3]];
        let valid = vec![true, true, true, false, true];
        let results = batched.apply_batch(&evaluator, name, &succ, 100, 1, &probes, &valid);

        let sequential = TermBank::new();
        let sname = sequential.name_id(&Symbol::new("succ"));
        let sids: Vec<u32> = (0..4).map(|n| sequential.intern(&Value::nat(n))).collect();
        let expected: Vec<Option<u32>> = vec![
            sequential.apply_component(&evaluator, sname, &succ, &[sids[0]], 100),
            sequential.apply_component(&evaluator, sname, &succ, &[sids[1]], 100),
            sequential.apply_component(&evaluator, sname, &succ, &[sids[1]], 100),
            None,
            sequential.apply_component(&evaluator, sname, &succ, &[sids[3]], 100),
        ];
        assert_eq!(results, expected);
        let (b, s) = (batched.stats(), sequential.stats());
        assert_eq!(
            b.bank_hits, s.bank_hits,
            "in-batch duplicates count as hits"
        );
        assert_eq!(b.bank_misses, s.bank_misses);
        assert_eq!(b.probe_batches, 1);
        assert_eq!(s.probe_batches, 0);
        // A second identical batch is answered entirely from the store.
        let again = batched.apply_batch(&evaluator, name, &succ, 100, 1, &probes, &valid);
        assert_eq!(again, results);
        let b2 = batched.stats();
        assert_eq!(b2.bank_misses, b.bank_misses, "no re-evaluation");
        assert_eq!(b2.probe_batches, 2);
    }

    #[test]
    fn guess_memos_round_trip_and_count_hits() {
        let bank = TermBank::new();
        let key = Digest(0x1234_5678_9abc_def0_1111_2222_3333_4444);
        let expr = parse_expr("S (S x0) == x1").unwrap();
        bank.guess_memo_put(
            key,
            GuessMemo {
                result: Some(expr.clone()),
                terms: 42,
                splits: 3,
                arith: 0,
            },
        );
        let failed_key = Digest(7);
        bank.guess_memo_put(
            failed_key,
            GuessMemo {
                result: None,
                terms: 5,
                splits: 0,
                arith: 0,
            },
        );
        assert!(bank.guess_memo_get(Digest(99)).is_none());
        assert_eq!(bank.stats().guess_memo_hits, 0, "misses are not hits");

        let snapshot = bank.to_json().expect("guess memos serialize");
        let text = snapshot.render_pretty();
        let restored = TermBank::from_json(&hanoi_lang::json::parse(&text).unwrap()).unwrap();
        let hit = restored.guess_memo_get(key).expect("memo survived");
        assert_eq!(hit.result, Some(expr));
        assert_eq!((hit.terms, hit.splits), (42, 3));
        // Memoized *failures* survive too — replaying "no predicate of this
        // size exists" is exactly as sound as replaying a found predicate.
        let miss = restored
            .guess_memo_get(failed_key)
            .expect("failure survived");
        assert_eq!(miss.result, None);
        assert_eq!((miss.terms, miss.splits), (5, 0));
        assert_eq!(restored.stats().guess_memo_hits, 2);

        // A corrupt guesses table rejects the whole snapshot.
        let mut copy = snapshot.clone();
        if let Json::Obj(map) = &mut copy {
            map.insert("guesses".to_string(), Json::Num(3.0));
        }
        assert!(TermBank::from_json(&copy).is_err());
    }

    #[test]
    fn corrupt_and_mismatched_bank_snapshots_are_rejected() {
        let bank = TermBank::new();
        let one = bank.intern(&Value::nat(1));
        let s = Symbol::new("S");
        let s_id = bank.name_id(&s);
        bank.make_ctor(s_id, &s, &[one]);
        let good = bank.to_json().unwrap();

        let mutate = |field: &str, value: Json| -> Json {
            let mut copy = good.clone();
            if let Json::Obj(map) = &mut copy {
                map.insert(field.to_string(), value);
            }
            copy
        };
        assert!(TermBank::from_json(&mutate("version", Json::Num(99.0))).is_err());
        assert!(TermBank::from_json(&mutate("kind", Json::Str("check-cache".into()))).is_err());
        // A value table not headed by True/False cannot reproduce the fixed
        // boolean ids.
        assert!(TermBank::from_json(&mutate(
            "values",
            Json::Arr(vec![
                hanoi_lang::json::value_to_json(&Value::nat(1)).unwrap()
            ])
        ))
        .is_err());
        // Dangling ids are rejected.
        assert!(
            TermBank::from_json(&mutate("worlds", Json::Arr(vec![Json::Num(10_000.0)]))).is_err()
        );
        assert!(TermBank::from_json(&Json::Num(1.0)).is_err());
    }

    #[test]
    fn sessions_tag_new_columns_and_count_appends() {
        let bank = TermBank::new();
        let first = bank.begin_session(&[(Value::nat(0), true), (Value::nat(1), false)]);
        // The initial population is not an append.
        assert_eq!(
            first.iter().map(|(_, new)| *new).collect::<Vec<_>>(),
            vec![true, true]
        );
        assert_eq!(bank.stats().column_appends, 0);

        // One counterexample arrives: exactly one new column.
        let second = bank.begin_session(&[
            (Value::nat(0), true),
            (Value::nat(1), false),
            (Value::nat(2), false),
        ]);
        assert_eq!(
            second.iter().map(|(_, new)| *new).collect::<Vec<_>>(),
            vec![false, false, true]
        );
        // Ids are stable across sessions.
        assert_eq!(first[0].0, second[0].0);
        assert_eq!(first[1].0, second[1].0);
        let stats = bank.stats();
        assert_eq!(stats.column_appends, 1);
        assert_eq!(stats.sessions, 2);

        // Re-running with the same examples appends nothing.
        let third = bank.begin_session(&[(Value::nat(2), false)]);
        assert_eq!(third, vec![(second[2].0, false)]);
        assert_eq!(bank.stats().column_appends, 1);
    }
}
