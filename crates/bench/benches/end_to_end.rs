//! End-to-end inference benchmarks: the full CEGIS loop on fast benchmarks
//! with reduced verifier bounds (the shape of Figure 7 in miniature — the
//! figure7 binary regenerates the real table).
//!
//! Cold iterations build a fresh engine per run (the old `Driver`
//! behaviour); the warm variants reuse one engine so later iterations start
//! from warm pools and term banks.

use criterion::{criterion_group, criterion_main, Criterion};
use hanoi::{Engine, Mode, RunOptions};
use hanoi_benchmarks::find;

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);

    for id in [
        "/other/cache",
        "/other/rational",
        "/vfa/assoc-list-::-table",
    ] {
        let benchmark = find(id).unwrap();
        let problem = benchmark.problem().expect("benchmark elaborates");
        group.bench_function(format!("hanoi_cold{}", id.replace('/', "_")), |b| {
            b.iter(|| {
                let result = Engine::with_defaults().run(&problem, &RunOptions::quick());
                assert!(result.is_success(), "{id} failed: {}", result.outcome);
                result
            })
        });
        let warm_engine = Engine::with_defaults();
        group.bench_function(format!("hanoi_warm{}", id.replace('/', "_")), |b| {
            b.iter(|| {
                let result = warm_engine.run(&problem, &RunOptions::quick());
                assert!(result.is_success(), "{id} failed: {}", result.outcome);
                result
            })
        });
    }

    // One baseline for comparison on the cheapest benchmark.
    let benchmark = find("/other/cache").unwrap();
    let problem = benchmark.problem().expect("benchmark elaborates");
    group.bench_function("la_other_cache", |b| {
        b.iter(|| {
            Engine::with_defaults().run(
                &problem,
                &RunOptions::quick().with_mode(Mode::LinearArbitrary),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_end_to_end);
criterion_main!(benches);
