//! End-to-end inference benchmarks: the full CEGIS loop on fast benchmarks
//! with reduced verifier bounds (the shape of Figure 7 in miniature — the
//! figure7 binary regenerates the real table).

use criterion::{criterion_group, criterion_main, Criterion};
use hanoi::{Driver, HanoiConfig, Mode};
use hanoi_benchmarks::find;

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);

    for id in [
        "/other/cache",
        "/other/rational",
        "/vfa/assoc-list-::-table",
    ] {
        let benchmark = find(id).unwrap();
        let problem = benchmark.problem().expect("benchmark elaborates");
        group.bench_function(format!("hanoi{}", id.replace('/', "_")), |b| {
            b.iter(|| {
                let result = Driver::new(&problem, HanoiConfig::quick()).run();
                assert!(result.is_success(), "{id} failed: {}", result.outcome);
                result
            })
        });
    }

    // One baseline for comparison on the cheapest benchmark.
    let benchmark = find("/other/cache").unwrap();
    let problem = benchmark.problem().expect("benchmark elaborates");
    group.bench_function("la_other_cache", |b| {
        b.iter(|| {
            Driver::new(
                &problem,
                HanoiConfig::quick().with_mode(Mode::LinearArbitrary),
            )
            .run()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_end_to_end);
criterion_main!(benches);
