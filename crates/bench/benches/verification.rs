//! Micro-benchmarks of the verifier's three checks on the §2 running example,
//! with the paper's observation in mind that verification time dominates
//! total time ("for all but two of the terminating benchmarks, the total time
//! spent synthesizing is under two seconds").

use criterion::{criterion_group, criterion_main, Criterion};
use hanoi_benchmarks::find;
use hanoi_lang::parser::parse_expr;
use hanoi_lang::value::Value;
use hanoi_verifier::{Verifier, VerifierBounds};

fn bench_verification(c: &mut Criterion) {
    let problem = find("/coq/unique-list-::-set")
        .unwrap()
        .problem()
        .expect("benchmark elaborates");
    let no_dup = parse_expr(
        "fix inv (l : list) : bool = \
           match l with | Nil -> True | Cons (hd, tl) -> not (lookup tl hd) && inv tl end",
    )
    .unwrap();
    let trivial = parse_expr("fun (l : list) -> True").unwrap();
    let v_plus = vec![
        Value::nat_list(&[]),
        Value::nat_list(&[1]),
        Value::nat_list(&[2, 1]),
    ];

    let mut group = c.benchmark_group("verification");
    group.sample_size(10);

    {
        let (label, bounds) = ("quick", VerifierBounds::quick());
        let verifier = Verifier::new(&problem).with_bounds(bounds);
        group.bench_function(format!("sufficiency_valid_{label}"), |b| {
            b.iter(|| verifier.check_sufficiency(&no_dup).unwrap())
        });
        group.bench_function(format!("sufficiency_cex_{label}"), |b| {
            b.iter(|| verifier.check_sufficiency(&trivial).unwrap())
        });
        group.bench_function(format!("visible_inductiveness_{label}"), |b| {
            b.iter(|| {
                verifier
                    .check_visible_inductiveness(&v_plus, &no_dup)
                    .unwrap()
            })
        });
        group.bench_function(format!("full_inductiveness_{label}"), |b| {
            b.iter(|| verifier.check_full_inductiveness(&no_dup).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_verification);
criterion_main!(benches);
