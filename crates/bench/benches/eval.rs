//! Micro-benchmarks of the interpreter: the cost of evaluating module
//! operations dominates every verifier call, so this is the innermost loop of
//! the whole system.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use hanoi_benchmarks::find;
use hanoi_lang::eval::Fuel;
use hanoi_lang::value::Value;

fn bench_eval(c: &mut Criterion) {
    let benchmark = find("/coq/unique-list-::-set").expect("benchmark exists");
    let problem = benchmark.problem().expect("benchmark elaborates");
    let list = Value::nat_list(&[9, 7, 5, 3, 1]);

    let mut group = c.benchmark_group("eval");
    group.sample_size(30);

    group.bench_function("lookup_hit", |b| {
        b.iter_batched(
            || (list.clone(), Value::nat(1)),
            |(l, x)| problem.eval_call("lookup", &[l, x]).unwrap(),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("lookup_miss", |b| {
        b.iter_batched(
            || (list.clone(), Value::nat(8)),
            |(l, x)| problem.eval_call("lookup", &[l, x]).unwrap(),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("insert", |b| {
        b.iter_batched(
            || (list.clone(), Value::nat(8)),
            |(l, x)| problem.eval_call("insert", &[l, x]).unwrap(),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("spec", |b| {
        b.iter_batched(
            || (list.clone(), Value::nat(3)),
            |(l, x)| {
                problem
                    .eval_spec_with_fuel(&[l, x], &mut Fuel::standard())
                    .unwrap()
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_eval);
criterion_main!(benches);
