//! Micro-benchmarks of the two synthesizer back ends on a fixed example set
//! (the §5.4 ablation in miniature).

use criterion::{criterion_group, criterion_main, Criterion};
use hanoi_benchmarks::find;
use hanoi_lang::util::Deadline;
use hanoi_lang::value::Value;
use hanoi_synth::{ExampleSet, FoldSynth, MythSynth, Synthesizer};

fn example_set() -> (hanoi_abstraction::Problem, ExampleSet) {
    let problem = find("/coq/unique-list-::-set")
        .unwrap()
        .problem()
        .expect("benchmark elaborates");
    let examples = ExampleSet::from_sets(
        [
            Value::nat_list(&[]),
            Value::nat_list(&[0]),
            Value::nat_list(&[1, 0]),
            Value::nat_list(&[2, 1]),
            Value::nat_list(&[2, 1, 0]),
        ],
        [
            Value::nat_list(&[0, 0]),
            Value::nat_list(&[1, 1]),
            Value::nat_list(&[0, 1, 0]),
        ],
    )
    .unwrap();
    let (examples, _) = examples.trace_completed(&problem.tyenv, problem.concrete_type());
    (problem, examples)
}

fn bench_synthesis(c: &mut Criterion) {
    let (problem, examples) = example_set();
    let mut group = c.benchmark_group("synthesis");
    group.sample_size(10);

    group.bench_function("myth_no_duplicates", |b| {
        b.iter(|| {
            let mut synth = MythSynth::new();
            synth
                .synthesize(&problem, &examples, &Deadline::none())
                .unwrap()
        })
    });
    group.bench_function("fold_no_duplicates", |b| {
        b.iter(|| {
            let mut synth = FoldSynth::new();
            synth
                .synthesize(&problem, &examples, &Deadline::none())
                .unwrap()
        })
    });
    group.bench_function("myth_empty_examples", |b| {
        b.iter(|| {
            let mut synth = MythSynth::new();
            synth
                .synthesize(&problem, &ExampleSet::new(), &Deadline::none())
                .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_synthesis);
criterion_main!(benches);
