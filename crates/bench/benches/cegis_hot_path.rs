//! The CEGIS verification hot path: serial vs parallel checks, pool-cache
//! behaviour and predicate-evaluation throughput.
//!
//! Measures the verifier's three checks on the §2 running example at
//! parallelism 1 (serial), 2, 4 and 0 (one worker per core), reports each
//! timing through the criterion harness, and writes a machine-readable
//! summary to `BENCH_verification.json` (override the path with the
//! `BENCH_VERIFICATION_OUT` environment variable).
//!
//! The workloads are chosen so the sweep runs to completion (`Valid`
//! outcomes, no short-circuit): that is both the verifier's dominant cost in
//! practice — most CEGIS iterations end in a full sweep — and the best-case
//! shape for parallelism, so the summary's `speedup` column directly reads
//! off how much the parallel refactor buys on this host.
//!
//! On top of the serial/parallel comparison this bench instruments the
//! shared pool cache: each workload reports its *cold* first run (pools
//! enumerated) next to the warm median (pools served from cache), the
//! session's hit/build counters, and the predicate-evaluation throughput of
//! the warm runs — the three numbers the pool-cache + slot-resolution
//! overhaul moves.
//!
//! ```text
//! cargo bench -p hanoi-bench --bench cegis_hot_path
//! ```
//!
//! Set `CEGIS_HOT_PATH_QUICK=1` for a seconds-long smoke configuration
//! (tiny bounds, three samples) used by the `bench-smoke` CI job to catch
//! enumeration/eval regressions without a nightly runner.

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion};
use hanoi_bench::json::Json;
use hanoi_benchmarks::find;
use hanoi_lang::parser::parse_expr;
use hanoi_lang::util::Deadline;
use hanoi_lang::value::Value;
use hanoi_synth::engine::Engine;
use hanoi_synth::{ExampleSet, SearchConfig, TermBank};
use hanoi_verifier::{PoolCacheStats, Verifier, VerifierBounds};

/// Parallelism levels measured, in reporting order. `0` = all cores.
const LEVELS: [usize; 4] = [1, 2, 4, 0];

fn quick_mode() -> bool {
    std::env::var("CEGIS_HOT_PATH_QUICK").is_ok_and(|v| !v.is_empty() && v != "0")
}

fn median_secs(mut samples: Vec<Duration>) -> f64 {
    samples.sort();
    samples[samples.len() / 2].as_secs_f64()
}

struct Workload {
    name: &'static str,
    run: Box<dyn Fn(&Verifier<'_>)>,
}

/// The incremental-synthesis workload: a scripted CEGIS-like sequence of
/// growing example sets, run once with a throwaway term bank per iteration
/// (*cold*, the rebuild-per-iteration behaviour the persistent bank
/// replaces) and once with a single persistent bank (*warm*).  Both runs
/// return identical predicates (asserted, serial and parallel); the summary
/// reports the medians, the warm/cold speedup and the bank counters.
fn bench_synthesis_multi_cex(c: &mut Criterion, samples: usize) -> Json {
    let problem = find("/coq/unique-list-::-set")
        .unwrap()
        .problem()
        .expect("benchmark elaborates");
    // Example values sized like a mid-run CEGIS state at paper verifier
    // bounds: the positives are duplicate-free lists up to several elements
    // (what visible-inductiveness sweeps feed back), the negatives are the
    // duplicate-carrying counterexamples full-inductiveness produces.
    let positives: Vec<Value> = [
        vec![],
        vec![0],
        vec![1],
        vec![2],
        vec![1, 0],
        vec![2, 0],
        vec![3, 1],
        vec![2, 1, 0],
        vec![4, 2, 1],
        vec![5, 3, 2, 0],
        vec![6, 4, 3, 1],
        vec![5, 4, 3, 2, 1],
        vec![7, 5, 4, 2, 1, 0],
        vec![8, 6, 5, 4, 3, 2, 1],
    ]
    .iter()
    .map(|items| Value::nat_list(items))
    .collect();
    let negative_stream: &[&[u64]] = if quick_mode() {
        &[&[0, 0], &[1, 1], &[3, 2, 2], &[4, 1, 4, 0]]
    } else {
        &[
            &[0, 0],
            &[1, 1],
            &[3, 2, 2],
            &[4, 1, 4, 0],
            &[2, 5, 3, 2],
            &[5, 4, 4, 1, 0],
            &[6, 3, 2, 6, 1],
            &[4, 3, 2, 1, 4, 0],
            &[7, 6, 5, 3, 3, 1],
            &[8, 7, 5, 4, 2, 1, 8],
        ]
    };
    let sequence: Vec<ExampleSet> = (1..=negative_stream.len())
        .map(|step| {
            let examples = ExampleSet::from_sets(
                positives.iter().cloned(),
                negative_stream[..step].iter().map(|n| Value::nat_list(n)),
            )
            .expect("scripted example sets are disjoint");
            examples
                .trace_completed(&problem.tyenv, problem.concrete_type())
                .0
        })
        .collect();
    let config = if quick_mode() {
        SearchConfig {
            schedule: vec![(0, 5), (1, 7)],
            ..SearchConfig::quick()
        }
    } else {
        SearchConfig {
            schedule: vec![(0, 5), (1, 7), (1, 9)],
            ..SearchConfig::default()
        }
    };
    let engine = Engine::new(&problem, config.clone());

    let run_sequence = |persistent: Option<&TermBank>| -> Vec<Option<hanoi_lang::ast::Expr>> {
        sequence
            .iter()
            .map(|examples| {
                let fresh;
                let bank = match persistent {
                    Some(bank) => bank,
                    None => {
                        fresh = TermBank::new();
                        &fresh
                    }
                };
                engine
                    .synthesize_with_bank(bank, examples, &Deadline::none())
                    .ok()
            })
            .collect()
    };

    // Correctness first: warm ≡ cold, and parallel ≡ serial.
    let cold_predicates = run_sequence(None);
    let warm_bank = TermBank::new();
    let warm_predicates = run_sequence(Some(&warm_bank));
    assert_eq!(
        warm_predicates, cold_predicates,
        "a persistent bank must not change synthesis results"
    );
    let parallel_engine = Engine::new(
        &problem,
        SearchConfig {
            parallelism: Some(0),
            ..config
        },
    );
    let parallel_bank = TermBank::new();
    let parallel_predicates: Vec<Option<hanoi_lang::ast::Expr>> = sequence
        .iter()
        .map(|examples| {
            parallel_engine
                .synthesize_with_bank(&parallel_bank, examples, &Deadline::none())
                .ok()
        })
        .collect();
    assert_eq!(
        parallel_predicates, cold_predicates,
        "parallel synthesis must be outcome-identical to serial"
    );
    let warm_stats = warm_bank.stats();
    assert!(warm_stats.column_appends > 0);
    assert!(warm_stats.bank_hits > 0);
    assert!(
        warm_stats.guess_memo_hits > 0,
        "a growing example sequence must replay unchanged sub-guesses \
         from the guess memo: {warm_stats:?}"
    );
    assert!(warm_stats.probe_batches > 0);
    assert!(warm_stats.bitset_row_ops > 0);

    // Timings: each sample replays the whole sequence from scratch.
    let mut cold_timings = Vec::with_capacity(samples);
    let mut warm_timings = Vec::with_capacity(samples);
    for _ in 0..samples {
        let start = Instant::now();
        let _ = run_sequence(None);
        cold_timings.push(start.elapsed());
        let bank = TermBank::new();
        let start = Instant::now();
        let _ = run_sequence(Some(&bank));
        warm_timings.push(start.elapsed());
    }
    let cold_secs = median_secs(cold_timings);
    let warm_secs = median_secs(warm_timings);

    let mut group = c.benchmark_group("synthesis_multi_cex");
    group.sample_size(samples);
    group.bench_function("cold_rebuild_per_iteration", |b| {
        b.iter(|| run_sequence(None))
    });
    group.bench_function("warm_persistent_bank", |b| {
        b.iter(|| {
            let bank = TermBank::new();
            run_sequence(Some(&bank))
        })
    });
    group.finish();

    Json::obj([
        (
            "benchmark",
            Json::Str("/coq/unique-list-::-set".to_string()),
        ),
        ("iterations", Json::Num(sequence.len() as f64)),
        ("cold_secs", Json::Num(cold_secs)),
        ("warm_secs", Json::Num(warm_secs)),
        (
            "speedup_warm_over_cold",
            Json::Num(cold_secs / warm_secs.max(f64::MIN_POSITIVE)),
        ),
        (
            "terms_enumerated",
            Json::Num(warm_stats.terms_enumerated as f64),
        ),
        (
            "signature_column_appends",
            Json::Num(warm_stats.column_appends as f64),
        ),
        (
            "eq_class_splits",
            Json::Num(warm_stats.eq_class_splits as f64),
        ),
        ("bank_hits", Json::Num(warm_stats.bank_hits as f64)),
        ("bank_misses", Json::Num(warm_stats.bank_misses as f64)),
        (
            "guess_memo_hits",
            Json::Num(warm_stats.guess_memo_hits as f64),
        ),
        ("probe_batches", Json::Num(warm_stats.probe_batches as f64)),
        (
            "bitset_row_ops",
            Json::Num(warm_stats.bitset_row_ops as f64),
        ),
        ("parallel_identical", Json::Bool(true)),
    ])
}

/// The high-parallelism synthesis workload: one big guessing pass — a wide
/// example set (more than 64 worlds, so bitset lanes span multiple words)
/// and a deep schedule — run cold at each parallelism level.  This is the
/// shape where per-probe bank locking used to dominate: every candidate
/// application took the application-store lock individually, so workers
/// serialized on the bank.  With batched probes ([`TermBank::apply_batch`])
/// each worker takes one lock round per component×split chunk; the
/// `probes_per_batch` column is the direct lock-amortization measure (and
/// the honest evidence on single-core CI hosts, where wall-clock speedups
/// cannot show).  Outcomes are asserted identical across every level.
fn bench_high_parallelism_synth(c: &mut Criterion, samples: usize) -> Json {
    use hanoi_lang::enumerate::ValueEnumerator;

    let problem = find("/coq/unique-list-::-set")
        .unwrap()
        .problem()
        .expect("benchmark elaborates");
    let concrete = problem.concrete_type().clone();
    // Enough enumerated values that the trace-completed world set straddles
    // the 64-world bitset word boundary.
    let pool = ValueEnumerator::new(&problem.tyenv).first_values(&concrete, 90, 12);
    let split = (pool.len() * 2) / 5;
    let (positives, negatives) = pool.split_at(split);
    let examples = ExampleSet::from_sets(positives.iter().cloned(), negatives.iter().cloned())
        .expect("enumerated values are distinct")
        .trace_completed(&problem.tyenv, &concrete)
        .0;
    let worlds = examples.len();
    let config = if quick_mode() {
        SearchConfig {
            schedule: vec![(0, 5), (1, 6)],
            ..SearchConfig::quick()
        }
    } else {
        SearchConfig {
            schedule: vec![(0, 5), (1, 7)],
            ..SearchConfig::default()
        }
    };

    let mut group = c.benchmark_group("high_parallelism_synth");
    group.sample_size(samples);
    let mut median_by_level: Vec<(usize, f64)> = Vec::new();
    let mut reference: Option<Option<hanoi_lang::ast::Expr>> = None;
    let mut serial_stats = None;
    for level in LEVELS {
        let engine = Engine::new(
            &problem,
            SearchConfig {
                parallelism: Some(level),
                ..config.clone()
            },
        );
        let mut timings = Vec::with_capacity(samples);
        for _ in 0..samples {
            let bank = TermBank::new();
            let start = Instant::now();
            let outcome = engine
                .synthesize_with_bank(&bank, &examples, &Deadline::none())
                .ok();
            timings.push(start.elapsed());
            match &reference {
                Some(expected) => assert_eq!(
                    &outcome, expected,
                    "parallelism {level} changed the synthesis outcome"
                ),
                None => reference = Some(outcome),
            }
            if level == 1 && serial_stats.is_none() {
                serial_stats = Some(bank.stats());
            }
        }
        group.bench_function(format!("cold_guess_p{level}"), |b| {
            b.iter(|| {
                let bank = TermBank::new();
                engine.synthesize_with_bank(&bank, &examples, &Deadline::none())
            })
        });
        median_by_level.push((level, median_secs(timings)));
    }
    group.finish();

    let stats = serial_stats.expect("level 1 is measured");
    let probes = stats.bank_hits + stats.bank_misses;
    let serial = median_by_level
        .iter()
        .find(|(level, _)| *level == 1)
        .map(|(_, t)| *t)
        .unwrap_or(f64::NAN);
    let best = median_by_level
        .iter()
        .map(|&(_, t)| t)
        .fold(f64::INFINITY, f64::min);
    let levels_json = Json::Obj(
        median_by_level
            .iter()
            .map(|&(level, secs)| {
                let key = if level == 0 {
                    "auto".to_string()
                } else {
                    level.to_string()
                };
                (key, Json::Num(secs))
            })
            .collect(),
    );
    Json::obj([
        (
            "benchmark",
            Json::Str("/coq/unique-list-::-set".to_string()),
        ),
        ("worlds", Json::Num(worlds as f64)),
        ("median_secs_by_parallelism", levels_json),
        ("serial_secs", Json::Num(serial)),
        ("best_secs", Json::Num(best)),
        ("speedup_best_over_serial", Json::Num(serial / best)),
        ("terms_enumerated", Json::Num(stats.terms_enumerated as f64)),
        ("bank_probes", Json::Num(probes as f64)),
        ("probe_batches", Json::Num(stats.probe_batches as f64)),
        (
            "probes_per_batch",
            Json::Num(probes as f64 / (stats.probe_batches as f64).max(1.0)),
        ),
        ("bitset_row_ops", Json::Num(stats.bitset_row_ops as f64)),
        ("outcome_identical_across_levels", Json::Bool(true)),
    ])
}

/// The cross-run reuse workloads: the same problem solved twice through one
/// long-lived `hanoi::Engine` (the second run starts from warm pools,
/// function-candidate pools and a warm term bank) versus two fresh engines
/// (the old `Driver` cold-run behaviour).  Two problems are measured: the
/// first-order running example (where per-run predicate sweeps dominate and
/// warmth buys little) and its higher-order variant (where the cold run pays
/// the expensive §4.2 function-candidate enumeration that the engine's pool
/// cache keeps warm).  Warm runs are asserted outcome-identical to cold
/// runs; the summary reports per-workload medians and second-run speedups.
/// The bounds shared by the two cross-engine warm workloads
/// ([`bench_cross_run_warm`], [`bench_cross_process_warm`]): paper-scale
/// single-quantifier pools and HOF limits in the default mode so enumeration
/// is a realistic share of a run; quick mode shrinks everything for the CI
/// smoke job.
fn warm_workload_bounds() -> VerifierBounds {
    if quick_mode() {
        VerifierBounds {
            single_count: 200,
            single_size: 12,
            multi_count: 60,
            multi_size: 8,
            total_cap: 1_000,
            ..VerifierBounds::quick()
        }
    } else {
        VerifierBounds {
            single_count: 1500,
            single_size: 30,
            multi_count: 400,
            multi_size: 12,
            total_cap: 12_000,
            hof_body_size: 6,
            hof_max_functions: 40,
            ..VerifierBounds::quick()
        }
    }
}

fn bench_cross_run_warm(c: &mut Criterion, samples: usize) -> Json {
    use hanoi::{Engine as InferenceEngine, RunOptions};

    let options = RunOptions::quick().with_bounds(warm_workload_bounds());

    let workloads = [
        ("first_order", "/coq/unique-list-::-set"),
        ("higher_order", "/coq/unique-list-::-set+hofs"),
    ];
    let mut rows: Vec<Json> = Vec::new();
    let mut group = c.benchmark_group("cross_run_warm");
    group.sample_size(samples);
    for (name, id) in workloads {
        let problem = find(id).unwrap().problem().expect("benchmark elaborates");

        // Correctness first: the warm second run must match a cold run
        // exactly.
        let cold_reference = InferenceEngine::with_defaults().run(&problem, &options);
        let warm_engine = InferenceEngine::with_defaults();
        let _first = warm_engine.run(&problem, &options);
        let warm_reference = warm_engine.run(&problem, &options);
        assert_eq!(
            warm_reference.outcome, cold_reference.outcome,
            "{id}: a warm engine must not change inference results"
        );
        assert_eq!(
            warm_reference.stats.pool_builds, 0,
            "{id}: the warm run re-enumerated pools"
        );

        // Timings: cold = a fresh engine per run; warm = the second run
        // through an engine that has already solved the problem once.
        let mut cold_timings = Vec::with_capacity(samples);
        let mut warm_timings = Vec::with_capacity(samples);
        for _ in 0..samples {
            let start = Instant::now();
            let result = InferenceEngine::with_defaults().run(&problem, &options);
            cold_timings.push(start.elapsed());
            assert!(result.is_success(), "{id}: {}", result.outcome);

            let engine = InferenceEngine::with_defaults();
            let _ = engine.run(&problem, &options);
            let start = Instant::now();
            let result = engine.run(&problem, &options);
            warm_timings.push(start.elapsed());
            assert!(result.is_success(), "{id}: {}", result.outcome);
        }
        let cold_secs = median_secs(cold_timings);
        let warm_secs = median_secs(warm_timings);

        group.bench_function(format!("{name}_cold_fresh_engine_per_run"), |b| {
            b.iter(|| InferenceEngine::with_defaults().run(&problem, &options))
        });
        let timed_engine = InferenceEngine::with_defaults();
        let _ = timed_engine.run(&problem, &options);
        group.bench_function(format!("{name}_warm_second_run_same_engine"), |b| {
            b.iter(|| timed_engine.run(&problem, &options))
        });

        rows.push(Json::obj([
            ("workload", Json::Str(name.to_string())),
            ("benchmark", Json::Str(id.to_string())),
            ("cold_secs", Json::Num(cold_secs)),
            ("warm_secs", Json::Num(warm_secs)),
            (
                "speedup_warm_over_cold",
                Json::Num(cold_secs / warm_secs.max(f64::MIN_POSITIVE)),
            ),
            (
                "warm_pool_builds",
                Json::Num(warm_reference.stats.pool_builds as f64),
            ),
            (
                "cold_pool_builds",
                Json::Num(cold_reference.stats.pool_builds as f64),
            ),
            (
                "warm_terms_enumerated",
                Json::Num(warm_reference.stats.synth_terms_enumerated as f64),
            ),
            (
                "cold_terms_enumerated",
                Json::Num(cold_reference.stats.synth_terms_enumerated as f64),
            ),
            (
                "warm_bank_hits",
                Json::Num(warm_reference.stats.synth_bank_hits as f64),
            ),
            ("outcome_identical", Json::Bool(true)),
        ]));
    }
    group.finish();
    Json::Arr(rows)
}

/// The numeric-synthesis workload: a trace-driven linear-arithmetic
/// benchmark (`/numeric/window-::-bounded`, whose invariant `b ≤ a + 4`
/// needs both an arithmetic composite and an integer literal) solved cold
/// through fresh engines versus warm through a second run on the same
/// engine.  The grammar extension changes what the enumerator builds —
/// arithmetic composites over `Int` lanes instead of boolean-only atoms —
/// so this workload tracks whether the numeric family stays solvable and
/// how much cross-run warmth buys when dense-id signature rows dominate.
/// Outcome identity and arith-atom exercise are asserted before any timing.
fn bench_numeric_synth(c: &mut Criterion, samples: usize) -> Json {
    use hanoi::{Engine as InferenceEngine, RunOptions};
    use hanoi_synth::arith::ArithBounds;

    let id = "/numeric/window-::-bounded";
    let problem = find(id).unwrap().problem().expect("benchmark elaborates");
    let options = RunOptions::quick()
        .with_bounds(warm_workload_bounds())
        .with_numeric_grammar(&ArithBounds::default());

    // Correctness first: the warm second run must match a cold run exactly,
    // and both must have gone through the arithmetic grammar.
    let cold_reference = InferenceEngine::with_defaults().run(&problem, &options);
    assert!(
        cold_reference.is_success(),
        "{id}: {}",
        cold_reference.outcome
    );
    assert!(
        cold_reference.stats.synth_arith_atoms > 0,
        "{id}: the cold run never built an arithmetic composite: {:?}",
        cold_reference.stats
    );
    let warm_engine = InferenceEngine::with_defaults();
    let _first = warm_engine.run(&problem, &options);
    let warm_reference = warm_engine.run(&problem, &options);
    assert_eq!(
        warm_reference.outcome, cold_reference.outcome,
        "{id}: a warm engine must not change numeric inference results"
    );
    assert_eq!(
        warm_reference.stats.pool_builds, 0,
        "{id}: the warm run re-enumerated pools"
    );

    // Timings: cold = a fresh engine per run; warm = the second run through
    // an engine that has already solved the problem once.
    let mut cold_timings = Vec::with_capacity(samples);
    let mut warm_timings = Vec::with_capacity(samples);
    for _ in 0..samples {
        let start = Instant::now();
        let result = InferenceEngine::with_defaults().run(&problem, &options);
        cold_timings.push(start.elapsed());
        assert!(result.is_success(), "{id}: {}", result.outcome);

        let engine = InferenceEngine::with_defaults();
        let _ = engine.run(&problem, &options);
        let start = Instant::now();
        let result = engine.run(&problem, &options);
        warm_timings.push(start.elapsed());
        assert!(result.is_success(), "{id}: {}", result.outcome);
    }
    let cold_secs = median_secs(cold_timings);
    let warm_secs = median_secs(warm_timings);

    let mut group = c.benchmark_group("numeric_synth");
    group.sample_size(samples);
    group.bench_function("cold_fresh_engine_per_run", |b| {
        b.iter(|| InferenceEngine::with_defaults().run(&problem, &options))
    });
    let timed_engine = InferenceEngine::with_defaults();
    let _ = timed_engine.run(&problem, &options);
    group.bench_function("warm_second_run_same_engine", |b| {
        b.iter(|| timed_engine.run(&problem, &options))
    });
    group.finish();

    Json::obj([
        ("benchmark", Json::Str(id.to_string())),
        ("cold_secs", Json::Num(cold_secs)),
        ("warm_secs", Json::Num(warm_secs)),
        (
            "speedup_warm_over_cold",
            Json::Num(cold_secs / warm_secs.max(f64::MIN_POSITIVE)),
        ),
        (
            "arith_atoms",
            Json::Num(cold_reference.stats.synth_arith_atoms as f64),
        ),
        (
            "warm_arith_atoms",
            Json::Num(warm_reference.stats.synth_arith_atoms as f64),
        ),
        (
            "warm_pool_builds",
            Json::Num(warm_reference.stats.pool_builds as f64),
        ),
        (
            "cold_terms_enumerated",
            Json::Num(cold_reference.stats.synth_terms_enumerated as f64),
        ),
        ("outcome_identical", Json::Bool(true)),
    ])
}

/// The cross-*process* warm workload: the same problem solved by two
/// engines that share nothing but a warm-start directory on disk.  Engine A
/// runs cold and checkpoints (`Engine::save_state`); engine B is a
/// brand-new engine that restores the snapshot purely from the file — the
/// exact code path a second OS process executes (structural digests carry
/// no in-process state, so running both halves in one bench process changes
/// nothing).  The restored run answers every verifier check from the
/// snapshot and is asserted outcome-identical to a cold run; the summary
/// reports cold vs restored medians, the restore speedup and the snapshot
/// size on disk.
fn bench_cross_process_warm(c: &mut Criterion, samples: usize) -> Json {
    use hanoi::{Engine as InferenceEngine, EngineConfig, RunOptions};

    let options = RunOptions::quick().with_bounds(warm_workload_bounds());
    let warm_dir =
        std::env::temp_dir().join(format!("hanoi-cross-process-warm-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&warm_dir);
    let warm_engine = |dir: &std::path::Path| {
        InferenceEngine::new(EngineConfig::default().with_warm_start_dir(dir))
            .expect("warm engine config is valid")
    };

    let workloads = [
        ("first_order", "/coq/unique-list-::-set"),
        ("higher_order", "/coq/unique-list-::-set+hofs"),
    ];
    let mut rows: Vec<Json> = Vec::new();
    let mut group = c.benchmark_group("cross_process_warm");
    group.sample_size(samples);
    for (name, id) in workloads {
        let problem = find(id).unwrap().problem().expect("benchmark elaborates");

        // Correctness first: "process 1" solves and checkpoints, "process 2"
        // restores from disk and must match a cold run exactly while
        // answering every check from the snapshot.
        let cold_reference = InferenceEngine::with_defaults().run(&problem, &options);
        let saver = warm_engine(&warm_dir);
        let first = saver.run(&problem, &options);
        assert!(first.is_success(), "{id}: {}", first.outcome);
        assert_eq!(
            first.stats.warm_start_loads, 0,
            "{id}: nothing to restore on the first process"
        );
        saver
            .save_state(&warm_dir)
            .expect("snapshot write succeeds");
        // Snapshot size on disk = the chunk bytes the problem's manifest
        // references (snapshots are chunked content-addressed files now, not
        // one monolithic JSON per problem).
        let snapshot_bytes = hanoi_store::ChunkStore::open(&warm_dir)
            .ok()
            .and_then(|store| store.manifest(problem.fingerprint()))
            .map(|manifest| manifest.chunk_bytes())
            .unwrap_or(0);
        assert!(
            snapshot_bytes > 0,
            "{id}: the chunked save must leave a measurable manifest"
        );
        let restored_engine = warm_engine(&warm_dir);
        let restored = restored_engine.run(&problem, &options);
        assert_eq!(
            restored.outcome, cold_reference.outcome,
            "{id}: a disk-restored engine must not change inference results"
        );
        assert!(
            restored.stats.warm_start_loads > 0,
            "{id}: the second process must actually restore the snapshot"
        );
        assert_eq!(
            restored.stats.verification_cache_hits as usize, restored.stats.verification_calls,
            "{id}: every restored check must be a snapshot hit: {:?}",
            restored.stats
        );
        assert_eq!(
            restored.stats.pool_builds, 0,
            "{id}: a fully warm restored run never enumerates a pool"
        );

        // Timings: cold = fresh engine, no store; restored = brand-new
        // engine whose only warmth is the snapshot file.
        let mut cold_timings = Vec::with_capacity(samples);
        let mut restored_timings = Vec::with_capacity(samples);
        for _ in 0..samples {
            let start = Instant::now();
            let result = InferenceEngine::with_defaults().run(&problem, &options);
            cold_timings.push(start.elapsed());
            assert!(result.is_success(), "{id}: {}", result.outcome);

            let engine = warm_engine(&warm_dir);
            let start = Instant::now();
            let result = engine.run(&problem, &options);
            restored_timings.push(start.elapsed());
            assert!(result.is_success(), "{id}: {}", result.outcome);
        }
        let cold_secs = median_secs(cold_timings);
        let restored_secs = median_secs(restored_timings);

        group.bench_function(format!("{name}_cold_no_store"), |b| {
            b.iter(|| InferenceEngine::with_defaults().run(&problem, &options))
        });
        group.bench_function(format!("{name}_restored_from_disk_snapshot"), |b| {
            b.iter(|| warm_engine(&warm_dir).run(&problem, &options))
        });

        rows.push(Json::obj([
            ("workload", Json::Str(name.to_string())),
            ("benchmark", Json::Str(id.to_string())),
            ("cold_secs", Json::Num(cold_secs)),
            ("restored_secs", Json::Num(restored_secs)),
            (
                "speedup_restored_over_cold",
                Json::Num(cold_secs / restored_secs.max(f64::MIN_POSITIVE)),
            ),
            ("snapshot_bytes", Json::Num(snapshot_bytes as f64)),
            (
                "warm_start_loads",
                Json::Num(restored.stats.warm_start_loads as f64),
            ),
            (
                "restored_verification_cache_hits",
                Json::Num(restored.stats.verification_cache_hits as f64),
            ),
            (
                "restored_pool_builds",
                Json::Num(restored.stats.pool_builds as f64),
            ),
            ("outcome_identical", Json::Bool(true)),
        ]));
    }
    group.finish();
    let _ = std::fs::remove_dir_all(&warm_dir);
    Json::Arr(rows)
}

/// The fleet-sync workload: a populated warm store is replicated onto a
/// fresh machine (a full merge), then the source solves *one* more problem
/// and replicates again.  The manifest-diff sync protocol must transfer
/// only the new problem's chunks on the second pass — the summary's
/// `delta_bytes` vs `full_bytes` is the headline number (asserted ≪, so a
/// regression to whole-store copies fails the bench), and a third pass must
/// transfer nothing at all.  Ends with a restore from the replica proving
/// the synced warmth is real.
fn bench_fleet_warm(c: &mut Criterion, samples: usize) -> Json {
    use hanoi::{Engine as InferenceEngine, EngineConfig, RunOptions};
    use hanoi_store::ChunkStore;

    let options = RunOptions::quick().with_bounds(warm_workload_bounds());
    let source_dir = std::env::temp_dir().join(format!("hanoi-fleet-src-{}", std::process::id()));
    let replica_dir = std::env::temp_dir().join(format!("hanoi-fleet-dst-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&source_dir);
    let _ = std::fs::remove_dir_all(&replica_dir);
    std::fs::create_dir_all(&source_dir).expect("scratch dir");
    std::fs::create_dir_all(&replica_dir).expect("scratch dir");

    // The established fleet state: several solved problems, the running
    // example's large check cache among them so `full_bytes` is dominated
    // by warmth the delta pass must *not* re-send.
    let base_ids = [
        "/coq/unique-list-::-set",
        "/other/cache",
        "/other/sized-list",
    ];
    let late_id = "/other/rational";
    let solve_into = |dir: &std::path::Path, id: &str| {
        let problem = find(id).unwrap().problem().expect("benchmark elaborates");
        let engine = InferenceEngine::new(EngineConfig::default().with_warm_start_dir(dir))
            .expect("warm engine config is valid");
        let result = engine.run(&problem, &options);
        assert!(result.is_success(), "{id}: {}", result.outcome);
        engine.save_state(dir).expect("snapshot write succeeds");
        (problem, result)
    };
    for id in base_ids {
        solve_into(&source_dir, id);
    }

    let source = ChunkStore::open(&source_dir).expect("source store opens");
    let replica = ChunkStore::open(&replica_dir).expect("replica store opens");

    // Pass 1: a brand-new machine joins the fleet — everything transfers.
    let full = replica.merge_from(&source).expect("full merge succeeds");
    assert_eq!(full.manifests_copied, base_ids.len(), "{full:?}");
    let full_bytes = full.chunk_bytes_copied;

    // The source solves one more problem; pass 2 must move only its chunks.
    let (late_problem, late_cold) = solve_into(&source_dir, late_id);
    let delta = replica.merge_from(&source).expect("delta merge succeeds");
    assert_eq!(delta.manifests_copied, 1, "{delta:?}");
    let delta_bytes = delta.chunk_bytes_copied;
    assert!(
        delta_bytes * 4 <= full_bytes,
        "the delta pass re-sent the fleet: {delta_bytes} of {full_bytes} bytes"
    );

    // Pass 3: converged — the scan finds nothing to move.
    let converged = replica.merge_from(&source).expect("converged merge");
    assert_eq!(converged.manifests_copied, 0, "{converged:?}");
    assert_eq!(converged.chunks_copied, 0, "{converged:?}");

    // The replicated warmth is real: a brand-new engine pointed at the
    // replica restores the late problem and matches the source's outcome.
    let restored = InferenceEngine::new(EngineConfig::default().with_warm_start_dir(&replica_dir))
        .expect("warm engine config is valid")
        .run(&late_problem, &options);
    assert_eq!(
        restored.outcome, late_cold.outcome,
        "{late_id}: a sync-restored engine must not change inference results"
    );
    assert!(restored.stats.warm_start_loads > 0, "{:?}", restored.stats);
    assert_eq!(
        restored.stats.warm_start_quarantined, 0,
        "{:?}",
        restored.stats
    );

    // Time the converged scan — the steady-state cost every sync interval
    // pays even when nothing changed.
    let mut group = c.benchmark_group("fleet_warm");
    group.sample_size(samples);
    group.bench_function("converged_sync_scan", |b| {
        b.iter(|| replica.merge_from(&source).expect("converged merge"))
    });
    group.finish();

    let replica_stats = replica.stats();
    let summary = Json::obj([
        ("base_problems", Json::Num(base_ids.len() as f64)),
        ("late_problem", Json::Str(late_id.to_string())),
        ("full_bytes", Json::Num(full_bytes as f64)),
        ("full_chunks", Json::Num(full.chunks_copied as f64)),
        ("delta_bytes", Json::Num(delta_bytes as f64)),
        ("delta_chunks", Json::Num(delta.chunks_copied as f64)),
        (
            "delta_over_full",
            Json::Num(delta_bytes as f64 / (full_bytes as f64).max(f64::MIN_POSITIVE)),
        ),
        (
            "replica_store_bytes",
            Json::Num(replica_stats.total_bytes() as f64),
        ),
        (
            "replica_manifests",
            Json::Num(replica_stats.manifests as f64),
        ),
        (
            "restored_warm_start_loads",
            Json::Num(restored.stats.warm_start_loads as f64),
        ),
        ("converged_transfers_nothing", Json::Bool(true)),
        ("outcome_identical", Json::Bool(true)),
    ]);
    let _ = std::fs::remove_dir_all(&source_dir);
    let _ = std::fs::remove_dir_all(&replica_dir);
    summary
}

fn bench_cegis_hot_path(c: &mut Criterion) {
    let samples: usize = if quick_mode() { 3 } else { 7 };
    let problem = find("/coq/unique-list-::-set")
        .unwrap()
        .problem()
        .expect("benchmark elaborates");
    let no_dup = parse_expr(
        "fix inv (l : list) : bool = \
           match l with | Nil -> True | Cons (hd, tl) -> not (lookup tl hd) && inv tl end",
    )
    .unwrap();
    // Paper-scale single-quantifier pools, reduced multi-quantifier pools:
    // big enough for threading and caching to matter, small enough for CI.
    // Quick mode shrinks everything again so the smoke job finishes in
    // seconds while still exercising every code path.
    let bounds = if quick_mode() {
        VerifierBounds {
            single_count: 200,
            single_size: 12,
            multi_count: 60,
            multi_size: 8,
            total_cap: 1_000,
            ..VerifierBounds::quick()
        }
    } else {
        VerifierBounds {
            single_count: 1500,
            single_size: 30,
            multi_count: 400,
            multi_size: 12,
            total_cap: 12_000,
            ..VerifierBounds::quick()
        }
    };

    let sufficiency = no_dup.clone();
    let full = no_dup.clone();
    let v_plus_inv = no_dup.clone();
    let v_plus_count = if quick_mode() { 60 } else { 500 };
    let workloads = [
        Workload {
            name: "sufficiency_valid",
            run: Box::new(move |v| {
                assert!(v.check_sufficiency(&sufficiency).unwrap().is_valid());
            }),
        },
        Workload {
            name: "full_inductiveness_valid",
            run: Box::new(move |v| {
                assert!(v.check_full_inductiveness(&full).unwrap().is_valid());
            }),
        },
        Workload {
            name: "visible_inductiveness_valid",
            run: Box::new(move |v| {
                // V+ = the smallest constructible (duplicate-free) lists; the
                // module operations preserve the invariant on them.
                let v_plus: Vec<_> = v
                    .smallest_concrete_values(v_plus_count)
                    .into_iter()
                    .filter(|value| v.problem().eval_predicate(&v_plus_inv, value).unwrap())
                    .collect();
                assert!(v_plus.len() >= 20, "expected a substantial V+ pool");
                assert!(v
                    .check_visible_inductiveness(&v_plus, &v_plus_inv)
                    .unwrap()
                    .is_valid());
            }),
        },
    ];

    let mut group = c.benchmark_group("cegis_hot_path");
    group.sample_size(samples);

    let mut rows: Vec<Json> = Vec::new();
    let mut session_stats = PoolCacheStats::default();
    for workload in &workloads {
        let mut median_by_level: Vec<(usize, f64)> = Vec::new();
        let mut cold_secs = f64::NAN;
        let mut warm_evals_per_sec = f64::NAN;
        let mut cache_after = PoolCacheStats::default();
        for level in LEVELS {
            let verifier = Verifier::new(&problem)
                .with_bounds(bounds)
                .with_parallelism(level);
            // The first run is the *cold* path: it both warms the interner
            // and pays the session's pool enumeration exactly once.
            let cold_start = Instant::now();
            (workload.run)(&verifier);
            let cold = cold_start.elapsed();
            let evals_before = verifier.pool_stats().predicate_evals;
            let mut timings = Vec::with_capacity(samples);
            for _ in 0..samples {
                let start = Instant::now();
                (workload.run)(&verifier);
                timings.push(start.elapsed());
            }
            let warm_total: Duration = timings.iter().sum();
            let median = median_secs(timings);
            if level == 1 {
                cold_secs = cold.as_secs_f64();
                let evals = verifier.pool_stats().predicate_evals - evals_before;
                warm_evals_per_sec = evals as f64 / warm_total.as_secs_f64().max(f64::MIN_POSITIVE);
                cache_after = verifier.pool_stats();
            }
            // Also surface the point through the criterion harness (one
            // timed iteration: the direct samples above are authoritative).
            group.bench_function(format!("{}_p{}", workload.name, level), |b| {
                b.iter(|| (workload.run)(&verifier))
            });
            median_by_level.push((level, median));
        }
        session_stats.hits += cache_after.hits;
        session_stats.builds += cache_after.builds;
        session_stats.slab_builds += cache_after.slab_builds;
        session_stats.predicate_evals += cache_after.predicate_evals;
        let serial = median_by_level
            .iter()
            .find(|(level, _)| *level == 1)
            .map(|(_, t)| *t)
            .unwrap_or(f64::NAN);
        let best = median_by_level
            .iter()
            .map(|&(_, t)| t)
            .fold(f64::INFINITY, f64::min);
        let levels_json = Json::Obj(
            median_by_level
                .iter()
                .map(|&(level, secs)| {
                    let key = if level == 0 {
                        "auto".to_string()
                    } else {
                        level.to_string()
                    };
                    (key, Json::Num(secs))
                })
                .collect(),
        );
        rows.push(Json::obj([
            ("workload", Json::Str(workload.name.to_string())),
            ("median_secs_by_parallelism", levels_json),
            ("serial_secs", Json::Num(serial)),
            ("best_secs", Json::Num(best)),
            ("speedup_best_over_serial", Json::Num(serial / best)),
            // Pool-cache instrumentation (serial session): the cold first
            // run pays enumeration, warm runs are pure evaluation.
            ("cold_secs", Json::Num(cold_secs)),
            (
                "speedup_warm_over_cold",
                Json::Num(cold_secs / serial.max(f64::MIN_POSITIVE)),
            ),
            ("warm_evals_per_sec", Json::Num(warm_evals_per_sec)),
            ("pool_cache_hits", Json::Num(cache_after.hits as f64)),
            ("pool_cache_builds", Json::Num(cache_after.builds as f64)),
        ]));
    }
    group.finish();

    let synthesis = bench_synthesis_multi_cex(c, samples);
    let high_parallelism = bench_high_parallelism_synth(c, samples);
    let numeric = bench_numeric_synth(c, samples);
    let cross_run = bench_cross_run_warm(c, samples);
    let cross_process = bench_cross_process_warm(c, samples);
    let fleet = bench_fleet_warm(c, samples);

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let summary = Json::obj([
        (
            "benchmark",
            Json::Str("/coq/unique-list-::-set".to_string()),
        ),
        ("host_cores", Json::Num(cores as f64)),
        ("samples_per_point", Json::Num(samples as f64)),
        ("quick_mode", Json::Bool(quick_mode())),
        ("workloads", Json::Arr(rows)),
        // Aggregate pool-cache behaviour across the serial sessions of all
        // workloads: `builds`/`slab_builds` stay constant as samples grow —
        // enumeration happens once per session, not once per check.
        (
            "pool_cache",
            Json::obj([
                ("hits", Json::Num(session_stats.hits as f64)),
                ("builds", Json::Num(session_stats.builds as f64)),
                ("slab_builds", Json::Num(session_stats.slab_builds as f64)),
                (
                    "predicate_evals",
                    Json::Num(session_stats.predicate_evals as f64),
                ),
            ]),
        ),
        // The incremental-synthesis workload: cold rebuilds the term pool
        // per CEGIS iteration, warm reuses the session's persistent bank.
        ("synthesis_multi_cex", synthesis),
        // The high-parallelism guessing workload: one wide, deep cold guess
        // per parallelism level; `probes_per_batch` measures the bank-lock
        // amortization of batched probes.
        ("high_parallelism_synth", high_parallelism),
        // The numeric/trace workload: a linear-arithmetic benchmark solved
        // cold vs warm, pinning that the extended grammar stays solvable.
        ("numeric_synth", numeric),
        // The cross-run reuse workload: the same problem solved twice
        // through one long-lived engine vs two fresh engines.
        ("cross_run_warm", cross_run),
        // The cross-process reuse workload: a brand-new engine restored
        // from a warm-start snapshot on disk vs a cold engine.
        ("cross_process_warm", cross_process),
        // The fleet-sync workload: replicating a warm store moves the full
        // chunk set once, then only per-problem deltas (asserted ≪ full).
        ("fleet_warm", fleet),
    ]);
    // Default to the workspace root regardless of the bench's CWD — except
    // in quick mode, whose tiny-bounds numbers must never clobber the
    // committed paper-scale results.
    let out = std::env::var("BENCH_VERIFICATION_OUT").unwrap_or_else(|_| {
        if quick_mode() {
            std::env::temp_dir()
                .join("BENCH_verification_smoke.json")
                .display()
                .to_string()
        } else {
            format!(
                "{}/../../BENCH_verification.json",
                env!("CARGO_MANIFEST_DIR")
            )
        }
    });
    match std::fs::write(&out, summary.render_pretty()) {
        Ok(()) => eprintln!("wrote {out}"),
        Err(e) => eprintln!("could not write {out}: {e}"),
    }
}

criterion_group!(benches, bench_cegis_hot_path);
criterion_main!(benches);
