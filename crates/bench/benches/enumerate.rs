//! Micro-benchmarks of size-ordered value enumeration, the source of every
//! test input the bounded verifier uses (§4.3 bounds: 3000 values / 30 nodes).

use criterion::{criterion_group, criterion_main, Criterion};
use hanoi_benchmarks::find;
use hanoi_lang::enumerate::ValueEnumerator;
use hanoi_lang::types::Type;

fn bench_enumeration(c: &mut Criterion) {
    let list_problem = find("/coq/unique-list-::-set")
        .unwrap()
        .problem()
        .expect("benchmark elaborates");
    let tree_problem = find("/vfa/tree-::-priqueue")
        .unwrap()
        .problem()
        .expect("elaborates");

    let mut group = c.benchmark_group("enumerate");
    group.sample_size(20);

    group.bench_function("lists_3000_of_30_nodes", |b| {
        b.iter(|| {
            let mut enumerator = ValueEnumerator::new(&list_problem.tyenv);
            enumerator
                .first_values(&Type::named("list"), 3000, 30)
                .len()
        })
    });
    group.bench_function("trees_3000_of_15_nodes", |b| {
        b.iter(|| {
            let mut enumerator = ValueEnumerator::new(&tree_problem.tyenv);
            enumerator
                .first_values(&Type::named("tree"), 3000, 15)
                .len()
        })
    });
    group.bench_function("lists_cached_resweep", |b| {
        let mut enumerator = ValueEnumerator::new(&list_problem.tyenv);
        enumerator.first_values(&Type::named("list"), 3000, 30);
        b.iter(|| {
            enumerator
                .first_values(&Type::named("list"), 3000, 30)
                .len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_enumeration);
criterion_main!(benches);
