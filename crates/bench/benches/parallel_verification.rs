//! Serial vs parallel bounded verification.
//!
//! Measures the verifier's three checks on the §2 running example at
//! parallelism 1 (serial), 2, 4 and 0 (one worker per core), reports each
//! timing through the criterion harness, and writes a machine-readable
//! summary to `BENCH_verification.json` (override the path with the
//! `BENCH_VERIFICATION_OUT` environment variable).
//!
//! The workloads are chosen so the sweep runs to completion (`Valid`
//! outcomes, no short-circuit): that is both the verifier's dominant cost in
//! practice — most CEGIS iterations end in a full sweep — and the best-case
//! shape for parallelism, so the summary's `speedup` column directly reads
//! off how much the parallel refactor buys on this host.
//!
//! ```text
//! cargo bench -p hanoi-bench --bench parallel_verification
//! ```

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion};
use hanoi_bench::json::Json;
use hanoi_benchmarks::find;
use hanoi_lang::parser::parse_expr;
use hanoi_verifier::{Verifier, VerifierBounds};

/// Parallelism levels measured, in reporting order. `0` = all cores.
const LEVELS: [usize; 4] = [1, 2, 4, 0];

/// Samples per (workload, level) pair; the median is reported.
const SAMPLES: usize = 7;

fn median_secs(mut samples: Vec<Duration>) -> f64 {
    samples.sort();
    samples[samples.len() / 2].as_secs_f64()
}

struct Workload {
    name: &'static str,
    run: Box<dyn Fn(&Verifier<'_>)>,
}

fn bench_parallel_verification(c: &mut Criterion) {
    let problem = find("/coq/unique-list-::-set")
        .unwrap()
        .problem()
        .expect("benchmark elaborates");
    let no_dup = parse_expr(
        "fix inv (l : list) : bool = \
           match l with | Nil -> True | Cons (hd, tl) -> not (lookup tl hd) && inv tl end",
    )
    .unwrap();
    // Paper-scale single-quantifier pools, reduced multi-quantifier pools:
    // big enough for threading to matter, small enough for CI.
    let bounds = VerifierBounds {
        single_count: 1500,
        single_size: 30,
        multi_count: 400,
        multi_size: 12,
        total_cap: 12_000,
        ..VerifierBounds::quick()
    };

    let sufficiency = no_dup.clone();
    let full = no_dup.clone();
    let v_plus_inv = no_dup.clone();
    let workloads = [
        Workload {
            name: "sufficiency_valid",
            run: Box::new(move |v| {
                assert!(v.check_sufficiency(&sufficiency).unwrap().is_valid());
            }),
        },
        Workload {
            name: "full_inductiveness_valid",
            run: Box::new(move |v| {
                assert!(v.check_full_inductiveness(&full).unwrap().is_valid());
            }),
        },
        Workload {
            name: "visible_inductiveness_valid",
            run: Box::new(move |v| {
                // V+ = the smallest constructible (duplicate-free) lists; the
                // module operations preserve the invariant on them.
                let v_plus: Vec<_> = v
                    .smallest_concrete_values(500)
                    .into_iter()
                    .filter(|value| v.problem().eval_predicate(&v_plus_inv, value).unwrap())
                    .collect();
                assert!(v_plus.len() >= 50, "expected a substantial V+ pool");
                assert!(v
                    .check_visible_inductiveness(&v_plus, &v_plus_inv)
                    .unwrap()
                    .is_valid());
            }),
        },
    ];

    let mut group = c.benchmark_group("parallel_verification");
    group.sample_size(SAMPLES);

    let mut rows: Vec<Json> = Vec::new();
    for workload in &workloads {
        let mut median_by_level: Vec<(usize, f64)> = Vec::new();
        for level in LEVELS {
            let verifier = Verifier::new(&problem)
                .with_bounds(bounds)
                .with_parallelism(level);
            // Warm the interner and any lazy state once, outside timing.
            (workload.run)(&verifier);
            let mut samples = Vec::with_capacity(SAMPLES);
            for _ in 0..SAMPLES {
                let start = Instant::now();
                (workload.run)(&verifier);
                samples.push(start.elapsed());
            }
            let median = median_secs(samples);
            // Also surface the point through the criterion harness (one
            // timed iteration: the direct samples above are authoritative).
            group.bench_function(format!("{}_p{}", workload.name, level), |b| {
                b.iter(|| (workload.run)(&verifier))
            });
            median_by_level.push((level, median));
        }
        let serial = median_by_level
            .iter()
            .find(|(level, _)| *level == 1)
            .map(|(_, t)| *t)
            .unwrap_or(f64::NAN);
        let best = median_by_level
            .iter()
            .map(|&(_, t)| t)
            .fold(f64::INFINITY, f64::min);
        let levels_json = Json::Obj(
            median_by_level
                .iter()
                .map(|&(level, secs)| {
                    let key = if level == 0 {
                        "auto".to_string()
                    } else {
                        level.to_string()
                    };
                    (key, Json::Num(secs))
                })
                .collect(),
        );
        rows.push(Json::obj([
            ("workload", Json::Str(workload.name.to_string())),
            ("median_secs_by_parallelism", levels_json),
            ("serial_secs", Json::Num(serial)),
            ("best_secs", Json::Num(best)),
            ("speedup_best_over_serial", Json::Num(serial / best)),
        ]));
    }
    group.finish();

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let summary = Json::obj([
        (
            "benchmark",
            Json::Str("/coq/unique-list-::-set".to_string()),
        ),
        ("host_cores", Json::Num(cores as f64)),
        ("samples_per_point", Json::Num(SAMPLES as f64)),
        ("workloads", Json::Arr(rows)),
    ]);
    // Default to the workspace root regardless of the bench's CWD.
    let out = std::env::var("BENCH_VERIFICATION_OUT").unwrap_or_else(|_| {
        format!(
            "{}/../../BENCH_verification.json",
            env!("CARGO_MANIFEST_DIR")
        )
    });
    match std::fs::write(&out, summary.render_pretty()) {
        Ok(()) => eprintln!("wrote {out}"),
        Err(e) => eprintln!("could not write {out}: {e}"),
    }
}

criterion_group!(benches, bench_parallel_verification);
criterion_main!(benches);
