//! Shared command-line parsing for the harness binaries.
//!
//! All three binaries (`figure7`, `figure8`, `ablation_synth`) accept the
//! same flags; this module replaces the three hand-rolled copies of the
//! parsing loop they used to carry.

use std::time::Duration;

use crate::HarnessConfig;

/// Parsed harness command-line arguments.
#[derive(Debug, Clone)]
pub struct HarnessArgs {
    /// `--quick` (alias `!--full`): reduced bounds and the fast subset.
    pub quick: bool,
    /// `--timeout <secs>`: per-benchmark wall-clock budget override.
    pub timeout: Option<Duration>,
    /// `--parallelism <n>`: verifier worker threads.
    pub parallelism: usize,
    /// `--out <path>`: where to write the JSON rows.
    pub out: Option<String>,
    /// `--warm-dir <path>`: the warm-start store.  Every engine the harness
    /// builds loads per-problem cache snapshots from this directory, and the
    /// binaries save their engines' state back into it when they finish — so
    /// a *second invocation of the binary* (a fresh process) starts from the
    /// first one's caches.  Unset = fully cold, no filesystem access.
    pub warm_dir: Option<String>,
    /// `--benchmark <id>` (repeatable): restrict the run to specific
    /// benchmark ids.  Empty = the full selection of the mode.
    pub benchmark_filter: Vec<String>,
}

impl HarnessArgs {
    /// Parses `std::env::args`, treating `default_quick` as the mode when
    /// neither `--quick` nor `--full` is given.
    pub fn parse(default_quick: bool) -> Self {
        Self::from_args(&std::env::args().skip(1).collect::<Vec<_>>(), default_quick)
    }

    /// Parses an explicit argument list (exposed for tests).
    pub fn from_args(args: &[String], default_quick: bool) -> Self {
        let flag = |name: &str| args.iter().any(|a| a == name);
        let value = |name: &str| {
            args.iter()
                .position(|a| a == name)
                .and_then(|i| args.get(i + 1))
        };
        let values = |name: &str| -> Vec<String> {
            args.iter()
                .enumerate()
                .filter(|(_, a)| *a == name)
                .filter_map(|(i, _)| args.get(i + 1).cloned())
                .collect()
        };
        let quick = if flag("--quick") {
            true
        } else if flag("--full") {
            false
        } else {
            default_quick
        };
        HarnessArgs {
            quick,
            timeout: value("--timeout")
                .and_then(|v| v.parse::<u64>().ok())
                .map(Duration::from_secs),
            parallelism: value("--parallelism")
                .and_then(|v| v.parse::<usize>().ok())
                .unwrap_or(1),
            out: value("--out").cloned(),
            warm_dir: value("--warm-dir").cloned(),
            benchmark_filter: values("--benchmark"),
        }
    }

    /// Builds the harness configuration these arguments describe.
    pub fn harness(&self) -> HarnessConfig {
        let mut harness = if self.quick {
            HarnessConfig::quick()
        } else {
            HarnessConfig::full()
        };
        if let Some(timeout) = self.timeout {
            harness.timeout = timeout;
        }
        harness.parallelism = self.parallelism;
        harness.warm_dir = self.warm_dir.clone();
        harness
    }

    /// The benchmark set these arguments select (`--quick` subset or the
    /// full registry, narrowed by any `--benchmark` filters).
    pub fn benchmarks(&self) -> Vec<hanoi_benchmarks::Benchmark> {
        let all = if self.quick {
            hanoi_benchmarks::quick_subset()
        } else {
            hanoi_benchmarks::registry()
        };
        if self.benchmark_filter.is_empty() {
            return all;
        }
        all.into_iter()
            .filter(|b| self.benchmark_filter.iter().any(|id| id == b.id))
            .collect()
    }

    /// The output path, with a fallback default.
    pub fn out_or(&self, default: &str) -> String {
        self.out.clone().unwrap_or_else(|| default.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn flags_parse_and_default() {
        let args = HarnessArgs::from_args(
            &strings(&[
                "--quick",
                "--timeout",
                "7",
                "--parallelism",
                "3",
                "--out",
                "x.json",
            ]),
            false,
        );
        assert!(args.quick);
        assert_eq!(args.timeout, Some(Duration::from_secs(7)));
        assert_eq!(args.parallelism, 3);
        assert_eq!(args.out_or("d.json"), "x.json");
        assert_eq!(args.warm_dir, None);
        let harness = args.harness();
        assert_eq!(harness.timeout, Duration::from_secs(7));
        assert!(!harness.paper_bounds);
        assert_eq!(harness.parallelism, 3);
        assert_eq!(harness.warm_dir, None);

        let defaults = HarnessArgs::from_args(&strings(&[]), true);
        assert!(defaults.quick);
        assert_eq!(defaults.parallelism, 1);
        assert_eq!(defaults.out_or("d.json"), "d.json");
        assert!(!defaults.benchmarks().is_empty());

        let full = HarnessArgs::from_args(&strings(&["--full"]), true);
        assert!(!full.quick);
        assert!(full.harness().paper_bounds);
        assert_eq!(full.benchmarks().len(), 28);
    }

    #[test]
    fn warm_dir_and_benchmark_filters_parse() {
        let args = HarnessArgs::from_args(
            &strings(&[
                "--warm-dir",
                "/tmp/warm",
                "--benchmark",
                "/other/cache",
                "--benchmark",
                "/other/rational",
            ]),
            false,
        );
        assert_eq!(args.warm_dir.as_deref(), Some("/tmp/warm"));
        assert_eq!(args.harness().warm_dir.as_deref(), Some("/tmp/warm"));
        let ids: Vec<&str> = args.benchmarks().iter().map(|b| b.id).collect();
        assert_eq!(ids, vec!["/other/cache", "/other/rational"]);
        // An unknown id filters to nothing rather than erroring.
        let none = HarnessArgs::from_args(&strings(&["--benchmark", "/no/such"]), false);
        assert!(none.benchmarks().is_empty());
    }
}
