//! Shared command-line parsing for the harness binaries.
//!
//! All three binaries (`figure7`, `figure8`, `ablation_synth`) accept the
//! same flags; this module replaces the three hand-rolled copies of the
//! parsing loop they used to carry.

use std::time::Duration;

use crate::HarnessConfig;

/// Parsed harness command-line arguments.
#[derive(Debug, Clone)]
pub struct HarnessArgs {
    /// `--quick` (alias `!--full`): reduced bounds and the fast subset.
    pub quick: bool,
    /// `--timeout <secs>`: per-benchmark wall-clock budget override.
    pub timeout: Option<Duration>,
    /// `--parallelism <n>`: verifier worker threads.
    pub parallelism: usize,
    /// `--out <path>`: where to write the JSON rows.
    pub out: Option<String>,
}

impl HarnessArgs {
    /// Parses `std::env::args`, treating `default_quick` as the mode when
    /// neither `--quick` nor `--full` is given.
    pub fn parse(default_quick: bool) -> Self {
        Self::from_args(&std::env::args().skip(1).collect::<Vec<_>>(), default_quick)
    }

    /// Parses an explicit argument list (exposed for tests).
    pub fn from_args(args: &[String], default_quick: bool) -> Self {
        let flag = |name: &str| args.iter().any(|a| a == name);
        let value = |name: &str| {
            args.iter()
                .position(|a| a == name)
                .and_then(|i| args.get(i + 1))
        };
        let quick = if flag("--quick") {
            true
        } else if flag("--full") {
            false
        } else {
            default_quick
        };
        HarnessArgs {
            quick,
            timeout: value("--timeout")
                .and_then(|v| v.parse::<u64>().ok())
                .map(Duration::from_secs),
            parallelism: value("--parallelism")
                .and_then(|v| v.parse::<usize>().ok())
                .unwrap_or(1),
            out: value("--out").cloned(),
        }
    }

    /// Builds the harness configuration these arguments describe.
    pub fn harness(&self) -> HarnessConfig {
        let mut harness = if self.quick {
            HarnessConfig::quick()
        } else {
            HarnessConfig::full()
        };
        if let Some(timeout) = self.timeout {
            harness.timeout = timeout;
        }
        harness.parallelism = self.parallelism;
        harness
    }

    /// The benchmark set these arguments select.
    pub fn benchmarks(&self) -> Vec<hanoi_benchmarks::Benchmark> {
        if self.quick {
            hanoi_benchmarks::quick_subset()
        } else {
            hanoi_benchmarks::registry()
        }
    }

    /// The output path, with a fallback default.
    pub fn out_or(&self, default: &str) -> String {
        self.out.clone().unwrap_or_else(|| default.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn flags_parse_and_default() {
        let args = HarnessArgs::from_args(
            &strings(&[
                "--quick",
                "--timeout",
                "7",
                "--parallelism",
                "3",
                "--out",
                "x.json",
            ]),
            false,
        );
        assert!(args.quick);
        assert_eq!(args.timeout, Some(Duration::from_secs(7)));
        assert_eq!(args.parallelism, 3);
        assert_eq!(args.out_or("d.json"), "x.json");
        let harness = args.harness();
        assert_eq!(harness.timeout, Duration::from_secs(7));
        assert!(!harness.paper_bounds);
        assert_eq!(harness.parallelism, 3);

        let defaults = HarnessArgs::from_args(&strings(&[]), true);
        assert!(defaults.quick);
        assert_eq!(defaults.parallelism, 1);
        assert_eq!(defaults.out_or("d.json"), "d.json");
        assert!(!defaults.benchmarks().is_empty());

        let full = HarnessArgs::from_args(&strings(&["--full"]), true);
        assert!(!full.quick);
        assert!(full.harness().paper_bounds);
        assert_eq!(full.benchmarks().len(), 28);
    }
}
