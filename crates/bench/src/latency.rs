//! Latency aggregation for service-shaped benchmarks: a percentile
//! histogram over request durations.
//!
//! The stress harness in `hanoi-server` records one sample per
//! request/response round trip and reports p50/p95/p99 — the numbers that
//! matter for a bounded server are the *tail*, not the mean (a server that
//! sheds correctly keeps its tail flat under overload; one that queues
//! without bound does not).  Exact samples are kept (microsecond
//! `Duration`s, a few bytes each); at stress-harness volumes this is
//! cheaper than maintaining bucketed sketches and keeps the percentiles
//! exact.

use std::time::Duration;

use crate::json::Json;

/// An exact-sample latency histogram.
#[derive(Debug, Clone, Default)]
pub struct LatencyHistogram {
    samples: Vec<Duration>,
    sorted: bool,
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram::default()
    }

    /// Records one sample.
    pub fn record(&mut self, sample: Duration) {
        self.samples.push(sample);
        self.sorted = false;
    }

    /// Absorbs every sample of `other`.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        self.samples.extend_from_slice(&other.samples);
        self.sorted = false;
    }

    /// Number of samples recorded.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    fn sort(&mut self) {
        if !self.sorted {
            self.samples.sort_unstable();
            self.sorted = true;
        }
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) by the nearest-rank method, or
    /// `None` when empty.
    pub fn percentile(&mut self, q: f64) -> Option<Duration> {
        if self.samples.is_empty() {
            return None;
        }
        self.sort();
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.samples.len() as f64).ceil() as usize).clamp(1, self.samples.len());
        Some(self.samples[rank - 1])
    }

    /// The largest sample, or `None` when empty.
    pub fn max(&mut self) -> Option<Duration> {
        self.sort();
        self.samples.last().copied()
    }

    /// Mean latency, or `None` when empty.
    pub fn mean(&self) -> Option<Duration> {
        if self.samples.is_empty() {
            return None;
        }
        let total: Duration = self.samples.iter().sum();
        Some(total / self.samples.len() as u32)
    }

    /// Serializes count, mean, p50/p95/p99 and max (milliseconds).
    ///
    /// Takes `&mut self` because percentile extraction sorts the samples.
    pub fn summary(&mut self) -> Json {
        let ms = |d: Option<Duration>| match d {
            Some(d) => Json::Num(d.as_secs_f64() * 1000.0),
            None => Json::Null,
        };
        Json::obj([
            ("count", Json::Num(self.len() as f64)),
            ("mean_ms", ms(self.mean())),
            ("p50_ms", ms(self.percentile(0.50))),
            ("p95_ms", ms(self.percentile(0.95))),
            ("p99_ms", ms(self.percentile(0.99))),
            ("max_ms", ms(self.max())),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_are_nearest_rank() {
        let mut histogram = LatencyHistogram::new();
        assert!(histogram.is_empty());
        assert_eq!(histogram.percentile(0.5), None);
        // 1..=100 ms, inserted out of order.
        for ms in (1..=100).rev() {
            histogram.record(Duration::from_millis(ms));
        }
        assert_eq!(histogram.len(), 100);
        assert_eq!(histogram.percentile(0.50), Some(Duration::from_millis(50)));
        assert_eq!(histogram.percentile(0.95), Some(Duration::from_millis(95)));
        assert_eq!(histogram.percentile(0.99), Some(Duration::from_millis(99)));
        assert_eq!(histogram.percentile(1.0), Some(Duration::from_millis(100)));
        assert_eq!(histogram.percentile(0.0), Some(Duration::from_millis(1)));
        assert_eq!(histogram.max(), Some(Duration::from_millis(100)));
        assert_eq!(histogram.mean(), Some(Duration::from_micros(50_500)));

        let mut other = LatencyHistogram::new();
        other.record(Duration::from_millis(1000));
        histogram.merge(&other);
        assert_eq!(histogram.max(), Some(Duration::from_secs(1)));

        let json = histogram.summary();
        assert_eq!(json.get("count").unwrap().as_usize(), Some(101));
        assert!(json.get("p99_ms").unwrap().as_f64().unwrap() >= 99.0);
    }
}
